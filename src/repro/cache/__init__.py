"""``repro.cache`` — content-addressed, on-disk result memoization.

A full per-topology :class:`~repro.core.strategy.StrategyEngine`
evaluation is a pure function of a config fingerprint (the property the
``repro.ckpt/v1`` checkpoint layer already proved); this package turns
that purity into speed: every :class:`~repro.sim.runner.TaskResult` and
every realized channel-set list is stored once on disk under its SHA-256
content address and reloaded bit-identically on the next run, sweep
point or plot refresh that needs it.

Zero dependencies beyond the standard library and NumPy; crash-safe
atomic writes; advisory file locking so concurrent runners can share one
cache directory; corruption falls back to recompute, never to failure.
See :mod:`repro.cache.store` for the ``repro.cache/v1`` on-disk schema.
"""

from .lock import FileLock
from .store import SCHEMA_ID, CacheStats, ResultCache

__all__ = ["SCHEMA_ID", "CacheStats", "FileLock", "ResultCache"]
