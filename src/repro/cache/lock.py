"""Advisory file locking for the shared cache directory.

Multiple runner processes may point at one cache dir (that is the point
of a shared cache), so every artifact read/write is bracketed by an
advisory ``flock`` on a sidecar ``.lock`` file: writers take it
exclusive for the whole write-then-rename, readers take it shared.  The
atomic tmp-file + :func:`os.replace` protocol already guarantees a
reader can never open a half-written artifact; the lock additionally
serializes writers (no duplicated write work, deterministic loser) and
gives readers a consistent artifact-plus-unlink view during corruption
cleanup.

``flock`` locks live on the open file description, so two handles in
*one* process contend just like two processes do — which is what lets
the torn-read test drive real contention with plain threads.  On
platforms without :mod:`fcntl` the lock degrades to a no-op; atomic
renames alone still keep readers safe there.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - import result depends on the platform
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["FileLock"]


class FileLock:
    """Context-managed advisory lock on ``path`` (created if missing).

    ``shared=True`` takes a read lock (many readers may hold it at
    once); the default is an exclusive write lock.  Acquisition blocks
    until the lock is granted — cache critical sections are short
    (one artifact's IO), so there is no timeout machinery.
    """

    def __init__(self, path: str, shared: bool = False):
        self.path = path
        self.shared = shared
        self._handle = None

    @property
    def locked(self) -> bool:
        return self._handle is not None

    def acquire(self) -> "FileLock":
        if self._handle is not None:
            raise RuntimeError(f"lock {self.path!r} is already held")
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        handle = open(self.path, "a+b")
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_SH if self.shared else fcntl.LOCK_EX)
            except OSError:
                handle.close()
                raise
        self._handle = handle
        return self

    def release(self) -> None:
        handle, self._handle = self._handle, None
        if handle is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False
