"""The ``repro.cache/v1`` content-addressed artifact store.

On-disk layout (all under one root directory, shareable between
processes and runs)::

    <root>/v1/<namespace>/<key[:2]>/<key>.art     # one artifact
    <root>/v1/<namespace>/<key[:2]>/<key>.lock    # advisory lock sidecar

``namespace`` is ``results`` (one :class:`~repro.sim.runner.TaskResult`
per per-topology fingerprint) or ``channels`` (one scenario's full list
of realized :class:`~repro.phy.channel.ChannelSet`).  ``key`` is the
64-hex-char SHA-256 fingerprint from :mod:`repro.sim.fingerprint`; the
schema version lives in the path, so bumping ``v1`` orphans (never
misreads) every old artifact.

Artifact format: one JSON header line, then the raw pickle payload::

    {"schema": "repro.cache/v1", "namespace": ..., "key": ...,
     "sha256": <hex of payload>, "bytes": <payload length>}\\n
    <pickle bytes>

Durability and concurrency:

* **atomic writes** — payloads are written to a unique ``.tmp.*`` file
  (flushed and fsynced) and published with :func:`os.replace`, so a
  crash mid-store leaves at most a stray tmp file, never a partial
  artifact;
* **advisory locking** — writers hold the sidecar lock exclusively for
  write-then-rename, readers take it shared (see
  :mod:`repro.cache.lock`), so concurrent runners sharing the dir never
  see torn state;
* **integrity** — every load re-hashes the payload against the header's
  SHA-256; any mismatch (truncation, bit flip, bad header, unpicklable
  payload) counts as ``corrupt``, deletes the artifact best-effort and
  reports a miss — the caller transparently recomputes.

Artifacts are pickles of this repo's own dataclasses; like the
checkpoint journal, a cache directory is a trusted local artifact, never
untrusted input.

Observability: pass ``collector=`` to any load/store and the operation
is wrapped in a ``cache.lookup``/``cache.store`` span and counted in
``cache.hit`` / ``cache.miss`` / ``cache.corrupt`` / ``cache.bytes_read``
/ ``cache.store`` / ``cache.bytes_written``.  The same totals accumulate
dependency-free in :attr:`ResultCache.stats` for ``--cache-stats``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.fingerprint import fingerprint_channel_config, fingerprint_task
from .lock import FileLock

__all__ = ["SCHEMA_ID", "CacheStats", "ResultCache"]

SCHEMA_ID = "repro.cache/v1"

#: Directory component carrying the schema version; a bump orphans every
#: artifact written by older code instead of risking a misread.
_VERSION_DIR = "v1"

RESULTS_NAMESPACE = "results"
CHANNELS_NAMESPACE = "channels"
#: Strategy answers keyed by *quantized* channel fingerprint — the
#: allocation service's namespace.  Kept apart from ``results`` because
#: these keys are tolerance-equivalent lookups (any channel set in the
#: grid cell shares the artifact), never bit-identity claims.
SERVICE_NAMESPACE = "service"


class _CorruptArtifact(Exception):
    """Internal: the artifact on disk fails an integrity check."""


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` handle's lifetime.

    ``corrupt`` is a subset of ``misses``: a corrupt artifact is deleted
    and reported as a miss, so the caller recomputes transparently.
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    stores: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stores": self.stores,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """Content-addressed memoization store rooted at one directory.

    One handle may serve many runs; handles in different processes may
    share one root.  All methods are safe under that sharing — see the
    module docstring for the protocol.
    """

    def __init__(self, root: str):
        self.root = str(root)
        os.makedirs(os.path.join(self.root, _VERSION_DIR), exist_ok=True)
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({self.root!r}, stats={self.stats})"

    # -- generic keyed access ------------------------------------------------

    def _paths(self, namespace: str, key: str):
        shard = os.path.join(self.root, _VERSION_DIR, namespace, key[:2])
        return os.path.join(shard, f"{key}.art"), os.path.join(shard, f"{key}.lock")

    def load(self, namespace: str, key: str, collector=None) -> Optional[object]:
        """The object stored under ``(namespace, key)``, or ``None``.

        Corrupt artifacts are deleted (best-effort) and reported as a
        miss; this method never raises on bad cache contents.
        """
        path, lock_path = self._paths(namespace, key)
        if collector is not None:
            with collector.span("cache.lookup", namespace=namespace, key=key[:12]):
                return self._load_locked(namespace, key, path, lock_path, collector)
        return self._load_locked(namespace, key, path, lock_path, None)

    def _load_locked(self, namespace, key, path, lock_path, collector) -> Optional[object]:
        if not os.path.exists(path):
            return self._miss(collector)
        try:
            with FileLock(lock_path, shared=True):
                try:
                    with open(path, "rb") as handle:
                        data = handle.read()
                except FileNotFoundError:
                    # Unlinked between the existence check and the open —
                    # a concurrent eviction, not corruption.
                    return self._miss(collector)
            value, n_bytes = self._decode(namespace, key, data)
        except (_CorruptArtifact, OSError):
            self.stats.corrupt += 1
            if collector is not None:
                collector.inc("cache.corrupt")
            self._evict(path, lock_path)
            return self._miss(collector)
        self.stats.hits += 1
        self.stats.bytes_read += n_bytes
        if collector is not None:
            collector.inc("cache.hit")
            collector.inc("cache.bytes_read", n_bytes)
        return value

    def _miss(self, collector) -> None:
        self.stats.misses += 1
        if collector is not None:
            collector.inc("cache.miss")
        return None

    def _decode(self, namespace: str, key: str, data: bytes):
        newline = data.find(b"\n")
        if newline < 0:
            raise _CorruptArtifact("no header line")
        try:
            header = json.loads(data[:newline])
        except json.JSONDecodeError as error:
            raise _CorruptArtifact(f"unreadable header ({error})")
        payload = data[newline + 1 :]
        if (
            not isinstance(header, dict)
            or header.get("schema") != SCHEMA_ID
            or header.get("namespace") != namespace
            or header.get("key") != key
            or header.get("bytes") != len(payload)
            or header.get("sha256") != hashlib.sha256(payload).hexdigest()
        ):
            raise _CorruptArtifact("header/payload mismatch")
        try:
            return pickle.loads(payload), len(data)
        except Exception as error:
            raise _CorruptArtifact(f"unpicklable payload ({error})")

    def _evict(self, path: str, lock_path: str) -> None:
        """Best-effort removal of a corrupt artifact so it is recomputed."""
        try:
            with FileLock(lock_path):
                os.unlink(path)
        except OSError:
            pass

    def store(self, namespace: str, key: str, value: object, collector=None) -> bool:
        """Persist ``value`` under ``(namespace, key)``; True if written.

        An existing artifact is left untouched (content addressing makes
        rewrites pointless), so concurrent writers race harmlessly: one
        wins the rename, the rest skip.
        """
        if collector is not None:
            with collector.span("cache.store", namespace=namespace, key=key[:12]):
                return self._store_locked(namespace, key, value, collector)
        return self._store_locked(namespace, key, value, None)

    def _store_locked(self, namespace, key, value, collector) -> bool:
        path, lock_path = self._paths(namespace, key)
        if os.path.exists(path):
            return False
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        header = json.dumps(
            {
                "schema": SCHEMA_ID,
                "namespace": namespace,
                "key": key,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "bytes": len(payload),
            },
            sort_keys=True,
        ).encode("ascii")
        data = header + b"\n" + payload
        tmp = f"{path}.tmp.{os.getpid()}.{uuid.uuid4().hex}"
        with FileLock(lock_path):
            if os.path.exists(path):  # another writer won while we pickled
                return False
            try:
                with open(tmp, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    try:
                        os.unlink(tmp)
                    except OSError:  # pragma: no cover - cleanup race
                        pass
        self.stats.stores += 1
        self.stats.bytes_written += len(data)
        if collector is not None:
            collector.inc("cache.store")
            collector.inc("cache.bytes_written", len(data))
        return True

    # -- typed entry points --------------------------------------------------

    def load_result(self, task, collector=None):
        """The cached :class:`TaskResult` for ``task``, or ``None``."""
        return self.load(RESULTS_NAMESPACE, fingerprint_task(task), collector=collector)

    def store_result(self, task, result, collector=None) -> bool:
        """Cache one computed task result (spans/metrics stripped).

        Observation data is execution detail — it depends on whether a
        collector was attached, not on the inputs — so it is excluded
        from the artifact to keep cached and uncached runs key-compatible
        and the artifacts lean.  ``elapsed_s`` is kept: it records what
        the evaluation originally cost.
        """
        stripped = dataclasses.replace(result, spans=None, metrics=None)
        return self.store(
            RESULTS_NAMESPACE, fingerprint_task(task), stripped, collector=collector
        )

    def load_service_answer(self, key: str, collector=None):
        """The cached :class:`TaskResult` for one service query key, or ``None``.

        ``key`` is the composed service key (quantized channel cell +
        result-determining query context) built by
        :meth:`repro.sim.service.AllocationService.query_key`.
        """
        return self.load(SERVICE_NAMESPACE, key, collector=collector)

    def store_service_answer(self, key: str, result, collector=None) -> bool:
        """Cache one computed strategy answer under its service key."""
        stripped = dataclasses.replace(result, spans=None, metrics=None)
        return self.store(SERVICE_NAMESPACE, key, stripped, collector=collector)

    def load_channel_sets(self, spec, config, collector=None) -> Optional[List]:
        """The cached channel realizations for (spec, config), or ``None``."""
        key = fingerprint_channel_config(spec, config)
        value = self.load(CHANNELS_NAMESPACE, key, collector=collector)
        return list(value) if value is not None else None

    def store_channel_sets(self, spec, config, channel_sets: Sequence, collector=None) -> bool:
        """Cache one scenario's full list of realized channel sets."""
        key = fingerprint_channel_config(spec, config)
        return self.store(CHANNELS_NAMESPACE, key, list(channel_sets), collector=collector)

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """A JSON-ready snapshot (what ``--cache-stats`` prints/uploads)."""
        return {"schema": SCHEMA_ID, "root": self.root, **self.stats.as_dict()}
