"""A signal-level 802.11-style frame transceiver: the paper's RX front end.

§4.1: "At the start of a reception, receivers use AGC to set the correct
amplifier gain and Schmidl-Cox for synchronization."  This module builds
that front end and a complete single-stream frame path around it:

TX:  bits → convolutional encoder → puncture → QAM → per-subcarrier power
     scaling → OFDM symbols, preceded by an STF (repeated short training
     field for Schmidl–Cox) and an LTF (known long training symbol for
     channel estimation).

RX:  AGC (finite-resolution ADC) → Schmidl–Cox timing synchronization →
     LTF least-squares channel estimate → per-subcarrier equalization →
     LLR demapping → soft Viterbi.

Used by the validation tests to confirm that the analytic
SINR→BER→FER pipeline (which every throughput figure rests on) agrees
with what an actual receiver decodes, and to demonstrate the paper's
AGC-revert measurement methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .constants import Mcs, N_DATA_SUBCARRIERS, N_FFT
from .llr import llr_demodulate
from .ofdm import CP_SAMPLES, data_subcarrier_bins, ofdm_demodulate, ofdm_modulate
from .qam import modulate
from .viterbi import encode, puncture, viterbi_decode_soft

__all__ = [
    "Agc",
    "schmidl_cox_metric",
    "detect_frame_start",
    "FrameConfig",
    "TransmittedFrame",
    "ReceivedFrame",
    "FrameTransceiver",
]

#: STF: a symbol with energy on every 4th subcarrier repeats 4× in time.
_STF_SPACING = 4
#: Number of repeated STF periods (each N_FFT / _STF_SPACING samples).
_STF_REPEATS = 8


# ---------------------------------------------------------------------------
# AGC: automatic gain control with a finite-resolution ADC.
# ---------------------------------------------------------------------------


@dataclass
class Agc:
    """Scales the input to fill an ADC's dynamic range, then quantizes.

    The paper reverts this scaling in floating point before combining two
    transmissions "to avoid losing precision" — :meth:`revert` implements
    exactly that, and the tests confirm the revert recovers the weak
    signal to within quantization noise.
    """

    adc_bits: int = 10
    #: Target RMS amplitude as a fraction of full scale.  OFDM's peak-to-
    #: average ratio demands a large backoff: 0.125 (−18 dBFS) keeps the
    #: clip rate negligible even for 64-QAM frames.
    target_rms: float = 0.125

    def measure_gain(self, samples: np.ndarray) -> float:
        """Gain that brings the observed RMS to the ADC's target level."""
        samples = np.asarray(samples)
        rms = float(np.sqrt(np.mean(np.abs(samples) ** 2)))
        if rms == 0.0:
            return 1.0
        return self.target_rms / rms

    def quantize(self, samples: np.ndarray) -> np.ndarray:
        """Clip to full scale (±1) and round I/Q to the ADC grid."""
        samples = np.asarray(samples, dtype=complex)
        levels = 2 ** (self.adc_bits - 1)
        step = 1.0 / levels

        def one_axis(x):
            clipped = np.clip(x, -1.0, 1.0 - step)
            return np.round(clipped / step) * step

        return one_axis(samples.real) + 1j * one_axis(samples.imag)

    def apply(self, samples: np.ndarray) -> Tuple[np.ndarray, float]:
        """Scale + quantize; returns (digitized samples, applied gain)."""
        gain = self.measure_gain(samples)
        return self.quantize(np.asarray(samples) * gain), gain

    @staticmethod
    def revert(samples: np.ndarray, gain: float) -> np.ndarray:
        """Undo the AGC scaling in floating point (§4.1's methodology)."""
        if gain == 0:
            raise ValueError("cannot revert a zero gain")
        return np.asarray(samples, dtype=complex) / gain


# ---------------------------------------------------------------------------
# Schmidl–Cox timing synchronization.
# ---------------------------------------------------------------------------


def schmidl_cox_metric(samples: np.ndarray, half_period: int) -> np.ndarray:
    """The Schmidl–Cox timing metric M(d) = |P(d)|² / R(d)².

    ``P(d)`` correlates the signal with itself ``half_period`` samples
    later; ``R(d)`` is the corresponding energy.  A repeated training
    symbol produces a plateau of M ≈ 1 at the frame start.
    """
    samples = np.asarray(samples, dtype=complex).ravel()
    n = samples.size - 2 * half_period
    if n <= 0:
        raise ValueError("signal shorter than two sync half-periods")
    first = samples[:-half_period]
    second = samples[half_period:]
    products = np.conj(first) * second
    energies = np.abs(second) ** 2
    p = np.cumsum(products)
    r = np.cumsum(energies)

    def window_sum(cumulative, start, length):
        end = start + length
        total = cumulative[end - 1].copy()
        total[1:] = cumulative[end[1:] - 1] - cumulative[start[1:] - 1]
        return total

    starts = np.arange(n)
    p_win = window_sum(p, starts, half_period)
    r_win = window_sum(r, starts, half_period)
    with np.errstate(divide="ignore", invalid="ignore"):
        metric = np.abs(p_win) ** 2 / np.maximum(np.abs(r_win) ** 2, 1e-30)
    return np.clip(metric, 0.0, 1.5)


def detect_frame_start(samples: np.ndarray, half_period: int, threshold: float = 0.8) -> Optional[int]:
    """Estimate the frame start as the centre of the Schmidl–Cox plateau.

    Returns the sample index where the STF begins, or None if no plateau
    clears the threshold.
    """
    metric = schmidl_cox_metric(samples, half_period)
    above = metric >= threshold
    if not above.any():
        return None
    # The repeated STF produces a plateau starting at the frame boundary;
    # take the start of the longest run above threshold.
    runs = []
    in_run = False
    run_start = 0
    for index, flag in enumerate(above):
        if flag and not in_run:
            run_start, in_run = index, True
        elif not flag and in_run:
            runs.append((run_start, index))
            in_run = False
    if in_run:
        runs.append((run_start, above.size))
    best_start = max(runs, key=lambda r: r[1] - r[0])[0]
    return int(best_start)


# ---------------------------------------------------------------------------
# Frame transceiver.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FrameConfig:
    """Dimensions of a transmitted frame."""

    mcs: Mcs
    n_ofdm_symbols: int = 20
    n_subcarriers: int = N_DATA_SUBCARRIERS

    @property
    def coded_bits(self) -> int:
        return self.n_subcarriers * self.mcs.modulation.bits_per_symbol * self.n_ofdm_symbols

    @property
    def info_bits(self) -> int:
        num, den = self.mcs.code_rate
        return self.coded_bits * num // den


@dataclass
class TransmittedFrame:
    """The waveform plus everything needed to check reception."""

    samples: np.ndarray
    info_bits: np.ndarray
    config: FrameConfig
    stf_samples: int
    ltf_samples: int

    @property
    def data_start(self) -> int:
        return self.stf_samples + self.ltf_samples


@dataclass
class ReceivedFrame:
    """Decoder output plus front-end diagnostics."""

    bits: np.ndarray
    sync_offset: int
    agc_gain: float
    channel_estimate: np.ndarray
    bit_errors: Optional[int] = None

    @property
    def frame_ok(self) -> bool:
        return self.bit_errors == 0


class FrameTransceiver:
    """Builds and decodes single-stream frames over a known-format preamble.

    Two LTF repetitions are sent and averaged at the receiver (as 802.11's
    preamble does), halving the channel-estimation noise that would
    otherwise dominate at 64-QAM operating points.
    """

    N_LTF_REPEATS = 2

    def __init__(self, config: FrameConfig, agc: Optional[Agc] = None):
        self.config = config
        self.agc = agc if agc is not None else Agc()
        self._bins = data_subcarrier_bins(config.n_subcarriers)

    # -- preamble construction -------------------------------------------

    def _stf(self) -> np.ndarray:
        """A periodic short training field (period N_FFT / _STF_SPACING)."""
        grid = np.zeros(N_FFT, dtype=complex)
        active = self._bins[:: _STF_SPACING]
        # Fixed pseudo-random QPSK-ish values on every 4th subcarrier.
        phases = np.exp(1j * 2 * np.pi * (np.arange(active.size) * 7 % 13) / 13)
        grid[active] = np.sqrt(_STF_SPACING) * phases
        period = np.fft.ifft(grid) * np.sqrt(N_FFT)
        period = period[: N_FFT // _STF_SPACING]
        return np.tile(period, _STF_REPEATS)

    def _ltf(self) -> np.ndarray:
        """Repeated known OFDM symbols (with CP) for channel estimation."""
        from .estimation import training_symbols

        pilots = training_symbols(self.config.n_subcarriers)
        one = ofdm_modulate(pilots[None, :])[0]
        return np.tile(one, self.N_LTF_REPEATS)

    # -- transmit ----------------------------------------------------------

    def transmit(
        self,
        rng: np.random.Generator,
        powers: Optional[np.ndarray] = None,
    ) -> TransmittedFrame:
        """Encode random bits into a frame waveform.

        ``powers`` (n_subcarriers,) scales each subcarrier's energy
        (mean 1.0 keeps total power comparable to the preamble); zero
        entries drop the subcarrier COPA-style.
        """
        config = self.config
        if powers is None:
            powers = np.ones(config.n_subcarriers)
        powers = np.asarray(powers, dtype=float)
        if powers.shape != (config.n_subcarriers,):
            raise ValueError("powers must have one entry per subcarrier")

        used = powers > 0
        n_used = int(used.sum())
        bits_per_symbol = config.mcs.modulation.bits_per_symbol
        coded_bits = n_used * bits_per_symbol * config.n_ofdm_symbols
        num, den = config.mcs.code_rate
        info_bits = coded_bits * num // den

        info = rng.integers(0, 2, info_bits).astype(np.int8)
        coded = puncture(encode(info), config.mcs.code_rate)[:coded_bits]
        symbols = modulate(coded, config.mcs.modulation)
        grid = np.zeros((config.n_ofdm_symbols, config.n_subcarriers), dtype=complex)
        grid[:, used] = symbols.reshape(config.n_ofdm_symbols, n_used)
        grid *= np.sqrt(powers)[None, :]

        stf = self._stf()
        ltf = self._ltf()
        data = ofdm_modulate(grid).ravel()
        samples = np.concatenate([stf, ltf, data])
        return TransmittedFrame(
            samples=samples,
            info_bits=info,
            config=config,
            stf_samples=stf.size,
            ltf_samples=ltf.size,
        )

    # -- receive -----------------------------------------------------------

    def receive(
        self,
        samples: np.ndarray,
        powers: Optional[np.ndarray] = None,
        noise_variance: float = 1e-3,
        expected_bits: Optional[np.ndarray] = None,
    ) -> ReceivedFrame:
        """Synchronize, estimate, equalize and decode one frame.

        ``powers`` must match the transmitter's allocation (signalled in
        the real system's preamble per §3.2); ``noise_variance`` feeds the
        LLR scaling.  If ``expected_bits`` is given, ``bit_errors`` is
        filled in.
        """
        config = self.config
        if powers is None:
            powers = np.ones(config.n_subcarriers)
        powers = np.asarray(powers, dtype=float)
        used = powers > 0

        digitized, gain = self.agc.apply(samples)
        analog = Agc.revert(digitized, gain)

        half_period = N_FFT // _STF_SPACING
        offset = detect_frame_start(analog, half_period)
        if offset is None:
            raise ValueError("no Schmidl-Cox plateau found: not a frame?")

        stf_len = half_period * _STF_REPEATS
        ltf_start = offset + stf_len
        symbol_len = N_FFT + CP_SAMPLES
        ltf_total = symbol_len * self.N_LTF_REPEATS
        ltf = analog[ltf_start : ltf_start + ltf_total]
        if ltf.size < ltf_total:
            raise ValueError("frame truncated before the LTF")

        from .estimation import training_symbols

        pilots = training_symbols(config.n_subcarriers)
        ltf_freq = ofdm_demodulate(ltf.reshape(self.N_LTF_REPEATS, symbol_len))
        channel = ltf_freq.mean(axis=0) / pilots

        data_start = ltf_start + ltf_total
        n_data_samples = config.n_ofdm_symbols * symbol_len
        data = analog[data_start : data_start + n_data_samples]
        if data.size < n_data_samples:
            raise ValueError("frame truncated before the data symbols")
        rx_grid = ofdm_demodulate(data.reshape(config.n_ofdm_symbols, symbol_len))

        scaled_channel = channel[None, :] * np.sqrt(powers)[None, :]
        safe = np.where(np.abs(scaled_channel) < 1e-12, 1.0, scaled_channel)
        equalized = rx_grid / safe

        # Per-subcarrier post-equalization noise: noise_variance / |h·√p|².
        channel_power = np.maximum(np.abs(scaled_channel[0]) ** 2, 1e-12)
        rx_symbols = equalized[:, used]
        per_symbol_noise = (noise_variance / channel_power[used])[None, :]

        bits_per_symbol = config.mcs.modulation.bits_per_symbol
        llrs = np.empty(rx_symbols.size * bits_per_symbol)
        flat_symbols = rx_symbols.ravel()
        flat_noise = np.broadcast_to(per_symbol_noise, rx_symbols.shape).ravel()
        # Demap in blocks of equal noise variance (vectorized per subcarrier).
        for variance in np.unique(flat_noise):
            mask = flat_noise == variance
            block = llr_demodulate(flat_symbols[mask], config.mcs.modulation, float(variance))
            llr_index = np.repeat(mask, bits_per_symbol)
            llrs[llr_index] = block

        num, den = config.mcs.code_rate
        n_info = llrs.size * num // den
        decoded = viterbi_decode_soft(llrs, config.mcs.code_rate, n_info_bits=n_info)

        errors = None
        if expected_bits is not None:
            compare = min(decoded.size, np.asarray(expected_bits).size)
            errors = int(np.sum(decoded[:compare] != expected_bits[:compare]))
        return ReceivedFrame(
            bits=decoded,
            sync_offset=offset,
            agc_gain=gain,
            channel_estimate=channel,
            bit_errors=errors,
        )
