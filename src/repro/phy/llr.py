"""Soft demapping: per-bit log-likelihood ratios for Gray-coded QAM.

Hard demapping throws away reliability information; real 802.11 receivers
feed the Viterbi decoder soft bit metrics, worth ~2 dB of SNR.  This
module computes exact max-log LLRs for every constellation in
:mod:`repro.phy.qam` and is consumed by the soft path of
:mod:`repro.phy.viterbi` — the second, higher-fidelity leg of the
signal-level validation chain.

Convention: LLR(b) = log P(b = 0 | y) − log P(b = 1 | y), so positive
LLRs favour a 0 bit and the hard decision is ``llr < 0``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from .constants import Modulation
from .qam import constellation

__all__ = ["llr_demodulate", "llrs_to_hard_bits"]


@lru_cache(maxsize=None)
def _bit_partitions(bits_per_symbol: int) -> Tuple[np.ndarray, np.ndarray]:
    """Constellation points partitioned by each bit's value.

    Returns two arrays of shape (bits_per_symbol, points/2): the points
    whose label has bit b equal to 0, and those with bit b equal to 1
    (bit 0 is the most significant, matching the mapper).
    """
    points = constellation(bits_per_symbol)
    n = points.size
    zeros = np.empty((bits_per_symbol, n // 2), dtype=complex)
    ones = np.empty((bits_per_symbol, n // 2), dtype=complex)
    for bit in range(bits_per_symbol):
        shift = bits_per_symbol - 1 - bit
        mask = (np.arange(n) >> shift) & 1
        zeros[bit] = points[mask == 0]
        ones[bit] = points[mask == 1]
    return zeros, ones


def llr_demodulate(symbols, modulation: Modulation, noise_variance=1.0) -> np.ndarray:
    """Max-log LLR per transmitted bit (MSB-first within each symbol).

    ``noise_variance`` is the total complex noise power per symbol — a
    scalar shared by every symbol, or an array with one variance per
    symbol (each symbol's LLRs are scaled by its own variance; this is
    what lets the MIMO receiver soft-demap a whole frame in one call
    instead of grouping cells by noise level).  The max-log approximation
    uses the nearest point of each bit partition:

        LLR(b) ≈ (min_{s: b=1} |y − s|² − min_{s: b=0} |y − s|²) / σ²
    """
    symbols = np.asarray(symbols, dtype=complex).ravel()
    noise = np.asarray(noise_variance, dtype=float)
    if np.any(noise <= 0):
        raise ValueError("noise_variance must be positive")
    if noise.ndim:
        noise = noise.ravel()
        if noise.size != symbols.size:
            raise ValueError(
                f"per-symbol noise_variance needs {symbols.size} entries, got {noise.size}"
            )
        scale = noise[:, None]
    else:
        scale = noise
    zeros, ones = _bit_partitions(modulation.bits_per_symbol)

    # distances: (n_symbols, bits, points/2)
    d_zero = np.abs(symbols[:, None, None] - zeros[None, :, :]) ** 2
    d_one = np.abs(symbols[:, None, None] - ones[None, :, :]) ** 2
    llrs = (d_one.min(axis=2) - d_zero.min(axis=2)) / scale
    return llrs.reshape(-1)


def llrs_to_hard_bits(llrs) -> np.ndarray:
    """Hard decisions from LLRs (ties resolve to 0)."""
    return (np.asarray(llrs, dtype=float) < 0).astype(np.int8)
