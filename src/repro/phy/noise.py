"""Radio-imperfection models: CSI estimation error, TX noise, leakage.

The paper attributes imperfect nulling (§2.2) to "receiver noise when
measuring the channel state in order to calculate the nulling phase and
transmitter imperfections and noise when sending the nulled signal", and
notes that dropped subcarriers still leak about −27 dB of adjacent-carrier
power (the Maxim 2829 transceiver datasheet).  These three models are what
turn ideal (infinitely deep) nulls into the ≈27 dB residual-interference
reduction of Figure 3, which in turn is what creates the SINR variability
COPA exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util import db_to_linear

__all__ = ["ImperfectionModel", "CARRIER_LEAKAGE_DB"]

#: Adjacent-subcarrier leakage of a "switched-off" subcarrier (Maxim 2829).
CARRIER_LEAKAGE_DB = -27.0


@dataclass(frozen=True)
class ImperfectionModel:
    """Noise knobs applied between 'what an AP knows' and 'what happens'.

    csi_error_db
        Power of the per-entry CSI estimation error relative to the channel
        entry's mean power.  An error at −26 dB limits achievable null depth,
        matching Fig. 3's ≈27 dB mean INR reduction.
    tx_evm_db
        Transmitter error-vector magnitude: per-sample TX noise relative to
        the transmitted signal power, radiated isotropically (it does not
        pass through the precoder, so it cannot be nulled).
    carrier_leakage_db
        Power that a dropped subcarrier still radiates, relative to the
        mean power of its two neighbours.
    """

    csi_error_db: float = -26.0
    tx_evm_db: float = -35.0
    carrier_leakage_db: float = CARRIER_LEAKAGE_DB

    @property
    def csi_error_linear(self) -> float:
        return float(db_to_linear(self.csi_error_db))

    @property
    def tx_evm_linear(self) -> float:
        return float(db_to_linear(self.tx_evm_db))

    @property
    def carrier_leakage_linear(self) -> float:
        return float(db_to_linear(self.carrier_leakage_db))

    def measure_csi(self, true_channel: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """A noisy CSI estimate of ``true_channel``.

        The error on each entry is complex Gaussian with power
        ``csi_error_linear`` times the mean squared magnitude of the link's
        entries, mimicking estimation noise that scales with the received
        power of the sounding frames.
        """
        true_channel = np.asarray(true_channel)
        mean_power = float(np.mean(np.abs(true_channel) ** 2))
        if mean_power == 0.0:
            return true_channel.copy()
        sigma = np.sqrt(self.csi_error_linear * mean_power / 2.0)
        error = sigma * (
            rng.standard_normal(true_channel.shape)
            + 1j * rng.standard_normal(true_channel.shape)
        )
        return true_channel + error

    def leakage_power(self, neighbour_powers: np.ndarray) -> np.ndarray:
        """Power a dropped subcarrier still radiates, per §3.2.

        ``neighbour_powers`` is the mean allocated power of the adjacent
        (still active) subcarriers.
        """
        return self.carrier_leakage_linear * np.asarray(neighbour_powers, dtype=float)


#: A model with every imperfection disabled, for idealized unit tests.
PERFECT = ImperfectionModel(csi_error_db=-400.0, tx_evm_db=-400.0, carrier_leakage_db=-400.0)
