"""Multipath fading: power-delay profiles and tapped-delay-line draws.

Indoors, reflections off walls and furniture arrive at the receiver with
different delays; summing them per frequency produces the narrow-band fading
the paper shows in Figure 2 — some subcarriers 20–30 dB below others, with a
fading pattern that decorrelates over one wavelength of antenna separation.

We model each link as a tapped delay line whose taps are i.i.d. complex
Gaussian (Rayleigh) matrices weighted by an exponential power-delay profile,
and convert the taps to a per-subcarrier frequency response by a DFT.
Antenna correlation uses the standard Kronecker model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .constants import N_DATA_SUBCARRIERS, SUBCARRIER_SPACING_HZ
from ..util import hermitian

__all__ = [
    "PowerDelayProfile",
    "exponential_pdp",
    "TappedDelayLine",
    "correlation_matrix",
    "frequency_response",
]


@dataclass(frozen=True)
class PowerDelayProfile:
    """Tap delays (seconds) and mean linear tap powers, normalized to sum 1."""

    delays_s: np.ndarray
    powers: np.ndarray

    def __post_init__(self):
        delays = np.asarray(self.delays_s, dtype=float)
        powers = np.asarray(self.powers, dtype=float)
        if delays.ndim != 1 or powers.ndim != 1 or delays.shape != powers.shape:
            raise ValueError("delays and powers must be 1-D arrays of equal length")
        if delays.size == 0:
            raise ValueError("a power-delay profile needs at least one tap")
        if np.any(powers < 0):
            raise ValueError("tap powers must be non-negative")
        total = powers.sum()
        if total <= 0:
            raise ValueError("tap powers must not all be zero")
        object.__setattr__(self, "delays_s", delays)
        object.__setattr__(self, "powers", powers / total)

    @property
    def n_taps(self) -> int:
        return self.delays_s.size

    @property
    def rms_delay_spread_s(self) -> float:
        """RMS delay spread of the profile."""
        mean = float(np.dot(self.powers, self.delays_s))
        second = float(np.dot(self.powers, self.delays_s**2))
        return float(np.sqrt(max(second - mean**2, 0.0)))


def exponential_pdp(rms_delay_spread_s: float = 60e-9, n_taps: int = 12, tap_spacing_s: float = 25e-9) -> PowerDelayProfile:
    """Exponentially-decaying profile typical of indoor office channels.

    The default 60 ns RMS delay spread corresponds to a coherence bandwidth
    of a few MHz — several deep fades across a 20 MHz channel, matching the
    variability in the paper's Figure 2.
    """
    if rms_delay_spread_s <= 0:
        raise ValueError("rms_delay_spread_s must be positive")
    if n_taps < 1:
        raise ValueError("need at least one tap")
    delays = np.arange(n_taps) * tap_spacing_s
    powers = np.exp(-delays / rms_delay_spread_s)
    return PowerDelayProfile(delays, powers)


@lru_cache(maxsize=64)
def _cached_correlation(n_antennas: int, rho: float) -> np.ndarray:
    """Read-only cached correlation matrix, keyed by ``(n, rho)``.

    Channel realizations request the same handful of matrices once per
    link per topology; caching them (and their square roots below) takes
    that recomputation off the topology-generation path.
    """
    index = np.arange(n_antennas)
    matrix = rho ** np.abs(index[:, None] - index[None, :])
    matrix.setflags(write=False)
    return matrix


def correlation_matrix(n_antennas: int, rho: float) -> np.ndarray:
    """Exponential antenna-correlation matrix: R[i, j] = rho ** |i - j|.

    ``rho`` in [0, 1): 0 is i.i.d. antennas, values around 0.4–0.6 are
    typical of half-wavelength-spaced elements indoors.  Correlated antennas
    make nulling's "collateral damage" (Fig. 3's SNR reduction) larger,
    because the directions toward the intended and unintended receivers are
    less orthogonal.
    """
    if not 0.0 <= rho < 1.0:
        raise ValueError("rho must be in [0, 1)")
    # Hand out a fresh copy so callers can mutate without poisoning the cache.
    return _cached_correlation(int(n_antennas), float(rho)).copy()


def _matrix_sqrt(matrix: np.ndarray) -> np.ndarray:
    """Hermitian positive-semidefinite matrix square root."""
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return (eigenvectors * np.sqrt(eigenvalues)) @ hermitian(eigenvectors)


@lru_cache(maxsize=64)
def _correlation_sqrt(n_antennas: int, rho: float) -> np.ndarray:
    """Read-only cached ``_matrix_sqrt(correlation_matrix(n, rho))``."""
    root = _matrix_sqrt(np.asarray(_cached_correlation(n_antennas, rho)))
    root.setflags(write=False)
    return root


@dataclass
class TappedDelayLine:
    """A Rayleigh tapped-delay-line realization of one MIMO link.

    ``taps`` has shape (n_taps, n_rx, n_tx); total mean power across taps is
    1 (the absolute scale — path loss — is applied by the channel layer).
    """

    pdp: PowerDelayProfile
    taps: np.ndarray

    @classmethod
    def sample(
        cls,
        n_rx: int,
        n_tx: int,
        pdp: PowerDelayProfile,
        rng: np.random.Generator,
        tx_correlation: float = 0.0,
        rx_correlation: float = 0.0,
    ) -> "TappedDelayLine":
        """Draw one channel realization.

        Each tap is ``sqrt(p_l) * R_rx^{1/2} G R_tx^{1/2}`` with G i.i.d.
        CN(0, 1) — the Kronecker correlation model.
        """
        shape = (pdp.n_taps, n_rx, n_tx)
        gauss = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        gauss /= np.sqrt(2.0)
        if tx_correlation > 0.0:
            gauss = gauss @ _correlation_sqrt(n_tx, float(tx_correlation))
        if rx_correlation > 0.0:
            gauss = _correlation_sqrt(n_rx, float(rx_correlation)) @ gauss
        taps = gauss * np.sqrt(pdp.powers)[:, None, None]
        return cls(pdp=pdp, taps=taps)

    @property
    def n_rx(self) -> int:
        return self.taps.shape[1]

    @property
    def n_tx(self) -> int:
        return self.taps.shape[2]


def frequency_response(
    tdl: TappedDelayLine,
    n_subcarriers: int = N_DATA_SUBCARRIERS,
    subcarrier_spacing_hz: float = SUBCARRIER_SPACING_HZ,
) -> np.ndarray:
    """Per-subcarrier response H[k] = sum_l taps[l] * exp(-j 2π f_k τ_l).

    Returns an array of shape (n_subcarriers, n_rx, n_tx).  Subcarriers are
    indexed across the occupied band, centred on the carrier.
    """
    offsets = (np.arange(n_subcarriers) - (n_subcarriers - 1) / 2.0) * subcarrier_spacing_hz
    # phase[k, l] for subcarrier k, tap l
    phase = np.exp(-2j * np.pi * np.outer(offsets, tdl.pdp.delays_s))
    return np.einsum("kl,lij->kij", phase, tdl.taps)
