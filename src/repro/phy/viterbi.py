"""802.11's convolutional code: encoder, puncturing, hard Viterbi decoder.

The industry-standard K=7 code with generators 133/171 (octal), punctured
to rates 2/3, 3/4 and 5/6 with the 802.11 puncturing patterns.  This is
the signal-level counterpart of the analytic union bound in
:mod:`repro.phy.coding`; the test suite Monte-Carlo-checks one against the
other.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

__all__ = [
    "CONSTRAINT_LENGTH",
    "GENERATORS",
    "PUNCTURING_PATTERNS",
    "encode",
    "puncture",
    "depuncture",
    "depuncture_soft",
    "viterbi_decode",
    "viterbi_decode_soft",
    "code_through_channel",
]

CONSTRAINT_LENGTH = 7
#: Generator polynomials, octal 133 and 171.
GENERATORS = (0o133, 0o171)
_N_STATES = 2 ** (CONSTRAINT_LENGTH - 1)

#: 802.11 puncturing patterns: per code rate, a (keep_a, keep_b) bit pattern
#: applied cyclically to the two encoder output streams.
PUNCTURING_PATTERNS = {
    (1, 2): ((1,), (1,)),
    (2, 3): ((1, 1), (1, 0)),
    (3, 4): ((1, 1, 0), (1, 0, 1)),
    (5, 6): ((1, 1, 0, 1, 0), (1, 0, 1, 0, 1)),
}

#: Depunctured positions carry this value: an erasure the decoder ignores.
ERASURE = -1


def _parity(value: np.ndarray) -> np.ndarray:
    value = value.copy()
    for shift in (16, 8, 4, 2, 1):
        value ^= value >> shift
    return value & 1


@lru_cache(maxsize=1)
def _trellis() -> Tuple[np.ndarray, np.ndarray]:
    """(next_state, outputs): arrays indexed [state, input_bit].

    ``outputs[s, b]`` packs the two coded bits as out_a * 2 + out_b.
    State is the most-recent-first shift register of the last 6 input bits.
    """
    states = np.arange(_N_STATES)
    next_state = np.empty((_N_STATES, 2), dtype=np.int64)
    outputs = np.empty((_N_STATES, 2), dtype=np.int64)
    for bit in (0, 1):
        register = (bit << (CONSTRAINT_LENGTH - 1)) | states
        out_a = _parity(register & GENERATORS[0])
        out_b = _parity(register & GENERATORS[1])
        next_state[:, bit] = register >> 1
        outputs[:, bit] = out_a * 2 + out_b
    return next_state, outputs


@lru_cache(maxsize=1)
def _acs_tables() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Predecessor (butterfly) tables for the add-compare-select kernel.

    With the most-recent-first shift register, state ``n`` has exactly two
    trellis predecessors ``p_j = 2 * (n mod 32) + j`` for ``j in {0, 1}``,
    both reached by input bit ``n >> 5`` (the bit that became the new MSB).
    Returns

    * ``prev`` — (64, 2) predecessor state indices,
    * ``prev_out`` — (64, 2) packed coded output (a * 2 + b) emitted on
      the transition ``p_j -> n``,
    * ``state_bit`` — (64,) the input bit that leads *into* each state,
      which during traceback is the decoded bit.
    """
    _, outputs = _trellis()
    states = np.arange(_N_STATES)
    state_bit = states >> (CONSTRAINT_LENGTH - 2)
    base = (states & (_N_STATES // 2 - 1)) << 1
    prev = np.stack([base, base + 1], axis=1)
    prev_out = outputs[prev, state_bit[:, None]]
    return prev, prev_out, state_bit


def _acs_forward(
    branch: np.ndarray,
    metrics: np.ndarray,
    maximize: bool,
    ceiling=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the whole trellis through one table-driven ACS kernel.

    ``branch`` is an (n_steps, 4) table of per-step branch metrics indexed
    by packed coded output; ``metrics`` the initial path metrics (consumed).
    Returns ``(final_metrics, back)`` where ``back[t, n]`` is the surviving
    predecessor of state ``n`` after step ``t``.

    Semantics match the reference per-step implementation bit for bit:
    ties select the lower-indexed predecessor, and states whose
    predecessors are all unreached stay pinned at the sentinel (``ceiling``
    clamps the hard decoder's integer infinity; the soft decoder's −inf
    propagates by itself).
    """
    prev, prev_out, _ = _acs_tables()
    n_steps = branch.shape[0]
    step_branch = branch[:, prev_out]  # (n_steps, 64, 2), one gather up front
    back = np.empty((n_steps, _N_STATES), dtype=np.int8)
    prev0 = prev[:, 0].astype(np.int8)
    for t in range(n_steps):
        cand = metrics[prev]
        cand += step_branch[t]
        c0, c1 = cand[:, 0], cand[:, 1]
        take1 = c1 > c0 if maximize else c1 < c0
        metrics = np.where(take1, c1, c0)
        if ceiling is not None:
            np.minimum(metrics, ceiling, out=metrics)
        back[t] = prev0 + take1
    return metrics, back


def _traceback(back: np.ndarray, final_state: int) -> np.ndarray:
    """Walk the survivor pointers; the decoded bit is each state's MSB."""
    _, _, state_bit = _acs_tables()
    n_steps = back.shape[0]
    decoded = np.empty(n_steps, dtype=np.int8)
    state = final_state
    for t in range(n_steps - 1, -1, -1):
        decoded[t] = state_bit[state]
        state = int(back[t, state])
    return decoded


#: Packed coded outputs in table order: column ``o`` of a branch table is
#: the metric of emitting the pair ``(o >> 1, o & 1)``.
_OUT_A = np.array([0, 0, 1, 1], dtype=np.int64)
_OUT_B = np.array([0, 1, 0, 1], dtype=np.int64)


def _hard_branch_table(received: np.ndarray) -> np.ndarray:
    """(n_steps, 4) Hamming branch metrics; erasures contribute nothing."""
    pairs = received.reshape(-1, 2).astype(np.int64)
    rx_a, rx_b = pairs[:, :1], pairs[:, 1:]
    branch = ((rx_a != ERASURE) & (_OUT_A[None, :] != rx_a)).astype(np.int64)
    branch += (rx_b != ERASURE) & (_OUT_B[None, :] != rx_b)
    return branch


def _soft_branch_table(llrs: np.ndarray) -> np.ndarray:
    """(n_steps, 4) correlation branch metrics: +L for coded 0, −L for 1."""
    pairs = llrs.reshape(-1, 2)
    sign_a = 1.0 - 2.0 * _OUT_A
    sign_b = 1.0 - 2.0 * _OUT_B
    return sign_a[None, :] * pairs[:, :1] + sign_b[None, :] * pairs[:, 1:]


def encode(bits) -> np.ndarray:
    """Rate-1/2 mother-code output, interleaved (a0, b0, a1, b1, ...).

    The encoder starts in the all-zero state; callers append tail bits
    themselves if they want trellis termination.
    """
    bits = np.asarray(bits, dtype=np.int64).ravel()
    next_state, outputs = _trellis()
    coded = np.empty(2 * bits.size, dtype=np.int8)
    state = 0
    for i, bit in enumerate(bits):
        packed = outputs[state, bit]
        coded[2 * i] = packed >> 1
        coded[2 * i + 1] = packed & 1
        state = next_state[state, bit]
    return coded


def _pattern_mask(code_rate: Tuple[int, int], n_pairs: int) -> np.ndarray:
    keep_a, keep_b = PUNCTURING_PATTERNS[code_rate]
    period = len(keep_a)
    mask = np.empty(2 * n_pairs, dtype=bool)
    idx = np.arange(n_pairs) % period
    mask[0::2] = np.asarray(keep_a, dtype=bool)[idx]
    mask[1::2] = np.asarray(keep_b, dtype=bool)[idx]
    return mask


def puncture(coded, code_rate: Tuple[int, int]) -> np.ndarray:
    """Drop coded bits per the 802.11 pattern for ``code_rate``."""
    coded = np.asarray(coded).ravel()
    if coded.size % 2:
        raise ValueError("coded stream must contain whole (a, b) pairs")
    if code_rate not in PUNCTURING_PATTERNS:
        raise ValueError(f"unknown code rate {code_rate!r}")
    return coded[_pattern_mask(code_rate, coded.size // 2)]


def depuncture(received, code_rate: Tuple[int, int], n_info_bits: int) -> np.ndarray:
    """Re-insert erasures where bits were punctured.

    Returns a length 2 × n_info_bits array of {0, 1, ERASURE}.
    """
    received = np.asarray(received, dtype=np.int8).ravel()
    mask = _pattern_mask(code_rate, n_info_bits)
    if received.size != int(mask.sum()):
        raise ValueError(
            f"expected {int(mask.sum())} received bits for {n_info_bits} info bits, got {received.size}"
        )
    full = np.full(2 * n_info_bits, ERASURE, dtype=np.int8)
    full[mask] = received
    return full


def viterbi_decode(received, code_rate: Tuple[int, int] = (1, 2), n_info_bits: int = None) -> np.ndarray:
    """Hard-decision Viterbi decoding with erasure support.

    ``received`` is the punctured hard-bit stream for rates ≠ 1/2 (it is
    depunctured internally), or the full (a, b) stream for rate 1/2 —
    values of :data:`ERASURE` are skipped in the branch metric either way.
    The decoder assumes the encoder started in state 0 and traces back
    from the best final state.
    """
    received = np.asarray(received, dtype=np.int8).ravel()
    if code_rate != (1, 2) or n_info_bits is not None:
        if n_info_bits is None:
            num, den = code_rate
            if (received.size * num) % den:
                raise ValueError("received length inconsistent with code rate")
            n_info_bits = received.size * num // den
        received = depuncture(received, code_rate, n_info_bits)
    if received.size % 2:
        raise ValueError("depunctured stream must contain whole (a, b) pairs")
    infinity = np.int64(1) << 40
    metrics = np.full(_N_STATES, infinity, dtype=np.int64)
    metrics[0] = 0
    metrics, back = _acs_forward(
        _hard_branch_table(received), metrics, maximize=False, ceiling=infinity
    )
    return _traceback(back, int(np.argmin(metrics)))


def _reference_viterbi_decode(
    received, code_rate: Tuple[int, int] = (1, 2), n_info_bits: int = None
) -> np.ndarray:
    """The original per-step hard decoder, retained as the equivalence and
    perf baseline for the table-driven ACS kernel (``benchmarks/
    bench_phy_hotpaths.py`` measures the speedup against this body)."""
    received = np.asarray(received, dtype=np.int8).ravel()
    if code_rate != (1, 2) or n_info_bits is not None:
        if n_info_bits is None:
            num, den = code_rate
            if (received.size * num) % den:
                raise ValueError("received length inconsistent with code rate")
            n_info_bits = received.size * num // den
        received = depuncture(received, code_rate, n_info_bits)
    if received.size % 2:
        raise ValueError("depunctured stream must contain whole (a, b) pairs")
    n_steps = received.size // 2

    next_state, outputs = _trellis()
    out_a = (outputs >> 1).astype(np.int8)
    out_b = (outputs & 1).astype(np.int8)

    infinity = np.int64(1) << 40
    metrics = np.full(_N_STATES, infinity, dtype=np.int64)
    metrics[0] = 0
    history = np.empty((n_steps, _N_STATES), dtype=np.int8)
    back = np.empty((n_steps, _N_STATES), dtype=np.int64)

    for t in range(n_steps):
        rx_a, rx_b = received[2 * t], received[2 * t + 1]
        branch = np.zeros((_N_STATES, 2), dtype=np.int64)
        if rx_a != ERASURE:
            branch += out_a != rx_a
        if rx_b != ERASURE:
            branch += out_b != rx_b
        candidate = metrics[:, None] + branch  # [state, bit]
        new_metrics = np.full(_N_STATES, infinity, dtype=np.int64)
        chosen_bit = np.zeros(_N_STATES, dtype=np.int8)
        chosen_prev = np.zeros(_N_STATES, dtype=np.int64)
        for bit in (0, 1):
            targets = next_state[:, bit]
            cand = candidate[:, bit]
            order = np.argsort(cand, kind="stable")
            sorted_targets = targets[order]
            first = np.full(_N_STATES, -1, dtype=np.int64)
            # keep the best (smallest-metric) predecessor per target state
            seen_positions = np.unique(sorted_targets, return_index=True)[1]
            first[np.unique(sorted_targets)] = order[seen_positions]
            valid = first >= 0
            better = np.zeros(_N_STATES, dtype=bool)
            better[valid] = cand[first[valid]] < new_metrics[valid]
            new_metrics[better] = cand[first[better]]
            chosen_bit[better] = bit
            chosen_prev[better] = first[better]
        history[t] = chosen_bit
        back[t] = chosen_prev
        metrics = new_metrics

    decoded = np.empty(n_steps, dtype=np.int8)
    state = int(np.argmin(metrics))
    for t in range(n_steps - 1, -1, -1):
        decoded[t] = history[t, state]
        state = int(back[t, state])
    return decoded


def code_through_channel(
    bits,
    code_rate: Tuple[int, int],
    flip_probability: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Encode → puncture → BSC(p) → decode; returns the decoded bits.

    A convenience wrapper used by the Monte-Carlo validation tests.
    """
    bits = np.asarray(bits, dtype=np.int8).ravel()
    coded = puncture(encode(bits), code_rate)
    flips = rng.uniform(size=coded.size) < flip_probability
    received = (coded ^ flips).astype(np.int8)
    return viterbi_decode(received, code_rate, n_info_bits=bits.size)


def depuncture_soft(llrs, code_rate: Tuple[int, int], n_info_bits: int) -> np.ndarray:
    """Re-insert zero-LLR erasures where bits were punctured (soft path)."""
    llrs = np.asarray(llrs, dtype=float).ravel()
    mask = _pattern_mask(code_rate, n_info_bits)
    if llrs.size != int(mask.sum()):
        raise ValueError(
            f"expected {int(mask.sum())} LLRs for {n_info_bits} info bits, got {llrs.size}"
        )
    full = np.zeros(2 * n_info_bits, dtype=float)
    full[mask] = llrs
    return full


def viterbi_decode_soft(
    llrs,
    code_rate: Tuple[int, int] = (1, 2),
    n_info_bits: int = None,
) -> np.ndarray:
    """Soft-decision Viterbi decoding from per-bit LLRs.

    ``llrs`` follow the :mod:`repro.phy.llr` convention (positive favours
    bit 0).  The path metric maximizes the correlation
    ``Σ (1 − 2·c_t)·L_t`` between the candidate codeword and the LLRs;
    punctured positions contribute nothing (zero LLR).  Worth roughly 2 dB
    over hard decisions on AWGN — the margin the test suite verifies.
    """
    llrs = np.asarray(llrs, dtype=float).ravel()
    if code_rate != (1, 2) or n_info_bits is not None:
        if n_info_bits is None:
            num, den = code_rate
            if (llrs.size * num) % den:
                raise ValueError("LLR length inconsistent with code rate")
            n_info_bits = llrs.size * num // den
        llrs = depuncture_soft(llrs, code_rate, n_info_bits)
    if llrs.size % 2:
        raise ValueError("depunctured LLR stream must contain whole (a, b) pairs")
    metrics = np.full(_N_STATES, -np.inf)
    metrics[0] = 0.0
    metrics, back = _acs_forward(_soft_branch_table(llrs), metrics, maximize=True)
    return _traceback(back, int(np.argmax(metrics)))


def _reference_viterbi_decode_soft(
    llrs, code_rate: Tuple[int, int] = (1, 2), n_info_bits: int = None
) -> np.ndarray:
    """The original per-step soft decoder, retained as the equivalence and
    perf baseline for the table-driven ACS kernel."""
    llrs = np.asarray(llrs, dtype=float).ravel()
    if code_rate != (1, 2) or n_info_bits is not None:
        if n_info_bits is None:
            num, den = code_rate
            if (llrs.size * num) % den:
                raise ValueError("LLR length inconsistent with code rate")
            n_info_bits = llrs.size * num // den
        llrs = depuncture_soft(llrs, code_rate, n_info_bits)
    if llrs.size % 2:
        raise ValueError("depunctured LLR stream must contain whole (a, b) pairs")
    n_steps = llrs.size // 2

    next_state, outputs = _trellis()
    # Branch correlation per output bit: +L for coded 0, −L for coded 1.
    sign_a = 1.0 - 2.0 * (outputs >> 1)
    sign_b = 1.0 - 2.0 * (outputs & 1)

    metrics = np.full(_N_STATES, -np.inf)
    metrics[0] = 0.0
    history = np.empty((n_steps, _N_STATES), dtype=np.int8)
    back = np.empty((n_steps, _N_STATES), dtype=np.int64)

    for t in range(n_steps):
        l_a, l_b = llrs[2 * t], llrs[2 * t + 1]
        branch = sign_a * l_a + sign_b * l_b  # [state, bit]
        candidate = metrics[:, None] + branch
        new_metrics = np.full(_N_STATES, -np.inf)
        chosen_bit = np.zeros(_N_STATES, dtype=np.int8)
        chosen_prev = np.zeros(_N_STATES, dtype=np.int64)
        for bit in (0, 1):
            targets = next_state[:, bit]
            cand = candidate[:, bit]
            order = np.argsort(-cand, kind="stable")
            sorted_targets = targets[order]
            first = np.full(_N_STATES, -1, dtype=np.int64)
            unique_targets, positions = np.unique(sorted_targets, return_index=True)
            first[unique_targets] = order[positions]
            valid = first >= 0
            better = np.zeros(_N_STATES, dtype=bool)
            better[valid] = cand[first[valid]] > new_metrics[valid]
            new_metrics[better] = cand[first[better]]
            chosen_bit[better] = bit
            chosen_prev[better] = first[better]
        history[t] = chosen_bit
        back[t] = chosen_prev
        metrics = new_metrics

    decoded = np.empty(n_steps, dtype=np.int8)
    state = int(np.argmax(metrics))
    for t in range(n_steps - 1, -1, -1):
        decoded[t] = history[t, state]
        state = int(back[t, state])
    return decoded
