"""Temporal channel evolution: Doppler, coherence, CSI staleness.

§3.1 argues CSI must be refreshed once per coherence time t_c = m·λ/v.
This module supplies the physics behind that rule: a Gauss–Markov /
Jakes-correlated evolution of the tapped-delay-line channel,

    H(t + Δ) = ρ(Δ)·H(t) + sqrt(1 − ρ²)·innovation,
    ρ(Δ) = J₀(2π f_D Δ),   f_D = v / λ,

so a precoder computed from CSI of age Δ faces a channel that has rotated
away by exactly the amount the coherence-time rule predicts.  (The chain
is first-order Markov: lag-1 correlation matches Jakes exactly; longer
lags decay geometrically rather than following J₀'s ringing — the
standard Gauss–Markov channel approximation.)  The staleness ablation
benchmark uses this to show nulls decaying as CSI ages past t_c — the
quantitative justification for COPA's 30 ms refresh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from scipy.special import j0

from .constants import CARRIER_WAVELENGTH_M
from .fading import PowerDelayProfile, TappedDelayLine, exponential_pdp, frequency_response

__all__ = [
    "doppler_frequency_hz",
    "temporal_correlation",
    "evolve_taps",
    "ChannelTrack",
]


def doppler_frequency_hz(speed_m_per_s: float, wavelength_m: float = CARRIER_WAVELENGTH_M) -> float:
    """Maximum Doppler shift f_D = v / λ."""
    if speed_m_per_s < 0:
        raise ValueError("speed must be non-negative")
    return speed_m_per_s / wavelength_m


def temporal_correlation(delay_s, doppler_hz: float) -> np.ndarray:
    """Jakes' autocorrelation ρ(Δ) = J₀(2π f_D Δ) of a Rayleigh channel."""
    delay_s = np.asarray(delay_s, dtype=float)
    return j0(2.0 * np.pi * doppler_hz * delay_s)


def evolve_taps(
    taps: np.ndarray,
    rho: float,
    pdp: PowerDelayProfile,
    rng: np.random.Generator,
) -> np.ndarray:
    """One Gauss–Markov step: correlated copy of a TDL realization.

    The innovation is drawn with the same per-tap powers, so the marginal
    statistics (and hence all calibrated figures) are preserved at every
    time step.
    """
    if not -1.0 <= rho <= 1.0:
        raise ValueError("correlation must be in [-1, 1]")
    taps = np.asarray(taps)
    shape = taps.shape
    gauss = (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)) / np.sqrt(2.0)
    innovation = gauss * np.sqrt(pdp.powers)[:, None, None]
    return rho * taps + np.sqrt(max(1.0 - rho**2, 0.0)) * innovation


@dataclass
class ChannelTrack:
    """A time-evolving MIMO link sampled at a fixed interval.

    Iterating (or calling :meth:`step`) yields successive per-subcarrier
    channel matrices whose lag-k correlation follows Jakes' model at the
    configured speed.
    """

    n_rx: int
    n_tx: int
    speed_m_per_s: float
    sample_interval_s: float
    pdp: Optional[PowerDelayProfile] = None
    wavelength_m: float = CARRIER_WAVELENGTH_M

    def __post_init__(self):
        if self.sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        if self.pdp is None:
            self.pdp = exponential_pdp()
        self._taps: Optional[np.ndarray] = None

    @property
    def doppler_hz(self) -> float:
        return doppler_frequency_hz(self.speed_m_per_s, self.wavelength_m)

    @property
    def step_correlation(self) -> float:
        """ρ between consecutive samples."""
        return float(temporal_correlation(self.sample_interval_s, self.doppler_hz))

    def start(self, rng: np.random.Generator) -> np.ndarray:
        """Draw the initial realization; returns its frequency response."""
        tdl = TappedDelayLine.sample(self.n_rx, self.n_tx, self.pdp, rng)
        self._taps = tdl.taps
        return frequency_response(tdl)

    def step(self, rng: np.random.Generator) -> np.ndarray:
        """Advance one interval; returns the new frequency response."""
        if self._taps is None:
            return self.start(rng)
        self._taps = evolve_taps(self._taps, self.step_correlation, self.pdp, rng)
        return frequency_response(TappedDelayLine(pdp=self.pdp, taps=self._taps))

    def run(self, n_steps: int, rng: np.random.Generator) -> Iterator[np.ndarray]:
        """Yield ``n_steps`` successive frequency responses."""
        for _ in range(n_steps):
            yield self.step(rng)
