"""Signal-level Gray-coded square-QAM modulation and hard demapping.

Used by the signal-level validation path (QAM → OFDM → AWGN → demap →
Viterbi) that cross-checks the analytic BER formulas in
:mod:`repro.phy.ber`.  Constellations are normalized to unit average
energy, so a linear SNR of γ means noise variance 1/γ per complex symbol.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .constants import Modulation

__all__ = [
    "gray_code",
    "constellation",
    "modulate",
    "demodulate_hard",
    "awgn",
]


def gray_code(n_bits: int) -> np.ndarray:
    """The n-bit Gray sequence: gray_code(2) -> [0, 1, 3, 2]."""
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    values = np.arange(2**n_bits)
    return values ^ (values >> 1)


@lru_cache(maxsize=None)
def _pam_levels(bits_per_dim: int) -> np.ndarray:
    """Gray-labelled PAM levels indexed by the bit pattern they carry."""
    m = 2**bits_per_dim
    levels = 2 * np.arange(m) - (m - 1)  # -(m-1), ..., (m-1)
    labelled = np.empty(m, dtype=float)
    labelled[gray_code(bits_per_dim)] = levels
    return labelled


@lru_cache(maxsize=None)
def constellation(bits_per_symbol: int) -> np.ndarray:
    """Unit-energy constellation points indexed by their bit label.

    BPSK (1 bit) is real antipodal; even bit counts are square QAM with the
    first half of the bits on I and the second half on Q, each Gray-coded
    per dimension (the 802.11 mapping).
    """
    if bits_per_symbol == 1:
        return np.array([-1.0 + 0j, 1.0 + 0j])
    if bits_per_symbol % 2:
        raise ValueError("only BPSK or square QAM (even bit counts) supported")
    half = bits_per_symbol // 2
    pam = _pam_levels(half)
    labels = np.arange(2**bits_per_symbol)
    i_bits = labels >> half
    q_bits = labels & (2**half - 1)
    points = pam[i_bits] + 1j * pam[q_bits]
    energy = np.mean(np.abs(points) ** 2)
    return points / np.sqrt(energy)


def _bits_to_labels(bits: np.ndarray, bits_per_symbol: int) -> np.ndarray:
    bits = np.asarray(bits, dtype=np.int64)
    if bits.ndim != 1:
        raise ValueError("bits must be a 1-D array")
    if bits.size % bits_per_symbol:
        raise ValueError(f"bit count {bits.size} not divisible by {bits_per_symbol}")
    grouped = bits.reshape(-1, bits_per_symbol)
    weights = 2 ** np.arange(bits_per_symbol - 1, -1, -1)
    return grouped @ weights


def modulate(bits, modulation: Modulation) -> np.ndarray:
    """Map a bit array (MSB-first per symbol) to constellation symbols."""
    points = constellation(modulation.bits_per_symbol)
    return points[_bits_to_labels(bits, modulation.bits_per_symbol)]


def demodulate_hard(symbols, modulation: Modulation) -> np.ndarray:
    """Nearest-point hard demapping back to bits."""
    symbols = np.asarray(symbols, dtype=complex).ravel()
    points = constellation(modulation.bits_per_symbol)
    distances = np.abs(symbols[:, None] - points[None, :])
    labels = np.argmin(distances, axis=1)
    n_bits = modulation.bits_per_symbol
    shifts = np.arange(n_bits - 1, -1, -1)
    return ((labels[:, None] >> shifts[None, :]) & 1).astype(np.int8).ravel()


def awgn(symbols, snr_linear: float, rng: np.random.Generator) -> np.ndarray:
    """Add complex white Gaussian noise for a target per-symbol SNR."""
    if snr_linear <= 0:
        raise ValueError("snr_linear must be positive")
    symbols = np.asarray(symbols, dtype=complex)
    sigma = np.sqrt(1.0 / (2.0 * snr_linear))
    noise = sigma * (rng.standard_normal(symbols.shape) + 1j * rng.standard_normal(symbols.shape))
    return symbols + noise
