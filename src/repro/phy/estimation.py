"""Pilot-based channel estimation: where the CSI error actually comes from.

The reproduction's central imperfection — the −26 dB CSI estimation error
that limits null depth (§2.2) — is modelled statistically in
:mod:`repro.phy.noise`.  This module grounds that model at the signal
level: a receiver estimates the per-subcarrier channel from known training
symbols (802.11's LTF preamble structure) by least squares, and the
resulting estimation-error power is exactly ``noise / (pilot SNR ×
repetitions)`` — i.e. a link overheard at 30 dB SNR with 2 LTF repetitions
yields CSI at −33 dB error, matching the magnitudes the statistical model
assumes.

For MIMO links the transmitter sends one training symbol per TX antenna
with orthogonal (Hadamard) covers, as 802.11n's HT-LTFs do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .constants import N_DATA_SUBCARRIERS

__all__ = [
    "hadamard_cover",
    "training_symbols",
    "ls_estimate",
    "estimate_mimo_channel",
    "estimation_error_power",
    "EstimationResult",
]


def hadamard_cover(n_streams: int) -> np.ndarray:
    """Orthogonal cover matrix (±1) spreading TX antennas over LTF symbols.

    Returns the smallest Hadamard matrix of order ≥ n_streams, truncated to
    n_streams columns: ``P[t, a]`` is antenna a's sign on training symbol t.
    Orders 1, 2 and powers of two are supported (802.11n uses order 4).
    """
    if n_streams < 1:
        raise ValueError("need at least one stream")
    order = 1
    while order < n_streams:
        order *= 2
    h = np.array([[1.0]])
    while h.shape[0] < order:
        h = np.block([[h, h], [h, -h]])
    return h[:, :n_streams]


def training_symbols(n_subcarriers: int = N_DATA_SUBCARRIERS, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """A known unit-magnitude training sequence (BPSK-like, as the LTF)."""
    if rng is None:
        signs = np.where(np.arange(n_subcarriers) % 2 == 0, 1.0, -1.0)
    else:
        signs = rng.choice([-1.0, 1.0], size=n_subcarriers)
    return signs.astype(complex)


def ls_estimate(received: np.ndarray, pilots: np.ndarray) -> np.ndarray:
    """Least-squares single-antenna estimate: H = y / x per subcarrier."""
    received = np.asarray(received, dtype=complex)
    pilots = np.asarray(pilots, dtype=complex)
    if received.shape != pilots.shape:
        raise ValueError("received and pilot shapes must match")
    return received / pilots


@dataclass(frozen=True)
class EstimationResult:
    """A MIMO channel estimate plus its realized error statistics."""

    estimate: np.ndarray
    #: Mean squared error per entry.
    error_power: float
    #: Error power relative to the channel's mean entry power (linear).
    relative_error: float

    @property
    def relative_error_db(self) -> float:
        return float(10.0 * np.log10(max(self.relative_error, 1e-30)))


def estimate_mimo_channel(
    true_channel: np.ndarray,
    pilot_power: float,
    noise_power: float,
    rng: np.random.Generator,
    n_repetitions: int = 1,
) -> EstimationResult:
    """Estimate an (n_sc, n_rx, n_tx) channel from simulated HT-LTFs.

    The transmitter sends ``n_tx × n_repetitions`` training symbols with a
    Hadamard cover at ``pilot_power`` total per subcarrier (split across
    antennas); the receiver observes them in AWGN of ``noise_power`` per
    antenna and solves least squares by applying the inverse cover.
    """
    true_channel = np.asarray(true_channel, dtype=complex)
    n_sc, n_rx, n_tx = true_channel.shape
    if pilot_power <= 0 or noise_power < 0:
        raise ValueError("pilot_power must be positive, noise_power non-negative")

    cover = hadamard_cover(n_tx)  # (n_ltf, n_tx)
    n_ltf = cover.shape[0]
    pilots = training_symbols(n_sc)
    amplitude = np.sqrt(pilot_power / n_tx)

    accumulated = np.zeros((n_sc, n_rx, n_tx), dtype=complex)
    for _ in range(n_repetitions):
        # received[t] = H @ (cover[t] * pilot) + noise, per subcarrier.
        estimates_t = np.zeros((n_ltf, n_sc, n_rx), dtype=complex)
        for t in range(n_ltf):
            tx_vector = amplitude * cover[t] * pilots[:, None]  # (n_sc, n_tx)
            clean = np.einsum("krt,kt->kr", true_channel, tx_vector)
            noise = np.sqrt(noise_power / 2.0) * (
                rng.standard_normal((n_sc, n_rx)) + 1j * rng.standard_normal((n_sc, n_rx))
            )
            estimates_t[t] = clean + noise
        # Invert the cover: H_hat[:, :, a] = (1/n_ltf) Σ_t cover[t, a] y_t / pilot.
        descrambled = estimates_t / pilots[None, :, None]
        for a in range(n_tx):
            projection = np.tensordot(cover[:, a], descrambled, axes=(0, 0)) / n_ltf
            accumulated[:, :, a] += projection / amplitude
    estimate = accumulated / n_repetitions

    error = estimate - true_channel
    error_power = float(np.mean(np.abs(error) ** 2))
    mean_power = float(np.mean(np.abs(true_channel) ** 2))
    relative = error_power / mean_power if mean_power > 0 else np.inf
    return EstimationResult(estimate=estimate, error_power=error_power, relative_error=relative)


def estimation_error_power(
    pilot_power: float, noise_power: float, n_tx: int, n_ltf: Optional[int] = None, n_repetitions: int = 1
) -> float:
    """Predicted per-entry MSE of the LS estimator.

    Each entry averages ``n_ltf × n_repetitions`` observations, each with
    noise ``noise_power`` against a per-antenna pilot amplitude of
    ``sqrt(pilot_power / n_tx)``:

        MSE = noise_power · n_tx / (pilot_power · n_ltf · n_repetitions)
    """
    if n_ltf is None:
        n_ltf = hadamard_cover(n_tx).shape[0]
    return noise_power * n_tx / (pilot_power * n_ltf * n_repetitions)
