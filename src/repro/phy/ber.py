"""Uncoded bit-error-rate of 802.11's Gray-coded constellations vs. SINR.

The paper (§4.1) predicts throughput from measured SINRs via the
Halperin-style pipeline: per-subcarrier SINR → uncoded BER for each 802.11n
modulation → coded BER for each convolutional rate → frame error rate.
This module is the first stage.  SINRs are per-symbol (Es/N0) linear
ratios, which is what the MMSE receiver of :mod:`repro.phy.mimo` returns.
"""

from __future__ import annotations

import numpy as np

from ..util import q_function
from .constants import BPSK, QPSK, QAM16, QAM64, Modulation

__all__ = ["uncoded_ber", "MAX_BER"]

#: A random guess is wrong half the time; BER is clamped here.
MAX_BER = 0.5


def _square_qam_ber(snr: np.ndarray, points: int) -> np.ndarray:
    """Two-term union-bound BER of Gray-coded square M-QAM on AWGN.

    Standard approximation: with d = sqrt(3·γ / (M − 1)),
        Pb ≈ (4/k)·(1 − 1/√M)·Q(d) + (4/k)·(1 − 2/√M)·Q(3d)
    accurate to a few percent over the SNR range where these rates are
    usable (validated against the signal-level demapper in the test suite).
    """
    k = np.log2(points)
    root_m = np.sqrt(points)
    d = np.sqrt(3.0 * snr / (points - 1.0))
    ber = (4.0 / k) * (1.0 - 1.0 / root_m) * q_function(d)
    ber += (4.0 / k) * (1.0 - 2.0 / root_m) * q_function(3.0 * d)
    return ber


def uncoded_ber(snr_linear, modulation: Modulation) -> np.ndarray:
    """Uncoded BER for a linear per-symbol SNR (array-valued).

    BPSK/QPSK use the exact expressions; 16/64-QAM the standard two-term
    approximation.  Values are clamped to [0, 0.5]; non-positive SNR yields
    0.5 (an unusable subcarrier).
    """
    snr = np.asarray(snr_linear, dtype=float)
    snr = np.maximum(snr, 0.0)
    if modulation == BPSK:
        ber = q_function(np.sqrt(2.0 * snr))
    elif modulation == QPSK:
        ber = q_function(np.sqrt(snr))
    elif modulation in (QAM16, QAM64):
        ber = _square_qam_ber(snr, modulation.points)
    else:
        raise ValueError(f"unsupported modulation: {modulation!r}")
    return np.clip(ber, 0.0, MAX_BER)
