"""802.11n rate selection: pick the MCS that maximizes predicted goodput.

Because a Wi-Fi sender must use one modulation and one convolutional code
across every subcarrier and stream of a transmission ("current hardware
constrains us to using a single decoder at the receiver", §3.2), the rate
decision couples all subcarriers: the weakest ones drive the channel BER
the decoder sees, so a handful of faded subcarriers can force the whole
link down to a low MCS.  That coupling is precisely the problem COPA's
subcarrier dropping attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..util import masked_row_means
from .ber import uncoded_ber
from .coding import coded_ber, frame_error_rate
from .constants import MCS_TABLE, MPDU_PAYLOAD_BYTES, N_DATA_SUBCARRIERS, Mcs

__all__ = [
    "RateSelection",
    "BatchRateSelection",
    "evaluate_mcs",
    "evaluate_mcs_batch",
    "best_rate",
    "best_rate_batch",
]


@dataclass(frozen=True)
class RateSelection:
    """Outcome of rate selection for one transmission."""

    mcs: Optional[Mcs]
    #: Expected PHY-layer goodput in bit/s, before MAC/airtime overheads.
    goodput_bps: float
    #: Frame (MPDU) error rate at the chosen MCS.
    fer: float
    #: Mean uncoded BER the decoder sees at the chosen MCS.
    channel_ber: float
    #: Number of used (subcarrier, stream) cells out of 52 × n_streams.
    n_used: int

    @property
    def rate_mbps(self) -> float:
        return self.goodput_bps / 1e6


_ZERO = RateSelection(mcs=None, goodput_bps=0.0, fer=1.0, channel_ber=0.5, n_used=0)


def _as_2d(sinr) -> np.ndarray:
    sinr = np.asarray(sinr, dtype=float)
    if sinr.ndim == 1:
        sinr = sinr[:, None]
    if sinr.ndim != 2:
        raise ValueError("sinr must have shape (n_subcarriers,) or (n_subcarriers, n_streams)")
    return sinr


def evaluate_mcs(
    sinr_linear,
    mcs: Mcs,
    used=None,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
) -> RateSelection:
    """Predicted goodput for a specific MCS.

    ``sinr_linear`` has shape (n_subcarriers, n_streams) (a 1-D array is
    treated as one stream); ``used`` is an optional boolean mask of the
    same shape — dropped cells carry no data and contribute nothing to the
    decoder's BER.  The PHY rate scales with the fraction of used cells,
    so e.g. two full streams give 2× the single-stream MCS rate.
    """
    sinr = _as_2d(sinr_linear)
    if used is None:
        mask = np.ones(sinr.shape, dtype=bool)
    else:
        mask = np.asarray(used, dtype=bool)
        if mask.ndim == 1:
            mask = mask[:, None]
        if mask.shape != sinr.shape:
            raise ValueError(f"used mask shape {mask.shape} != sinr shape {sinr.shape}")
    n_used = int(mask.sum())
    if n_used == 0:
        return _ZERO

    bers = uncoded_ber(sinr[mask], mcs.modulation)
    channel_ber = float(np.mean(bers))
    post = float(coded_ber(channel_ber, mcs.code_rate))
    fer = float(frame_error_rate(post, payload_bytes * 8))
    phy_rate = mcs.rate_bps * n_used / N_DATA_SUBCARRIERS
    goodput = phy_rate * (1.0 - fer)
    return RateSelection(mcs=mcs, goodput_bps=goodput, fer=fer, channel_ber=channel_ber, n_used=n_used)


def best_rate(
    sinr_linear,
    used=None,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
    mcs_table: Sequence[Mcs] = MCS_TABLE,
) -> RateSelection:
    """The goodput-maximizing MCS for the given per-cell SINRs."""
    best = _ZERO
    for mcs in mcs_table:
        candidate = evaluate_mcs(sinr_linear, mcs, used, payload_bytes)
        if candidate.goodput_bps > best.goodput_bps:
            best = candidate
    return best


@dataclass
class BatchRateSelection:
    """Rate selections for a batch of independent transmissions.

    Struct-of-arrays counterpart of :class:`RateSelection`: row ``b``
    materialized via :meth:`row` equals the serial result bit for bit.
    ``mcs_index`` of ``-1`` encodes the no-viable-MCS sentinel
    (:data:`_ZERO`).
    """

    #: (n_rows,) chosen MCS table index; -1 means no MCS works.
    mcs_index: np.ndarray
    #: (n_rows,) expected PHY-layer goodput in bit/s.
    goodput_bps: np.ndarray
    #: (n_rows,) frame error rate at the chosen MCS.
    fer: np.ndarray
    #: (n_rows,) mean uncoded BER the decoder sees.
    channel_ber: np.ndarray
    #: (n_rows,) used-cell counts.
    n_used: np.ndarray

    def row(self, b: int, mcs_table: Sequence[Mcs] = MCS_TABLE) -> RateSelection:
        index = int(self.mcs_index[b])
        if index < 0:
            return _ZERO
        mcs = next(m for m in mcs_table if m.index == index)
        return RateSelection(
            mcs=mcs,
            goodput_bps=float(self.goodput_bps[b]),
            fer=float(self.fer[b]),
            channel_ber=float(self.channel_ber[b]),
            n_used=int(self.n_used[b]),
        )


def _as_batch_2d(sinr, used):
    """Normalize batched inputs to (n_rows, n_cells), flattening row-major."""
    sinr = np.asarray(sinr, dtype=float)
    if sinr.ndim < 2:
        raise ValueError("batched sinr must have at least 2 dimensions (n_rows leading)")
    n_rows = sinr.shape[0]
    flat_sinr = sinr.reshape(n_rows, -1)
    if used is None:
        mask = np.ones(flat_sinr.shape, dtype=bool)
    else:
        mask = np.asarray(used, dtype=bool)
        if mask.shape != sinr.shape:
            raise ValueError(f"used mask shape {mask.shape} != sinr shape {sinr.shape}")
        mask = mask.reshape(n_rows, -1)
    return flat_sinr, mask


def evaluate_mcs_batch(
    sinr_linear,
    mcs: Mcs,
    used=None,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
):
    """Batched :func:`evaluate_mcs`: one row per transmission.

    ``sinr_linear``/``used`` carry a leading row axis; trailing axes are
    flattened row-major exactly like the serial masking does.  Returns
    ``(goodput, fer, channel_ber, n_used)`` arrays; rows with no used
    cells get the :data:`_ZERO` values.  The decoder's channel BER — the
    one masked, order-sensitive mean — is computed per row with
    :func:`repro.util.masked_row_means`, preserving bit-identity.
    """
    flat_sinr, mask = _as_batch_2d(sinr_linear, used)
    n_used = mask.sum(axis=1)
    empty = n_used == 0
    bers = uncoded_ber(flat_sinr, mcs.modulation)
    channel_ber = masked_row_means(bers, mask, fill=0.5)
    # The coded-BER chain is safe to vectorize because coding.py routes
    # scalar inputs through a 1-element array: scalar (serial) and batched
    # evaluations share one ufunc code path, bit for bit.
    post = coded_ber(channel_ber, mcs.code_rate)
    fer = frame_error_rate(post, payload_bytes * 8)
    phy_rate = mcs.rate_bps * n_used / N_DATA_SUBCARRIERS
    goodput = phy_rate * (1.0 - fer)
    return (
        np.where(empty, 0.0, goodput),
        np.where(empty, 1.0, fer),
        channel_ber,
        n_used,
    )


def best_rate_batch(
    sinr_linear,
    used=None,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
    mcs_table: Sequence[Mcs] = MCS_TABLE,
) -> BatchRateSelection:
    """Batched :func:`best_rate`, bit-identical per row."""
    flat_sinr, mask = _as_batch_2d(sinr_linear, used)
    n_rows = flat_sinr.shape[0]
    best = BatchRateSelection(
        mcs_index=np.full(n_rows, -1),
        goodput_bps=np.zeros(n_rows),
        fer=np.ones(n_rows),
        channel_ber=np.full(n_rows, 0.5),
        n_used=np.zeros(n_rows, dtype=int),
    )
    for mcs in mcs_table:
        goodput, fer, channel_ber, n_used = evaluate_mcs_batch(
            flat_sinr, mcs, mask, payload_bytes
        )
        improved = goodput > best.goodput_bps
        best = BatchRateSelection(
            mcs_index=np.where(improved, mcs.index, best.mcs_index),
            goodput_bps=np.where(improved, goodput, best.goodput_bps),
            fer=np.where(improved, fer, best.fer),
            channel_ber=np.where(improved, channel_ber, best.channel_ber),
            n_used=np.where(improved, n_used, best.n_used),
        )
    return best
