"""802.11n rate selection: pick the MCS that maximizes predicted goodput.

Because a Wi-Fi sender must use one modulation and one convolutional code
across every subcarrier and stream of a transmission ("current hardware
constrains us to using a single decoder at the receiver", §3.2), the rate
decision couples all subcarriers: the weakest ones drive the channel BER
the decoder sees, so a handful of faded subcarriers can force the whole
link down to a low MCS.  That coupling is precisely the problem COPA's
subcarrier dropping attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .ber import uncoded_ber
from .coding import coded_ber, frame_error_rate
from .constants import MCS_TABLE, MPDU_PAYLOAD_BYTES, N_DATA_SUBCARRIERS, Mcs

__all__ = ["RateSelection", "evaluate_mcs", "best_rate"]


@dataclass(frozen=True)
class RateSelection:
    """Outcome of rate selection for one transmission."""

    mcs: Optional[Mcs]
    #: Expected PHY-layer goodput in bit/s, before MAC/airtime overheads.
    goodput_bps: float
    #: Frame (MPDU) error rate at the chosen MCS.
    fer: float
    #: Mean uncoded BER the decoder sees at the chosen MCS.
    channel_ber: float
    #: Number of used (subcarrier, stream) cells out of 52 × n_streams.
    n_used: int

    @property
    def rate_mbps(self) -> float:
        return self.goodput_bps / 1e6


_ZERO = RateSelection(mcs=None, goodput_bps=0.0, fer=1.0, channel_ber=0.5, n_used=0)


def _as_2d(sinr) -> np.ndarray:
    sinr = np.asarray(sinr, dtype=float)
    if sinr.ndim == 1:
        sinr = sinr[:, None]
    if sinr.ndim != 2:
        raise ValueError("sinr must have shape (n_subcarriers,) or (n_subcarriers, n_streams)")
    return sinr


def evaluate_mcs(
    sinr_linear,
    mcs: Mcs,
    used=None,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
) -> RateSelection:
    """Predicted goodput for a specific MCS.

    ``sinr_linear`` has shape (n_subcarriers, n_streams) (a 1-D array is
    treated as one stream); ``used`` is an optional boolean mask of the
    same shape — dropped cells carry no data and contribute nothing to the
    decoder's BER.  The PHY rate scales with the fraction of used cells,
    so e.g. two full streams give 2× the single-stream MCS rate.
    """
    sinr = _as_2d(sinr_linear)
    if used is None:
        mask = np.ones(sinr.shape, dtype=bool)
    else:
        mask = np.asarray(used, dtype=bool)
        if mask.ndim == 1:
            mask = mask[:, None]
        if mask.shape != sinr.shape:
            raise ValueError(f"used mask shape {mask.shape} != sinr shape {sinr.shape}")
    n_used = int(mask.sum())
    if n_used == 0:
        return _ZERO

    bers = uncoded_ber(sinr[mask], mcs.modulation)
    channel_ber = float(np.mean(bers))
    post = float(coded_ber(channel_ber, mcs.code_rate))
    fer = float(frame_error_rate(post, payload_bytes * 8))
    phy_rate = mcs.rate_bps * n_used / N_DATA_SUBCARRIERS
    goodput = phy_rate * (1.0 - fer)
    return RateSelection(mcs=mcs, goodput_bps=goodput, fer=fer, channel_ber=channel_ber, n_used=n_used)


def best_rate(
    sinr_linear,
    used=None,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
    mcs_table: Sequence[Mcs] = MCS_TABLE,
) -> RateSelection:
    """The goodput-maximizing MCS for the given per-cell SINRs."""
    best = _ZERO
    for mcs in mcs_table:
        candidate = evaluate_mcs(sinr_linear, mcs, used, payload_bytes)
        if candidate.goodput_bps > best.goodput_bps:
            best = candidate
    return best
