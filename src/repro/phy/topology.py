"""Indoor topology generation: node placement, path loss, shadowing.

The paper evaluates 30 hand-placed topologies in an office building, chosen
so the signal of interest is usually (not always) stronger than the
interference, with a handful of deliberately-obstructed links (a metal
filing cabinet in the line of sight).  Figure 9 scatters each receiver's
signal power against its interference power: signal spans roughly −70 to
−30 dBm with most points below the x = y line.

We reproduce that distribution with a log-distance path-loss model on
randomly placed AP/client pairs in a rectangular floor, log-normal
shadowing, and a configurable probability of an obstructed link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .constants import TX_POWER_DBM
from ..util import dbm_to_mw, mw_to_dbm

__all__ = [
    "PathLossModel",
    "Node",
    "Topology",
    "TopologyGenerator",
]


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss: PL(d) = pl0 + 10·n·log10(d / 1 m) + X_shadow."""

    #: Path loss at the 1 m reference distance (free space at 2.4 GHz ≈ 40 dB).
    pl0_db: float = 40.0
    #: Path-loss exponent; ~3.1 fits office environments with interior walls.
    exponent: float = 3.1
    #: Standard deviation of log-normal shadowing.
    shadowing_sigma_db: float = 4.0
    #: Extra attenuation of an obstructed (blocked line-of-sight) link.
    obstruction_db: float = 12.0

    def path_loss_db(self, distance_m: float, shadowing_db: float = 0.0, obstructed: bool = False) -> float:
        """Total path loss for one link."""
        if distance_m <= 0:
            raise ValueError("distance must be positive")
        distance_m = max(distance_m, 1.0)
        loss = self.pl0_db + 10.0 * self.exponent * np.log10(distance_m) + shadowing_db
        if obstructed:
            loss += self.obstruction_db
        return float(loss)


@dataclass(frozen=True)
class Node:
    """One radio: an AP or a client, at a planar position."""

    name: str
    position_m: Tuple[float, float]
    n_antennas: int

    def distance_to(self, other: "Node") -> float:
        dx = self.position_m[0] - other.position_m[0]
        dy = self.position_m[1] - other.position_m[1]
        return float(np.hypot(dx, dy))


@dataclass
class Topology:
    """N AP/client pairs plus the average received power of every link.

    ``link_gain_db[(a, b)]`` is the mean channel gain in dB (i.e. minus the
    path loss) from node ``a`` to node ``b``; the channel layer multiplies
    the small-scale fading by this.  Reciprocity holds: the gain is stored
    once per unordered pair.
    """

    aps: List[Node]
    clients: List[Node]
    link_gain_db: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def gain_db(self, a: str, b: str) -> float:
        """Mean gain between two nodes by name (order-insensitive)."""
        if (a, b) in self.link_gain_db:
            return self.link_gain_db[(a, b)]
        if (b, a) in self.link_gain_db:
            return self.link_gain_db[(b, a)]
        raise KeyError(f"no link between {a!r} and {b!r}")

    def mean_rx_power_dbm(self, a: str, b: str, tx_power_dbm: float = TX_POWER_DBM) -> float:
        """Mean received power for a transmission at ``tx_power_dbm``."""
        return tx_power_dbm + self.gain_db(a, b)

    def signal_and_interference_dbm(self, tx_power_dbm: float = TX_POWER_DBM):
        """Figure 9's quantities: per client, (signal dBm, interference dBm).

        Signal is from the client's own AP, interference the aggregate
        over every other AP, all at full, equally-split transmit power.
        """
        pairs = []
        for i, client in enumerate(self.clients):
            own_ap = self.aps[i]
            others = [ap for j, ap in enumerate(self.aps) if j != i]
            signal = self.mean_rx_power_dbm(own_ap.name, client.name, tx_power_dbm)
            if len(others) == 1:
                # Avoid the dBm -> mW -> dBm round trip for the paper's
                # 2-AP topologies so the historical values stay exact.
                interference = self.mean_rx_power_dbm(others[0].name, client.name, tx_power_dbm)
            else:
                total_mw = sum(
                    dbm_to_mw(self.mean_rx_power_dbm(ap.name, client.name, tx_power_dbm))
                    for ap in others
                )
                interference = float(mw_to_dbm(total_mw))
            pairs.append((signal, interference))
        return pairs


@dataclass
class TopologyGenerator:
    """Random office topologies shaped like the paper's testbed (Fig. 9).

    N APs (two by default, as in the paper) are dropped in a rectangular
    floor with a minimum pairwise separation; each client is placed
    within ``client_radius_m`` of its own AP (hosts are "normally, but
    not always, closer to their own AP").  Each link independently
    suffers log-normal shadowing and, with a small probability, a
    blocked line of sight.
    """

    floor_m: Tuple[float, float] = (20.0, 13.0)
    ap_min_separation_m: float = 4.5
    client_radius_m: Tuple[float, float] = (1.5, 7.0)
    obstruction_probability: float = 0.1
    path_loss: PathLossModel = field(default_factory=PathLossModel)

    @staticmethod
    def _separated(positions: List[Tuple[float, float]], min_separation: float) -> bool:
        for i in range(len(positions)):
            for j in range(i + 1, len(positions)):
                dx = positions[i][0] - positions[j][0]
                dy = positions[i][1] - positions[j][1]
                if np.hypot(dx, dy) < min_separation:
                    return False
        return True

    def _place_aps(self, rng: np.random.Generator, n_aps: int = 2) -> List[Tuple[float, float]]:
        width, height = self.floor_m
        # Joint redraw keeps the historical RNG stream for n_aps == 2 and
        # samples uniformly over valid layouts for any N.
        for _ in range(1000):
            positions = [(rng.uniform(0, width), rng.uniform(0, height)) for _ in range(n_aps)]
            if self._separated(positions, self.ap_min_separation_m):
                return positions
        # Dense deployments (many APs on a small floor) can exhaust the
        # joint redraw; fall back to greedy sequential placement, which
        # stays deterministic because it continues the same RNG stream.
        positions = []
        for _ in range(n_aps):
            for _ in range(1000):
                candidate = (rng.uniform(0, width), rng.uniform(0, height))
                if self._separated(positions + [candidate], self.ap_min_separation_m):
                    positions.append(candidate)
                    break
            else:
                raise RuntimeError("could not place APs with the requested separation")
        return positions

    def _place_client(self, ap_xy: Tuple[float, float], rng: np.random.Generator) -> Tuple[float, float]:
        width, height = self.floor_m
        r_lo, r_hi = self.client_radius_m
        for _ in range(1000):
            radius = rng.uniform(r_lo, r_hi)
            angle = rng.uniform(0, 2 * np.pi)
            x = ap_xy[0] + radius * np.cos(angle)
            y = ap_xy[1] + radius * np.sin(angle)
            if 0 <= x <= width and 0 <= y <= height:
                return (float(x), float(y))
        # Fall back to clamping inside the floor.
        return (
            float(np.clip(ap_xy[0] + r_lo, 0, width)),
            float(np.clip(ap_xy[1] + r_lo, 0, height)),
        )

    def sample(
        self,
        rng: np.random.Generator,
        ap_antennas: int = 4,
        client_antennas: int = 2,
        n_aps: int = 2,
    ) -> Topology:
        """Draw one topology with the given antenna and AP counts."""
        if n_aps < 1:
            raise ValueError("n_aps must be at least 1")
        ap_positions = self._place_aps(rng, n_aps)
        aps = [Node(f"AP{i + 1}", ap_positions[i], ap_antennas) for i in range(n_aps)]
        clients = [
            Node(f"C{i + 1}", self._place_client(ap_positions[i], rng), client_antennas)
            for i in range(n_aps)
        ]
        topology = Topology(aps=aps, clients=clients)

        nodes = aps + clients
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                shadowing = rng.normal(0.0, self.path_loss.shadowing_sigma_db)
                obstructed = rng.uniform() < self.obstruction_probability
                loss = self.path_loss.path_loss_db(a.distance_to(b), shadowing, obstructed)
                topology.link_gain_db[(a.name, b.name)] = -loss
        return topology

    def sample_many(
        self,
        n: int,
        rng: np.random.Generator,
        ap_antennas: int = 4,
        client_antennas: int = 2,
        n_aps: int = 2,
    ) -> List[Topology]:
        """Draw ``n`` independent topologies (the paper uses 30)."""
        return [self.sample(rng, ap_antennas, client_antennas, n_aps) for _ in range(n)]
