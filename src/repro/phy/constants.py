"""802.11n PHY/MAC numerology used throughout the reproduction.

Values follow the 20 MHz, 2.4 GHz, long-guard-interval operating point the
paper's WARP testbed uses (§4.1): 52 data subcarriers, 4 µs OFDM symbols,
800 ns cyclic prefix, 15 dBm total transmit power and the eight
single-stream HT (802.11n) bit-rates 6.5–65 Mbit/s.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Modulation",
    "Mcs",
    "MCS_TABLE",
    "N_FFT",
    "N_DATA_SUBCARRIERS",
    "N_PILOT_SUBCARRIERS",
    "SUBCARRIER_SPACING_HZ",
    "SYMBOL_DURATION_S",
    "USEFUL_SYMBOL_DURATION_S",
    "CYCLIC_PREFIX_S",
    "CHANNEL_WIDTH_HZ",
    "CARRIER_FREQUENCY_HZ",
    "CARRIER_WAVELENGTH_M",
    "TX_POWER_DBM",
    "NOISE_FLOOR_DBM",
    "SLOT_TIME_S",
    "SIFS_S",
    "DIFS_S",
    "CW_MIN",
    "CW_MAX",
    "TXOP_DURATION_S",
    "PLCP_PREAMBLE_HT_S",
    "PLCP_PREAMBLE_LEGACY_S",
    "BASIC_RATE_BPS",
    "ACK_BYTES",
    "CTS_BYTES",
    "RTS_BYTES",
    "MPDU_PAYLOAD_BYTES",
    "phy_rate_bps",
]

# ---------------------------------------------------------------------------
# OFDM numerology (802.11n HT20).
# ---------------------------------------------------------------------------

#: FFT size of a 20 MHz 802.11n channel.
N_FFT = 64
#: Data subcarriers per OFDM symbol (HT20: 52 data + 4 pilots).
N_DATA_SUBCARRIERS = 52
#: Pilot subcarriers per OFDM symbol.
N_PILOT_SUBCARRIERS = 4
#: Subcarrier spacing: 20 MHz / 64.
SUBCARRIER_SPACING_HZ = 312_500.0
#: Useful (FFT) portion of an OFDM symbol.
USEFUL_SYMBOL_DURATION_S = 3.2e-6
#: Long guard interval; also the synchronization budget for concurrency (§3.1).
CYCLIC_PREFIX_S = 0.8e-6
#: Total OFDM symbol duration with long GI.
SYMBOL_DURATION_S = USEFUL_SYMBOL_DURATION_S + CYCLIC_PREFIX_S
#: Occupied channel width.
CHANNEL_WIDTH_HZ = 20e6
#: 2.4 GHz band centre used by the testbed.
CARRIER_FREQUENCY_HZ = 2.437e9
#: Wavelength at the carrier (≈12.3 cm; the paper's "one radio wavelength").
CARRIER_WAVELENGTH_M = 299_792_458.0 / CARRIER_FREQUENCY_HZ

# ---------------------------------------------------------------------------
# Power budget and noise.
# ---------------------------------------------------------------------------

#: Maximum total transmit power of the WARP testbed (§4.1).
TX_POWER_DBM = 15.0
#: Thermal noise floor for a 20 MHz channel (kTB at room temperature).
#: Receiver imperfections are modelled separately (CSI error, TX EVM), so
#: the noise floor itself carries no extra noise figure; calibrated so the
#: CSMA ceiling of the 4×2 scenario matches the paper's §4.3.
NOISE_FLOOR_DBM = -101.0

# ---------------------------------------------------------------------------
# 802.11 timing (OFDM PHY, 2.4 GHz 802.11n values).
# ---------------------------------------------------------------------------

SLOT_TIME_S = 9e-6
SIFS_S = 16e-6
#: DIFS = SIFS + 2 × slot.
DIFS_S = SIFS_S + 2 * SLOT_TIME_S
CW_MIN = 15
CW_MAX = 1023
#: Transmit-opportunity duration the paper uses for throughput accounting.
TXOP_DURATION_S = 4e-3
#: HT mixed-mode PLCP preamble (L-STF..HT-LTFs for up to 4 streams).
PLCP_PREAMBLE_HT_S = 36e-6
#: Legacy OFDM preamble + SIGNAL field, used for control frames.
PLCP_PREAMBLE_LEGACY_S = 20e-6
#: Basic rate used for control frames (24 Mbit/s OFDM).
BASIC_RATE_BPS = 24e6
ACK_BYTES = 14
CTS_BYTES = 14
RTS_BYTES = 20
#: MPDU payload size used for frame-error-rate accounting.
MPDU_PAYLOAD_BYTES = 1500

# ---------------------------------------------------------------------------
# Modulation and coding schemes.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Modulation:
    """A square-QAM constellation used by 802.11."""

    name: str
    #: Bits carried per subcarrier per OFDM symbol.
    bits_per_symbol: int
    #: Constellation size (2 ** bits_per_symbol).
    points: int


BPSK = Modulation("BPSK", 1, 2)
QPSK = Modulation("QPSK", 2, 4)
QAM16 = Modulation("16-QAM", 4, 16)
QAM64 = Modulation("64-QAM", 6, 64)

MODULATIONS = (BPSK, QPSK, QAM16, QAM64)


@dataclass(frozen=True)
class Mcs:
    """One 802.11n modulation-and-coding scheme (single spatial stream)."""

    index: int
    modulation: Modulation
    #: Convolutional code rate as a (numerator, denominator) pair.
    code_rate: tuple
    #: Nominal PHY rate in bit/s over all 52 data subcarriers, long GI.
    rate_bps: float

    @property
    def code_rate_float(self) -> float:
        return self.code_rate[0] / self.code_rate[1]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MCS{self.index} ({self.modulation.name} "
            f"{self.code_rate[0]}/{self.code_rate[1]}, "
            f"{self.rate_bps / 1e6:g} Mbps)"
        )


def phy_rate_bps(modulation: Modulation, code_rate: tuple, n_subcarriers: int = N_DATA_SUBCARRIERS) -> float:
    """PHY bit-rate for one stream over ``n_subcarriers`` data subcarriers."""
    bits_per_ofdm_symbol = n_subcarriers * modulation.bits_per_symbol
    coded = bits_per_ofdm_symbol * code_rate[0] / code_rate[1]
    return coded / SYMBOL_DURATION_S


#: The eight HT20 single-stream rates: 6.5 … 65 Mbit/s.
MCS_TABLE = tuple(
    Mcs(i, modulation, code_rate, phy_rate_bps(modulation, code_rate))
    for i, (modulation, code_rate) in enumerate(
        [
            (BPSK, (1, 2)),
            (QPSK, (1, 2)),
            (QPSK, (3, 4)),
            (QAM16, (1, 2)),
            (QAM16, (3, 4)),
            (QAM64, (2, 3)),
            (QAM64, (3, 4)),
            (QAM64, (5, 6)),
        ]
    )
)
