"""Coded BER and frame-error rate of 802.11's convolutional code.

802.11 uses the industry-standard rate-1/2, constraint-length-7
convolutional code (generators 133/171 octal), punctured to rates 2/3, 3/4
and 5/6.  Following the references the paper's methodology cites ([8],
[26]), we map an uncoded (channel) BER to a post-Viterbi BER with the
hard-decision union bound over each code's distance spectrum, then to a
frame error rate for an MPDU.

The distance spectra below are the published weight enumerators
(information-bit-weight coefficients ``B_d`` starting at each code's free
distance) for the 133/171 code and its standard 802.11 puncturing patterns.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from scipy.special import comb

from .constants import MPDU_PAYLOAD_BYTES

__all__ = [
    "DISTANCE_SPECTRA",
    "pairwise_error_probability",
    "coded_ber",
    "frame_error_rate",
    "mpdu_error_rate",
]

#: code rate → (free distance, information-bit weights B_d for d = dfree, …).
DISTANCE_SPECTRA: Dict[Tuple[int, int], Tuple[int, Tuple[int, ...]]] = {
    (1, 2): (10, (36, 0, 211, 0, 1404, 0, 11633, 0, 77433, 0)),
    (2, 3): (6, (3, 70, 285, 1276, 6160, 27128, 117019)),
    (3, 4): (5, (42, 201, 1492, 10469, 62935, 379644)),
    (5, 6): (4, (92, 528, 8694, 79453, 792114)),
}

#: Above this channel BER the union bound is meaningless; decoding has failed.
_UNION_BOUND_LIMIT = 0.08

#: Binomial coefficients C(d, k) as float64, precomputed once so the hot
#: union-bound loops never re-enter scipy.  Entries are the exact floats
#: ``scipy.special.comb`` returns.
_COMB_LIMIT = 64
_COMB_TABLE = comb(
    np.arange(_COMB_LIMIT + 1)[:, None], np.arange(_COMB_LIMIT + 1)[None, :]
)


def _comb(d: int, k: int) -> float:
    if d <= _COMB_LIMIT:
        return _COMB_TABLE[d, k]
    return comb(d, k)


def _as_batch(values) -> Tuple[np.ndarray, bool]:
    """Normalize to a ≥1-d float array; flag whether the input was scalar.

    NumPy's pow ufunc rounds the last ulp differently for 0-d operands
    than for arrays, so routing scalars through a 1-element array keeps
    scalar and batched evaluations bit-identical.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim == 0:
        return array.reshape(1), True
    return array, False


def pairwise_error_probability(channel_ber, distance: int) -> np.ndarray:
    """Probability that a weight-``distance`` error event beats the decoder.

    Hard-decision Viterbi over a binary symmetric channel with crossover
    probability ``channel_ber``:

    * odd d:   P_d = Σ_{k=(d+1)/2}^{d} C(d,k) p^k (1−p)^{d−k}
    * even d:  the k = d/2 term counts half (ties broken by a fair coin).
    """
    p, scalar = _as_batch(channel_ber)
    p = np.clip(p, 0.0, 0.5)
    q = 1.0 - p
    total = np.zeros_like(p)
    if distance % 2:
        start = (distance + 1) // 2
    else:
        start = distance // 2 + 1
        half = distance // 2
        total = total + 0.5 * _comb(distance, half) * p**half * q ** (distance - half)
    for k in range(start, distance + 1):
        total = total + _comb(distance, k) * p**k * q ** (distance - k)
    total = np.clip(total, 0.0, 1.0)
    return total[0] if scalar else total


def coded_ber(channel_ber, code_rate: Tuple[int, int]) -> np.ndarray:
    """Post-Viterbi BER via the union bound over the distance spectrum.

    ``channel_ber`` is the (possibly subcarrier-averaged — the interleaver
    justifies the averaging) uncoded BER seen by the decoder.  Beyond the
    union bound's validity region the result saturates at 0.5, modelling a
    decoder in free fall.
    """
    if code_rate not in DISTANCE_SPECTRA:
        raise ValueError(f"unknown code rate {code_rate!r}")
    dfree, weights = DISTANCE_SPECTRA[code_rate]
    p, scalar = _as_batch(channel_ber)
    bound = np.zeros_like(p)
    for offset, weight in enumerate(weights):
        if weight == 0:
            continue
        bound = bound + weight * pairwise_error_probability(p, dfree + offset)
    bound = np.where(p >= _UNION_BOUND_LIMIT, 0.5, bound)
    bound = np.clip(bound, 0.0, 0.5)
    return bound[0] if scalar else bound


def frame_error_rate(post_viterbi_ber, n_payload_bits: int) -> np.ndarray:
    """Probability at least one of ``n_payload_bits`` decodes wrongly.

    Computed in log space so tiny BERs don't underflow to FER = 0 for the
    wrong reason.
    """
    ber, scalar = _as_batch(post_viterbi_ber)
    ber = np.clip(ber, 0.0, 0.5)
    with np.errstate(divide="ignore"):
        log_ok = n_payload_bits * np.log1p(-ber)
    fer = -np.expm1(log_ok)
    return fer[0] if scalar else fer


def mpdu_error_rate(channel_ber, code_rate: Tuple[int, int], payload_bytes: int = MPDU_PAYLOAD_BYTES) -> np.ndarray:
    """FER of one MPDU given the channel BER and code rate."""
    return frame_error_rate(coded_ber(channel_ber, code_rate), payload_bytes * 8)
