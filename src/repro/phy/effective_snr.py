"""Effective-SNR mapping (EESM): an alternative link-quality abstraction.

The reproduction predicts frame outcomes by averaging per-subcarrier BER
(justified by the interleaver) — the approach of the paper's reference
[8].  The other standard abstraction is the *exponential effective SNR
mapping* used in LTE/Wi-Fi system simulators:

    γ_eff = −β · ln( (1/N) Σ_k exp(−γ_k / β) ),

a β-parameterized soft-min of the per-subcarrier SNRs: deep fades drag
γ_eff down much harder than the arithmetic mean, which is exactly the
single-decoder behaviour COPA exploits.  This module provides EESM, a
rate selector built on it, and per-MCS β values in the range used by
802.11 system-level studies — so the benchmarks can check that COPA's
conclusions do not hinge on the BER-averaging choice.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .ber import uncoded_ber
from .coding import coded_ber, frame_error_rate
from .constants import MCS_TABLE, MPDU_PAYLOAD_BYTES, N_DATA_SUBCARRIERS, Mcs
from .rates import RateSelection

__all__ = ["DEFAULT_BETAS", "effective_snr", "evaluate_mcs_eesm", "best_rate_eesm"]

#: Per-MCS β (linear): grows with constellation density, as calibrated in
#: 802.11/LTE link-abstraction literature (approximate mid-range values).
DEFAULT_BETAS: Dict[int, float] = {
    0: 1.5,   # BPSK 1/2
    1: 3.0,   # QPSK 1/2
    2: 4.0,   # QPSK 3/4
    3: 7.0,   # 16-QAM 1/2
    4: 10.0,  # 16-QAM 3/4
    5: 18.0,  # 64-QAM 2/3
    6: 22.0,  # 64-QAM 3/4
    7: 28.0,  # 64-QAM 5/6
}


def effective_snr(sinr_linear, beta: float) -> float:
    """EESM: the flat-channel SNR equivalent to a selective one.

    Properties: equals the common value on a flat channel; is bounded by
    [min, mean]; β → 0 approaches the minimum (worst subcarrier rules),
    β → ∞ approaches the arithmetic mean.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    sinr = np.asarray(sinr_linear, dtype=float).ravel()
    if sinr.size == 0:
        raise ValueError("need at least one SINR value")
    # Stable log-mean-exp of −γ/β.
    scaled = -sinr / beta
    peak = scaled.max()
    mean_exp = np.exp(scaled - peak).mean()
    return float(-beta * (peak + np.log(mean_exp)))


def evaluate_mcs_eesm(
    sinr_linear,
    mcs: Mcs,
    used=None,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
    betas: Dict[int, float] = DEFAULT_BETAS,
) -> RateSelection:
    """Goodput prediction with EESM instead of BER averaging."""
    sinr = np.asarray(sinr_linear, dtype=float)
    if sinr.ndim == 1:
        sinr = sinr[:, None]
    if used is None:
        mask = np.ones(sinr.shape, dtype=bool)
    else:
        mask = np.asarray(used, dtype=bool)
        if mask.ndim == 1:
            mask = mask[:, None]
        if mask.shape != sinr.shape:
            raise ValueError(f"used mask shape {mask.shape} != sinr shape {sinr.shape}")
    n_used = int(mask.sum())
    if n_used == 0:
        return RateSelection(mcs=None, goodput_bps=0.0, fer=1.0, channel_ber=0.5, n_used=0)

    gamma_eff = effective_snr(sinr[mask], betas[mcs.index])
    ber = float(uncoded_ber(gamma_eff, mcs.modulation))
    post = float(coded_ber(ber, mcs.code_rate))
    fer = float(frame_error_rate(post, payload_bytes * 8))
    rate = mcs.rate_bps * n_used / N_DATA_SUBCARRIERS
    return RateSelection(
        mcs=mcs, goodput_bps=rate * (1.0 - fer), fer=fer, channel_ber=ber, n_used=n_used
    )


def best_rate_eesm(
    sinr_linear,
    used=None,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
    mcs_table: Sequence[Mcs] = MCS_TABLE,
    betas: Dict[int, float] = DEFAULT_BETAS,
) -> RateSelection:
    """EESM-based goodput-maximizing MCS (drop-in for ``best_rate``)."""
    best = RateSelection(mcs=None, goodput_bps=0.0, fer=1.0, channel_ber=0.5, n_used=0)
    for mcs in mcs_table:
        candidate = evaluate_mcs_eesm(sinr_linear, mcs, used, payload_bytes, betas)
        if candidate.goodput_bps > best.goodput_bps:
            best = candidate
    return best
