"""Signal-level MIMO: precoded multi-stream frames and MMSE reception.

This is the paper's core experiment reproduced at the waveform level
(§4.1): each AP transmits multiple spatial streams through per-subcarrier
precoding matrices; a client with several antennas estimates the channel
from per-antenna orthogonal training symbols (802.11n's HT-LTF scheme),
runs a per-subcarrier MMSE filter over everything it hears — intended
streams plus a concurrent interferer — and soft-decodes each stream.

Synchronization between the two senders is assumed (COPA requires
concurrent transmissions aligned within the 800 ns cyclic prefix, §3.1;
the single-stream :mod:`repro.phy.transceiver` demonstrates Schmidl–Cox
acquisition).  The tests combine two transmissions exactly as the paper's
methodology does — scaled, AGC-reverted, summed in floating point — and
verify that nulling decides whether the victim's MMSE can cope.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs.collector import Collector, active
from ..util import hermitian
from .constants import Mcs, N_DATA_SUBCARRIERS, N_FFT
from .estimation import hadamard_cover, training_symbols
from .llr import llr_demodulate
from .ofdm import CP_SAMPLES, ofdm_demodulate, ofdm_modulate
from .qam import modulate
from .viterbi import encode, puncture, viterbi_decode_soft

__all__ = ["MimoFrame", "MimoTransceiver", "MimoReception"]

#: Half-width of the frequency window that smooths the sample covariance:
#: interference covariance varies slowly across subcarriers, so averaging
#: neighbours multiplies the effective sample count.
_SMOOTHING_WINDOW = 4


def _smoothed_covariance(sample_cov: np.ndarray, window: int) -> np.ndarray:
    """Sliding-window mean over subcarriers via one cumulative sum.

    Equivalent to averaging ``sample_cov[k - window : k + window + 1]``
    per subcarrier (clipped at the band edges) without the per-``k`` loop.
    """
    n_sc = sample_cov.shape[0]
    csum = np.empty((n_sc + 1,) + sample_cov.shape[1:], dtype=sample_cov.dtype)
    csum[0] = 0.0
    np.cumsum(sample_cov, axis=0, out=csum[1:])
    k = np.arange(n_sc)
    lo = np.maximum(0, k - window)
    hi = np.minimum(n_sc, k + window + 1)
    return (csum[hi] - csum[lo]) / (hi - lo)[:, None, None]


def _mmse_equalize(
    scaled: np.ndarray,
    rx_grids: np.ndarray,
    sample_cov: np.ndarray,
    noise_variance: float,
    window: int = _SMOOTHING_WINDOW,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched per-subcarrier MMSE: filter, equalize, post-MMSE SINR.

    Stacked-linear-algebra form of :func:`_reference_mmse_equalize` (the
    retained per-``k`` loop): one ``eigh``/``inv`` call over the whole
    (n_sc, n_rx, n_rx) stack, cumulative-sum covariance smoothing, and
    vectorized gain/SINR extraction.  ``scaled`` is the power-scaled
    effective channel (n_sc, n_rx, n_streams); ``rx_grids`` the received
    frequency grids (n_rx, n_symbols, n_sc); ``sample_cov`` the raw
    per-subcarrier sample covariance (n_sc, n_rx, n_rx).  Returns
    ``(estimates, sinr)`` shaped (n_streams, n_symbols, n_sc) and
    (n_sc, n_streams).
    """
    n_rx = rx_grids.shape[0]
    smoothed = _smoothed_covariance(sample_cov, window)
    a_h = hermitian(scaled)
    model_cov = scaled @ a_h + noise_variance * np.eye(n_rx)
    # Excess covariance = interference the model doesn't know about;
    # clip it to positive semidefinite to reject sampling noise.
    excess = smoothed - model_cov
    values, vectors = np.linalg.eigh(0.5 * (excess + hermitian(excess)))
    values = np.clip(values - 0.5 * noise_variance, 0.0, None)
    interference_cov = (vectors * values[:, None, :]) @ hermitian(vectors)
    inverse = np.linalg.inv(model_cov + interference_cov)
    w = a_h @ inverse  # (n_sc, n_streams, n_rx)
    z = w @ rx_grids.transpose(2, 0, 1)  # (n_sc, n_streams, n_symbols)
    gain = np.einsum("ksr,krs->ks", w, scaled).real
    ok = np.abs(gain) >= 1e-12
    safe = np.where(ok, gain, 1.0)
    estimates = np.where(ok[:, :, None], z / safe[:, :, None], 0.0)
    # Post-MMSE SINR: γ = q / (1 − q) with q = aᴴ R_tot⁻¹ a.
    clipped = np.minimum(safe, 1.0 - 1e-9)
    sinr = np.where(ok, np.maximum(clipped / (1.0 - clipped), 0.0), 0.0)
    return estimates.transpose(1, 2, 0), sinr


def _reference_mmse_equalize(
    scaled: np.ndarray,
    rx_grids: np.ndarray,
    sample_cov: np.ndarray,
    noise_variance: float,
    window: int = _SMOOTHING_WINDOW,
) -> Tuple[np.ndarray, np.ndarray]:
    """The original per-subcarrier MMSE loop, retained as the equivalence
    and perf baseline for :func:`_mmse_equalize` (see
    ``benchmarks/bench_phy_hotpaths.py``)."""
    n_rx = rx_grids.shape[0]
    n_symbols = rx_grids.shape[1]
    n_sc, _, n_streams = scaled.shape

    smoothed = np.empty_like(sample_cov)
    for k in range(n_sc):
        lo, hi = max(0, k - window), min(n_sc, k + window + 1)
        smoothed[k] = sample_cov[lo:hi].mean(axis=0)

    sinr = np.zeros((n_sc, n_streams))
    estimates = np.zeros((n_streams, n_symbols, n_sc), dtype=complex)
    eye = np.eye(n_rx)
    for k in range(n_sc):
        a = scaled[k]  # (n_rx, n_streams)
        y = rx_grids[:, :, k]  # (n_rx, n_symbols)
        model_cov = a @ hermitian(a) + noise_variance * eye
        excess = smoothed[k] - model_cov
        values, vectors = np.linalg.eigh(0.5 * (excess + hermitian(excess)))
        values = np.clip(values - 0.5 * noise_variance, 0.0, None)
        interference_cov = (vectors * values) @ hermitian(vectors)
        covariance = model_cov + interference_cov
        inverse = np.linalg.inv(covariance)
        w = hermitian(a) @ inverse  # (n_streams, n_rx)
        z = w @ y  # (n_streams, n_symbols)
        for s in range(n_streams):
            gain = (w[s] @ a[:, s]).real
            if abs(gain) < 1e-12:
                continue
            estimates[s, :, k] = z[s] / gain
            gain = min(gain, 1.0 - 1e-9)
            sinr[k, s] = max(gain / (1.0 - gain), 0.0)
    return estimates, sinr


@dataclass
class MimoFrame:
    """Per-antenna waveforms of one precoded multi-stream transmission."""

    #: (n_tx, n_samples) complex sample streams, one per TX antenna.
    antenna_samples: np.ndarray
    #: Information bits per stream.
    stream_bits: List[np.ndarray]
    #: The precoder used, (n_sc, n_tx, n_streams).
    precoder: np.ndarray
    #: Samples occupied by the training field.
    preamble_samples: int
    n_ofdm_symbols: int
    mcs: Mcs

    @property
    def n_tx(self) -> int:
        return self.antenna_samples.shape[0]

    @property
    def n_streams(self) -> int:
        return self.precoder.shape[2]


@dataclass
class MimoReception:
    """Decoded streams plus diagnostics."""

    stream_bits: List[np.ndarray]
    #: Per-stream bit-error counts (when expected bits were provided).
    bit_errors: Optional[List[int]]
    #: LS estimate of the full channel, (n_sc, n_rx, n_tx).
    channel_estimate: np.ndarray
    #: Post-MMSE SINR estimate per (subcarrier, stream).
    post_mmse_sinr: np.ndarray

    @property
    def frame_ok(self) -> bool:
        return self.bit_errors is not None and all(e == 0 for e in self.bit_errors)


def _through_channel(antenna_samples: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Propagate per-antenna streams through a time-domain MIMO channel.

    ``taps``: (n_taps, n_rx, n_tx).  Returns (n_rx, n_samples).
    """
    n_taps, n_rx, n_tx = taps.shape
    n_samples = antenna_samples.shape[1]
    received = np.zeros((n_rx, n_samples), dtype=complex)
    for rx in range(n_rx):
        for tx in range(n_tx):
            received[rx] += np.convolve(antenna_samples[tx], taps[:, rx, tx])[:n_samples]
    return received


class MimoTransceiver:
    """Builds and decodes precoded multi-stream frames.

    The preamble sends ``n_ltf`` training symbols (one Hadamard cover
    column per TX antenna) so the receiver can estimate the *physical*
    channel H; the precoder is known to the receiver (in COPA it rides in
    the ITS ACK), so the effective channel is H @ W.
    """

    def __init__(
        self,
        mcs: Mcs,
        n_ofdm_symbols: int = 12,
        n_subcarriers: int = N_DATA_SUBCARRIERS,
        collector: Optional[Collector] = None,
    ):
        self.mcs = mcs
        self.n_ofdm_symbols = n_ofdm_symbols
        self.n_subcarriers = n_subcarriers
        #: Observability handle; when enabled, :meth:`receive` records
        #: ``phy.mmse.frame_us`` / ``phy.viterbi.decode_us`` histograms and
        #: per-stage spans.  ``None`` resolves to the shared no-op.
        self.collector = active(collector)

    # ------------------------------------------------------------------

    def _preamble(self, n_tx: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-antenna training waveforms and the cover used."""
        cover = hadamard_cover(n_tx)  # (n_ltf, n_tx)
        pilots = training_symbols(self.n_subcarriers)
        n_ltf = cover.shape[0]
        symbol_len = N_FFT + CP_SAMPLES
        waves = np.zeros((n_tx, n_ltf * symbol_len), dtype=complex)
        for t in range(n_ltf):
            for antenna in range(n_tx):
                grid = (cover[t, antenna] * pilots)[None, :]
                waves[antenna, t * symbol_len : (t + 1) * symbol_len] = ofdm_modulate(grid)[0]
        return waves, cover

    def transmit(
        self,
        precoder: np.ndarray,
        powers: np.ndarray,
        rng: np.random.Generator,
    ) -> MimoFrame:
        """Encode independent random bits per stream and precode them.

        ``precoder``: (n_sc, n_tx, n_streams) unit-column matrices;
        ``powers``: (n_sc, n_streams) per-stream subcarrier powers (zero
        drops the subcarrier for that stream).
        """
        precoder = np.asarray(precoder, dtype=complex)
        powers = np.asarray(powers, dtype=float)
        n_sc, n_tx, n_streams = precoder.shape
        if powers.shape != (n_sc, n_streams):
            raise ValueError(f"powers shape {powers.shape} != {(n_sc, n_streams)}")
        if n_sc != self.n_subcarriers:
            raise ValueError("precoder subcarrier count mismatch")

        bits_per_symbol = self.mcs.modulation.bits_per_symbol
        num, den = self.mcs.code_rate
        stream_bits: List[np.ndarray] = []
        stream_grids = np.zeros((n_streams, self.n_ofdm_symbols, n_sc), dtype=complex)
        for s in range(n_streams):
            used = powers[:, s] > 0
            n_used = int(used.sum())
            coded_bits = n_used * bits_per_symbol * self.n_ofdm_symbols
            info_bits = coded_bits * num // den
            info = rng.integers(0, 2, info_bits).astype(np.int8)
            stream_bits.append(info)
            if info_bits == 0:
                continue
            coded = puncture(encode(info), self.mcs.code_rate)[:coded_bits]
            symbols = modulate(coded, self.mcs.modulation).reshape(self.n_ofdm_symbols, n_used)
            stream_grids[s][:, used] = symbols
            stream_grids[s] *= np.sqrt(powers[:, s])[None, :]

        # Per-antenna frequency grids: x_a[k] = Σ_s W[k, a, s] · x_s[k].
        preamble, _ = self._preamble(n_tx)
        antenna_waves = []
        for antenna in range(n_tx):
            grid = np.zeros((self.n_ofdm_symbols, n_sc), dtype=complex)
            for s in range(n_streams):
                grid += precoder[:, antenna, s][None, :] * stream_grids[s]
            data = ofdm_modulate(grid).ravel()
            antenna_waves.append(np.concatenate([preamble[antenna], data]))
        return MimoFrame(
            antenna_samples=np.asarray(antenna_waves),
            stream_bits=stream_bits,
            precoder=precoder,
            preamble_samples=preamble.shape[1],
            n_ofdm_symbols=self.n_ofdm_symbols,
            mcs=self.mcs,
        )

    # ------------------------------------------------------------------

    def propagate(self, frame: MimoFrame, taps: np.ndarray) -> np.ndarray:
        """Convenience: run a frame's antennas through a MIMO channel."""
        return _through_channel(frame.antenna_samples, taps)

    def receive(
        self,
        rx_samples: np.ndarray,
        frame: MimoFrame,
        powers: np.ndarray,
        noise_variance: float,
        expected: bool = True,
    ) -> MimoReception:
        """Estimate, MMSE-equalize and decode all streams.

        ``rx_samples``: (n_rx, n_samples) as produced by :meth:`propagate`
        (possibly plus an interferer and noise).  The receiver knows the
        frame format, the precoder and the power allocation (COPA signals
        them); it estimates the physical channel itself.
        """
        rx_samples = np.asarray(rx_samples)
        n_rx = rx_samples.shape[0]
        n_tx = frame.n_tx
        n_streams = frame.n_streams
        n_sc = self.n_subcarriers
        powers = np.asarray(powers, dtype=float)
        symbol_len = N_FFT + CP_SAMPLES

        # --- channel estimation from the Hadamard-covered LTFs ---
        cover = hadamard_cover(n_tx)
        n_ltf = cover.shape[0]
        pilots = training_symbols(n_sc)
        ltf_grids = np.stack(
            [
                ofdm_demodulate(rx_samples[r, : n_ltf * symbol_len].reshape(n_ltf, symbol_len))
                for r in range(n_rx)
            ]
        )  # (n_rx, n_ltf, n_sc)
        channel = np.zeros((n_sc, n_rx, n_tx), dtype=complex)
        descrambled = ltf_grids / pilots[None, None, :]
        for antenna in range(n_tx):
            projection = np.einsum("t,rtk->rk", cover[:, antenna], descrambled) / n_ltf
            channel[:, :, antenna] = projection.T

        # --- data demodulation ---
        data = rx_samples[:, frame.preamble_samples :]
        n_data_samples = frame.n_ofdm_symbols * symbol_len
        if data.shape[1] < n_data_samples:
            raise ValueError("truncated MIMO frame")
        rx_grids = np.stack(
            [
                ofdm_demodulate(data[r, :n_data_samples].reshape(frame.n_ofdm_symbols, symbol_len))
                for r in range(n_rx)
            ]
        )  # (n_rx, n_symbols, n_sc)

        # --- per-subcarrier MMSE over the effective channel ---
        # The total covariance is estimated *empirically* from the received
        # data symbols (plus the model floor as diagonal loading), so
        # unknown concurrent interference is suppressed to the extent the
        # receiver's antennas allow — exactly what a real MMSE front end
        # does, and what makes an unnulled 2-stream interferer fatal for a
        # 2-antenna client (§3.4).
        effective = channel @ frame.precoder  # (n_sc, n_rx, n_streams)
        scaled = effective * np.sqrt(powers)[:, None, :]
        n_symbols = frame.n_ofdm_symbols
        col = self.collector

        # Raw sample covariance per subcarrier; the equalizer smooths it
        # over a frequency window (the interference covariance varies
        # slowly across subcarriers, multiplying the effective sample
        # count) and runs the whole band as stacked linear algebra.
        sample_cov = np.einsum("rtk,stk->krs", rx_grids, np.conj(rx_grids)) / n_symbols
        started = time.perf_counter()
        with col.span("phy.mmse", subcarriers=n_sc, streams=n_streams):
            estimates, sinr = _mmse_equalize(scaled, rx_grids, sample_cov, noise_variance)
        col.observe("phy.mmse.frame_us", (time.perf_counter() - started) * 1e6)

        # --- per-stream soft decoding ---
        num, den = self.mcs.code_rate
        decoded: List[np.ndarray] = []
        errors: List[int] = []
        for s in range(n_streams):
            used = powers[:, s] > 0
            n_used = int(used.sum())
            if n_used == 0:
                decoded.append(np.zeros(0, dtype=np.int8))
                errors.append(0)
                continue
            symbols = estimates[s][:, used]
            # One noise variance per *subcarrier index* — never grouped by
            # float value, so nearly-equal variances cannot merge cells.
            noise_per_cell = 1.0 / np.maximum(sinr[used, s], 1e-9)
            flat = symbols.ravel()
            flat_noise = np.broadcast_to(noise_per_cell[None, :], symbols.shape).ravel()
            llrs = llr_demodulate(flat, self.mcs.modulation, flat_noise)
            n_info = llrs.size * num // den
            started = time.perf_counter()
            with col.span("phy.viterbi", stream=s, n_info_bits=n_info):
                out = viterbi_decode_soft(llrs, self.mcs.code_rate, n_info_bits=n_info)
            col.observe("phy.viterbi.decode_us", (time.perf_counter() - started) * 1e6)
            decoded.append(out)
            if expected:
                reference = frame.stream_bits[s]
                compare = min(out.size, reference.size)
                errors.append(int(np.sum(out[:compare] != reference[:compare])))

        return MimoReception(
            stream_bits=decoded,
            bit_errors=errors if expected else None,
            channel_estimate=channel,
            post_mmse_sinr=sinr,
        )
