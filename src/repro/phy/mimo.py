"""MIMO linear algebra: SVD beamforming, nullspace nulling, MMSE reception.

All functions are vectorized over subcarriers: channel arguments have shape
``(n_sc, n_rx, n_tx)`` and precoders ``(n_sc, n_tx, n_streams)``.  Precoder
columns are unit-norm, so the power transmitted on stream ``s`` of
subcarrier ``k`` is exactly the allocation ``p[k, s]``.

These are the primitives the paper's §4.1 describes: "To send multiple
streams, hosts use the singular value decomposition of the channel and to
null we project onto the appropriate nullspace.  On the receiving side,
hosts use a Minimum Mean Square Error filter."
"""

from __future__ import annotations

import numpy as np

from ..util import hermitian

__all__ = [
    "svd_beamformer",
    "nullspace_basis",
    "nulling_precoder",
    "max_nulled_streams",
    "interference_covariance",
    "tx_noise_covariance",
    "mmse_sinr",
    "effective_channel",
]


def svd_beamformer(channel: np.ndarray, n_streams: int) -> np.ndarray:
    """Transmit-beamforming precoder: top right-singular vectors per subcarrier.

    Maximizes power delivered to the intended receiver (§3.3's "transmit
    beamforming" precoding matrices).  Returns shape (n_sc, n_tx, n_streams).
    """
    channel = np.asarray(channel)
    n_sc, n_rx, n_tx = channel.shape
    if not 1 <= n_streams <= min(n_rx, n_tx):
        raise ValueError(
            f"n_streams={n_streams} must be in [1, min(n_rx={n_rx}, n_tx={n_tx})]"
        )
    _, _, vh = np.linalg.svd(channel, full_matrices=False)
    return hermitian(vh)[:, :, :n_streams]


def nullspace_basis(cross_channel: np.ndarray) -> np.ndarray:
    """Orthonormal basis of the nullspace of the cross channel, per subcarrier.

    ``cross_channel`` is the channel toward the *unintended* receiver's
    antennas, shape (n_sc, n_victim_antennas, n_tx).  Any transmit vector in
    the returned basis arrives as (ideally) zero at every victim antenna.
    Returns shape (n_sc, n_tx, n_tx - n_victim_antennas).
    """
    cross = np.asarray(cross_channel)
    n_sc, n_victim, n_tx = cross.shape
    null_dim = n_tx - n_victim
    if null_dim < 1:
        raise ValueError(
            f"no nullspace: {n_tx} TX antennas cannot null {n_victim} victim antennas"
        )
    # Full SVD: the last (n_tx - n_victim) right-singular vectors span the
    # nullspace (the victim channel has full row rank almost surely).
    _, _, vh = np.linalg.svd(cross, full_matrices=True)
    return hermitian(vh)[:, :, n_victim:]


def max_nulled_streams(n_tx: int, n_own_antennas: int, n_victim_antennas: int) -> int:
    """How many streams can be sent while fully nulling the victim.

    The nullspace of the victim channel has dimension n_tx − n_victim; the
    own client can separate at most n_own streams.  A value ≤ 0 means the
    problem is overconstrained (§3.4).
    """
    return min(n_tx - n_victim_antennas, n_own_antennas)


def nulling_precoder(own_channel: np.ndarray, cross_channel: np.ndarray, n_streams: int) -> np.ndarray:
    """Nulling precoder: beamform to the own client inside the cross nullspace.

    Projects onto the nullspace of ``cross_channel`` and then applies SVD
    beamforming of the own channel restricted to that subspace — §3.3's
    "combination of nullspace projection and the SVD to null interference
    at the unintended receiver while maximizing power at each AP's own
    client".  Returns (n_sc, n_tx, n_streams) with unit-norm columns.
    """
    own = np.asarray(own_channel)
    basis = nullspace_basis(cross_channel)  # (n_sc, n_tx, null_dim)
    null_dim = basis.shape[2]
    if n_streams > null_dim:
        raise ValueError(
            f"cannot send {n_streams} nulled streams with nullspace dimension {null_dim}"
        )
    projected = own @ basis  # (n_sc, n_rx, null_dim)
    _, _, vh = np.linalg.svd(projected, full_matrices=False)
    inner = hermitian(vh)[:, :, :n_streams]  # (n_sc, null_dim, n_streams)
    return basis @ inner


def effective_channel(channel: np.ndarray, precoder: np.ndarray) -> np.ndarray:
    """Per-subcarrier effective channel H @ W, shape (n_sc, n_rx, n_streams)."""
    return np.asarray(channel) @ np.asarray(precoder)


def interference_covariance(effective: np.ndarray, powers: np.ndarray) -> np.ndarray:
    """Covariance of interfering streams at a receiver.

    ``effective`` is the interferer's effective channel (n_sc, n_rx, n_s)
    and ``powers`` the per-subcarrier per-stream powers (n_sc, n_s).
    Returns (n_sc, n_rx, n_rx).
    """
    effective = np.asarray(effective)
    powers = np.asarray(powers, dtype=float)
    weighted = effective * powers[:, None, :]
    return weighted @ hermitian(effective)


def tx_noise_covariance(channel: np.ndarray, total_power: np.ndarray, evm_linear: float) -> np.ndarray:
    """Covariance of a transmitter's EVM noise at a receiver.

    TX noise is radiated equally from all transmit antennas and does *not*
    pass through the precoder, so it cannot be nulled — one of the noise
    sources the paper blames for imperfect nulling (§2.2).  ``total_power``
    is the per-subcarrier total transmit power (n_sc,).
    """
    channel = np.asarray(channel)
    n_tx = channel.shape[2]
    per_antenna = np.asarray(total_power, dtype=float) * evm_linear / n_tx
    return (channel * per_antenna[:, None, None]) @ hermitian(channel)


def mmse_sinr(
    effective: np.ndarray,
    powers: np.ndarray,
    noise_covariance: np.ndarray,
) -> np.ndarray:
    """Post-MMSE SINR of every intended stream on every subcarrier.

    ``effective``: intended effective channel (n_sc, n_rx, n_s);
    ``powers``: per-stream powers (n_sc, n_s);
    ``noise_covariance``: everything else — interference + TX noise + thermal
    noise — as (n_sc, n_rx, n_rx).

    For stream ``i`` with column ``a_i`` and power ``p_i``:
        SINR_i = p_i · a_i^H (R + Σ_{j≠i} p_j a_j a_j^H)^{-1} a_i
    which is the SINR at the output of the MMSE filter for that stream.
    Streams with zero power get SINR 0.
    """
    effective = np.asarray(effective)
    powers = np.asarray(powers, dtype=float)
    noise_covariance = np.asarray(noise_covariance)
    n_sc, n_rx, n_s = effective.shape
    if powers.shape != (n_sc, n_s):
        raise ValueError(f"powers shape {powers.shape} != {(n_sc, n_s)}")

    total = noise_covariance + interference_covariance(effective, powers)
    sinr = np.zeros((n_sc, n_s))
    for i in range(n_s):
        a_i = effective[:, :, i]  # (n_sc, n_rx)
        p_i = powers[:, i]
        # Remove stream i's own contribution from the total covariance.
        own = p_i[:, None, None] * (a_i[:, :, None] @ np.conj(a_i[:, None, :]))
        r_i = total - own
        solved = np.linalg.solve(r_i, a_i[:, :, None])[:, :, 0]
        quad = np.real(np.einsum("ki,ki->k", np.conj(a_i), solved))
        sinr[:, i] = p_i * np.maximum(quad, 0.0)
    return sinr
