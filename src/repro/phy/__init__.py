"""The PHY substrate: 802.11n OFDM/MIMO channel simulation and link models.

This subpackage replaces the paper's WARP v2 testbed: frequency-selective
indoor MIMO channels, radio imperfections, MIMO precoding/reception
primitives, and the SINR → BER → FER → throughput pipeline of §4.1.
"""

from .channel import ChannelModel, ChannelSet
from .doppler import ChannelTrack, doppler_frequency_hz, temporal_correlation
from .effective_snr import best_rate_eesm, effective_snr
from .estimation import EstimationResult, estimate_mimo_channel, estimation_error_power
from .constants import (
    MCS_TABLE,
    N_DATA_SUBCARRIERS,
    NOISE_FLOOR_DBM,
    TX_POWER_DBM,
    Mcs,
    Modulation,
)
from .fading import PowerDelayProfile, TappedDelayLine, exponential_pdp, frequency_response
from .llr import llr_demodulate, llrs_to_hard_bits
from .mimo import mmse_sinr, nulling_precoder, nullspace_basis, svd_beamformer
from .mimo_transceiver import MimoFrame, MimoReception, MimoTransceiver
from .noise import ImperfectionModel
from .rates import RateSelection, best_rate, evaluate_mcs
from .topology import Node, PathLossModel, Topology, TopologyGenerator
from .transceiver import Agc, FrameConfig, FrameTransceiver, detect_frame_start

__all__ = [
    "Agc",
    "ChannelModel",
    "ChannelSet",
    "ChannelTrack",
    "EstimationResult",
    "FrameConfig",
    "FrameTransceiver",
    "MimoFrame",
    "MimoReception",
    "MimoTransceiver",
    "ImperfectionModel",
    "MCS_TABLE",
    "Mcs",
    "Modulation",
    "N_DATA_SUBCARRIERS",
    "NOISE_FLOOR_DBM",
    "Node",
    "PathLossModel",
    "PowerDelayProfile",
    "RateSelection",
    "TappedDelayLine",
    "Topology",
    "TopologyGenerator",
    "TX_POWER_DBM",
    "best_rate",
    "best_rate_eesm",
    "detect_frame_start",
    "effective_snr",
    "doppler_frequency_hz",
    "estimate_mimo_channel",
    "estimation_error_power",
    "evaluate_mcs",
    "llr_demodulate",
    "llrs_to_hard_bits",
    "temporal_correlation",
    "exponential_pdp",
    "frequency_response",
    "mmse_sinr",
    "nulling_precoder",
    "nullspace_basis",
    "svd_beamformer",
]
