"""Per-subcarrier MIMO channels for a whole topology.

Combines the large-scale link gains from :mod:`repro.phy.topology` with the
small-scale tapped-delay-line fading from :mod:`repro.phy.fading` to give,
for every (transmitter, receiver) pair, an array ``H`` of shape
``(n_subcarriers, n_rx, n_tx)`` of complex amplitude gains.  Received power
on subcarrier ``k`` for a transmit vector ``x`` is ``|H[k] @ x|^2`` in mW
when ``|x|^2`` is in mW.

The channel is reciprocal (§3.1): the matrix from B to A is the transpose
of the matrix from A to B, which is how COPA APs learn the channel *to* a
client by overhearing frames *from* it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..util import dbm_to_mw, db_to_linear
from .constants import N_DATA_SUBCARRIERS, NOISE_FLOOR_DBM
from .fading import PowerDelayProfile, TappedDelayLine, exponential_pdp, frequency_response
from .noise import ImperfectionModel
from .topology import Topology

__all__ = ["ChannelModel", "ChannelSet"]


@dataclass
class ChannelSet:
    """All pairwise channels of one topology realization.

    ``channels[(tx_name, rx_name)]`` → complex array (n_sc, n_rx, n_tx).
    Both directions are stored; reciprocity ties them together.
    """

    topology: Topology
    channels: Dict[Tuple[str, str], np.ndarray]
    noise_floor_mw: float = dbm_to_mw(NOISE_FLOOR_DBM)
    n_subcarriers: int = N_DATA_SUBCARRIERS

    def channel(self, tx: str, rx: str) -> np.ndarray:
        """True channel from ``tx`` to ``rx``; shape (n_sc, n_rx, n_tx)."""
        try:
            return self.channels[(tx, rx)]
        except KeyError:
            raise KeyError(f"no channel from {tx!r} to {rx!r}") from None

    def measured_csi(self, tx: str, rx: str, imperfections: ImperfectionModel, rng: np.random.Generator) -> np.ndarray:
        """What a COPA AP *believes* the channel is (noisy estimate)."""
        return imperfections.measure_csi(self.channel(tx, rx), rng)

    def scaled_interference(self, factor_db: float) -> "ChannelSet":
        """A copy with every cross link (APi → Cj, i≠j) scaled by ``factor_db``.

        This is the paper's §4.4 trace-driven emulation: interference is
        made 10 dB weaker while the signal of interest is left unchanged.
        """
        scale = np.sqrt(db_to_linear(factor_db))
        new_channels = dict(self.channels)
        ap_names = [ap.name for ap in self.topology.aps]
        client_names = [c.name for c in self.topology.clients]
        for i, ap in enumerate(ap_names):
            for j, cross_client in enumerate(client_names):
                if j == i:
                    continue
                for key in [(ap, cross_client), (cross_client, ap)]:
                    new_channels[key] = self.channels[key] * scale
        return ChannelSet(
            topology=self.topology,
            channels=new_channels,
            noise_floor_mw=self.noise_floor_mw,
            n_subcarriers=self.n_subcarriers,
        )


@dataclass
class ChannelModel:
    """Draws :class:`ChannelSet` realizations for a topology.

    Parameters are shared across all links; the per-link mean power comes
    from the topology's path-loss gains.
    """

    pdp: PowerDelayProfile = field(default_factory=exponential_pdp)
    tx_correlation: float = 0.65
    rx_correlation: float = 0.65
    noise_floor_dbm: float = NOISE_FLOOR_DBM
    n_subcarriers: int = N_DATA_SUBCARRIERS

    def realize(self, topology: Topology, rng: np.random.Generator) -> ChannelSet:
        """Sample small-scale fading for every node pair in the topology."""
        nodes = topology.aps + topology.clients
        channels: Dict[Tuple[str, str], np.ndarray] = {}
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                gain = db_to_linear(topology.gain_db(a.name, b.name))
                tdl = TappedDelayLine.sample(
                    n_rx=b.n_antennas,
                    n_tx=a.n_antennas,
                    pdp=self.pdp,
                    rng=rng,
                    tx_correlation=self.tx_correlation,
                    rx_correlation=self.rx_correlation,
                )
                h_ab = np.sqrt(gain) * frequency_response(tdl, self.n_subcarriers)
                channels[(a.name, b.name)] = h_ab
                # Reciprocity: swap the antenna axes.
                channels[(b.name, a.name)] = np.swapaxes(h_ab, 1, 2)
        return ChannelSet(
            topology=topology,
            channels=channels,
            noise_floor_mw=float(dbm_to_mw(self.noise_floor_dbm)),
            n_subcarriers=self.n_subcarriers,
        )
