"""Signal-level OFDM: subcarrier mapping, IFFT/FFT, cyclic prefix, equalize.

A deliberately compact OFDM chain used by the examples and by the
validation tests that exercise COPA's power allocation end-to-end at the
sample level (QAM symbols → OFDM waveform → multipath channel → FFT →
per-subcarrier equalization → demap).  The throughput experiments use the
analytic SINR pipeline instead; this module exists to show the two agree.
"""

from __future__ import annotations

import numpy as np

from .constants import N_DATA_SUBCARRIERS, N_FFT

__all__ = [
    "data_subcarrier_bins",
    "ofdm_modulate",
    "ofdm_demodulate",
    "apply_multipath",
    "equalize",
]

#: Cyclic-prefix length in samples (800 ns at 20 Msample/s).
CP_SAMPLES = 16


def data_subcarrier_bins(n_data: int = N_DATA_SUBCARRIERS, n_fft: int = N_FFT) -> np.ndarray:
    """FFT bin indices of the data subcarriers, DC and band edges skipped.

    Bins are allocated symmetrically around (and excluding) DC, matching
    802.11's occupied-tone layout closely enough for simulation.
    """
    half = n_data // 2
    negative = np.arange(-half, 0)
    positive = np.arange(1, n_data - half + 1)
    return np.concatenate([negative % n_fft, positive])


def ofdm_modulate(symbols: np.ndarray, n_fft: int = N_FFT, cp_samples: int = CP_SAMPLES) -> np.ndarray:
    """OFDM-modulate symbols of shape (n_ofdm_symbols, n_data) to samples.

    Returns time-domain samples of shape (n_ofdm_symbols, n_fft + cp)
    normalized so the mean sample power equals the mean symbol power.
    """
    symbols = np.atleast_2d(np.asarray(symbols, dtype=complex))
    n_sym, n_data = symbols.shape
    bins = data_subcarrier_bins(n_data, n_fft)
    grid = np.zeros((n_sym, n_fft), dtype=complex)
    grid[:, bins] = symbols
    # Orthonormal IFFT keeps per-subcarrier power comparable pre/post FFT.
    time = np.fft.ifft(grid, n=n_fft, axis=1) * np.sqrt(n_fft)
    with_cp = np.concatenate([time[:, -cp_samples:], time], axis=1)
    return with_cp


def ofdm_demodulate(samples: np.ndarray, n_data: int = N_DATA_SUBCARRIERS, n_fft: int = N_FFT, cp_samples: int = CP_SAMPLES) -> np.ndarray:
    """Strip the CP and FFT back to per-subcarrier symbols."""
    samples = np.atleast_2d(np.asarray(samples, dtype=complex))
    if samples.shape[1] != n_fft + cp_samples:
        raise ValueError(f"expected symbols of {n_fft + cp_samples} samples, got {samples.shape[1]}")
    no_cp = samples[:, cp_samples:]
    grid = np.fft.fft(no_cp, n=n_fft, axis=1) / np.sqrt(n_fft)
    return grid[:, data_subcarrier_bins(n_data, n_fft)]


def apply_multipath(samples: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Convolve a per-symbol sample stream with a (short) channel response.

    ``taps`` is a 1-D complex impulse response no longer than the cyclic
    prefix, so inter-symbol interference stays inside the CP and each OFDM
    symbol sees a circular convolution (the standard OFDM property).
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=complex))
    taps = np.asarray(taps, dtype=complex).ravel()
    if taps.size > CP_SAMPLES:
        raise ValueError("impulse response longer than the cyclic prefix")
    stream = samples.ravel()
    convolved = np.convolve(stream, taps)[: stream.size]
    return convolved.reshape(samples.shape)


def equalize(received_symbols: np.ndarray, channel_per_subcarrier: np.ndarray) -> np.ndarray:
    """One-tap zero-forcing equalization per subcarrier."""
    received_symbols = np.asarray(received_symbols, dtype=complex)
    h = np.asarray(channel_per_subcarrier, dtype=complex)
    safe = np.where(np.abs(h) < 1e-12, 1.0, h)
    return received_symbols / safe
