"""Trace-safe fused strategy-menu kernel for accelerator backends.

The batched engine's generic path (:mod:`repro.core.batch`) is written
for bit-identity with the serial engine, which forces NumPy-only
constructs: dynamic boolean fancy-indexing (`repro.util.masked_row_apply`),
``np.put_along_axis`` scatters, data-dependent ``break`` statements and
``scipy.special`` calls.  None of those survive ``jax.jit`` tracing.

This module reimplements the strategy-menu inner loop — design →
allocate → measure → predict, the whole per-topology hot path — as one
*pure, trace-safe* function of the stacked channel tensors:

* every mask reduction is a ``where``-sum (no dynamic shapes),
* the Algorithm-1 used-mask scatter becomes a gather through the inverse
  permutation (``kept_sorted[argsort(order)]``),
* the Figure-6 iteration runs a fixed ``max_iterations`` trip count with
  per-topology freeze masks instead of breaking early,
* the BER chain calls the backend's ``erfc`` seam instead of scipy.

The kernel is written **per topology** (no batch axis) and batched with
:meth:`ArrayBackend.vmap`, then staged with :meth:`ArrayBackend.compile`
— ``jax.vmap`` + ``jax.jit`` for the ``"jax"`` backend, a host loop and
the identity for ``"numpy-fused"``.  Both evaluate the *same* function,
so the fused math is testable to 1e-6 against the reference engine on
machines without jax (``tests/core/test_fused.py``).

Divergence from the reference path is bounded, not zero: replacing the
bit-exact masked-gather reductions changes summation order, so fused
results differ from the golden values in the last ulps.  The documented
tolerance policy (EXPERIMENTS.md) allows non-reference backends 1e-6
relative error on every headline series; the tests quantify the actual
worst case.

Compiled kernels are cached in :data:`_KERNELS` keyed by backend name
and the static configuration baked into the closure, so warm calls —
across engine instances and batches — pay zero tracing cost.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np
from scipy.special import comb

from ..phy.constants import (
    BPSK,
    MCS_TABLE,
    MPDU_PAYLOAD_BYTES,
    N_DATA_SUBCARRIERS,
    QAM16,
    QAM64,
    QPSK,
)
from ..phy.coding import DISTANCE_SPECTRA, _UNION_BOUND_LIMIT
from ..phy.mimo import max_nulled_streams
from .equi_snr import MIN_GAIN

__all__ = [
    "build_menu_kernel",
    "run_fused_menu",
    "kernel_cache_info",
    "kernel_cache_clear",
]

_SQRT2 = float(np.sqrt(2.0))
_PAYLOAD_BITS = MPDU_PAYLOAD_BYTES * 8
#: Same convergence tolerance as ``equi_sinr.allocate_concurrent``.
_TOLERANCE = 1e-3

#: Binomial coefficients as host-side float constants (the same values
#: ``repro.phy.coding`` precomputes from scipy), so the union-bound
#: loops are pure ufunc chains under tracing.
_COMB_LIMIT = 64
_COMB_TABLE = comb(
    np.arange(_COMB_LIMIT + 1)[:, None], np.arange(_COMB_LIMIT + 1)[None, :]
)


# ---------------------------------------------------------------------------
# BER / coding / rate model (trace-safe ports of repro.phy.{ber,coding,rates})
# ---------------------------------------------------------------------------


def _q_function(backend, x):
    return 0.5 * backend.erfc(x / _SQRT2)


def _uncoded_ber(backend, snr, modulation):
    xp = backend.xp
    snr = xp.maximum(snr, 0.0)
    if modulation == BPSK:
        ber = _q_function(backend, xp.sqrt(2.0 * snr))
    elif modulation == QPSK:
        ber = _q_function(backend, xp.sqrt(snr))
    elif modulation in (QAM16, QAM64):
        points = modulation.points
        k = np.log2(points)
        root_m = np.sqrt(points)
        d = xp.sqrt(3.0 * snr / (points - 1.0))
        ber = (4.0 / k) * (1.0 - 1.0 / root_m) * _q_function(backend, d)
        ber = ber + (4.0 / k) * (1.0 - 2.0 / root_m) * _q_function(backend, 3.0 * d)
    else:  # pragma: no cover - MCS_TABLE only holds the four above
        raise ValueError(f"unsupported modulation: {modulation!r}")
    return xp.clip(ber, 0.0, 0.5)


def _pairwise_error_probability(xp, p, distance: int):
    p = xp.clip(p, 0.0, 0.5)
    q = 1.0 - p
    total = xp.zeros_like(p)
    if distance % 2:
        start = (distance + 1) // 2
    else:
        start = distance // 2 + 1
        half = distance // 2
        total = total + 0.5 * _COMB_TABLE[distance, half] * p**half * q ** (distance - half)
    for k in range(start, distance + 1):
        total = total + _COMB_TABLE[distance, k] * p**k * q ** (distance - k)
    return xp.clip(total, 0.0, 1.0)


def _coded_ber(xp, channel_ber, code_rate):
    dfree, weights = DISTANCE_SPECTRA[code_rate]
    bound = xp.zeros_like(channel_ber)
    for offset, weight in enumerate(weights):
        if weight == 0:
            continue
        bound = bound + weight * _pairwise_error_probability(xp, channel_ber, dfree + offset)
    bound = xp.where(channel_ber >= _UNION_BOUND_LIMIT, 0.5, bound)
    return xp.clip(bound, 0.0, 0.5)


def _frame_error_rate(xp, post_viterbi_ber, n_payload_bits: int):
    ber = xp.clip(post_viterbi_ber, 0.0, 0.5)
    return -xp.expm1(n_payload_bits * xp.log1p(-ber))


def _uniform_goodput(backend, snr, n_used, mcs):
    """Trace-safe ``equi_snr.uniform_goodput``: equal-SNR goodput model."""
    xp = backend.xp
    ber = _uncoded_ber(backend, snr, mcs.modulation)
    post = _coded_ber(xp, ber, mcs.code_rate)
    fer = _frame_error_rate(xp, post, _PAYLOAD_BITS)
    rate = mcs.rate_bps * n_used / N_DATA_SUBCARRIERS
    return rate * (1.0 - fer)


def _best_rate(backend, sinr, used):
    """Trace-safe ``phy.rates.best_rate``: goodput-maximizing MCS.

    ``sinr``/``used`` are (n_sc, n_streams); the masked channel-BER mean
    is a where-sum (tolerance-covered divergence from the bit-exact
    ``masked_row_means``).  Returns scalar leaves.
    """
    xp = backend.xp
    flat_sinr = sinr.reshape(-1)
    mask = used.reshape(-1)
    n_used = mask.sum()
    empty = n_used == 0
    safe_count = xp.maximum(n_used, 1)

    best = {
        "mcs_index": xp.asarray(-1),
        "goodput_bps": xp.asarray(0.0),
        "fer": xp.asarray(1.0),
        "channel_ber": xp.asarray(0.5),
        "n_used": n_used,
    }
    for mcs in MCS_TABLE:
        bers = _uncoded_ber(backend, flat_sinr, mcs.modulation)
        channel_ber = xp.where(
            empty, 0.5, xp.sum(xp.where(mask, bers, 0.0)) / safe_count
        )
        post = _coded_ber(xp, channel_ber, mcs.code_rate)
        fer = _frame_error_rate(xp, post, _PAYLOAD_BITS)
        phy_rate = mcs.rate_bps * n_used / N_DATA_SUBCARRIERS
        goodput = xp.where(empty, 0.0, phy_rate * (1.0 - fer))
        fer = xp.where(empty, 1.0, fer)
        improved = goodput > best["goodput_bps"]
        best = {
            "mcs_index": xp.where(improved, mcs.index, best["mcs_index"]),
            "goodput_bps": xp.where(improved, goodput, best["goodput_bps"]),
            "fer": xp.where(improved, fer, best["fer"]),
            "channel_ber": xp.where(improved, channel_ber, best["channel_ber"]),
            "n_used": best["n_used"],
        }
    return best


# ---------------------------------------------------------------------------
# MIMO primitives (trace-safe ports of repro.phy.mimo)
# ---------------------------------------------------------------------------


def _hermitian(xp, matrix):
    return xp.conj(xp.swapaxes(matrix, -1, -2))


def _svd_beamformer(backend, channel, n_streams: int):
    _, _, vh = backend.svd(channel, full_matrices=False)
    return _hermitian(backend.xp, vh)[:, :, :n_streams]


def _nulling_precoder(backend, own_channel, cross_channel, n_streams: int):
    xp = backend.xp
    n_victim = cross_channel.shape[1]
    _, _, vh = backend.svd(cross_channel, full_matrices=True)
    basis = _hermitian(xp, vh)[:, :, n_victim:]
    projected = backend.matmul(own_channel, basis)
    _, _, vh = backend.svd(projected, full_matrices=False)
    inner = _hermitian(xp, vh)[:, :, :n_streams]
    return backend.matmul(basis, inner)


def _mmse_sinr(backend, effective, powers, noise_covariance):
    """Trace-safe ``phy.mimo.mmse_sinr``; static loop over streams."""
    xp = backend.xp
    n_sc, n_rx, n_s = effective.shape
    weighted = effective * powers[:, None, :]
    total = noise_covariance + backend.matmul(weighted, _hermitian(xp, effective))
    columns = []
    for i in range(n_s):
        a_i = effective[:, :, i]
        p_i = powers[:, i]
        own = p_i[:, None, None] * (a_i[:, :, None] @ xp.conj(a_i[:, None, :]))
        r_i = total - own
        solved = backend.solve(r_i, a_i[:, :, None])[:, :, 0]
        quad = xp.real(backend.einsum("ki,ki->k", xp.conj(a_i), solved))
        columns.append(p_i * xp.maximum(quad, 0.0))
    return xp.stack(columns, axis=1)


def _interference_covariance(backend, effective, powers):
    weighted = effective * powers[:, None, :]
    return backend.matmul(weighted, _hermitian(backend.xp, effective))


def _tx_noise_covariance(backend, channel, total_power, evm_linear):
    n_tx = channel.shape[2]
    per_antenna = total_power * evm_linear / n_tx
    return backend.matmul(
        channel * per_antenna[:, None, None], _hermitian(backend.xp, channel)
    )


# ---------------------------------------------------------------------------
# Allocators (trace-safe ports of repro.core.{equi_snr,equi_sinr})
# ---------------------------------------------------------------------------


def _allocate_stream(backend, gains, total_power):
    """Trace-safe Algorithm 1 for one stream of one topology.

    The serial scatter ``used[order[best_i:]] = ...`` becomes a gather
    through the inverse permutation; the masked inverse-gain sum becomes
    a where-sum.  Returns a dict of array leaves (powers/used per
    subcarrier; equalized SNR, MCS index and goodput as scalars).
    """
    xp = backend.xp
    n = gains.shape[0]
    usable = gains > MIN_GAIN
    safe_gains = xp.maximum(gains, MIN_GAIN)

    order = xp.argsort(gains)  # weakest first
    sorted_gains = gains[order]
    usable_sorted = usable[order]
    inv = xp.where(usable_sorted, 1.0 / xp.maximum(sorted_gains, MIN_GAIN), 0.0)
    inverse_suffix = xp.cumsum(inv[::-1])[::-1]
    usable_suffix = xp.cumsum(usable_sorted[::-1].astype(int))[::-1]

    equalized = xp.where(
        inverse_suffix > 0,
        total_power / xp.where(inverse_suffix > 0, inverse_suffix, 1.0),
        0.0,
    )

    best_goodput = xp.zeros(n)
    best_mcs_index = xp.full(n, -1)
    for mcs in MCS_TABLE:
        goodput = _uniform_goodput(backend, equalized, usable_suffix, mcs)
        improved = goodput > best_goodput
        best_goodput = xp.where(improved, goodput, best_goodput)
        best_mcs_index = xp.where(improved, mcs.index, best_mcs_index)

    best_i = xp.argmax(best_goodput)
    row_goodput = best_goodput[best_i]
    nonempty = row_goodput > 0.0

    kept_sorted = (xp.arange(n) >= best_i) & usable_sorted
    used = kept_sorted[xp.argsort(order)] & nonempty

    inverse_sum = xp.sum(xp.where(used, 1.0 / safe_gains, 0.0))
    any_used = used.any()
    equalized_snr = xp.where(
        any_used, total_power / xp.where(any_used, inverse_sum, 1.0), 0.0
    )
    powers = xp.where(used, equalized_snr / safe_gains, 0.0)
    return {
        "powers": powers,
        "used": used,
        "equalized_snr": xp.where(nonempty, equalized_snr, 0.0),
        "mcs_index": xp.where(nonempty, best_mcs_index[best_i], -1),
        "goodput_bps": xp.where(nonempty, row_goodput, 0.0),
    }


def _allocate_streams(backend, gains, total_power, interference, noise_mw):
    """Trace-safe ``equi_sinr.allocate_single`` (equal stream split)."""
    xp = backend.xp
    n_sc, n_streams = gains.shape
    denominator = noise_mw + (
        xp.zeros(n_sc) if interference is None else interference
    )
    effective = gains / denominator[:, None]
    budget = total_power / n_streams
    streams = [_allocate_stream(backend, effective[:, s], budget) for s in range(n_streams)]
    return {
        "powers": xp.stack([s["powers"] for s in streams], axis=1),
        "used": xp.stack([s["used"] for s in streams], axis=1),
        "streams": streams,
    }


def _equal_allocation(xp, n_sc: int, n_streams: int, total_power):
    """Status-quo 802.11: the budget spread evenly everywhere."""
    powers = xp.full((n_sc, n_streams), total_power / (n_streams * n_sc))
    used = xp.ones((n_sc, n_streams), dtype=bool)
    return {"powers": powers, "used": used, "streams": []}


def _radiated_powers(xp, powers, used, leakage_linear):
    """Trace-safe ``equi_sinr.radiated_powers`` (one topology)."""
    radiated = xp.where(used, powers, 0.0)
    columns = []
    for s in range(powers.shape[1]):
        column = powers[:, s]
        stream_used = used[:, s]
        above = xp.roll(column, -1)
        below = xp.roll(column, 1)
        above_used = xp.roll(stream_used, -1)
        below_used = xp.roll(stream_used, 1)
        neighbour_sum = xp.where(above_used, above, 0.0) + xp.where(below_used, below, 0.0)
        neighbour_count = above_used.astype(float) + below_used.astype(float)
        count = stream_used.sum()
        fallback = xp.sum(xp.where(stream_used, column, 0.0)) / xp.maximum(count, 1)
        neighbour_mean = xp.where(
            neighbour_count > 0, neighbour_sum / xp.maximum(neighbour_count, 1.0), fallback
        )
        fill = (~stream_used) & (count > 0)
        columns.append(xp.where(fill, leakage_linear * neighbour_mean, radiated[:, s]))
    return xp.stack(columns, axis=1)


def _merge_allocation(xp, take, new, old):
    """``new where take else old`` over every leaf of an AP allocation."""
    return {
        "powers": xp.where(take, new["powers"], old["powers"]),
        "used": xp.where(take, new["used"], old["used"]),
        "streams": [
            {key: xp.where(take, n[key], o[key]) for key in n}
            for n, o in zip(new["streams"], old["streams"])
        ],
    }


def _allocate_concurrent(backend, gains, coupling, total_power, noise_mw, leakage, max_iterations: int):
    """Trace-safe Figure-6 iteration (one topology, two APs).

    Runs the full ``max_iterations`` trip count — a topology that has
    converged is frozen through masks rather than breaking, matching the
    per-row freeze semantics of ``allocate_concurrent_batch``.
    """
    xp = backend.xp
    n_sc = gains[0].shape[0]
    radiated = [
        xp.full(gains[a].shape, total_power / (gains[a].shape[1] * n_sc)) for a in range(2)
    ]
    best = None
    best_aggregate = xp.asarray(0.0)
    previous = None
    active = xp.asarray(True)

    for iteration in range(1, max_iterations + 1):
        allocations = []
        for a in range(2):
            interference = xp.sum(coupling[1 - a] * radiated[1 - a], axis=1)
            allocations.append(
                _allocate_streams(backend, gains[a], total_power, interference, noise_mw)
            )
        aggregate = xp.asarray(0.0)
        for allocation in allocations:
            for stream in allocation["streams"]:
                aggregate = aggregate + stream["goodput_bps"]
        if best is None:
            best = allocations
            best_aggregate = aggregate
        else:
            improved = active & (aggregate > best_aggregate)
            best = [_merge_allocation(xp, improved, allocations[a], best[a]) for a in range(2)]
            best_aggregate = xp.where(improved, aggregate, best_aggregate)

        new_radiated = [
            _radiated_powers(xp, allocations[a]["powers"], allocations[a]["used"], leakage)
            for a in range(2)
        ]
        if previous is None:
            previous = new_radiated
            radiated = new_radiated
        else:
            scale = 2.0 * total_power
            change = xp.asarray(0.0)
            for a in range(2):
                change = change + xp.sum(xp.abs(new_radiated[a] - previous[a]))
            active = active & ~(change <= _TOLERANCE * scale)
            previous = [
                xp.where(active, new_radiated[a], previous[a]) for a in range(2)
            ]
            radiated = [xp.where(active, new_radiated[a], radiated[a]) for a in range(2)]

    return best


# ---------------------------------------------------------------------------
# The per-topology menu kernel.
# ---------------------------------------------------------------------------


def _take_rx(backend, channel, keep):
    """Restrict (n_sc, n_rx, n_tx) to one traced receive-antenna index."""
    xp = backend.xp
    return xp.take(channel, xp.reshape(keep, (1,)), axis=1)


def _stream_gains(backend, channel, precoder):
    xp = backend.xp
    effective = backend.matmul(channel, precoder)
    return xp.sum(xp.abs(effective) ** 2, axis=1)


def _cross_coupling(backend, channel, precoder):
    xp = backend.xp
    effective = backend.matmul(channel, precoder)
    n_rx_active = effective.shape[1]
    return xp.sum(xp.abs(effective) ** 2, axis=1) / n_rx_active


def build_menu_kernel(backend, n_tx: int, n_rx: int, max_iterations: int) -> Callable:
    """The per-topology strategy-menu function for one configuration.

    Returns ``kernel(true, csi, params) -> pytree`` where ``true``/``csi``
    are (2, 2, n_sc, n_rx, n_tx) channel tensors indexed ``[ap, client]``
    and ``params`` is a dict of scalar arrays (``tx_power_mw``,
    ``noise_mw``, ``csi_error``, ``evm``, ``leakage``) — traced, so one
    compiled kernel serves every power/noise configuration of a given
    shape.  The output maps scheme keys to result pytrees; see
    :func:`run_fused_menu` for the batched entry point and
    ``BatchedStrategyEngine._run_fused`` for host materialization.

    Scheme feasibility (nulling dimensions, SDA applicability) depends
    only on the static antenna counts, so the returned pytree structure
    is static per kernel — a requirement for jit.
    """
    full_rank = min(n_tx, n_rx)
    null_limit = max_nulled_streams(n_tx, n_rx, n_rx)
    full_nulling = null_limit >= full_rank
    reduced_nulling = null_limit >= 1
    sda = (
        not full_nulling
        and n_rx >= 2
        and max_nulled_streams(n_tx, n_rx, 1) >= 1
        and max_nulled_streams(n_tx, 1, n_rx) >= 1
    )

    def rate_side(true, csi, designs, allocations, concurrent, true_channel, params):
        """Per-client rate selection; the fused ``_rate_of``."""
        xp = backend.xp
        channels = true if true_channel else csi
        clients = []
        for receiver in range(2):
            design = designs[receiver]
            alloc = allocations[receiver]
            h_own = channels[design["ap"], receiver]
            if design["keep"] is not None:
                h_own = _take_rx(backend, h_own, design["keep"])
            n_active = h_own.shape[1]
            effective = backend.matmul(h_own, design["precoder"])
            data_powers = xp.where(alloc["used"], alloc["powers"], 0.0)
            own_radiated = _radiated_powers(xp, alloc["powers"], alloc["used"], params["leakage"])

            covariance = params["noise_mw"] * xp.broadcast_to(
                xp.eye(n_active, dtype=complex),
                (h_own.shape[0], n_active, n_active),
            )
            covariance = covariance + _tx_noise_covariance(
                backend, h_own, own_radiated.sum(axis=1), params["evm"]
            )
            if concurrent:
                other = designs[1 - receiver]
                other_alloc = allocations[1 - receiver]
                other_radiated = _radiated_powers(
                    xp, other_alloc["powers"], other_alloc["used"], params["leakage"]
                )
                h_cross = channels[other["ap"], receiver]
                if design["keep"] is not None:
                    h_cross = _take_rx(backend, h_cross, design["keep"])
                eff_cross = backend.matmul(h_cross, other["precoder"])
                covariance = covariance + _interference_covariance(
                    backend, eff_cross, other_radiated
                )
                covariance = covariance + _tx_noise_covariance(
                    backend, h_cross, other_radiated.sum(axis=1), params["evm"]
                )
                if not true_channel:
                    # Prediction mode: expected nulling residual from CSI
                    # estimation error (§2.2).
                    entry_power = xp.mean(xp.abs(h_cross) ** 2)
                    residual = (
                        params["csi_error"] * entry_power * other_radiated.sum(axis=1)
                    )
                    covariance = covariance + residual[:, None, None] * xp.eye(n_active)[None, :, :]

            sinr = _mmse_sinr(backend, effective, data_powers, covariance)
            clients.append(_best_rate(backend, sinr, alloc["used"]))
        return clients

    def scheme(true, csi, designs, allocations, concurrent, params):
        return {
            "allocations": allocations,
            "measured": rate_side(true, csi, designs, allocations, concurrent, True, params),
            "predicted": rate_side(true, csi, designs, allocations, concurrent, False, params),
        }

    def concurrent_context(csi, designs, params):
        """Gains and (residual-padded) coupling for the Fig. 6 iteration."""
        xp = backend.xp
        gains, coupling = [], []
        for i in range(2):
            design = designs[i]
            own = csi[i, i]
            if design["keep"] is not None:
                own = _take_rx(backend, own, design["keep"])
            gains.append(_stream_gains(backend, own, design["precoder"]))
            victim = csi[i, 1 - i]
            victim_gathered = victim
            other_keep = designs[1 - i]["keep"]
            if other_keep is not None:
                victim_gathered = _take_rx(backend, victim, other_keep)
            coupled = _cross_coupling(backend, victim_gathered, design["precoder"])
            # Nulls computed from noisy CSI bottom out at the estimation-
            # error floor; the allocator must plan for that residual (§2.2).
            entry_power = xp.mean(xp.abs(victim) ** 2)
            coupling.append(coupled + params["csi_error"] * entry_power)
        return gains, coupling

    def kernel(true, csi, params):
        xp = backend.xp
        n_sc = true.shape[2]
        out: Dict[str, dict] = {}

        bf = [
            {
                "ap": i,
                "keep": None,
                "precoder": _svd_beamformer(backend, csi[i, i], full_rank),
            }
            for i in range(2)
        ]

        # CSMA: equal powers, sequential senders.
        equal_bf = [
            _equal_allocation(xp, n_sc, full_rank, params["tx_power_mw"]) for _ in range(2)
        ]
        out["csma"] = scheme(true, csi, bf, equal_bf, False, params)

        # COPA sequential: Equi-SNR per stream, no concurrent interference.
        seq = [
            _allocate_streams(
                backend,
                _stream_gains(backend, csi[i, i], bf[i]["precoder"]),
                params["tx_power_mw"],
                None,
                params["noise_mw"],
            )
            for i in range(2)
        ]
        out["copa_seq"] = scheme(true, csi, bf, seq, False, params)

        # Concurrent beamforming: Fig. 6 Equi-SINR iteration.
        gains, coupling = concurrent_context(csi, bf, params)
        conc_bf = _allocate_concurrent(
            backend, gains, coupling, params["tx_power_mw"], params["noise_mw"],
            params["leakage"], max_iterations,
        )
        out["conc_bf"] = scheme(true, csi, bf, conc_bf, True, params)

        if reduced_nulling:
            nulls = [
                {
                    "ap": i,
                    "keep": None,
                    "precoder": _nulling_precoder(
                        backend, csi[i, i], csi[i, 1 - i], null_limit
                    ),
                }
                for i in range(2)
            ]
            if full_nulling:
                equal_null = [
                    _equal_allocation(xp, n_sc, null_limit, params["tx_power_mw"])
                    for _ in range(2)
                ]
                out["null"] = scheme(true, csi, nulls, equal_null, True, params)
            gains, coupling = concurrent_context(csi, nulls, params)
            conc_null = _allocate_concurrent(
                backend, gains, coupling, params["tx_power_mw"], params["noise_mw"],
                params["leakage"], max_iterations,
            )
            out["conc_null"] = scheme(true, csi, nulls, conc_null, True, params)

        if sda:
            leader_streams = max_nulled_streams(n_tx, n_rx, 1)
            follower_streams = max_nulled_streams(n_tx, 1, n_rx)
            for leader in range(2):
                follower = 1 - leader
                follower_own = csi[follower, follower]
                keep = xp.argmax(xp.sum(xp.abs(follower_own) ** 2, axis=(0, 2)))
                designs = [None, None]
                designs[leader] = {
                    "ap": leader,
                    "keep": None,
                    "precoder": _nulling_precoder(
                        backend,
                        csi[leader, leader],
                        _take_rx(backend, csi[leader, follower], keep),
                        leader_streams,
                    ),
                }
                designs[follower] = {
                    "ap": follower,
                    "keep": keep,
                    "precoder": _nulling_precoder(
                        backend,
                        _take_rx(backend, follower_own, keep),
                        csi[follower, leader],
                        follower_streams,
                    ),
                }
                equal = [
                    _equal_allocation(
                        xp, n_sc, designs[i]["precoder"].shape[2], params["tx_power_mw"]
                    )
                    for i in range(2)
                ]
                out[f"sda{leader}_null"] = scheme(true, csi, designs, equal, True, params)
                gains, coupling = concurrent_context(csi, designs, params)
                conc = _allocate_concurrent(
                    backend, gains, coupling, params["tx_power_mw"], params["noise_mw"],
                    params["leakage"], max_iterations,
                )
                out[f"sda{leader}_conc"] = scheme(true, csi, designs, conc, True, params)

        return out

    return kernel


# ---------------------------------------------------------------------------
# Batched entry point with a compile cache.
# ---------------------------------------------------------------------------

#: Staged batched kernels keyed by (backend name, n_tx, n_rx,
#: max_iterations).  Backends are stateless per name, so one compiled
#: kernel serves every engine instance — warm calls skip tracing.
_KERNELS: Dict[Tuple[str, int, int, int], Callable] = {}


def kernel_cache_info() -> Dict[str, object]:
    """Contents of the fused-kernel compile cache (for tests/benches)."""
    return {"entries": len(_KERNELS), "keys": sorted(_KERNELS)}


def kernel_cache_clear() -> None:
    """Drop staged kernels so the next call recompiles from scratch."""
    _KERNELS.clear()


def supports(backend, serial_allocator, oracle_check: bool) -> bool:
    """Can the fused kernel serve this engine run?

    Fusion covers the default Equi-S(I)NR allocator only; the COPA+
    mercury allocator and oracle shadow-validation fall back to the
    reference path (documented in EXPERIMENTS.md).
    """
    from . import equi_snr

    return (
        bool(getattr(backend, "supports_fusion", False))
        and serial_allocator is equi_snr.allocate
        and not oracle_check
    )


def run_fused_menu(backend, true_stack, csi_stack, params, max_iterations: int):
    """Run the compiled, vmapped menu kernel over a topology batch.

    ``true_stack``/``csi_stack`` are host arrays of shape
    (B, 2, 2, n_sc, n_rx, n_tx); ``params`` is a dict of python floats.
    Returns the kernel's output pytree with every leaf materialized as a
    host numpy array carrying a leading batch axis.
    """
    from .backend import tree_map

    n_rx, n_tx = true_stack.shape[4], true_stack.shape[5]
    key = (backend.name, n_tx, n_rx, max_iterations)
    staged = _KERNELS.get(key)
    if staged is None:
        kernel = build_menu_kernel(backend, n_tx, n_rx, max_iterations)
        staged = backend.compile(
            backend.vmap(kernel, in_axes=(0, 0, None)), key=("repro.core.fused",) + key
        )
        _KERNELS[key] = staged
    params = {name: backend.asarray(float(value)) for name, value in params.items()}
    result = staged(backend.asarray(true_stack), backend.asarray(csi_stack), params)
    return tree_map(backend.to_numpy, result)
