"""COPA's core contribution: power allocation, precoding, strategy choice."""

from .equi_snr import Allocation, allocate
from .equi_sinr import (
    ConcurrentAllocation,
    ConcurrentContext,
    StreamAllocation,
    allocate_concurrent,
    allocate_single,
    radiated_powers,
)
from .controller import CopaAccessPoint, CopaSession, TxopRecord
from .options import EngineOptions
from .scheduler import MultiApScheduler, Neighbourhood, ScheduleResult
from .schemes import COPA_CANDIDATES, SCHEMES, SERIES_KEYS, Scheme, SeriesKey
from .mercury import mercury_allocate, mercury_waterfilling, mmse_of_snr
from .multi_decoder import MultiDecoderSelection, per_subcarrier_rates
from .precoding import (
    TransmissionDesign,
    beamforming_design,
    cross_coupling,
    nulling_design,
    sda_designs,
    stream_gains,
)
from .strategy import (
    SCHEME_CONC_BF,
    SCHEME_CONC_NULL,
    SCHEME_CONC_SDA,
    SCHEME_COPA_SEQ,
    SCHEME_CSMA,
    SCHEME_NULL,
    SchemeResult,
    StrategyEngine,
    StrategyOutcome,
)

__all__ = [
    "Allocation",
    "COPA_CANDIDATES",
    "ConcurrentAllocation",
    "ConcurrentContext",
    "EngineOptions",
    "SCHEMES",
    "SERIES_KEYS",
    "Scheme",
    "SeriesKey",
    "CopaAccessPoint",
    "CopaSession",
    "MultiApScheduler",
    "MultiDecoderSelection",
    "Neighbourhood",
    "ScheduleResult",
    "TxopRecord",
    "per_subcarrier_rates",
    "SCHEME_CONC_BF",
    "SCHEME_CONC_NULL",
    "SCHEME_CONC_SDA",
    "SCHEME_COPA_SEQ",
    "SCHEME_CSMA",
    "SCHEME_NULL",
    "SchemeResult",
    "StrategyEngine",
    "StrategyOutcome",
    "StreamAllocation",
    "TransmissionDesign",
    "allocate",
    "allocate_concurrent",
    "allocate_single",
    "beamforming_design",
    "cross_coupling",
    "mercury_allocate",
    "mercury_waterfilling",
    "mmse_of_snr",
    "nulling_design",
    "radiated_powers",
    "sda_designs",
    "stream_gains",
]
