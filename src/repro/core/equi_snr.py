"""Algorithm 1: Equi-SNR power allocation with subcarrier selection.

For one stream without concurrent interference, COPA sorts subcarriers by
SNR, considers dropping the worst ``i`` of them for every ``i``, equalizes
the received SNR across the survivors (total power is fixed, so the
equalized SNR rises as more weak subcarriers are abandoned), predicts the
best achievable 802.11 modulation/throughput for each ``i`` and keeps the
count that maximizes throughput.

The same routine implements Equi-**SINR** (§3.2.1): passing effective gains
``g_k = a_k / (I_k + σ²)`` — signal gain over interference-plus-noise —
equalizes SINR instead of SNR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..phy.coding import coded_ber, frame_error_rate
from ..phy.ber import uncoded_ber
from ..phy.constants import MCS_TABLE, MPDU_PAYLOAD_BYTES, N_DATA_SUBCARRIERS, Mcs
from ..util import masked_row_apply

__all__ = [
    "MIN_GAIN",
    "Allocation",
    "BatchAllocation",
    "equalizing_powers",
    "equalizing_powers_batch",
    "uniform_goodput",
    "allocate",
    "allocate_batch",
    "allocate_power_only",
    "allocate_selection_only",
]

#: Gains below this (per mW) are treated as unusable outright.  Public
#: because the usability cutoff is part of the allocator's contract: the
#: optimization oracle (:mod:`repro.core.oracle`) must agree on which
#: subcarriers are candidates at all before comparing allocations.
MIN_GAIN = 1e-12
_MIN_GAIN = MIN_GAIN  # back-compat alias


@dataclass(frozen=True)
class Allocation:
    """Result of Algorithm 1 for one stream."""

    #: Per-subcarrier transmit power (mW); dropped subcarriers get 0.
    powers: np.ndarray
    #: Boolean mask of subcarriers that carry data.
    used: np.ndarray
    #: The SNR (or SINR) value equalized across used subcarriers (linear).
    equalized_snr: float
    #: The MCS predicted to maximize throughput, or None if nothing works.
    mcs: Optional[Mcs]
    #: Predicted PHY goodput in bit/s (before MAC overhead).
    goodput_bps: float

    @property
    def n_used(self) -> int:
        return int(self.used.sum())

    @property
    def n_dropped(self) -> int:
        return int((~self.used).sum())


def equalizing_powers(gains: np.ndarray, used: np.ndarray, total_power: float):
    """Powers that equalize SNR over ``used``: p_k = S / g_k, Σ p_k = P.

    Returns ``(powers, S)`` where S is the common received SNR.
    """
    gains = np.asarray(gains, dtype=float)
    used = np.asarray(used, dtype=bool)
    powers = np.zeros_like(gains)
    if not used.any():
        return powers, 0.0
    inverse_sum = float(np.sum(1.0 / gains[used]))
    equalized = total_power / inverse_sum
    powers[used] = equalized / gains[used]
    return powers, equalized


def uniform_goodput(
    snr_linear: np.ndarray,
    n_used: np.ndarray,
    mcs: Mcs,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
) -> np.ndarray:
    """Vectorized goodput when every used subcarrier has the same SNR.

    ``snr_linear`` and ``n_used`` are parallel arrays (one entry per
    candidate drop count); returns predicted goodput for each.
    """
    ber = uncoded_ber(np.asarray(snr_linear, dtype=float), mcs.modulation)
    post = coded_ber(ber, mcs.code_rate)
    fer = frame_error_rate(post, payload_bytes * 8)
    rate = mcs.rate_bps * np.asarray(n_used, dtype=float) / N_DATA_SUBCARRIERS
    return rate * (1.0 - fer)


def allocate(
    gains,
    total_power: float,
    mcs_table: Sequence[Mcs] = MCS_TABLE,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
) -> Allocation:
    """Run Algorithm 1.

    ``gains`` maps transmit power to received S(I)NR per subcarrier:
    received S(I)NR on subcarrier k is ``p_k * gains[k]`` (so for plain SNR,
    ``gains[k] = |h_k|^2 / noise``).  ``total_power`` is the stream's power
    budget in mW.
    """
    gains = np.asarray(gains, dtype=float)
    if gains.ndim != 1:
        raise ValueError("gains must be one-dimensional (a single stream)")
    if total_power <= 0:
        raise ValueError("total_power must be positive")
    n = gains.size
    usable = gains > _MIN_GAIN

    order = np.argsort(gains)  # weakest first
    sorted_gains = gains[order]
    # Suffix sums of 1/g: inverse_suffix[i] = Σ_{k ≥ i} 1/g_k (sorted order),
    # skipping unusable subcarriers entirely.
    with np.errstate(divide="ignore"):
        inv = np.where(sorted_gains > _MIN_GAIN, 1.0 / np.maximum(sorted_gains, _MIN_GAIN), 0.0)
    inverse_suffix = np.cumsum(inv[::-1])[::-1]
    usable_suffix = np.cumsum(usable[order][::-1].astype(int))[::-1]

    # Candidate i = "drop the weakest i subcarriers".
    drop_counts = np.arange(n)
    n_used = usable_suffix[drop_counts]
    with np.errstate(divide="ignore", invalid="ignore"):
        equalized = np.where(
            inverse_suffix[drop_counts] > 0,
            total_power / inverse_suffix[drop_counts],
            0.0,
        )

    best_goodput = np.zeros(n)
    best_mcs_index = np.full(n, -1)
    for mcs in mcs_table:
        goodput = uniform_goodput(equalized, n_used, mcs, payload_bytes)
        improved = goodput > best_goodput
        best_goodput = np.where(improved, goodput, best_goodput)
        best_mcs_index = np.where(improved, mcs.index, best_mcs_index)

    best_i = int(np.argmax(best_goodput))
    if best_goodput[best_i] <= 0.0:
        return Allocation(
            powers=np.zeros(n),
            used=np.zeros(n, dtype=bool),
            equalized_snr=0.0,
            mcs=None,
            goodput_bps=0.0,
        )

    used = np.zeros(n, dtype=bool)
    kept = order[best_i:]
    used[kept] = usable[kept]
    powers, equalized_snr = equalizing_powers(gains, used, total_power)
    mcs = next(m for m in mcs_table if m.index == best_mcs_index[best_i])
    return Allocation(
        powers=powers,
        used=used,
        equalized_snr=float(equalized_snr),
        mcs=mcs,
        goodput_bps=float(best_goodput[best_i]),
    )


@dataclass
class BatchAllocation:
    """Algorithm-1 results for one stream of a whole *batch* of topologies.

    The struct-of-arrays counterpart of :class:`Allocation`: row ``b`` of
    every field is exactly what :func:`allocate` returns for row ``b`` of
    the batched gains (bit-identical, see :func:`allocate_batch`).
    ``mcs_index`` is the MCS table index, ``-1`` encoding ``mcs=None``.
    """

    #: (n_rows, n_sc) transmit powers; dropped subcarriers get 0.
    powers: np.ndarray
    #: (n_rows, n_sc) data-carrying mask.
    used: np.ndarray
    #: (n_rows,) equalized S(I)NR per row (0.0 for empty allocations).
    equalized_snr: np.ndarray
    #: (n_rows,) chosen MCS index per row; -1 means none works.
    mcs_index: np.ndarray
    #: (n_rows,) predicted PHY goodput per row in bit/s.
    goodput_bps: np.ndarray

    @property
    def n_rows(self) -> int:
        return self.powers.shape[0]

    def n_dropped(self) -> np.ndarray:
        """(n_rows,) dropped-subcarrier counts, as ints."""
        return (~self.used).sum(axis=1)

    def row(self, b: int, mcs_table: Sequence[Mcs] = MCS_TABLE) -> Allocation:
        """Materialize row ``b`` as the serial :class:`Allocation`."""
        index = int(self.mcs_index[b])
        mcs = None if index < 0 else next(m for m in mcs_table if m.index == index)
        return Allocation(
            powers=self.powers[b].copy(),
            used=self.used[b].copy(),
            equalized_snr=float(self.equalized_snr[b]),
            mcs=mcs,
            goodput_bps=float(self.goodput_bps[b]),
        )


def equalizing_powers_batch(gains: np.ndarray, used: np.ndarray, total_power) -> tuple:
    """Row-batched :func:`equalizing_powers`, bit-identical per row.

    ``gains``/``used`` have shape (n_rows, n_sc); ``total_power`` is a
    scalar or (n_rows,) budget.  The inverse-gain sum — the one
    order-sensitive reduction — is evaluated per row over the masked-in
    subcarriers in original order (grouped by count, which preserves
    NumPy's pairwise-summation grouping exactly).
    """
    gains = np.asarray(gains, dtype=float)
    used = np.asarray(used, dtype=bool)
    budgets = np.broadcast_to(np.asarray(total_power, dtype=float), (gains.shape[0],))
    inverse_sum = masked_row_apply(
        gains, used, lambda gathered: np.sum(1.0 / gathered, axis=-1)
    )
    any_used = used.any(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        equalized = np.where(any_used, budgets / np.where(any_used, inverse_sum, 1.0), 0.0)
        powers = np.where(used, equalized[:, None] / gains, 0.0)
    return powers, equalized


def allocate_batch(
    gains,
    total_power,
    mcs_table: Sequence[Mcs] = MCS_TABLE,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
) -> BatchAllocation:
    """Run Algorithm 1 over a whole batch of independent streams at once.

    ``gains`` has shape (n_rows, n_sc): one row per (topology, stream)
    problem; ``total_power`` is a scalar or per-row budget.  Row ``b`` of
    the result is **bit-identical** to ``allocate(gains[b], ...)`` — every
    per-row operation (argsort, suffix cumsum, elementwise goodput model,
    argmax, equalization) reduces the same elements in the same order as
    the serial code, just stacked along a leading axis.
    """
    gains = np.asarray(gains, dtype=float)
    if gains.ndim != 2:
        raise ValueError("gains must have shape (n_rows, n_subcarriers)")
    n_rows, n = gains.shape
    budgets = np.broadcast_to(np.asarray(total_power, dtype=float), (n_rows,))
    if not np.all(budgets > 0):
        raise ValueError("total_power must be positive")
    usable = gains > _MIN_GAIN

    order = np.argsort(gains, axis=1)  # weakest first, per row
    sorted_gains = np.take_along_axis(gains, order, axis=1)
    with np.errstate(divide="ignore"):
        inv = np.where(sorted_gains > _MIN_GAIN, 1.0 / np.maximum(sorted_gains, _MIN_GAIN), 0.0)
    inverse_suffix = np.cumsum(inv[:, ::-1], axis=1)[:, ::-1]
    usable_sorted = np.take_along_axis(usable, order, axis=1)
    usable_suffix = np.cumsum(usable_sorted[:, ::-1].astype(int), axis=1)[:, ::-1]

    n_used = usable_suffix
    with np.errstate(divide="ignore", invalid="ignore"):
        equalized = np.where(inverse_suffix > 0, budgets[:, None] / inverse_suffix, 0.0)

    best_goodput = np.zeros((n_rows, n))
    best_mcs_index = np.full((n_rows, n), -1)
    for mcs in mcs_table:
        goodput = uniform_goodput(equalized, n_used, mcs, payload_bytes)
        improved = goodput > best_goodput
        best_goodput = np.where(improved, goodput, best_goodput)
        best_mcs_index = np.where(improved, mcs.index, best_mcs_index)

    best_i = np.argmax(best_goodput, axis=1)
    rows = np.arange(n_rows)
    row_goodput = best_goodput[rows, best_i]
    nonempty = row_goodput > 0.0

    kept_sorted = (np.arange(n)[None, :] >= best_i[:, None]) & usable_sorted
    used = np.zeros((n_rows, n), dtype=bool)
    np.put_along_axis(used, order, kept_sorted, axis=1)
    used &= nonempty[:, None]

    powers, equalized_snr = equalizing_powers_batch(gains, used, budgets)
    return BatchAllocation(
        powers=powers,
        used=used,
        equalized_snr=np.where(nonempty, equalized_snr, 0.0),
        mcs_index=np.where(nonempty, best_mcs_index[rows, best_i], -1),
        goodput_bps=np.where(nonempty, row_goodput, 0.0),
    )


def allocate_power_only(
    gains,
    total_power: float,
    mcs_table: Sequence[Mcs] = MCS_TABLE,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
) -> Allocation:
    """Ablation: Equi-SNR power allocation *without* subcarrier selection.

    Equalizes S(I)NR across every usable subcarrier but never drops one.
    §4.2 reports that either half of Algorithm 1 alone yields 60–70% of the
    full improvement; this allocator isolates the power-allocation half.
    """
    gains = np.asarray(gains, dtype=float)
    if gains.ndim != 1:
        raise ValueError("gains must be one-dimensional (a single stream)")
    if total_power <= 0:
        raise ValueError("total_power must be positive")
    usable = gains > _MIN_GAIN
    powers, equalized = equalizing_powers(gains, usable, total_power)
    if not usable.any():
        return Allocation(powers=powers, used=usable, equalized_snr=0.0, mcs=None, goodput_bps=0.0)
    snr = np.where(usable, equalized, 0.0)
    from ..phy.rates import best_rate

    selection = best_rate(snr, used=usable, payload_bytes=payload_bytes, mcs_table=mcs_table)
    return Allocation(
        powers=powers,
        used=usable,
        equalized_snr=float(equalized),
        mcs=selection.mcs,
        goodput_bps=selection.goodput_bps,
    )


def allocate_selection_only(
    gains,
    total_power: float,
    mcs_table: Sequence[Mcs] = MCS_TABLE,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
) -> Allocation:
    """Ablation: subcarrier selection *without* power equalization.

    Runs Algorithm 1's drop loop, but splits power equally among the kept
    subcarriers instead of equalizing their S(I)NR — isolating the
    selection half of the algorithm.
    """
    gains = np.asarray(gains, dtype=float)
    if gains.ndim != 1:
        raise ValueError("gains must be one-dimensional (a single stream)")
    if total_power <= 0:
        raise ValueError("total_power must be positive")
    from ..phy.rates import best_rate

    n = gains.size
    order = np.argsort(gains)
    usable = gains > _MIN_GAIN

    best = Allocation(
        powers=np.zeros(n), used=np.zeros(n, dtype=bool), equalized_snr=0.0, mcs=None, goodput_bps=0.0
    )
    for drop in range(n):
        kept = order[drop:]
        kept = kept[usable[kept]]
        if kept.size == 0:
            break
        per_subcarrier = total_power / kept.size
        snr = np.zeros(n)
        snr[kept] = per_subcarrier * gains[kept]
        used = np.zeros(n, dtype=bool)
        used[kept] = True
        selection = best_rate(snr, used=used, payload_bytes=payload_bytes, mcs_table=mcs_table)
        if selection.goodput_bps > best.goodput_bps:
            powers = np.zeros(n)
            powers[kept] = per_subcarrier
            best = Allocation(
                powers=powers,
                used=used,
                equalized_snr=0.0,
                mcs=selection.mcs,
                goodput_bps=selection.goodput_bps,
            )
    return best
