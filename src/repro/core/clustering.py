"""Cluster-formation policies for the N-AP interference-graph engine.

COPA coordinates a pair of interfering APs; the N-cell generalization
(`repro.core.ncell`) coordinates *within* a cluster of APs and falls back
to plain CSMA *across* clusters.  This module decides the clusters.

Clustering is a pure function of the sampled topology's link gains — it
consumes no randomness — so cluster membership is reproducible from the
topology alone and never perturbs the engine's RNG stream.

Policies
--------
``fixed``
    One cluster containing every AP (full coordination).  This is the
    default and makes the N=2 case collapse to the legacy 2-AP engine.
``threshold``
    Single-linkage connected components over the cross-gain graph: APs
    *i* and *j* share an edge when the stronger of the two cross links
    (AP_i -> C_j, AP_j -> C_i) is at least ``threshold_db``.
``greedy``
    Average-linkage agglomerative merging: repeatedly merge the pair of
    clusters with the highest mean pairwise cross-gain while that mean
    stays at or above ``threshold_db`` (optionally capped by
    ``max_cluster_size``).

All tie-breaks are deterministic (smallest AP index first) and clusters
are returned sorted, so the output is a pure function of its inputs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

__all__ = [
    "CLUSTER_POLICIES",
    "DEFAULT_CLUSTER_POLICY",
    "DEFAULT_CLUSTER_THRESHOLD_DB",
    "cross_gain_db",
    "form_clusters",
]

#: Valid values for ``EngineOptions.cluster_policy`` / ``--cluster-policy``.
CLUSTER_POLICIES: Tuple[str, ...] = ("fixed", "threshold", "greedy")

DEFAULT_CLUSTER_POLICY = "fixed"

#: Cross links weaker than this are treated as negligible for
#: coordination purposes.  At the default 15 dBm transmit power a
#: -80 dB link lands at -65 dBm — far above the -101 dBm noise floor,
#: but weak enough on the reference office floor (20 m x 13 m,
#: path-loss exponent 3.1) that it only occurs across heavy shadowing
#: or obstructions, which is exactly when CSMA across clusters is the
#: better trade than paying the coordination overhead.
DEFAULT_CLUSTER_THRESHOLD_DB = -80.0


def cross_gain_db(topology, i: int, j: int) -> float:
    """Symmetric coupling strength between AP pair ``(i, j)``.

    Defined as the stronger of the two interfering links
    AP_i -> client_j and AP_j -> client_i, in dB.
    """

    ap_i = topology.aps[i].name
    ap_j = topology.aps[j].name
    client_i = topology.clients[i].name
    client_j = topology.clients[j].name
    return max(topology.gain_db(ap_i, client_j), topology.gain_db(ap_j, client_i))


def _normalise(clusters: Sequence[Sequence[int]]) -> Tuple[Tuple[int, ...], ...]:
    ordered = [tuple(sorted(members)) for members in clusters if members]
    return tuple(sorted(ordered, key=lambda members: members[0]))


def _threshold_clusters(topology, threshold_db: float) -> Tuple[Tuple[int, ...], ...]:
    n_aps = len(topology.aps)
    parent = list(range(n_aps))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in range(n_aps):
        for j in range(i + 1, n_aps):
            if cross_gain_db(topology, i, j) >= threshold_db:
                root_i, root_j = find(i), find(j)
                if root_i != root_j:
                    parent[max(root_i, root_j)] = min(root_i, root_j)

    components: dict = {}
    for i in range(n_aps):
        components.setdefault(find(i), []).append(i)
    return _normalise(components.values())


def _greedy_clusters(
    topology,
    threshold_db: float,
    max_cluster_size: Optional[int],
) -> Tuple[Tuple[int, ...], ...]:
    n_aps = len(topology.aps)
    clusters = [[i] for i in range(n_aps)]
    while len(clusters) > 1:
        best = None
        for a in range(len(clusters)):
            for b in range(a + 1, len(clusters)):
                size = len(clusters[a]) + len(clusters[b])
                if max_cluster_size is not None and size > max_cluster_size:
                    continue
                pairs = [
                    cross_gain_db(topology, i, j)
                    for i in clusters[a]
                    for j in clusters[b]
                ]
                mean_gain = sum(pairs) / len(pairs)
                if mean_gain < threshold_db:
                    continue
                key = (-mean_gain, min(clusters[a]), min(clusters[b]))
                if best is None or key < best[0]:
                    best = (key, a, b)
        if best is None:
            break
        _, a, b = best
        clusters[a] = sorted(clusters[a] + clusters[b])
        del clusters[b]
    return _normalise(clusters)


def form_clusters(
    topology,
    policy: str = DEFAULT_CLUSTER_POLICY,
    threshold_db: Optional[float] = None,
    max_cluster_size: Optional[int] = None,
) -> Tuple[Tuple[int, ...], ...]:
    """Partition the topology's APs into coordination clusters.

    Returns a tuple of clusters; each cluster is a sorted tuple of AP
    indices into ``topology.aps`` and clusters are ordered by their
    smallest member.  Every AP appears in exactly one cluster.
    """

    if policy not in CLUSTER_POLICIES:
        raise ValueError(
            f"unknown cluster policy {policy!r}; expected one of {CLUSTER_POLICIES}"
        )
    if threshold_db is None:
        threshold_db = DEFAULT_CLUSTER_THRESHOLD_DB
    n_aps = len(topology.aps)
    if n_aps != len(topology.clients):
        raise ValueError("topology must pair each AP with exactly one client")
    if policy == "fixed":
        return (tuple(range(n_aps)),)
    if policy == "threshold":
        return _threshold_clusters(topology, float(threshold_db))
    return _greedy_clusters(topology, float(threshold_db), max_cluster_size)
