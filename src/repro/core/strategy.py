"""§3.3: predicting the best strategy and §3.5: incentive compatibility.

For one pair of interfering (AP, client) networks, this module builds the
whole strategy menu of Figure 8, predicts each strategy's throughput from
the (noisy) CSI the APs actually have, and picks:

* **COPA** — the aggregate-throughput-maximizing strategy, and
* **COPA fair** — the best strategy under the incentive-compatibility
  constraint that neither client does worse than sequential transmission
  with power allocation (COPA-SEQ), the paper's "simple tweak".

Reported throughputs are then *measured* on the true channels (CSI error,
TX noise and subcarrier leakage included), so a strategy the leader
mispredicts really does cost throughput, exactly as on the testbed.

Scheme names follow the paper:

``csma``       sequential, equal power, no subcarrier selection (baseline);
``copa_seq``   sequential + Equi-SNR power allocation & selection;
``null``       concurrent vanilla nulling, equal power (baseline; in the
               overconstrained case this is the paper's "Null+SDA");
``conc_bf``    concurrent, beamforming precoders + Equi-SINR (no nulling);
``conc_null``  concurrent, nulling precoders + Equi-SINR;
``conc_sda``   concurrent, shut-down-antenna nulling + Equi-SINR (§3.4),
               reported as the average over the two leader roles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..mac.timing import MacOverheadModel, MacOverheads
from ..obs.collector import Collector, active
from ..phy.channel import ChannelSet
from ..phy.constants import TX_POWER_DBM
from ..phy.mimo import interference_covariance, max_nulled_streams, mmse_sinr, tx_noise_covariance
from ..phy.noise import ImperfectionModel
from ..phy.rates import RateSelection, best_rate
from ..util import dbm_to_mw
from . import equi_snr
from .equi_sinr import (
    ConcurrentContext,
    StreamAllocation,
    StreamAllocator,
    allocate_concurrent,
    allocate_single,
    radiated_powers,
)
from .precoding import (
    TransmissionDesign,
    beamforming_design,
    cross_coupling,
    nulling_design,
    sda_designs,
    stream_gains,
)
from .schemes import COPA_CANDIDATES, Scheme

__all__ = [
    "Scheme",
    "SCHEME_CSMA",
    "SCHEME_COPA_SEQ",
    "SCHEME_NULL",
    "SCHEME_CONC_BF",
    "SCHEME_CONC_NULL",
    "SCHEME_CONC_SDA",
    "SchemeResult",
    "StrategyOutcome",
    "StrategyEngine",
    "average_results",
    "choose_scheme",
]

# Back-compat aliases for the canonical names in :mod:`repro.core.schemes`.
# ``Scheme`` members are str-valued, so existing string comparisons and
# dict lookups keep working unchanged.
SCHEME_CSMA = Scheme.CSMA
SCHEME_COPA_SEQ = Scheme.COPA_SEQ
SCHEME_NULL = Scheme.NULL
SCHEME_CONC_BF = Scheme.CONC_BF
SCHEME_CONC_NULL = Scheme.CONC_NULL
SCHEME_CONC_SDA = Scheme.CONC_SDA

#: Tolerance for the fairness constraint: a client "loses" only if its
#: predicted throughput drops more than this fraction below COPA-SEQ's.
_FAIRNESS_SLACK = 1e-3


@dataclass(frozen=True)
class SchemeResult:
    """Throughput of one strategy in one topology."""

    name: str
    concurrent: bool
    #: Per-client throughput in bit/s, MAC overhead and airtime share applied.
    client_throughput_bps: Tuple[float, ...]
    #: Rate selections of the transmissions (PHY-level detail), one per cell.
    rates: Tuple[RateSelection, ...]
    #: The power allocations behind the result (per AP), when applicable —
    #: lets analyses inspect subcarrier usage (e.g. §4.2's OFDMA effect).
    allocations: Optional[Tuple[StreamAllocation, ...]] = None

    @property
    def aggregate_bps(self) -> float:
        return float(sum(self.client_throughput_bps))

    @property
    def aggregate_mbps(self) -> float:
        return self.aggregate_bps / 1e6


@dataclass
class StrategyOutcome:
    """Everything the engine learned about one topology."""

    #: Measured (true-channel) results per scheme.
    schemes: Dict[str, SchemeResult]
    #: CSI-predicted results per scheme (what the leader AP believes).
    predictions: Dict[str, SchemeResult]
    #: Scheme the throughput-maximizing COPA picks (from predictions).
    copa_choice: str
    #: Scheme the incentive-compatible COPA picks.
    copa_fair_choice: str

    @property
    def copa(self) -> SchemeResult:
        return self.schemes[self.copa_choice]

    @property
    def copa_fair(self) -> SchemeResult:
        return self.schemes[self.copa_fair_choice]


def average_results(name: str, results: Sequence[SchemeResult]) -> SchemeResult:
    """Average per-client throughputs (used for the two SDA leader roles)."""
    n_clients = len(results[0].client_throughput_bps)
    throughput = tuple(
        float(np.mean([r.client_throughput_bps[i] for r in results])) for i in range(n_clients)
    )
    return SchemeResult(
        name=name,
        concurrent=results[0].concurrent,
        client_throughput_bps=throughput,  # type: ignore[arg-type]
        rates=results[0].rates,
    )


def choose_scheme(
    predictions: Dict[str, SchemeResult],
    fair: bool,
    candidates: Sequence[str] = COPA_CANDIDATES,
) -> str:
    """Pick the best strategy from predicted throughputs (Fig. 8).

    With ``fair=True``, concurrent candidates are only admissible when
    neither client is predicted to fall below its COPA-SEQ throughput
    (§3.5's incentive-compatibility tweak).  Shared by the serial
    :class:`StrategyEngine` and the batched engine
    (:mod:`repro.core.batch`) so the choice logic cannot drift.
    """
    baseline = predictions[SCHEME_COPA_SEQ]
    best_name = SCHEME_COPA_SEQ
    best_aggregate = baseline.aggregate_bps
    for name in candidates:
        if name not in predictions or name == SCHEME_COPA_SEQ:
            continue
        candidate = predictions[name]
        if fair:
            admissible = all(
                candidate.client_throughput_bps[i]
                >= baseline.client_throughput_bps[i] * (1.0 - _FAIRNESS_SLACK)
                for i in range(len(candidate.client_throughput_bps))
            )
            if not admissible:
                continue
        if candidate.aggregate_bps > best_aggregate:
            best_aggregate = candidate.aggregate_bps
            best_name = name
    return best_name


class StrategyEngine:
    """Evaluates the strategy menu for one channel realization.

    Parameters
    ----------
    channels:
        True channels of the topology (what physics does).
    imperfections:
        CSI error / TX EVM / leakage model (what separates belief from
        physics).
    coherence_s:
        Coherence time used for the MAC overhead accounting (the paper
        charges CSI dissemination once per 30 ms).
    allocator:
        Per-stream power allocator; :func:`repro.core.equi_snr.allocate`
        gives COPA, :func:`repro.core.mercury.mercury_allocate` gives the
        COPA+ upper bound.
    rate_selector:
        Rate-selection model: :func:`repro.phy.rates.best_rate` (default)
        enforces 802.11's single decoder;
        :func:`repro.core.multi_decoder.per_subcarrier_rates` evaluates the
        §4.6 one-decoder-per-coding-rate hardware.
    collector:
        Optional :class:`repro.obs.Collector`; when given, :meth:`run`
        records one span per scheme (design, allocation, measurement) and
        allocator metrics.  ``None`` costs a no-op context per stage.
    oracle_check:
        Shadow-validate sequential allocations against the optimization
        oracle (:mod:`repro.core.oracle`).  Agreement/mismatch is recorded
        on the collector (``oracle.agree`` / ``oracle.mismatch``), never
        raised; off by default (one extra oracle solve per stream).
    """

    def __init__(
        self,
        channels: ChannelSet,
        imperfections: Optional[ImperfectionModel] = None,
        rng: Optional[np.random.Generator] = None,
        overhead_model: Optional[MacOverheadModel] = None,
        coherence_s: float = 0.030,
        tx_power_dbm: float = TX_POWER_DBM,
        allocator: StreamAllocator = equi_snr.allocate,
        max_iterations: int = 8,
        rate_selector=best_rate,
        collector: Optional[Collector] = None,
        oracle_check: bool = False,
    ):
        self.collector = active(collector)
        self.channels = channels
        self.imperfections = imperfections if imperfections is not None else ImperfectionModel()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.overhead_model = overhead_model if overhead_model is not None else MacOverheadModel()
        self.overheads: MacOverheads = self.overhead_model.overheads(coherence_s)
        self.tx_power_mw = float(dbm_to_mw(tx_power_dbm))
        self.allocator = allocator
        self.max_iterations = max_iterations
        self.oracle_check = oracle_check
        #: Maps per-cell SINRs to a rate selection; ``best_rate`` models the
        #: single-decoder constraint, ``per_subcarrier_rates`` the §4.6
        #: one-decoder-per-coding-rate hardware.
        self.rate_selector = rate_selector

        topology = channels.topology
        self.ap_names = [ap.name for ap in topology.aps]
        self.client_names = [c.name for c in topology.clients]
        self.n_tx = topology.aps[0].n_antennas
        self.n_rx = topology.clients[0].n_antennas

        # What each AP knows: noisy CSI of its own and its cross link,
        # measured once per coherence interval (§3.1).
        self.csi: Dict[Tuple[str, str], np.ndarray] = {}
        for ap in self.ap_names:
            for client in self.client_names:
                self.csi[(ap, client)] = channels.measured_csi(ap, client, self.imperfections, self.rng)

    # ------------------------------------------------------------------
    # channel access
    # ------------------------------------------------------------------

    def _channel(self, ap: str, client: str, true_channel: bool) -> np.ndarray:
        if true_channel:
            return self.channels.channel(ap, client)
        return self.csi[(ap, client)]

    # ------------------------------------------------------------------
    # design construction (from CSI — what the APs can actually compute)
    # ------------------------------------------------------------------

    def _bf_designs(self) -> List[TransmissionDesign]:
        return [
            beamforming_design(
                self.csi[(self.ap_names[i], self.client_names[i])],
                ap=self.ap_names[i],
                client=self.client_names[i],
            )
            for i in range(len(self.ap_names))
        ]

    def _null_designs(self) -> List[TransmissionDesign]:
        """Full (or reduced-rank) nulling designs for both APs."""
        designs = []
        for i in range(2):
            ap = self.ap_names[i]
            own = self.client_names[i]
            victim = self.client_names[1 - i]
            designs.append(
                nulling_design(
                    self.csi[(ap, own)],
                    self.csi[(ap, victim)],
                    ap=ap,
                    client=own,
                )
            )
        return designs

    def _sda_design_pair(self, leader: int) -> List[TransmissionDesign]:
        """SDA designs with AP ``leader`` leading; index order is [AP1, AP2]."""
        follower = 1 - leader
        lead_ap, lead_client = self.ap_names[leader], self.client_names[leader]
        fol_ap, fol_client = self.ap_names[follower], self.client_names[follower]
        lead_design, fol_design = sda_designs(
            leader_csi_own=self.csi[(lead_ap, lead_client)],
            leader_csi_cross=self.csi[(lead_ap, fol_client)],
            follower_csi_own=self.csi[(fol_ap, fol_client)],
            follower_csi_cross=self.csi[(fol_ap, lead_client)],
            leader_ap=lead_ap,
            leader_client=lead_client,
            follower_ap=fol_ap,
            follower_client=fol_client,
        )
        pair: List[Optional[TransmissionDesign]] = [None, None]
        pair[leader] = lead_design
        pair[follower] = fol_design
        return pair  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # power allocation
    # ------------------------------------------------------------------

    def _equal_allocation(self, design: TransmissionDesign) -> StreamAllocation:
        """Status-quo 802.11: the power budget spread evenly everywhere."""
        n_sc, n_s = design.n_subcarriers, design.n_streams
        powers = np.full((n_sc, n_s), self.tx_power_mw / (n_s * n_sc))
        used = np.ones((n_sc, n_s), dtype=bool)
        return StreamAllocation(powers=powers, used=used, per_stream=[])

    def _sequential_allocation(self, design: TransmissionDesign) -> StreamAllocation:
        """Equi-SNR (Algorithm 1) per stream, no concurrent interference."""
        gains = stream_gains(self.csi[(design.ap, design.client)], design)
        allocation = allocate_single(
            gains,
            self.tx_power_mw,
            noise_mw=self.channels.noise_floor_mw,
            allocator=self.allocator,
        )
        if self.oracle_check:
            # Shadow mode: record agreement, never fail the engine.  The
            # concurrent path is covered offline by the differential
            # harness (repro.core.differential), whose problems are exactly
            # reproducible; the best-seen concurrent allocation is not
            # re-checkable post hoc against any single interference vector.
            from .oracle import shadow_check_single

            shadow_check_single(
                gains,
                self.tx_power_mw,
                allocation,
                self.allocator,
                noise_mw=self.channels.noise_floor_mw,
                collector=self.collector if self.collector.enabled else None,
            )
        return allocation

    def _concurrent_allocation(self, designs: Sequence[TransmissionDesign]) -> List[StreamAllocation]:
        """The Fig. 6 iterative Equi-SINR joint allocation."""
        gains = []
        coupling = []
        for i in range(2):
            design = designs[i]
            own_csi = self.csi[(design.ap, design.client)]
            victim_name = designs[1 - i].client
            victim_csi = self.csi[(design.ap, victim_name)]
            gains.append(stream_gains(own_csi, design))
            coupled = cross_coupling(victim_csi, design, victim_active_rx=designs[1 - i].active_rx)
            # Nulls computed from noisy CSI bottom out at the estimation-error
            # floor; the allocator must plan for that residual (§2.2).
            residual = self.imperfections.csi_error_linear * float(
                np.mean(np.abs(victim_csi) ** 2)
            )
            coupling.append(coupled + residual)
        context = ConcurrentContext(
            gains=gains,
            coupling=coupling,
            budgets=[self.tx_power_mw, self.tx_power_mw],
            noise_mw=[self.channels.noise_floor_mw] * 2,
            leakage_linear=self.imperfections.carrier_leakage_linear,
        )
        result = allocate_concurrent(
            context,
            max_iterations=self.max_iterations,
            allocator=self.allocator,
            collector=self.collector if self.collector.enabled else None,
        )
        return result.allocations

    def _note_allocations(self, allocations: Sequence[StreamAllocation]) -> None:
        """Feed dropped-subcarrier counts from Algorithm 1 into the metrics."""
        if not self.collector.enabled:
            return
        dropped = sum(
            stream.n_dropped for allocation in allocations for stream in allocation.per_stream
        )
        self.collector.inc("alloc.streams", sum(len(a.per_stream) for a in allocations))
        self.collector.inc("alloc.dropped_subcarriers", dropped)

    # ------------------------------------------------------------------
    # throughput evaluation
    # ------------------------------------------------------------------

    def _rate_of(
        self,
        receiver: int,
        designs: Sequence[TransmissionDesign],
        allocations: Sequence[StreamAllocation],
        concurrent: bool,
        true_channel: bool,
    ) -> RateSelection:
        """Rate selection for client ``receiver`` under one scheme."""
        design = designs[receiver]
        alloc = allocations[receiver]
        active = list(design.active_rx)
        n_active = len(active)
        n_sc = design.n_subcarriers

        h_own = self._channel(design.ap, design.client, true_channel)[:, active, :]
        effective = h_own @ design.precoder
        data_powers = np.where(alloc.used, alloc.powers, 0.0)
        own_radiated = radiated_powers(alloc.powers, alloc.used, self.imperfections.carrier_leakage_linear)

        covariance = self.channels.noise_floor_mw * np.broadcast_to(
            np.eye(n_active, dtype=complex), (n_sc, n_active, n_active)
        ).copy()
        # Own transmitter's EVM noise reaches the own client too.
        covariance += tx_noise_covariance(
            h_own, own_radiated.sum(axis=1), self.imperfections.tx_evm_linear
        )
        if concurrent:
            for other_idx in range(len(designs)):
                if other_idx == receiver:
                    continue
                other = designs[other_idx]
                other_alloc = allocations[other_idx]
                other_radiated = radiated_powers(
                    other_alloc.powers, other_alloc.used, self.imperfections.carrier_leakage_linear
                )
                h_cross = self._channel(other.ap, design.client, true_channel)[:, active, :]
                eff_cross = h_cross @ other.precoder
                covariance += interference_covariance(eff_cross, other_radiated)
                covariance += tx_noise_covariance(
                    h_cross, other_radiated.sum(axis=1), self.imperfections.tx_evm_linear
                )
                if not true_channel:
                    # Prediction mode: through its own CSI the other AP's nulls
                    # look infinitely deep, but the AP knows its null depth is
                    # limited by CSI estimation error (§2.2).  Add the expected
                    # residual: per victim antenna, error variance × total power.
                    entry_power = float(np.mean(np.abs(h_cross) ** 2))
                    residual = (
                        self.imperfections.csi_error_linear
                        * entry_power
                        * other_radiated.sum(axis=1)
                    )
                    covariance += residual[:, None, None] * np.eye(n_active)[None, :, :]

        sinr = mmse_sinr(effective, data_powers, covariance)
        return self.rate_selector(sinr, used=alloc.used)

    def _scheme_result(
        self,
        name: str,
        designs: Sequence[TransmissionDesign],
        allocations: Sequence[StreamAllocation],
        concurrent: bool,
        overhead: float,
        true_channel: bool,
    ) -> SchemeResult:
        rates = tuple(
            self._rate_of(i, designs, allocations, concurrent, true_channel)
            for i in range(len(designs))
        )
        factor = self.overhead_model.net_throughput_factor(overhead)
        if concurrent:
            throughput = tuple(r.goodput_bps * factor for r in rates)
        else:
            # Sequential senders take turns: each client's airtime share is
            # 1/N over the N transmitters (1/2 in the paper's topologies).
            throughput = tuple(r.goodput_bps * factor / float(len(designs)) for r in rates)
        return SchemeResult(
            name=name,
            concurrent=concurrent,
            client_throughput_bps=throughput,  # type: ignore[arg-type]
            rates=rates,  # type: ignore[arg-type]
            allocations=tuple(allocations),  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    # scheme menu
    # ------------------------------------------------------------------

    def _full_nulling_feasible(self) -> bool:
        """Can each AP send full rank while nulling every victim antenna?"""
        full_rank = min(self.n_tx, self.n_rx)
        return max_nulled_streams(self.n_tx, self.n_rx, self.n_rx) >= full_rank

    def _reduced_nulling_feasible(self) -> bool:
        return max_nulled_streams(self.n_tx, self.n_rx, self.n_rx) >= 1

    def _sda_applicable(self) -> bool:
        """SDA helps when full nulling is overconstrained but shutting one
        victim antenna restores enough degrees of freedom (§3.4).

        Both roles must be feasible: the leader nulls the follower client's
        single remaining antenna, *and* the follower (reduced rank) must
        still null all of the leader client's antennas — so e.g. two
        2-antenna APs with 2-antenna clients cannot use SDA.
        """
        if self._full_nulling_feasible() or self.n_rx < 2:
            return False
        leader_ok = max_nulled_streams(self.n_tx, self.n_rx, 1) >= 1
        follower_ok = max_nulled_streams(self.n_tx, 1, self.n_rx) >= 1
        return leader_ok and follower_ok

    def _average_results(self, name: str, results: Sequence[SchemeResult]) -> SchemeResult:
        return average_results(name, results)

    def _both(self, name, designs, allocations, concurrent, overhead):
        """(measured, predicted) results of one scheme."""
        col = self.collector
        with col.span("measure", scheme=str(name)):
            actual = self._scheme_result(name, designs, allocations, concurrent, overhead, True)
        with col.span("predict", scheme=str(name)):
            predicted = self._scheme_result(name, designs, allocations, concurrent, overhead, False)
        if col.enabled:
            col.inc(f"engine.scheme.{name}")
            col.observe(f"scheme.{name}.measured_mbps", actual.aggregate_mbps)
        return actual, predicted

    def run(self) -> StrategyOutcome:
        """Evaluate the full menu and make the COPA / COPA-fair choices."""
        schemes: Dict[str, SchemeResult] = {}
        predictions: Dict[str, SchemeResult] = {}
        ovh = self.overheads
        col = self.collector

        with col.span(
            "engine.run",
            allocator=getattr(self.allocator, "__name__", str(self.allocator)),
            antennas=f"{self.n_tx}x{self.n_rx}",
        ):
            with col.span("design", kind="beamforming"):
                bf = self._bf_designs()

            with col.span(f"scheme:{SCHEME_CSMA}"):
                with col.span("allocate"):
                    equal_bf = [self._equal_allocation(d) for d in bf]
                schemes[SCHEME_CSMA], predictions[SCHEME_CSMA] = self._both(
                    SCHEME_CSMA, bf, equal_bf, False, ovh.csma
                )

            with col.span(f"scheme:{SCHEME_COPA_SEQ}"):
                with col.span("allocate"):
                    seq_alloc = [self._sequential_allocation(design) for design in bf]
                self._note_allocations(seq_alloc)
                schemes[SCHEME_COPA_SEQ], predictions[SCHEME_COPA_SEQ] = self._both(
                    SCHEME_COPA_SEQ, bf, seq_alloc, False, ovh.copa_sequential
                )

            with col.span(f"scheme:{SCHEME_CONC_BF}"):
                with col.span("allocate"):
                    conc_bf_alloc = self._concurrent_allocation(bf)
                self._note_allocations(conc_bf_alloc)
                schemes[SCHEME_CONC_BF], predictions[SCHEME_CONC_BF] = self._both(
                    SCHEME_CONC_BF, bf, conc_bf_alloc, True, ovh.copa_concurrent
                )

            if self._reduced_nulling_feasible():
                with col.span("design", kind="nulling"):
                    null_designs = self._null_designs()
                if self._full_nulling_feasible():
                    # Vanilla nulling baseline: equal power, no selection.
                    with col.span(f"scheme:{SCHEME_NULL}"):
                        with col.span("allocate"):
                            equal_null = [self._equal_allocation(d) for d in null_designs]
                        schemes[SCHEME_NULL], predictions[SCHEME_NULL] = self._both(
                            SCHEME_NULL, null_designs, equal_null, True, ovh.copa_concurrent
                        )
                with col.span(f"scheme:{SCHEME_CONC_NULL}"):
                    with col.span("allocate"):
                        conc_null_alloc = self._concurrent_allocation(null_designs)
                    self._note_allocations(conc_null_alloc)
                    schemes[SCHEME_CONC_NULL], predictions[SCHEME_CONC_NULL] = self._both(
                        SCHEME_CONC_NULL, null_designs, conc_null_alloc, True, ovh.copa_concurrent
                    )

            if self._sda_applicable():
                sda_actual, sda_predicted = [], []
                for leader in range(2):
                    with col.span("sda.role", leader=leader):
                        with col.span("design", kind="sda"):
                            designs = self._sda_design_pair(leader)
                        # Vanilla Null+SDA baseline (equal power)...
                        with col.span(f"scheme:{SCHEME_NULL}"):
                            with col.span("allocate"):
                                equal = [self._equal_allocation(d) for d in designs]
                            a_eq, p_eq = self._both(
                                SCHEME_NULL, designs, equal, True, ovh.copa_concurrent
                            )
                        # ...and COPA's allocated SDA strategy.
                        with col.span(f"scheme:{SCHEME_CONC_SDA}"):
                            with col.span("allocate"):
                                alloc = self._concurrent_allocation(designs)
                            self._note_allocations(alloc)
                            a, p = self._both(
                                SCHEME_CONC_SDA, designs, alloc, True, ovh.copa_concurrent
                            )
                    sda_actual.append((a_eq, a))
                    sda_predicted.append((p_eq, p))
                schemes[SCHEME_NULL] = self._average_results(SCHEME_NULL, [x[0] for x in sda_actual])
                predictions[SCHEME_NULL] = self._average_results(SCHEME_NULL, [x[0] for x in sda_predicted])
                schemes[SCHEME_CONC_SDA] = self._average_results(SCHEME_CONC_SDA, [x[1] for x in sda_actual])
                predictions[SCHEME_CONC_SDA] = self._average_results(SCHEME_CONC_SDA, [x[1] for x in sda_predicted])

            with col.span("choose"):
                copa_choice = self._choose(predictions, fair=False)
                copa_fair_choice = self._choose(predictions, fair=True)
            if col.enabled:
                col.inc("engine.runs")
                col.inc(f"engine.choice.{copa_choice}")
                col.inc(f"engine.fair_choice.{copa_fair_choice}")
        return StrategyOutcome(
            schemes=schemes,
            predictions=predictions,
            copa_choice=copa_choice,
            copa_fair_choice=copa_fair_choice,
        )

    # ------------------------------------------------------------------
    # choice
    # ------------------------------------------------------------------

    _COPA_CANDIDATES = COPA_CANDIDATES

    def _choose(self, predictions: Dict[str, SchemeResult], fair: bool) -> str:
        return choose_scheme(predictions, fair, candidates=self._COPA_CANDIDATES)
