"""§3.2.1: iterative concurrent Equi-SINR power allocation (Figure 6).

Two APs transmit concurrently; each stream's best power allocation depends
on the interference every *other* stream causes, which in turn depends on
those streams' allocations — the circular dependency the paper illustrates
with its AP1/AP2 subcarrier anecdote.  COPA's heuristic:

1. allocate each stream independently assuming the other sender spreads
   its power equally across subcarriers,
2. recompute the interference every stream causes to all others (including
   the −27 dB leakage of dropped subcarriers),
3. re-run the (Equi-SINR flavoured) Algorithm 1 per stream, and
4. iterate until convergence or an iteration cap, keeping the best
   solution seen — the iteration may regress, and is not guaranteed to
   find a global optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..util import masked_row_means
from . import equi_snr
from .equi_snr import Allocation, BatchAllocation

__all__ = [
    "StreamAllocation",
    "BatchStreamAllocation",
    "StreamAllocator",
    "BatchStreamAllocator",
    "ConcurrentContext",
    "BatchConcurrentContext",
    "ConcurrentAllocation",
    "effective_gains",
    "radiated_powers",
    "radiated_powers_batch",
    "allocate_single",
    "allocate_single_batch",
    "allocate_concurrent",
    "allocate_concurrent_batch",
]


@dataclass
class StreamAllocation:
    """Power allocation for all streams of one AP's transmission."""

    #: (n_sc, n_streams) transmit powers in mW.
    powers: np.ndarray
    #: (n_sc, n_streams) data-carrying mask.
    used: np.ndarray
    #: Per-stream Algorithm-1 results.
    per_stream: List[Allocation]

    @property
    def predicted_goodput_bps(self) -> float:
        return float(sum(a.goodput_bps for a in self.per_stream))

    @property
    def n_streams(self) -> int:
        return self.powers.shape[1]


def radiated_powers(powers: np.ndarray, used: np.ndarray, leakage_linear: float) -> np.ndarray:
    """Actual radiated power per (subcarrier, stream), leakage included.

    A dropped subcarrier cannot radiate exactly zero (§3.2): it leaks
    ``leakage_linear`` times the mean power of its nearest active
    neighbours (the adjacent-carrier leakage of real transceivers).
    """
    powers = np.asarray(powers, dtype=float)
    used = np.asarray(used, dtype=bool)
    radiated = np.where(used, powers, 0.0)
    for s in range(powers.shape[1]):
        dropped = ~used[:, s]
        if not dropped.any() or used[:, s].sum() == 0:
            continue
        column = powers[:, s]
        above = np.roll(column, -1)
        below = np.roll(column, 1)
        above_used = np.roll(used[:, s], -1)
        below_used = np.roll(used[:, s], 1)
        neighbour_sum = np.where(above_used, above, 0.0) + np.where(below_used, below, 0.0)
        neighbour_count = above_used.astype(float) + below_used.astype(float)
        fallback = float(column[used[:, s]].mean())
        neighbour_mean = np.where(neighbour_count > 0, neighbour_sum / np.maximum(neighbour_count, 1), fallback)
        radiated[dropped, s] = leakage_linear * neighbour_mean[dropped]
    return radiated


def radiated_powers_batch(powers: np.ndarray, used: np.ndarray, leakage_linear: float) -> np.ndarray:
    """Topology-batched :func:`radiated_powers`, bit-identical per row.

    ``powers``/``used`` have shape (n_rows, n_sc, n_streams).  The only
    order-sensitive reduction — the mean over a stream's *used* powers
    that dropped subcarriers without active neighbours fall back to — is
    done with :func:`repro.util.masked_row_means`, which preserves the
    serial pairwise-summation grouping exactly.
    """
    powers = np.asarray(powers, dtype=float)
    used = np.asarray(used, dtype=bool)
    radiated = np.where(used, powers, 0.0)
    for s in range(powers.shape[2]):
        stream_used = used[:, :, s]
        dropped = ~stream_used
        needs_fill = dropped.any(axis=1) & (stream_used.sum(axis=1) > 0)
        if not needs_fill.any():
            continue
        column = powers[:, :, s]
        above = np.roll(column, -1, axis=1)
        below = np.roll(column, 1, axis=1)
        above_used = np.roll(stream_used, -1, axis=1)
        below_used = np.roll(stream_used, 1, axis=1)
        neighbour_sum = np.where(above_used, above, 0.0) + np.where(below_used, below, 0.0)
        neighbour_count = above_used.astype(float) + below_used.astype(float)
        fallback = masked_row_means(column, stream_used)
        neighbour_mean = np.where(
            neighbour_count > 0, neighbour_sum / np.maximum(neighbour_count, 1), fallback[:, None]
        )
        fill = dropped & needs_fill[:, None]
        radiated[:, :, s] = np.where(fill, leakage_linear * neighbour_mean, radiated[:, :, s])
    return radiated


def effective_gains(
    gains: np.ndarray,
    interference: Optional[np.ndarray],
    noise_mw: float,
) -> np.ndarray:
    """Per-(subcarrier, stream) S(I)NR-per-mW: ``g / (I + σ²)``.

    The quantity Algorithm 1 consumes in its Equi-SINR flavour (§3.2.1):
    passing these gains to a plain Equi-SNR allocator equalizes SINR.
    Shared by :func:`allocate_single` and the optimization oracle so both
    agree on the problem being solved before comparing solutions.
    """
    gains = np.asarray(gains, dtype=float)
    n_sc = gains.shape[0]
    denominator = noise_mw + (
        np.zeros(n_sc) if interference is None else np.asarray(interference, dtype=float)
    )
    if gains.ndim == 1:
        return gains / denominator
    return gains / denominator[:, None]


#: A per-stream allocator: (effective gains, power budget) → Allocation.
#: ``equi_snr.allocate`` implements Equi-S(I)NR; ``mercury.mercury_allocate``
#: implements the COPA+ mercury/water-filling variant.
StreamAllocator = Callable[[np.ndarray, float], Allocation]


def _stream_budgets(gains: np.ndarray, total_power: float, split: str) -> np.ndarray:
    """Divide the power budget between streams.

    ``"equal"`` is the paper's choice (each stream optimized independently,
    Fig. 6).  ``"proportional"`` weights budgets by each stream's mean gain
    — a waterfilling-flavoured alternative benchmarked as an ablation.
    """
    n_streams = gains.shape[1]
    if split == "equal":
        return np.full(n_streams, total_power / n_streams)
    if split == "proportional":
        weights = gains.mean(axis=0)
        total_weight = weights.sum()
        if total_weight <= 0:
            return np.full(n_streams, total_power / n_streams)
        return total_power * weights / total_weight
    raise ValueError(f"unknown stream split {split!r}")


def allocate_single(
    gains: np.ndarray,
    total_power: float,
    interference: Optional[np.ndarray] = None,
    noise_mw: float = 1.0,
    allocator: StreamAllocator = equi_snr.allocate,
    stream_split: str = "equal",
) -> StreamAllocation:
    """Allocate each stream of one transmission with no concurrent sender.

    ``gains`` has shape (n_sc, n_streams): the matched-filter signal gain.
    The power budget is split between streams per ``stream_split`` (each
    stream is then optimized independently per Fig. 6).  ``interference``
    (n_sc,) optional per-subcarrier interference power at the client.
    """
    gains = np.asarray(gains, dtype=float)
    if gains.ndim != 2:
        raise ValueError("gains must have shape (n_subcarriers, n_streams)")
    n_sc, n_streams = gains.shape
    effective = effective_gains(gains, interference, noise_mw)
    budgets = _stream_budgets(gains, total_power, stream_split)
    empty = Allocation(
        powers=np.zeros(n_sc),
        used=np.zeros(n_sc, dtype=bool),
        equalized_snr=0.0,
        mcs=None,
        goodput_bps=0.0,
    )
    allocations = [
        allocator(effective[:, s], float(budgets[s])) if budgets[s] > 0 else empty
        for s in range(n_streams)
    ]
    powers = np.stack([a.powers for a in allocations], axis=1)
    used = np.stack([a.used for a in allocations], axis=1)
    return StreamAllocation(powers=powers, used=used, per_stream=allocations)


@dataclass
class BatchStreamAllocation:
    """Per-AP allocation for a whole batch of topologies.

    The struct-of-arrays counterpart of :class:`StreamAllocation`: row
    ``b`` of every field is what the serial path computes for topology
    ``b``.  ``per_stream`` holds one :class:`BatchAllocation` per stream.
    """

    #: (n_rows, n_sc, n_streams) transmit powers in mW.
    powers: np.ndarray
    #: (n_rows, n_sc, n_streams) data-carrying mask.
    used: np.ndarray
    #: Per-stream batched Algorithm-1 results.
    per_stream: List[BatchAllocation]

    @property
    def n_rows(self) -> int:
        return self.powers.shape[0]

    @property
    def n_streams(self) -> int:
        return self.powers.shape[2]

    def predicted_goodput_bps(self) -> np.ndarray:
        """(n_rows,) replica of ``StreamAllocation.predicted_goodput_bps``.

        Accumulated stream by stream in order, mirroring the serial
        ``sum()`` over per-stream goodputs exactly.
        """
        total = np.zeros(self.n_rows)
        for allocation in self.per_stream:
            total = total + allocation.goodput_bps
        return total

    def n_dropped(self) -> np.ndarray:
        """(n_rows,) total dropped subcarriers across streams."""
        total = np.zeros(self.n_rows, dtype=int)
        for allocation in self.per_stream:
            total = total + allocation.n_dropped()
        return total

    def row(self, b: int) -> StreamAllocation:
        """Materialize row ``b`` as the serial :class:`StreamAllocation`."""
        return StreamAllocation(
            powers=self.powers[b].copy(),
            used=self.used[b].copy(),
            per_stream=[allocation.row(b) for allocation in self.per_stream],
        )


#: A batched per-stream allocator: ((n_rows, n_sc) effective gains, power
#: budget) → BatchAllocation.  ``equi_snr.allocate_batch`` and
#: ``mercury.mercury_allocate_batch`` are the shipped implementations.
BatchStreamAllocator = Callable[[np.ndarray, float], BatchAllocation]


def allocate_single_batch(
    gains: np.ndarray,
    total_power: float,
    interference: Optional[np.ndarray] = None,
    noise_mw: float = 1.0,
    allocator: BatchStreamAllocator = equi_snr.allocate_batch,
) -> BatchStreamAllocation:
    """Topology-batched :func:`allocate_single` (equal stream split).

    ``gains`` has shape (n_rows, n_sc, n_streams); ``interference`` is an
    optional (n_rows, n_sc) array.  Row ``b`` of the result is
    bit-identical to ``allocate_single(gains[b], ...)``.
    """
    gains = np.asarray(gains, dtype=float)
    if gains.ndim != 3:
        raise ValueError("gains must have shape (n_rows, n_subcarriers, n_streams)")
    n_rows, n_sc, n_streams = gains.shape
    denominator = noise_mw + (
        np.zeros((n_rows, n_sc)) if interference is None else np.asarray(interference, dtype=float)
    )
    effective = gains / denominator[:, :, None]
    budget = total_power / n_streams
    empty = BatchAllocation(
        powers=np.zeros((n_rows, n_sc)),
        used=np.zeros((n_rows, n_sc), dtype=bool),
        equalized_snr=np.zeros(n_rows),
        mcs_index=np.full(n_rows, -1),
        goodput_bps=np.zeros(n_rows),
    )
    allocations = [
        allocator(effective[:, :, s], float(budget)) if budget > 0 else empty
        for s in range(n_streams)
    ]
    powers = np.stack([a.powers for a in allocations], axis=2)
    used = np.stack([a.used for a in allocations], axis=2)
    return BatchStreamAllocation(powers=powers, used=used, per_stream=allocations)


@dataclass
class ConcurrentContext:
    """Everything the concurrent allocator needs about the two transmissions.

    Index 0/1 identifies the two APs.  ``gains[a]`` is AP a's signal gain
    at its *own* client, shape (n_sc, n_streams_a).  ``coupling[a]`` is the
    per-antenna interference gain of AP a's streams at the *other* AP's
    client, same shape.  All gains are per unit transmit power.
    """

    gains: Sequence[np.ndarray]
    coupling: Sequence[np.ndarray]
    budgets: Sequence[float]
    noise_mw: Sequence[float]
    leakage_linear: float = 10.0 ** (-27.0 / 10.0)

    def __post_init__(self):
        if len(self.gains) != 2 or len(self.coupling) != 2:
            raise ValueError("exactly two APs are supported")
        for a in range(2):
            if self.gains[a].shape != self.coupling[a].shape:
                raise ValueError("gains and coupling must have matching shapes")


@dataclass
class ConcurrentAllocation:
    """Joint allocation for the two concurrent transmissions."""

    allocations: List[StreamAllocation]
    iterations: int
    converged: bool

    @property
    def predicted_aggregate_bps(self) -> float:
        return float(sum(a.predicted_goodput_bps for a in self.allocations))


def _interference_at(context: ConcurrentContext, victim: int, other_radiated: np.ndarray) -> np.ndarray:
    """Interference power (n_sc,) at client ``victim`` given the other AP's radiated powers."""
    other = 1 - victim
    return np.sum(context.coupling[other] * other_radiated, axis=1)


def allocate_concurrent(
    context: ConcurrentContext,
    max_iterations: int = 8,
    tolerance: float = 1e-3,
    allocator: StreamAllocator = equi_snr.allocate,
    on_iteration: Optional[Callable[[int, ConcurrentAllocation], None]] = None,
    collector=None,
) -> ConcurrentAllocation:
    """Run the Figure-6 iteration and return the best allocation found.

    ``collector`` (a :class:`repro.obs.Collector`) records how hard the
    iteration worked: a histogram of iteration counts and convergence
    counters — the §3.2.1 telemetry the observability layer surfaces.
    """
    n_sc = context.gains[0].shape[0]

    # Step 1: the other sender is assumed to spread power equally.
    radiated = [
        np.full(context.gains[a].shape, context.budgets[a] / (context.gains[a].shape[1] * n_sc))
        for a in range(2)
    ]

    best: Optional[ConcurrentAllocation] = None
    previous_powers: Optional[List[np.ndarray]] = None
    converged = False
    iterations_run = 0

    for iteration in range(1, max_iterations + 1):
        iterations_run = iteration
        allocations: List[StreamAllocation] = []
        for a in range(2):
            interference = _interference_at(context, victim=a, other_radiated=radiated[1 - a])
            allocations.append(
                allocate_single(
                    context.gains[a],
                    context.budgets[a],
                    interference=interference,
                    noise_mw=context.noise_mw[a],
                    allocator=allocator,
                )
            )
        candidate = ConcurrentAllocation(allocations=allocations, iterations=iteration, converged=False)
        if on_iteration is not None:
            on_iteration(iteration, candidate)
        if best is None or candidate.predicted_aggregate_bps > best.predicted_aggregate_bps:
            best = candidate

        new_radiated = [
            radiated_powers(allocations[a].powers, allocations[a].used, context.leakage_linear)
            for a in range(2)
        ]
        if previous_powers is not None:
            scale = sum(context.budgets)
            change = sum(
                float(np.abs(new_radiated[a] - previous_powers[a]).sum()) for a in range(2)
            )
            if change <= tolerance * scale:
                converged = True
                radiated = new_radiated
                break
        previous_powers = new_radiated
        radiated = new_radiated

    assert best is not None
    if collector is not None:
        collector.observe("alloc.concurrent_iterations", iterations_run)
        collector.inc("alloc.converged" if converged else "alloc.unconverged")
        collector.inc(
            "alloc.concurrent_dropped_subcarriers",
            sum(
                stream.n_dropped
                for allocation in best.allocations
                for stream in allocation.per_stream
            ),
        )
    return ConcurrentAllocation(
        allocations=best.allocations,
        iterations=iterations_run,
        converged=converged,
    )


@dataclass
class BatchConcurrentContext:
    """Batched :class:`ConcurrentContext`: one row per topology.

    ``gains[a]``/``coupling[a]`` have shape (n_rows, n_sc, n_streams_a);
    budgets and noise floors are shared across the batch (the engine only
    batches topologies with identical configuration).
    """

    gains: Sequence[np.ndarray]
    coupling: Sequence[np.ndarray]
    budgets: Sequence[float]
    noise_mw: Sequence[float]
    leakage_linear: float = 10.0 ** (-27.0 / 10.0)

    def __post_init__(self):
        if len(self.gains) != 2 or len(self.coupling) != 2:
            raise ValueError("exactly two APs are supported")
        for a in range(2):
            if self.gains[a].shape != self.coupling[a].shape:
                raise ValueError("gains and coupling must have matching shapes")

    @property
    def n_rows(self) -> int:
        return self.gains[0].shape[0]


def _merge_batch_allocation(new: BatchAllocation, old: BatchAllocation, take) -> BatchAllocation:
    """Rowwise ``new where take else old`` over every field."""
    return BatchAllocation(
        powers=np.where(take[:, None], new.powers, old.powers),
        used=np.where(take[:, None], new.used, old.used),
        equalized_snr=np.where(take, new.equalized_snr, old.equalized_snr),
        mcs_index=np.where(take, new.mcs_index, old.mcs_index),
        goodput_bps=np.where(take, new.goodput_bps, old.goodput_bps),
    )


def _merge_batch_stream(
    new: BatchStreamAllocation, old: BatchStreamAllocation, take
) -> BatchStreamAllocation:
    return BatchStreamAllocation(
        powers=np.where(take[:, None, None], new.powers, old.powers),
        used=np.where(take[:, None, None], new.used, old.used),
        per_stream=[
            _merge_batch_allocation(n, o, take) for n, o in zip(new.per_stream, old.per_stream)
        ],
    )


def allocate_concurrent_batch(
    context: BatchConcurrentContext,
    max_iterations: int = 8,
    tolerance: float = 1e-3,
    allocator: BatchStreamAllocator = equi_snr.allocate_batch,
    collector=None,
):
    """Topology-batched Figure-6 iteration, bit-identical per row.

    Returns ``(allocations, iterations, converged)`` where ``allocations``
    is a list of two :class:`BatchStreamAllocation` (one per AP) holding
    each row's best-seen solution, and ``iterations``/``converged`` are
    (n_rows,) arrays.  Rows converge independently: a row that meets the
    tolerance is frozen (its best solution, radiated powers and iteration
    count stop updating) while the rest of the batch keeps iterating, so
    every row sees exactly the serial iteration trajectory.

    ``collector`` receives the same per-topology telemetry the serial
    :func:`allocate_concurrent` records (iteration histogram, convergence
    counters, dropped-subcarrier totals).
    """
    n_rows = context.n_rows
    n_sc = context.gains[0].shape[1]

    # Step 1: the other sender is assumed to spread power equally.
    radiated = [
        np.full(
            context.gains[a].shape, context.budgets[a] / (context.gains[a].shape[2] * n_sc)
        )
        for a in range(2)
    ]

    best: Optional[List[BatchStreamAllocation]] = None
    best_aggregate = np.zeros(n_rows)
    previous_powers: Optional[List[np.ndarray]] = None
    active = np.ones(n_rows, dtype=bool)
    converged = np.zeros(n_rows, dtype=bool)
    iterations = np.zeros(n_rows, dtype=int)

    for iteration in range(1, max_iterations + 1):
        iterations = np.where(active, iteration, iterations)
        allocations: List[BatchStreamAllocation] = []
        for a in range(2):
            interference = np.sum(context.coupling[1 - a] * radiated[1 - a], axis=2)
            allocations.append(
                allocate_single_batch(
                    context.gains[a],
                    context.budgets[a],
                    interference=interference,
                    noise_mw=context.noise_mw[a],
                    allocator=allocator,
                )
            )
        aggregate = np.zeros(n_rows)
        for allocation in allocations:
            aggregate = aggregate + allocation.predicted_goodput_bps()
        if best is None:
            best = allocations
            best_aggregate = aggregate
        else:
            improved = active & (aggregate > best_aggregate)
            best = [
                _merge_batch_stream(allocations[a], best[a], improved) for a in range(2)
            ]
            best_aggregate = np.where(improved, aggregate, best_aggregate)

        new_radiated = [
            radiated_powers_batch(
                allocations[a].powers, allocations[a].used, context.leakage_linear
            )
            for a in range(2)
        ]
        if previous_powers is not None:
            scale = sum(context.budgets)
            change = np.zeros(n_rows)
            for a in range(2):
                change = change + np.abs(new_radiated[a] - previous_powers[a]).reshape(
                    n_rows, -1
                ).sum(axis=1)
            newly_converged = active & (change <= tolerance * scale)
            converged |= newly_converged
            active &= ~newly_converged
        if previous_powers is None:
            previous_powers = new_radiated
            radiated = new_radiated
        else:
            # Frozen rows stop updating; the serial loop has already
            # broken out of them.
            previous_powers = [
                np.where(active[:, None, None], new_radiated[a], previous_powers[a])
                for a in range(2)
            ]
            radiated = [
                np.where(active[:, None, None], new_radiated[a], radiated[a]) for a in range(2)
            ]
        if not active.any():
            break

    assert best is not None
    if collector is not None:
        total_dropped = np.zeros(n_rows, dtype=int)
        for allocation in best:
            total_dropped = total_dropped + allocation.n_dropped()
        for b in range(n_rows):
            collector.observe("alloc.concurrent_iterations", int(iterations[b]))
            collector.inc("alloc.converged" if converged[b] else "alloc.unconverged")
        collector.inc("alloc.concurrent_dropped_subcarriers", int(total_dropped.sum()))
    return best, iterations, converged
