"""§4.6: per-subcarrier bit-rates with one decoder per coding rate.

Current hardware forces one modulation/code across all subcarriers, so the
weakest subcarriers cap the whole link.  If a receiver instead ran one
decoder per 802.11 coding rate (four), each subcarrier could use the MCS
its own SINR supports: subcarriers sharing a coding rate are concatenated
into one codeword per rate and decoded together.

Figure 14 compares this against single-decoder CSMA: with a single
antenna, multiple decoders mostly help CSMA (which cannot drop subcarriers
and so has high SINR spread); in the 4×2/3×2 MIMO cases COPA's subcarrier
selection has already flattened the SINR distribution, so the extra gain
is only ~5–10%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..phy.ber import uncoded_ber
from ..phy.coding import coded_ber, frame_error_rate
from ..phy.constants import MCS_TABLE, MPDU_PAYLOAD_BYTES, N_DATA_SUBCARRIERS, Mcs

__all__ = ["MultiDecoderSelection", "per_subcarrier_rates"]


@dataclass(frozen=True)
class MultiDecoderSelection:
    """Outcome of per-subcarrier rate selection."""

    #: MCS index per (subcarrier, stream) cell, −1 where the cell is unused.
    mcs_indices: np.ndarray
    #: Expected goodput in bit/s summed over all per-rate decoders.
    goodput_bps: float
    #: Goodput contributed by each coding rate's decoder.
    per_code_rate_bps: Dict[Tuple[int, int], float]

    @property
    def rate_mbps(self) -> float:
        return self.goodput_bps / 1e6


def _cell_mcs(sinr: np.ndarray, payload_bytes: int, mcs_table: Sequence[Mcs]) -> np.ndarray:
    """Best MCS per cell judged on that cell's own SINR.

    Each cell is scored by ``per-cell rate × (1 − FER)`` with the FER of a
    full MPDU at the cell's BER — a pessimistic proxy that keeps marginal
    cells from joining a decoder group they would poison.
    """
    flat = sinr.ravel()
    best_rate = np.zeros(flat.size)
    best_index = np.full(flat.size, -1)
    for mcs in mcs_table:
        ber = uncoded_ber(flat, mcs.modulation)
        post = coded_ber(ber, mcs.code_rate)
        fer = frame_error_rate(post, payload_bytes * 8)
        rate = (mcs.rate_bps / N_DATA_SUBCARRIERS) * (1.0 - fer)
        better = rate > best_rate
        best_rate = np.where(better, rate, best_rate)
        best_index = np.where(better, mcs.index, best_index)
    return best_index.reshape(sinr.shape)


def per_subcarrier_rates(
    sinr_linear,
    used=None,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
    mcs_table: Sequence[Mcs] = MCS_TABLE,
) -> MultiDecoderSelection:
    """Select an MCS per (subcarrier, stream) cell and score the result.

    ``sinr_linear`` has shape (n_subcarriers,) or (n_subcarriers,
    n_streams).  Cells masked out by ``used`` (or with an SINR too poor for
    even the lowest MCS) carry nothing.  Cells that picked modulations
    sharing a coding rate form one decoder group: the group's codeword
    error rate is driven by the mean BER of its members, mirroring how a
    per-rate decoder would interleave them.
    """
    sinr = np.asarray(sinr_linear, dtype=float)
    if sinr.ndim == 1:
        sinr = sinr[:, None]
    if used is None:
        mask = np.ones(sinr.shape, dtype=bool)
    else:
        mask = np.asarray(used, dtype=bool)
        if mask.ndim == 1:
            mask = mask[:, None]
        if mask.shape != sinr.shape:
            raise ValueError(f"used mask shape {mask.shape} != sinr shape {sinr.shape}")

    indices = _cell_mcs(sinr, payload_bytes, mcs_table)
    indices = np.where(mask, indices, -1)

    by_index = {mcs.index: mcs for mcs in mcs_table}
    per_code_rate: Dict[Tuple[int, int], float] = {}
    total = 0.0
    for code_rate in sorted({mcs.code_rate for mcs in mcs_table}):
        members = [
            (k, s)
            for k in range(sinr.shape[0])
            for s in range(sinr.shape[1])
            if indices[k, s] >= 0 and by_index[int(indices[k, s])].code_rate == code_rate
        ]
        if not members:
            continue
        bers = []
        rate = 0.0
        for k, s in members:
            mcs = by_index[int(indices[k, s])]
            bers.append(float(uncoded_ber(sinr[k, s], mcs.modulation)))
            rate += mcs.rate_bps / N_DATA_SUBCARRIERS
        post = float(coded_ber(float(np.mean(bers)), code_rate))
        fer = float(frame_error_rate(post, payload_bytes * 8))
        contribution = rate * (1.0 - fer)
        per_code_rate[code_rate] = contribution
        total += contribution

    return MultiDecoderSelection(
        mcs_indices=indices,
        goodput_bps=float(total),
        per_code_rate_bps=per_code_rate,
    )
