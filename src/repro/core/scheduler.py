"""Beyond two senders: COPA pairing in an N-network neighbourhood (§3.1).

The paper limits its evaluation to two APs and sketches how more senders
would behave: the contention winner runs an ITS exchange with one
responder, the pair transmits (concurrently or sequentially), and other
radios honour the ITS airtime field like an RTS/CTS NAV.  This module
implements that round structure for N (AP, client) pairs:

1. realize channels between *all* nodes of an N-pair neighbourhood,
2. each round, a DCF draw elects a leader among backlogged APs,
3. the leader pairs with the responder whose *predicted* joint throughput
   is best (the ITS REQ race decided by channel quality), runs the
   two-network strategy engine on that sub-topology, and both transmit,
4. everyone else defers for the round.

A plain-CSMA baseline (winner transmits alone) runs on the same draws, so
aggregate and Jain-fairness comparisons are paired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..mac.csma import jain_fairness
from ..phy.channel import ChannelModel, ChannelSet
from ..phy.constants import NOISE_FLOOR_DBM
from ..phy.noise import ImperfectionModel
from ..phy.topology import Node, PathLossModel, Topology, TopologyGenerator
from ..util import dbm_to_mw
from .strategy import SCHEME_CSMA, StrategyEngine

__all__ = ["Neighbourhood", "RoundRecord", "ScheduleResult", "MultiApScheduler"]


@dataclass
class Neighbourhood:
    """N (AP, client) pairs with channels between every pair of nodes."""

    pairs: List[Tuple[Node, Node]]
    channels: Dict[Tuple[str, str], np.ndarray]
    gains_db: Dict[Tuple[str, str], float]
    noise_floor_mw: float = float(dbm_to_mw(NOISE_FLOOR_DBM))

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    @classmethod
    def sample(
        cls,
        n_pairs: int,
        rng: np.random.Generator,
        ap_antennas: int = 4,
        client_antennas: int = 2,
        generator: Optional[TopologyGenerator] = None,
        model: Optional[ChannelModel] = None,
    ) -> "Neighbourhood":
        """Drop N pairs on one floor and realize every pairwise channel."""
        if n_pairs < 2:
            raise ValueError("a neighbourhood needs at least two pairs")
        generator = generator if generator is not None else TopologyGenerator()
        model = model if model is not None else ChannelModel()
        width, height = generator.floor_m

        pairs: List[Tuple[Node, Node]] = []
        for index in range(n_pairs):
            ap_xy = (rng.uniform(0, width), rng.uniform(0, height))
            client_xy = generator._place_client(ap_xy, rng)
            pairs.append(
                (
                    Node(f"AP{index + 1}", ap_xy, ap_antennas),
                    Node(f"C{index + 1}", client_xy, client_antennas),
                )
            )

        nodes = [node for pair in pairs for node in pair]
        gains: Dict[Tuple[str, str], float] = {}
        loss_model: PathLossModel = generator.path_loss
        big = Topology(aps=[p[0] for p in pairs], clients=[p[1] for p in pairs])
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                shadowing = rng.normal(0.0, loss_model.shadowing_sigma_db)
                obstructed = rng.uniform() < generator.obstruction_probability
                gains[(a.name, b.name)] = -loss_model.path_loss_db(
                    a.distance_to(b), shadowing, obstructed
                )
        big.link_gain_db.update(gains)
        realized = model.realize(big, rng)
        return cls(pairs=pairs, channels=dict(realized.channels), gains_db=gains)

    def pairwise_channels(self, i: int, j: int) -> ChannelSet:
        """The two-network :class:`ChannelSet` for pairs ``i`` and ``j``."""
        if i == j:
            raise ValueError("a pair cannot coordinate with itself")
        selected = [self.pairs[i], self.pairs[j]]
        names = {node.name for pair in selected for node in pair}
        topology = Topology(
            aps=[pair[0] for pair in selected],
            clients=[pair[1] for pair in selected],
        )
        for (a, b), gain in self.gains_db.items():
            if a in names and b in names:
                topology.link_gain_db[(a, b)] = gain
        channels = {
            key: value
            for key, value in self.channels.items()
            if key[0] in names and key[1] in names
        }
        return ChannelSet(
            topology=topology, channels=channels, noise_floor_mw=self.noise_floor_mw
        )


@dataclass(frozen=True)
class RoundRecord:
    """One contention round's outcome."""

    leader: int
    partner: Optional[int]
    scheme: str
    #: Bits-per-second-equivalent delivered to each participating client.
    delivered_bps: Dict[int, float]


@dataclass
class ScheduleResult:
    """Accumulated outcome of a scheduler run."""

    rounds: List[RoundRecord]
    #: Client index → mean throughput across rounds (bit/s).
    throughput_bps: Dict[int, float]

    @property
    def aggregate_bps(self) -> float:
        return float(sum(self.throughput_bps.values()))

    @property
    def fairness(self) -> float:
        return jain_fairness(list(self.throughput_bps.values()))


class MultiApScheduler:
    """Round-based COPA pairing across an N-pair neighbourhood."""

    def __init__(
        self,
        neighbourhood: Neighbourhood,
        imperfections: Optional[ImperfectionModel] = None,
        rng: Optional[np.random.Generator] = None,
        fair: bool = False,
    ):
        self.neighbourhood = neighbourhood
        self.imperfections = imperfections if imperfections is not None else ImperfectionModel()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.fair = fair
        # Pairwise strategy outcomes are channel-static: compute lazily, once.
        self._outcomes: Dict[Tuple[int, int], object] = {}

    def _outcome(self, i: int, j: int):
        key = (min(i, j), max(i, j))
        if key not in self._outcomes:
            channels = self.neighbourhood.pairwise_channels(*key)
            self._outcomes[key] = StrategyEngine(
                channels,
                imperfections=self.imperfections,
                rng=np.random.default_rng(hash(key) % (2**32)),
            ).run()
        return self._outcomes[key]

    def _best_partner(self, leader: int) -> Tuple[int, object]:
        """The responder whose predicted pairing aggregate is highest."""
        best_partner, best_outcome, best_value = -1, None, -1.0
        for candidate in range(self.neighbourhood.n_pairs):
            if candidate == leader:
                continue
            outcome = self._outcome(leader, candidate)
            chosen = outcome.copa_fair if self.fair else outcome.copa
            predicted = outcome.predictions[
                outcome.copa_fair_choice if self.fair else outcome.copa_choice
            ]
            if predicted.aggregate_bps > best_value:
                best_value = predicted.aggregate_bps
                best_partner, best_outcome = candidate, outcome
        assert best_outcome is not None
        return best_partner, best_outcome

    def _round_copa(self, leader: int) -> RoundRecord:
        partner, outcome = self._best_partner(leader)
        chosen = outcome.copa_fair if self.fair else outcome.copa
        key = (min(leader, partner), max(leader, partner))
        # client_throughput order follows the sub-topology's pair order.
        first, second = key
        delivered = {
            first: chosen.client_throughput_bps[0],
            second: chosen.client_throughput_bps[1],
        }
        return RoundRecord(
            leader=leader, partner=partner, scheme=chosen.name, delivered_bps=delivered
        )

    def _round_csma(self, leader: int) -> RoundRecord:
        """Baseline: the winner transmits alone for the round."""
        other = (leader + 1) % self.neighbourhood.n_pairs
        outcome = self._outcome(leader, other)
        csma = outcome.schemes[SCHEME_CSMA]
        key = (min(leader, other), max(leader, other))
        position = key.index(leader)
        # CSMA's per-client figure is already halved for turn-taking;
        # transmitting alone for the whole round doubles it back.
        delivered = {leader: csma.client_throughput_bps[position] * 2.0}
        return RoundRecord(leader=leader, partner=None, scheme="csma", delivered_bps=delivered)

    def run(self, n_rounds: int, mode: str = "copa") -> ScheduleResult:
        """Simulate ``n_rounds`` contention rounds.

        ``mode``: ``"copa"`` pairs the winner with its best responder;
        ``"csma"`` lets the winner transmit alone (the baseline).
        """
        if mode not in ("copa", "csma"):
            raise ValueError(f"unknown mode {mode!r}")
        n = self.neighbourhood.n_pairs
        totals = {i: 0.0 for i in range(n)}
        rounds: List[RoundRecord] = []
        for _ in range(n_rounds):
            leader = int(self.rng.integers(0, n))
            record = self._round_copa(leader) if mode == "copa" else self._round_csma(leader)
            rounds.append(record)
            for client, bps in record.delivered_bps.items():
                totals[client] += bps
        throughput = {i: totals[i] / n_rounds for i in range(n)}
        return ScheduleResult(rounds=rounds, throughput_bps=throughput)
