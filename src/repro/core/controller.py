"""A per-AP COPA controller: the glue between MAC, CSI and strategy.

:class:`CopaAccessPoint` models one AP's bookkeeping — CSI overheard from
clients, a downlink traffic backlog, leader/follower roles — and
:class:`CopaSession` runs two of them against a simulated channel over
wall-clock time: contention, the ITS exchange (with real compressed-CSI
payload sizes), strategy selection through the
:class:`~repro.core.strategy.StrategyEngine`, and per-TXOP throughput
accounting.  This is the "whole system" view the examples use; the
figure-by-figure benchmarks drive the strategy engine directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..mac.compression import compress_csi
from ..mac.csi_cache import CsiCache
from ..mac.frames import Decision, ItsAck, ItsInit, ItsReq
from ..mac.timing import MacOverheadModel
from ..phy.channel import ChannelSet
from ..phy.noise import ImperfectionModel
from .strategy import SCHEME_COPA_SEQ, SchemeResult, StrategyEngine, StrategyOutcome

__all__ = ["CopaAccessPoint", "TxopRecord", "CopaSession"]


@dataclass
class CopaAccessPoint:
    """One COPA AP's control-plane state."""

    name: str
    client: str
    coherence_s: float = 0.030
    backlog_bits: float = float("inf")
    cache: CsiCache = field(init=False)

    def __post_init__(self):
        self.cache = CsiCache(self.coherence_s)

    def overhear(self, sender: str, channel: np.ndarray, now_s: float) -> None:
        """Record CSI measured from an overheard transmission (§3.1 ①)."""
        self.cache.update(sender, channel, now_s)

    def has_fresh_csi(self, now_s: float, senders) -> bool:
        return all(self.cache.is_fresh(sender, now_s) for sender in senders)

    def backlogged(self) -> bool:
        return self.backlog_bits > 0

    def drain(self, bits: float) -> None:
        if self.backlog_bits != float("inf"):
            self.backlog_bits = max(self.backlog_bits - bits, 0.0)


@dataclass(frozen=True)
class TxopRecord:
    """One coordinated transmit opportunity in a session run."""

    start_s: float
    leader: str
    decision: Decision
    scheme: str
    #: Bits delivered to each client in this TXOP.
    delivered_bits: Tuple[float, float]
    #: Airtime consumed including the ITS exchange and PHY overheads.
    airtime_s: float
    csi_refreshed: bool
    #: Control bytes that crossed the air (INIT + REQ + ACK).
    control_bytes: int


class CopaSession:
    """Two COPA APs coordinating over one (static) channel realization.

    The channel is assumed quasi-static: CSI stays valid for one coherence
    time, after which the APs re-measure and the session re-runs strategy
    selection.  ``fair`` selects the incentive-compatible variant.
    """

    def __init__(
        self,
        channels: ChannelSet,
        imperfections: Optional[ImperfectionModel] = None,
        timing: Optional[MacOverheadModel] = None,
        coherence_s: float = 0.030,
        fair: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        self.channels = channels
        self.imperfections = imperfections if imperfections is not None else ImperfectionModel()
        self.timing = timing if timing is not None else MacOverheadModel()
        self.coherence_s = coherence_s
        self.fair = fair
        self.rng = rng if rng is not None else np.random.default_rng(0)

        topology = channels.topology
        self.aps = [
            CopaAccessPoint(ap.name, client.name, coherence_s)
            for ap, client in zip(topology.aps, topology.clients)
        ]
        self._outcome: Optional[StrategyOutcome] = None
        self._outcome_at_s: Optional[float] = None

    # ------------------------------------------------------------------

    def _refresh_strategy(self, now_s: float) -> StrategyOutcome:
        """Re-measure CSI and re-run strategy selection (once per coherence)."""
        outcome = StrategyEngine(
            self.channels,
            imperfections=self.imperfections,
            rng=self.rng,
            coherence_s=self.coherence_s,
        ).run()
        for ap in self.aps:
            for client in (ap.client, self._other(ap).client):
                ap.overhear(client, self.channels.channel(client, ap.name), now_s)
        self._outcome = outcome
        self._outcome_at_s = now_s
        return outcome

    def _other(self, ap: CopaAccessPoint) -> CopaAccessPoint:
        return self.aps[1] if ap is self.aps[0] else self.aps[0]

    def _current_outcome(self, now_s: float) -> Tuple[StrategyOutcome, bool]:
        stale = (
            self._outcome is None
            or self._outcome_at_s is None
            or now_s - self._outcome_at_s > self.coherence_s
        )
        if stale:
            return self._refresh_strategy(now_s), True
        assert self._outcome is not None
        return self._outcome, False

    def _chosen(self, outcome: StrategyOutcome) -> SchemeResult:
        return outcome.copa_fair if self.fair else outcome.copa

    # ------------------------------------------------------------------

    def run_txop(self, now_s: float) -> TxopRecord:
        """One coordinated TXOP: contention, ITS exchange, transmission."""
        outcome, refreshed = self._current_outcome(now_s)
        leader_index = int(self.rng.integers(0, 2))
        leader = self.aps[leader_index]
        follower = self._other(leader)

        # Build the actual control frames to account real payload sizes.
        init = ItsInit(leader.name, leader.client, airtime_us=int(self.timing.txop_s * 1e6))
        csi_blob = b""
        if refreshed:
            for client in (leader.client, follower.client):
                csi_blob += compress_csi(self.channels.channel(follower.name, client))
        req = ItsReq(leader.name, follower.name, leader.client, follower.client, csi_blob)
        chosen = self._chosen(outcome)
        decision = Decision.CONCURRENT if chosen.concurrent else Decision.SEQUENTIAL
        precoder_blob = bytes(self.timing.precoder_bits // 8) if (refreshed and chosen.concurrent) else b""
        ack = ItsAck(
            leader.name, follower.name, leader.client, follower.client, decision, precoder_blob
        )
        control_bytes = init.byte_size + req.byte_size + ack.byte_size
        exchange_s = (
            self.timing.control_airtime_s(init.byte_size)
            + self.timing.control_airtime_s(req.byte_size)
            + self.timing.control_airtime_s(ack.byte_size)
            + 3 * self.timing.sifs_s
        )

        # SchemeResult throughputs already include MAC overhead and airtime
        # sharing, so delivered bits per wall-clock TXOP follow directly.
        if chosen.concurrent:
            airtime = exchange_s + self.timing.data_fixed_overhead_s + self.timing.txop_s
            span = airtime
        else:
            airtime = exchange_s + 2 * (self.timing.data_fixed_overhead_s + self.timing.txop_s)
            span = airtime
        delivered = tuple(t * span for t in chosen.client_throughput_bps)
        for ap, bits in zip(self.aps, delivered):
            ap.drain(bits)

        return TxopRecord(
            start_s=now_s,
            leader=leader.name,
            decision=decision,
            scheme=chosen.name,
            delivered_bits=delivered,  # type: ignore[arg-type]
            airtime_s=airtime,
            csi_refreshed=refreshed,
            control_bytes=control_bytes,
        )

    def run(self, duration_s: float) -> List[TxopRecord]:
        """Run back-to-back TXOPs until ``duration_s`` of airtime elapses."""
        records: List[TxopRecord] = []
        now = 0.0
        while now < duration_s:
            record = self.run_txop(now)
            records.append(record)
            now += record.airtime_s + self.timing.contention_s
        return records

    @staticmethod
    def throughput_mbps(records: List[TxopRecord]) -> Tuple[float, float]:
        """Average per-client throughput over a run."""
        if not records:
            return (0.0, 0.0)
        total_time = records[-1].start_s + records[-1].airtime_s
        bits = [
            sum(r.delivered_bits[i] for r in records) for i in range(2)
        ]
        return tuple(b / total_time / 1e6 for b in bits)  # type: ignore[return-value]
