"""N-AP interference-graph strategy engine with dynamic clustering.

COPA's engine (:class:`repro.core.strategy.StrategyEngine`) coordinates
exactly two interfering (AP, client) networks.  This module generalizes
it to N networks partitioned into coordination clusters
(:mod:`repro.core.clustering`):

* **within a cluster** the full COPA machinery runs — sequential power
  allocation, concurrent beamforming/nulling with the N-player
  best-response dynamics from the PR-6 oracle
  (:func:`repro.core.oracle.allocate_graph`), and the incentive-compatible
  strategy choice;
* **across clusters** networks fall back to plain CSMA: clusters take
  turns on the medium and do not interfere (idealized carrier sense, the
  same idealization the paper applies to its sequential schemes).

Reduction guarantees, enforced by ``tests/core/test_ncell_reduction.py``:

* N = 2 in a single cluster delegates verbatim to the legacy 2-AP engine
  with the caller's RNG, so it is **bit-identical by construction**;
* a cluster of exactly two APs inside a larger topology also runs the
  legacy engine (SDA roles included) on the restricted channel set;
* a cluster of one AP degenerates to CSMA/COPA-SEQ — no concurrent
  schemes, no interference.

Airtime model (documented in EXPERIMENTS.md): for sequential schemes all
N transmitters contend individually, so a cluster of ``k`` APs carries
``k/N`` of the airtime (its per-client values are already divided by
``k``).  For concurrent schemes each cluster transmits as one unit and
the ``n_clusters`` units split the medium evenly, so every cluster's
share is ``1/n_clusters``.  Both factors are exactly ``1.0`` for a single
cluster, which is why the single-cluster path can return the inner
engine's outcome unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..mac.timing import MacOverheadModel
from ..obs.collector import Collector, active
from ..phy.channel import ChannelSet
from ..phy.constants import TX_POWER_DBM
from ..phy.mimo import max_nulled_streams
from ..phy.noise import ImperfectionModel
from ..phy.rates import best_rate
from ..phy.topology import Topology
from . import equi_snr
from .clustering import DEFAULT_CLUSTER_POLICY, form_clusters
from .equi_sinr import StreamAllocation, StreamAllocator
from .oracle import GraphPlayer, InterferenceGraph, allocate_graph
from .precoding import TransmissionDesign, cross_coupling, multi_nulling_design, stream_gains
from .schemes import Scheme
from .strategy import SchemeResult, StrategyEngine, StrategyOutcome

__all__ = [
    "ClusterEngine",
    "GraphStrategyEngine",
    "GraphStrategyOutcome",
    "restrict_channels",
]

#: Concurrent entries of the Figure-8 menu: combined across clusters only
#: when every cluster of two or more APs produced them.
_CONCURRENT_SCHEMES = (Scheme.NULL, Scheme.CONC_BF, Scheme.CONC_NULL, Scheme.CONC_SDA)

#: What a singleton cluster transmits while a concurrent combined scheme
#: is on the air: its best sequential behaviour (equal power for the
#: vanilla-nulling baseline, allocated power otherwise).
_SINGLETON_FALLBACK = {
    Scheme.NULL: Scheme.CSMA,
    Scheme.CONC_BF: Scheme.COPA_SEQ,
    Scheme.CONC_NULL: Scheme.COPA_SEQ,
    Scheme.CONC_SDA: Scheme.COPA_SEQ,
}


def restrict_channels(channels: ChannelSet, members: Sequence[int]) -> ChannelSet:
    """The sub-:class:`ChannelSet` seen by one cluster of AP indices.

    Keeps the member APs, their clients, and every channel/link-gain
    entry whose endpoints both survive; order follows the original
    topology so restriction commutes with AP relabeling.
    """

    topology = channels.topology
    aps = [topology.aps[i] for i in members]
    clients = [topology.clients[i] for i in members]
    kept = {node.name for node in aps} | {node.name for node in clients}
    sub_topology = Topology(
        aps=aps,
        clients=clients,
        link_gain_db={
            pair: gain
            for pair, gain in topology.link_gain_db.items()
            if pair[0] in kept and pair[1] in kept
        },
    )
    sub_channels = {
        pair: array
        for pair, array in channels.channels.items()
        if pair[0] in kept and pair[1] in kept
    }
    return ChannelSet(
        topology=sub_topology,
        channels=sub_channels,
        noise_floor_mw=channels.noise_floor_mw,
        n_subcarriers=channels.n_subcarriers,
    )


class ClusterEngine(StrategyEngine):
    """The COPA strategy engine for one coordination cluster of k ≠ 2 APs.

    Shares design construction, allocation plumbing, measurement, and the
    choice rule with :class:`StrategyEngine`; what changes for k ≥ 3:

    * nulling designs null the *stacked* antennas of every other client
      in the cluster (:func:`repro.core.precoding.multi_nulling_design`);
    * the concurrent Equi-SINR iteration runs as N-player best-response
      dynamics over the cluster's interference graph
      (:func:`repro.core.oracle.allocate_graph`), which reproduces the
      2-player Figure-6 iteration exactly at k = 2;
    * SDA stays off — the paper's §3.4 role protocol is defined for a
      pair, and pair clusters keep using the legacy engine.

    At k = 1 the menu degenerates to CSMA and COPA-SEQ (no concurrent
    partner, no interference).
    """

    @property
    def cluster_size(self) -> int:
        return len(self.ap_names)

    # -- designs --------------------------------------------------------

    def _null_designs(self) -> List[TransmissionDesign]:
        designs = []
        for i, ap in enumerate(self.ap_names):
            own = self.client_names[i]
            victims = [
                self.csi[(ap, victim)]
                for j, victim in enumerate(self.client_names)
                if j != i
            ]
            designs.append(multi_nulling_design(self.csi[(ap, own)], victims, ap=ap, client=own))
        return designs

    # -- feasibility gates ----------------------------------------------

    def _victim_antennas(self) -> int:
        return (self.cluster_size - 1) * self.n_rx

    def _full_nulling_feasible(self) -> bool:
        if self.cluster_size < 2:
            return False
        full_rank = min(self.n_tx, self.n_rx)
        return max_nulled_streams(self.n_tx, self.n_rx, self._victim_antennas()) >= full_rank

    def _reduced_nulling_feasible(self) -> bool:
        if self.cluster_size < 2:
            return False
        return max_nulled_streams(self.n_tx, self.n_rx, self._victim_antennas()) >= 1

    def _sda_applicable(self) -> bool:
        return False

    # -- concurrent allocation ------------------------------------------

    def concurrent_graph(self, designs: Sequence[TransmissionDesign]) -> InterferenceGraph:
        """The cluster's interference graph under the given designs.

        Built from CSI exactly like the 2-AP :class:`ConcurrentContext`:
        signal gains via :func:`stream_gains`, coupling via
        :func:`cross_coupling` plus the §2.2 CSI-error residual floor.
        """
        players = []
        for design in designs:
            own_csi = self.csi[(design.ap, design.client)]
            players.append(
                GraphPlayer(
                    name=design.ap,
                    gains=stream_gains(own_csi, design),
                    budget=self.tx_power_mw,
                    noise_mw=self.channels.noise_floor_mw,
                )
            )
        coupling: Dict[Tuple[int, int], np.ndarray] = {}
        for victim in range(len(designs)):
            for source in range(len(designs)):
                if source == victim:
                    continue
                victim_csi = self.csi[(designs[source].ap, designs[victim].client)]
                coupled = cross_coupling(
                    victim_csi, designs[source], victim_active_rx=designs[victim].active_rx
                )
                residual = self.imperfections.csi_error_linear * float(
                    np.mean(np.abs(victim_csi) ** 2)
                )
                coupling[(victim, source)] = coupled + residual
        return InterferenceGraph(
            players=players,
            coupling=coupling,
            leakage_linear=self.imperfections.carrier_leakage_linear,
        )

    def _concurrent_allocation(self, designs: Sequence[TransmissionDesign]) -> List[StreamAllocation]:
        result = allocate_graph(
            self.concurrent_graph(designs),
            max_iterations=self.max_iterations,
            allocator=self.allocator,
            collector=self.collector if self.collector.enabled else None,
        )
        return result.allocations

    # -- menu -----------------------------------------------------------

    def run(self) -> StrategyOutcome:
        if self.cluster_size != 1:
            return super().run()
        return self._run_isolated()

    def _run_isolated(self) -> StrategyOutcome:
        """The k = 1 menu: CSMA and COPA-SEQ, nobody to coordinate with."""
        schemes: Dict[str, SchemeResult] = {}
        predictions: Dict[str, SchemeResult] = {}
        ovh = self.overheads
        col = self.collector

        with col.span(
            "engine.run",
            allocator=getattr(self.allocator, "__name__", str(self.allocator)),
            antennas=f"{self.n_tx}x{self.n_rx}",
        ):
            with col.span("design", kind="beamforming"):
                bf = self._bf_designs()

            with col.span(f"scheme:{Scheme.CSMA}"):
                with col.span("allocate"):
                    equal_bf = [self._equal_allocation(d) for d in bf]
                schemes[Scheme.CSMA], predictions[Scheme.CSMA] = self._both(
                    Scheme.CSMA, bf, equal_bf, False, ovh.csma
                )

            with col.span(f"scheme:{Scheme.COPA_SEQ}"):
                with col.span("allocate"):
                    seq_alloc = [self._sequential_allocation(design) for design in bf]
                self._note_allocations(seq_alloc)
                schemes[Scheme.COPA_SEQ], predictions[Scheme.COPA_SEQ] = self._both(
                    Scheme.COPA_SEQ, bf, seq_alloc, False, ovh.copa_sequential
                )

            with col.span("choose"):
                copa_choice = self._choose(predictions, fair=False)
                copa_fair_choice = self._choose(predictions, fair=True)
            if col.enabled:
                col.inc("engine.runs")
                col.inc(f"engine.choice.{copa_choice}")
                col.inc(f"engine.fair_choice.{copa_fair_choice}")
        return StrategyOutcome(
            schemes=schemes,
            predictions=predictions,
            copa_choice=copa_choice,
            copa_fair_choice=copa_fair_choice,
        )


@dataclass
class GraphStrategyOutcome:
    """Outcome of an N-AP run combined across coordination clusters.

    Presents the same read surface as :class:`StrategyOutcome`
    (``schemes``, ``predictions``, ``copa``/``copa_fair`` and the choice
    labels) so experiment aggregation, reporting, caching and the service
    compose unchanged; additionally exposes the clustering and each
    cluster's full outcome for drill-down.
    """

    #: Cluster memberships as tuples of AP indices into the topology.
    clusters: Tuple[Tuple[int, ...], ...]
    #: Per-cluster outcomes, aligned with ``clusters``.
    cluster_outcomes: Tuple[StrategyOutcome, ...]
    #: Child seeds used for the per-cluster engines ((),) for one cluster).
    cluster_seeds: Tuple[int, ...]
    #: Combined measured results per scheme, global client order.
    schemes: Dict[str, SchemeResult]
    #: Combined CSI-predicted results per scheme.
    predictions: Dict[str, SchemeResult]
    #: Per-cluster COPA choices, aligned with ``clusters``.
    copa_choices: Tuple[str, ...]
    copa_fair_choices: Tuple[str, ...]
    #: Combined measured result of the per-cluster COPA choices.
    copa_result: SchemeResult
    copa_fair_result: SchemeResult

    @property
    def copa(self) -> SchemeResult:
        return self.copa_result

    @property
    def copa_fair(self) -> SchemeResult:
        return self.copa_fair_result

    @property
    def copa_choice(self) -> str:
        return "+".join(self.copa_choices)

    @property
    def copa_fair_choice(self) -> str:
        return "+".join(self.copa_fair_choices)


class GraphStrategyEngine:
    """Evaluates the COPA strategy menu over an N-AP interference graph.

    Forms coordination clusters from the topology's link gains (no RNG
    involved), runs one engine per cluster — the legacy 2-AP
    :class:`StrategyEngine` for pair clusters, :class:`ClusterEngine`
    otherwise — and combines the per-cluster menus under the CSMA-across-
    clusters airtime model described in the module docstring.

    With a single cluster the inner outcome is returned unchanged; in
    particular N = 2 with one cluster constructs the legacy engine with
    the caller's RNG, making it bit-identical to today's 2-AP path by
    construction.
    """

    def __init__(
        self,
        channels: ChannelSet,
        imperfections: Optional[ImperfectionModel] = None,
        rng: Optional[np.random.Generator] = None,
        overhead_model: Optional[MacOverheadModel] = None,
        coherence_s: float = 0.030,
        tx_power_dbm: float = TX_POWER_DBM,
        allocator: StreamAllocator = equi_snr.allocate,
        max_iterations: int = 8,
        rate_selector=best_rate,
        collector: Optional[Collector] = None,
        oracle_check: bool = False,
        cluster_policy: str = DEFAULT_CLUSTER_POLICY,
        cluster_threshold_db: Optional[float] = None,
        max_cluster_size: Optional[int] = None,
    ):
        self.channels = channels
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._raw_collector = collector
        self.collector = active(collector)
        self.cluster_policy = cluster_policy
        self.cluster_threshold_db = cluster_threshold_db
        # Stored verbatim and forwarded to the per-cluster engines so
        # their defaulting matches a directly-constructed StrategyEngine.
        self._engine_kwargs = dict(
            imperfections=imperfections,
            overhead_model=overhead_model,
            coherence_s=coherence_s,
            tx_power_dbm=tx_power_dbm,
            allocator=allocator,
            max_iterations=max_iterations,
            rate_selector=rate_selector,
            oracle_check=oracle_check,
        )
        self.n_aps = len(channels.topology.aps)
        # Clustering reads only topology link gains: it never consumes the
        # RNG, so the single-cluster delegate sees the exact caller stream.
        self.clusters = form_clusters(
            channels.topology,
            policy=cluster_policy,
            threshold_db=cluster_threshold_db,
            max_cluster_size=max_cluster_size,
        )

    # -- engine construction --------------------------------------------

    def _engine_for(self, channels: ChannelSet, rng: np.random.Generator):
        cls = StrategyEngine if len(channels.topology.aps) == 2 else ClusterEngine
        return cls(channels, rng=rng, collector=self._raw_collector, **self._engine_kwargs)

    def run(self):
        """Evaluate all clusters and combine their menus.

        Returns the inner :class:`StrategyOutcome` unchanged for a single
        cluster, a :class:`GraphStrategyOutcome` otherwise.
        """
        col = self.collector
        with col.span(
            "engine.ncell",
            aps=self.n_aps,
            clusters=len(self.clusters),
            policy=self.cluster_policy,
        ):
            if col.enabled:
                col.inc("engine.ncell.runs")
                col.observe("engine.ncell.clusters", len(self.clusters))
            if len(self.clusters) == 1:
                return self._engine_for(self.channels, self.rng).run()
            # Independent child streams per cluster: derived from the task
            # RNG in cluster order, so results are reproducible from the
            # task seed alone and invariant to evaluation order.
            seeds = self.rng.integers(0, 2**63 - 1, size=len(self.clusters))
            outcomes = []
            for cluster, seed in zip(self.clusters, seeds):
                sub = restrict_channels(self.channels, cluster)
                outcomes.append(
                    self._engine_for(sub, np.random.default_rng(int(seed))).run()
                )
            return self._combine(outcomes, tuple(int(s) for s in seeds))

    # -- combination across clusters ------------------------------------

    def _share(self, concurrent: bool, cluster: Tuple[int, ...]) -> float:
        if concurrent:
            return 1.0 / len(self.clusters)
        return len(cluster) / float(self.n_aps)

    def _combined_result(
        self,
        name: str,
        concurrent: bool,
        per_cluster: Sequence[SchemeResult],
        per_cluster_shares: Optional[Sequence[float]] = None,
    ) -> SchemeResult:
        """Stitch per-cluster results into one global-client-order result."""
        n_clients = len(self.channels.topology.clients)
        throughput = [0.0] * n_clients
        rates: List = [None] * n_clients
        allocations: List = [None] * n_clients
        have_allocations = all(r.allocations is not None for r in per_cluster)
        for cluster, result, share in zip(
            self.clusters,
            per_cluster,
            per_cluster_shares
            if per_cluster_shares is not None
            else [self._share(concurrent, c) for c in self.clusters],
        ):
            for local, global_idx in enumerate(cluster):
                throughput[global_idx] = result.client_throughput_bps[local] * share
                rates[global_idx] = result.rates[local]
                if have_allocations:
                    allocations[global_idx] = result.allocations[local]
        return SchemeResult(
            name=name,
            concurrent=concurrent,
            client_throughput_bps=tuple(throughput),
            rates=tuple(rates),
            allocations=tuple(allocations) if have_allocations else None,
        )

    def _cluster_scheme(self, outcome: StrategyOutcome, scheme: str, predicted: bool):
        table = outcome.predictions if predicted else outcome.schemes
        if scheme in table:
            return table[scheme]
        return table[_SINGLETON_FALLBACK[scheme]]

    def _combine(
        self, outcomes: Sequence[StrategyOutcome], seeds: Tuple[int, ...]
    ) -> GraphStrategyOutcome:
        schemes: Dict[str, SchemeResult] = {}
        predictions: Dict[str, SchemeResult] = {}

        for scheme in (Scheme.CSMA, Scheme.COPA_SEQ):
            for predicted, table in ((False, schemes), (True, predictions)):
                table[scheme] = self._combined_result(
                    scheme,
                    False,
                    [o.predictions[scheme] if predicted else o.schemes[scheme] for o in outcomes],
                )

        coordinated = [len(cluster) >= 2 for cluster in self.clusters]
        for scheme in _CONCURRENT_SCHEMES:
            available = any(coordinated) and all(
                scheme in outcome.schemes
                for outcome, multi in zip(outcomes, coordinated)
                if multi
            )
            if not available:
                continue
            for predicted, table in ((False, schemes), (True, predictions)):
                table[scheme] = self._combined_result(
                    scheme,
                    True,
                    [self._cluster_scheme(o, scheme, predicted) for o in outcomes],
                )

        copa_choices = tuple(o.copa_choice for o in outcomes)
        copa_fair_choices = tuple(o.copa_fair_choice for o in outcomes)
        # Each cluster transmits its own chosen strategy; its airtime share
        # follows the chosen strategy's contention type.
        copa_result = self._combined_result(
            "copa",
            any(o.copa.concurrent for o in outcomes),
            [o.copa for o in outcomes],
            [self._share(o.copa.concurrent, c) for o, c in zip(outcomes, self.clusters)],
        )
        copa_fair_result = self._combined_result(
            "copa_fair",
            any(o.copa_fair.concurrent for o in outcomes),
            [o.copa_fair for o in outcomes],
            [self._share(o.copa_fair.concurrent, c) for o, c in zip(outcomes, self.clusters)],
        )
        return GraphStrategyOutcome(
            clusters=self.clusters,
            cluster_outcomes=tuple(outcomes),
            cluster_seeds=seeds,
            schemes=schemes,
            predictions=predictions,
            copa_choices=copa_choices,
            copa_fair_choices=copa_fair_choices,
            copa_result=copa_result,
            copa_fair_result=copa_fair_result,
        )
