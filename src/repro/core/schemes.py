"""Canonical scheme and series names — the single source of truth.

Before this module existed, ``"csma"``-style literals were duplicated
across ``strategy.py``, ``experiment.py``, the plots, the reports and the
golden tests.  Now there are exactly two enumerations:

* :class:`Scheme` — the transmission strategies the engine evaluates
  (the Figure 8 menu);
* :class:`SeriesKey` — the per-topology series an experiment reports,
  which adds the engine's *selections* (``copa``, ``copa_fair``) and the
  mercury/water-filling variants (``copa_plus``, ``copa_plus_fair``) to
  the directly measured schemes.

Both are ``str``-valued enums (StrEnum-style, backported so Python 3.9
works): members compare, hash and format exactly like their literal
values, so ``outcome.schemes["csma"]`` and f-strings keep working, while
typos now fail loudly at import time instead of silently at runtime.
"""

from __future__ import annotations

from enum import Enum, unique

__all__ = ["Scheme", "SeriesKey", "SCHEMES", "SERIES_KEYS", "COPA_CANDIDATES"]


class _StrEnum(str, Enum):
    """StrEnum backport: members ``str()`` and format as their values."""

    __str__ = str.__str__
    __format__ = str.__format__


@unique
class Scheme(_StrEnum):
    """The strategy menu of Figure 8 (names follow the paper)."""

    #: Sequential, equal power, no subcarrier selection (baseline).
    CSMA = "csma"
    #: Sequential + Equi-SNR power allocation & selection.
    COPA_SEQ = "copa_seq"
    #: Concurrent vanilla nulling, equal power (Null+SDA when overconstrained).
    NULL = "null"
    #: Concurrent, beamforming precoders + Equi-SINR (no nulling).
    CONC_BF = "conc_bf"
    #: Concurrent, nulling precoders + Equi-SINR.
    CONC_NULL = "conc_null"
    #: Concurrent, shut-down-antenna nulling + Equi-SINR (§3.4).
    CONC_SDA = "conc_sda"


@unique
class SeriesKey(_StrEnum):
    """Per-topology series an :class:`~repro.sim.experiment.ExperimentResult` reports."""

    CSMA = "csma"
    COPA_SEQ = "copa_seq"
    NULL = "null"
    #: The throughput-maximizing selection (§3.3).
    COPA = "copa"
    #: The incentive-compatible selection (§3.5).
    COPA_FAIR = "copa_fair"
    #: Mercury/water-filling COPA+ selections (the impractical upper bound).
    COPA_PLUS = "copa_plus"
    COPA_PLUS_FAIR = "copa_plus_fair"


#: Every engine scheme, menu order.
SCHEMES = tuple(Scheme)

#: Every reportable series, report order.  Plain strings for maximal
#: interop (enum members equal their values anyway).
SERIES_KEYS = tuple(key.value for key in SeriesKey)

#: Candidate schemes COPA's leader chooses between (Fig. 8); CSMA is the
#: status quo it abandons, NULL the vanilla baseline it never picks blindly.
COPA_CANDIDATES = (Scheme.COPA_SEQ, Scheme.CONC_BF, Scheme.CONC_NULL, Scheme.CONC_SDA)
