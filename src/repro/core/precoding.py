"""Precoding-matrix construction for COPA's strategies (§3.3, §3.4).

Builds, from (noisy) CSI, the four kinds of transmit designs the strategy
selector weighs against each other:

* **beamforming** — SVD precoding toward the own client, used by CSMA,
  COPA-SEQ, and the non-nulled concurrent strategy;
* **nulling** — nullspace projection toward the other AP's client combined
  with SVD beamforming inside the nullspace;
* **SDA (shut-down antenna)** — the §3.4 trick for overconstrained
  topologies: the follower's client disables its worst antenna so both APs
  regain enough degrees of freedom to null.

A design records which client receive antennas are active so the SINR
evaluation and the MMSE receiver use the same reduced channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..phy.mimo import max_nulled_streams, nulling_precoder, svd_beamformer

__all__ = [
    "TransmissionDesign",
    "beamforming_design",
    "nulling_design",
    "multi_nulling_design",
    "sda_designs",
    "stream_gains",
    "cross_coupling",
]


@dataclass
class TransmissionDesign:
    """One AP's transmit design: precoder plus active client antennas."""

    ap: str
    client: str
    #: Unit-column precoder, shape (n_sc, n_tx, n_streams).
    precoder: np.ndarray
    #: Indices of the client's receive antennas that stay powered on.
    active_rx: Tuple[int, ...]

    @property
    def n_streams(self) -> int:
        return self.precoder.shape[2]

    @property
    def n_subcarriers(self) -> int:
        return self.precoder.shape[0]


def _active(channel: np.ndarray, active_rx: Optional[Tuple[int, ...]]) -> np.ndarray:
    """Restrict a channel's receive antennas to the active subset."""
    if active_rx is None:
        return channel
    return channel[:, list(active_rx), :]


def beamforming_design(
    csi_own: np.ndarray,
    ap: str,
    client: str,
    n_streams: Optional[int] = None,
    active_rx: Optional[Tuple[int, ...]] = None,
) -> TransmissionDesign:
    """SVD transmit beamforming toward the own client."""
    channel = _active(csi_own, active_rx)
    n_sc, n_rx, n_tx = channel.shape
    if n_streams is None:
        n_streams = min(n_rx, n_tx)
    precoder = svd_beamformer(channel, n_streams)
    if active_rx is None:
        active_rx = tuple(range(n_rx))
    return TransmissionDesign(ap=ap, client=client, precoder=precoder, active_rx=active_rx)


def nulling_design(
    csi_own: np.ndarray,
    csi_cross: np.ndarray,
    ap: str,
    client: str,
    n_streams: Optional[int] = None,
    active_rx: Optional[Tuple[int, ...]] = None,
    victim_active_rx: Optional[Tuple[int, ...]] = None,
) -> TransmissionDesign:
    """Null toward the victim's active antennas, beamform to the own client.

    Raises ``ValueError`` when the problem is overconstrained (the
    nullspace is empty) — callers then fall back to :func:`sda_designs` or
    to a non-nulled strategy, mirroring Figure 8's strategy menu.
    """
    own = _active(csi_own, active_rx)
    victim = _active(csi_cross, victim_active_rx)
    n_sc, n_rx, n_tx = own.shape
    n_victim = victim.shape[1]
    limit = max_nulled_streams(n_tx, n_rx, n_victim)
    if limit < 1:
        raise ValueError(
            f"overconstrained: {n_tx} TX antennas cannot null {n_victim} antennas "
            f"and still send a stream"
        )
    if n_streams is None:
        n_streams = limit
    if n_streams > limit:
        raise ValueError(f"at most {limit} nulled streams possible, requested {n_streams}")
    precoder = nulling_precoder(own, victim, n_streams)
    if active_rx is None:
        active_rx = tuple(range(n_rx))
    return TransmissionDesign(ap=ap, client=client, precoder=precoder, active_rx=active_rx)


def multi_nulling_design(
    csi_own: np.ndarray,
    victim_csis: Sequence[np.ndarray],
    ap: str,
    client: str,
    n_streams: Optional[int] = None,
    active_rx: Optional[Tuple[int, ...]] = None,
) -> TransmissionDesign:
    """Null toward every victim in a coordination cluster at once.

    The victims' antennas are stacked into one aggregate receive array, so
    the nullspace projection zeroes the transmission at all of them
    simultaneously — the N-cell generalization of :func:`nulling_design`
    (with a single victim the two are identical).  Raises ``ValueError``
    when the stacked problem is overconstrained, exactly like the 2-AP
    case.
    """
    if not victim_csis:
        raise ValueError("multi_nulling_design needs at least one victim")
    stacked = np.concatenate(list(victim_csis), axis=1)
    return nulling_design(
        csi_own,
        stacked,
        ap=ap,
        client=client,
        n_streams=n_streams,
        active_rx=active_rx,
    )


def _best_antenna(csi_own: np.ndarray) -> int:
    """The client antenna with the highest mean received power."""
    power = np.sum(np.abs(csi_own) ** 2, axis=(0, 2))
    return int(np.argmax(power))


def sda_designs(
    leader_csi_own: np.ndarray,
    leader_csi_cross: np.ndarray,
    follower_csi_own: np.ndarray,
    follower_csi_cross: np.ndarray,
    leader_ap: str,
    leader_client: str,
    follower_ap: str,
    follower_client: str,
) -> Tuple[TransmissionDesign, TransmissionDesign]:
    """§3.4's shut-down-antenna resolution of an overconstrained topology.

    The follower's client keeps only its best antenna; the leader then
    nulls toward that single antenna (cheap) while the follower sends a
    reduced-rank transmission nulled at all of the leader client's
    antennas.  ``*_csi_cross`` is the CSI from each AP to the *other* AP's
    client.  Returns ``(leader_design, follower_design)``.
    """
    keep = _best_antenna(follower_csi_own)
    follower_active: Tuple[int, ...] = (keep,)

    leader_design = nulling_design(
        leader_csi_own,
        leader_csi_cross,
        ap=leader_ap,
        client=leader_client,
        victim_active_rx=follower_active,
    )
    follower_design = nulling_design(
        follower_csi_own,
        follower_csi_cross,
        ap=follower_ap,
        client=follower_client,
        active_rx=follower_active,
    )
    return leader_design, follower_design


def stream_gains(true_or_csi_channel: np.ndarray, design: TransmissionDesign) -> np.ndarray:
    """Per-(subcarrier, stream) signal gain at the design's client.

    The matched-filter gain ``||H_k w_s||^2``: multiplying by the stream's
    transmit power gives the received signal power.  Used by the power
    allocators as their predictive model (SVD streams are orthogonal at the
    own receiver, so cross-stream terms vanish under the design CSI).
    """
    channel = _active(true_or_csi_channel, design.active_rx)
    effective = channel @ design.precoder
    return np.sum(np.abs(effective) ** 2, axis=1)


def cross_coupling(victim_channel: np.ndarray, design: TransmissionDesign, victim_active_rx: Optional[Tuple[int, ...]] = None) -> np.ndarray:
    """Per-(subcarrier, stream) interference gain at a victim receiver.

    Mean received interference power per active victim antenna, per unit
    transmit power on the stream — the quantity the Equi-SINR iteration
    feeds back between streams (Fig. 6's "calculate inter-stream
    interference").
    """
    channel = _active(victim_channel, victim_active_rx)
    effective = channel @ design.precoder
    n_rx = effective.shape[1]
    return np.sum(np.abs(effective) ** 2, axis=1) / n_rx
