"""Typed strategy-engine configuration: :class:`EngineOptions`.

This replaces the untyped ``engine_kwargs: Optional[dict]`` that used to
be threaded through ``run_experiment`` → ``build_tasks`` → the worker
processes.  An :class:`EngineOptions` is

* **validated once**, at construction, instead of failing deep inside a
  worker process;
* **frozen**, so a task spec can share one instance across topologies;
* **picklable by construction** for every supported field — the only way
  to break pickling is to pass a non-module-level callable, which the
  runner still detects and degrades to the serial path.

Every field defaults to ``None``, meaning "use the engine's default", so
``EngineOptions()`` is behaviourally identical to passing no options at
all.  Plain dicts are still accepted everywhere via :meth:`coerce`, with
a :class:`DeprecationWarning` (see the migration note in EXPERIMENTS.md).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Mapping, Optional, Union

__all__ = ["EngineOptions"]


@dataclass(frozen=True)
class EngineOptions:
    """Keyword overrides for :class:`repro.core.strategy.StrategyEngine`.

    Parameters
    ----------
    allocator:
        Per-stream power allocator (e.g. ``repro.core.mercury
        .mercury_allocate`` for COPA+, or an ablation allocator).
    rate_selector:
        Rate-selection model (e.g. ``repro.core.multi_decoder
        .per_subcarrier_rates`` for the §4.6 hardware).
    max_iterations:
        Cap on the Figure-6 concurrent allocation iteration.
    tx_power_dbm:
        Per-AP transmit power budget.
    oracle_check:
        Shadow-validate sequential power allocations against the
        optimization oracle (:mod:`repro.core.oracle`) while the engine
        runs.  Mismatches are *recorded* (``oracle.mismatch`` counter on
        the engine's collector), never raised — an oracle bug must not be
        able to fail an experiment.  Off by default: each check costs an
        extra oracle solve per stream.
    """

    allocator: Optional[Callable] = None
    rate_selector: Optional[Callable] = None
    max_iterations: Optional[int] = None
    tx_power_dbm: Optional[float] = None
    oracle_check: Optional[bool] = None

    def __post_init__(self):
        if self.allocator is not None and not callable(self.allocator):
            raise TypeError(f"allocator must be callable, got {type(self.allocator).__name__}")
        if self.rate_selector is not None and not callable(self.rate_selector):
            raise TypeError(
                f"rate_selector must be callable, got {type(self.rate_selector).__name__}"
            )
        if self.max_iterations is not None:
            if isinstance(self.max_iterations, bool) or not isinstance(self.max_iterations, int):
                raise TypeError("max_iterations must be an int")
            if self.max_iterations < 1:
                raise ValueError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.tx_power_dbm is not None:
            if isinstance(self.tx_power_dbm, bool) or not isinstance(self.tx_power_dbm, (int, float)):
                raise TypeError("tx_power_dbm must be a number")
            if not math.isfinite(self.tx_power_dbm):
                raise ValueError("tx_power_dbm must be finite")
        if self.oracle_check is not None and not isinstance(self.oracle_check, bool):
            raise TypeError(
                f"oracle_check must be a bool, got {type(self.oracle_check).__name__}"
            )

    def engine_kwargs(self) -> Dict[str, Any]:
        """The non-default fields, as keyword arguments for the engine."""
        return {
            field.name: getattr(self, field.name)
            for field in fields(self)
            if getattr(self, field.name) is not None
        }

    @classmethod
    def coerce(
        cls,
        value: Union["EngineOptions", Mapping[str, Any], None],
        stacklevel: int = 3,
    ) -> "EngineOptions":
        """Normalize a caller-supplied options value.

        ``None`` → all defaults; an :class:`EngineOptions` passes through;
        a mapping (the legacy ``engine_kwargs`` dict) is converted with a
        :class:`DeprecationWarning`.  Unknown mapping keys raise
        :class:`TypeError` immediately — the engine would only have
        rejected them inside a worker process.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            warnings.warn(
                "passing engine options as a dict (engine_kwargs) is deprecated;"
                " construct a repro.core.options.EngineOptions instead",
                DeprecationWarning,
                stacklevel=stacklevel,
            )
            known = {field.name for field in fields(cls)}
            unknown = set(value) - known
            if unknown:
                raise TypeError(
                    f"unknown engine option(s) {sorted(unknown)}; "
                    f"EngineOptions accepts {sorted(known)}"
                )
            return cls(**dict(value))
        raise TypeError(
            f"options must be an EngineOptions, a mapping or None, got {type(value).__name__}"
        )
