"""Typed strategy-engine configuration: :class:`EngineOptions`.

This replaces the untyped ``engine_kwargs: Optional[dict]`` that used to
be threaded through ``run_experiment`` → ``build_tasks`` → the worker
processes.  An :class:`EngineOptions` is

* **validated once**, at construction, instead of failing deep inside a
  worker process;
* **frozen**, so a task spec can share one instance across topologies;
* **picklable by construction** for every supported field — the only way
  to break pickling is to pass a non-module-level callable, which the
  runner still detects and degrades to the serial path.

Every field defaults to ``None``, meaning "use the engine's default", so
``EngineOptions()`` is behaviourally identical to passing no options at
all.  The legacy ``engine_kwargs`` dict spelling is gone: entry points
normalize their ``options`` argument with :meth:`resolve`, which accepts
an :class:`EngineOptions` or ``None`` and raises a :class:`TypeError`
for anything else (see the migration note in EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
import math
import os
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Mapping, Optional

__all__ = ["EngineOptions"]

#: Fields never forwarded to :class:`StrategyEngine` as keyword
#: arguments.  ``backend`` configures the execution substrate (excluded
#: from fingerprints when left at the bit-identical reference); the
#: cluster fields configure the N-cell dispatch layer
#: (:class:`repro.core.ncell.GraphStrategyEngine`) and *are*
#: result-determining — ``repro.sim.fingerprint`` hashes them whenever
#: they are set.
_NON_ENGINE_FIELDS = frozenset({"backend", "cluster_policy", "cluster_threshold_db"})

#: Fields consumed by the N-cell dispatch layer; see :meth:`cluster_kwargs`.
_CLUSTER_FIELDS = ("cluster_policy", "cluster_threshold_db")

#: Environment variables read by :meth:`EngineOptions.from_env`.
_ENV_BACKEND = "REPRO_BACKEND"


@dataclass(frozen=True)
class EngineOptions:
    """Keyword overrides for :class:`repro.core.strategy.StrategyEngine`.

    Parameters
    ----------
    allocator:
        Per-stream power allocator (e.g. ``repro.core.mercury
        .mercury_allocate`` for COPA+, or an ablation allocator).
    rate_selector:
        Rate-selection model (e.g. ``repro.core.multi_decoder
        .per_subcarrier_rates`` for the §4.6 hardware).
    max_iterations:
        Cap on the Figure-6 concurrent allocation iteration.
    tx_power_dbm:
        Per-AP transmit power budget.
    oracle_check:
        Shadow-validate sequential power allocations against the
        optimization oracle (:mod:`repro.core.oracle`) while the engine
        runs.  Mismatches are *recorded* (``oracle.mismatch`` counter on
        the engine's collector), never raised — an oracle bug must not be
        able to fail an experiment.  Off by default: each check costs an
        extra oracle solve per stream.
    backend:
        Array backend for the batched engine, by registered name (see
        :mod:`repro.core.backend`; ``None`` means ``"numpy"``).  Validated
        against the registry at construction so a typo fails here, in the
        caller's stack frame, instead of inside a worker process.  The
        reference backend is bit-identical to the serial path; other
        backends stay within the documented 1e-6 tolerance policy, so
        ``repro.sim.fingerprint`` keys cache artifacts by backend name
        for every non-reference choice.  Excluded from
        :meth:`engine_kwargs` (the serial engine does not take it).
    cluster_policy:
        Cluster-formation policy for N-AP topologies (``"fixed"``,
        ``"threshold"`` or ``"greedy"``, see
        :mod:`repro.core.clustering`).  ``None`` means ``"fixed"`` (one
        cluster of all APs) *and* keeps 2-AP tasks on the legacy engine
        and the batched fast path; any explicit value routes the task
        through :class:`repro.core.ncell.GraphStrategyEngine`.
        Result-determining: fingerprinted whenever set.
    cluster_threshold_db:
        Cross-gain threshold for the ``threshold``/``greedy`` policies,
        in dB (``None`` → the documented default).  Result-determining:
        fingerprinted whenever set.
    """

    allocator: Optional[Callable] = None
    rate_selector: Optional[Callable] = None
    max_iterations: Optional[int] = None
    tx_power_dbm: Optional[float] = None
    oracle_check: Optional[bool] = None
    backend: Optional[str] = None
    cluster_policy: Optional[str] = None
    cluster_threshold_db: Optional[float] = None

    def __post_init__(self):
        if self.allocator is not None and not callable(self.allocator):
            raise TypeError(f"allocator must be callable, got {type(self.allocator).__name__}")
        if self.rate_selector is not None and not callable(self.rate_selector):
            raise TypeError(
                f"rate_selector must be callable, got {type(self.rate_selector).__name__}"
            )
        if self.max_iterations is not None:
            if isinstance(self.max_iterations, bool) or not isinstance(self.max_iterations, int):
                raise TypeError("max_iterations must be an int")
            if self.max_iterations < 1:
                raise ValueError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.tx_power_dbm is not None:
            if isinstance(self.tx_power_dbm, bool) or not isinstance(self.tx_power_dbm, (int, float)):
                raise TypeError("tx_power_dbm must be a number")
            if not math.isfinite(self.tx_power_dbm):
                raise ValueError("tx_power_dbm must be finite")
        if self.oracle_check is not None and not isinstance(self.oracle_check, bool):
            raise TypeError(
                f"oracle_check must be a bool, got {type(self.oracle_check).__name__}"
            )
        if self.backend is not None:
            if not isinstance(self.backend, str):
                raise TypeError(f"backend must be a str, got {type(self.backend).__name__}")
            from .backend import available_backends

            if self.backend not in available_backends():
                raise ValueError(
                    f"unknown array backend {self.backend!r}; "
                    f"registered backends: {available_backends()}"
                )
        if self.cluster_policy is not None:
            from .clustering import CLUSTER_POLICIES

            if self.cluster_policy not in CLUSTER_POLICIES:
                raise ValueError(
                    f"unknown cluster policy {self.cluster_policy!r}; "
                    f"expected one of {CLUSTER_POLICIES}"
                )
        if self.cluster_threshold_db is not None:
            if isinstance(self.cluster_threshold_db, bool) or not isinstance(
                self.cluster_threshold_db, (int, float)
            ):
                raise TypeError("cluster_threshold_db must be a number")
            if not math.isfinite(self.cluster_threshold_db):
                raise ValueError("cluster_threshold_db must be finite")

    def engine_kwargs(self) -> Dict[str, Any]:
        """The non-default engine fields, as keyword arguments.

        Execution-substrate fields (``backend``) are excluded — the
        serial :class:`~repro.core.strategy.StrategyEngine` does not take
        them; they steer the batched dispatch layer instead.
        """
        return {
            field.name: getattr(self, field.name)
            for field in fields(self)
            if field.name not in _NON_ENGINE_FIELDS and getattr(self, field.name) is not None
        }

    def cluster_kwargs(self) -> Dict[str, Any]:
        """The non-default N-cell dispatch fields, as keyword arguments.

        Consumed by :class:`repro.core.ncell.GraphStrategyEngine`; an
        empty dict on a 2-AP topology means the legacy
        :class:`~repro.core.strategy.StrategyEngine` path runs unchanged.
        """
        return {
            name: getattr(self, name)
            for name in _CLUSTER_FIELDS
            if getattr(self, name) is not None
        }

    def replace(self, **overrides: Any) -> "EngineOptions":
        """A copy with ``overrides`` applied (and re-validated).

        The frozen-dataclass analogue of ``dict.update``::

            options = EngineOptions.from_env().replace(oracle_check=True)
        """
        return dataclasses.replace(self, **overrides)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "EngineOptions":
        """Options seeded from the environment (``REPRO_BACKEND``).

        Only execution-substrate knobs are environment-selectable —
        result-determining physics options must be explicit in code so a
        stray shell variable can never silently change an experiment.
        An unregistered ``REPRO_BACKEND`` value raises :class:`ValueError`
        here, at the entry point, not inside a worker.
        """
        env = os.environ if environ is None else environ
        backend = env.get(_ENV_BACKEND)
        return cls(backend=backend or None)

    @classmethod
    def resolve(cls, value: Optional["EngineOptions"]) -> "EngineOptions":
        """Normalize a caller-supplied options value.

        ``None`` → all defaults; an :class:`EngineOptions` passes
        through.  Anything else — including the long-retired
        ``engine_kwargs`` dict spelling — raises a :class:`TypeError`
        with the migration hint.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"options must be an EngineOptions or None, got {type(value).__name__};"
            " the engine_kwargs dict form was removed — construct a"
            " repro.core.options.EngineOptions (e.g. EngineOptions(max_iterations=4))"
        )
