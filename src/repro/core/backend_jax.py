"""JAX array backend: float64, jit/vmap-fused strategy kernels.

This module is imported lazily by the ``"jax"`` registry entry in
:mod:`repro.core.backend` — ``import repro`` never touches it, so jax is
an optional dependency.  Importing it on a machine without jax raises an
actionable :class:`ImportError`.

Execution model
---------------
The jax backend does not run the batched engine's generic NumPy path on
device.  Instead it declares ``supports_fusion = True``, which routes
:meth:`repro.core.batch.BatchedStrategyEngine.run` through the
trace-safe fused strategy-menu kernel in :mod:`repro.core.fused`: one
per-topology function (design → allocate → measure → predict) is
``vmap``-ed over the topology axis and ``jit``-compiled here.  Compiled
kernels are cached at module level (see :data:`_COMPILE_CACHE` and
:func:`repro.core.fused.kernel_cache_info`) so every engine instance —
and every batch of the same shape — reuses one trace; warm calls pay
zero tracing cost.

Work the fused kernel does not cover (the COPA+ mercury allocator,
``oracle_check`` shadow validation) falls back to the reference NumPy
path inside the batched engine; see the tolerance policy in
EXPERIMENTS.md.

Precision: the engine's golden values assume double precision, so this
module enables ``jax_enable_x64`` at import.  That is a process-global
jax setting — acceptable here because the backend is only imported when
explicitly selected.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

try:
    import jax
    import jax.numpy as jnp
    from jax.scipy.special import erfc as _jax_erfc
except ImportError as error:  # pragma: no cover - exercised only without jax
    raise ImportError(
        "the 'jax' array backend requires the jax package "
        "(CPU wheel: pip install jax); install it or select backend='numpy'"
    ) from error

# The engine's tolerance contract (1e-6 rtol against the float64 golden
# values) is unreachable in float32; run jax in double precision.
jax.config.update("jax_enable_x64", True)

__all__ = ["JaxBackend", "compile_cache_info", "clear_compile_cache"]

#: jit-compiled functions keyed by the caller-supplied cache key: one
#: staged executable per distinct kernel, shared across backend
#: instances so warm calls amortize tracing.  jax caches traces per
#: argument shape inside each entry.
_COMPILE_CACHE: Dict[object, Callable] = {}


def compile_cache_info() -> Dict[str, int]:
    """Size of the module-level jit cache (for tests and the bench)."""
    return {"entries": len(_COMPILE_CACHE)}


def clear_compile_cache() -> None:
    """Drop staged executables; with ``jax.clear_caches()`` this forces a
    cold compile (the bench measures cold vs warm separately)."""
    _COMPILE_CACHE.clear()


class JaxBackend:
    """:class:`repro.core.backend.ArrayBackend` over ``jax.numpy``."""

    name = "jax"
    xp = jnp
    supports_fusion = True

    def asarray(self, array, dtype=None):
        return jnp.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    def matmul(self, a, b):
        return jnp.matmul(a, b)

    def svd(self, a, full_matrices: bool = True):
        return jnp.linalg.svd(a, full_matrices=full_matrices)

    def solve(self, a, b):
        return jnp.linalg.solve(a, b)

    def eigh(self, a):
        return jnp.linalg.eigh(a)

    def inv(self, a):
        return jnp.linalg.inv(a)

    def einsum(self, subscripts: str, *operands):
        return jnp.einsum(subscripts, *operands)

    def take_along_axis(self, array, indices, axis: int):
        return jnp.take_along_axis(array, indices, axis=axis)

    def erfc(self, x):
        return _jax_erfc(x)

    def vmap(self, fn: Callable, in_axes=0) -> Callable:
        return jax.vmap(fn, in_axes=in_axes)

    def compile(self, fn: Callable, key=None) -> Callable:
        """``jax.jit(fn)``, cached under ``key`` when one is given.

        Distinct closures can share a qualname (the fused kernel builder
        returns one closure per ``max_iterations``), so caching is
        opt-in: callers that want a shared staged executable must supply
        a key that encodes everything their closure captured.
        """
        if key is None:
            return jax.jit(fn)
        cached = _COMPILE_CACHE.get(key)
        if cached is None:
            cached = jax.jit(fn)
            _COMPILE_CACHE[key] = cached
        return cached
