"""Batched multi-topology strategy engine, bit-identical to the serial one.

:class:`repro.core.strategy.StrategyEngine` evaluates one channel
realization at a time; a sweep over hundreds of topologies therefore pays
hundreds of small-array NumPy dispatches per scheme (SVD, matmul, solve,
allocator inner loops).  This module restacks that hot path: a whole
batch of topologies becomes ``(B, n_sc, n_rx, n_tx)`` channel tensors,
flattened to ``(B * n_sc, n_rx, n_tx)`` so the per-subcarrier gufunc
kernels in :mod:`repro.phy.mimo` — which were always vectorized over
their leading axis — evaluate every topology in single NumPy calls.

**The reference contract is bit-identity**: under the reference
``"numpy"`` backend, :func:`run_batch` over tasks ``[t0, .., tB]``
returns exactly the :class:`StrategyOutcome` objects the serial engine
produces for each task, bit for bit.  The building blocks that make
this possible:

* NumPy's batched linalg (``svd``, ``solve``, ``matmul``) are per-2D-slice
  gufuncs — stacking more slices never changes a slice's result;
* elementwise ufuncs are value-wise, so a leading batch axis is free;
* the only order-sensitive reductions (masked means/sums in the
  allocators and rate model) go through
  :func:`repro.util.masked_row_apply`, which replicates the serial
  pairwise-summation grouping exactly;
* CSI is measured per task with a fresh ``default_rng(task.seed)`` in the
  serial engine's exact draw order, so the randomness is untouched.

Array ops route through a :class:`repro.core.backend.ArrayBackend`
selected by ``EngineOptions.backend`` (``"numpy"`` by default).
Backends that declare ``supports_fusion`` (``"jax"``, ``"numpy-fused"``)
take a different route entirely: :meth:`BatchedStrategyEngine.run`
dispatches to the trace-safe fused strategy-menu kernel in
:mod:`repro.core.fused` (vmapped over topologies, jit-compiled with a
compile cache).  Fused results are *not* bit-identical to the reference
— trace-safety changes summation order — but must stay within the 1e-6
relative tolerance policy documented in EXPERIMENTS.md; accordingly,
:mod:`repro.sim.fingerprint` keys cache artifacts by backend name for
every non-reference backend.  Work the kernel does not cover (the COPA+
mercury allocator, ``oracle_check``) falls back to the reference NumPy
path on the host.

Batching changes observability granularity — one ``engine.batch`` span
covers all B topologies, and counters are incremented in bulk — so
:func:`repro.sim.runner.run_tasks` only routes *unobserved* tasks through
this engine; observed runs keep their exact per-topology trace shape via
the per-task path (``partition_tasks`` enforces this).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..mac.timing import MacOverheadModel
from ..obs.collector import Collector, active
from ..phy.constants import TX_POWER_DBM
from ..phy.mimo import (
    interference_covariance,
    max_nulled_streams,
    mmse_sinr,
    nulling_precoder,
    svd_beamformer,
    tx_noise_covariance,
)
from ..phy.noise import ImperfectionModel
from ..phy.rates import BatchRateSelection, best_rate_batch
from ..phy.constants import MCS_TABLE
from ..phy.rates import RateSelection
from ..util import dbm_to_mw
from . import equi_snr, fused, mercury
from .backend import DEFAULT_BACKEND, ArrayBackend, get_backend
from .equi_snr import Allocation
from .equi_sinr import StreamAllocation
from .equi_sinr import (
    BatchConcurrentContext,
    BatchStreamAllocation,
    allocate_concurrent_batch,
    allocate_single_batch,
    radiated_powers_batch,
)
from .strategy import (
    SCHEME_CONC_BF,
    SCHEME_CONC_NULL,
    SCHEME_CONC_SDA,
    SCHEME_COPA_SEQ,
    SCHEME_CSMA,
    SCHEME_NULL,
    SchemeResult,
    StrategyOutcome,
    average_results,
    choose_scheme,
)

__all__ = [
    "BATCHED_ALLOCATORS",
    "BatchedStrategyEngine",
    "batchable",
    "group_key",
    "partition_tasks",
    "run_batch",
]

#: Serial per-stream allocators with a registered batched twin.  Tasks
#: whose ``options.allocator`` is not in this map (custom/ablation
#: allocators) fall back to per-topology evaluation.
BATCHED_ALLOCATORS = {
    equi_snr.allocate: equi_snr.allocate_batch,
    mercury.mercury_allocate: mercury.mercury_allocate_batch,
}


# ---------------------------------------------------------------------------
# Task partitioning (duck-typed over repro.sim.runner.TopologyTask so the
# core layer never imports the sim layer).
# ---------------------------------------------------------------------------


def batchable(task) -> bool:
    """Can this task join a batched engine dispatch?

    Requires: no fault injection, no per-task observation (batching would
    change the trace shape), default rate selector, an allocator with a
    batched twin, no explicit cluster policy (N-cell dispatch is
    per-topology), and the engine's 2-AP/2-client topology with uniform
    antenna counts (the stacked tensors need one shape).  N>2 tasks
    therefore always classify to the per-topology path, where
    ``evaluate_topology`` routes them through the interference-graph
    engine.
    """
    options = task.options
    if getattr(task, "fault_plan", None) is not None or getattr(task, "observe", False):
        return False
    if options.rate_selector is not None:
        return False
    if options.allocator is not None and options.allocator not in BATCHED_ALLOCATORS:
        return False
    if getattr(options, "cluster_policy", None) is not None:
        return False
    topology = task.channels.topology
    aps, clients = topology.aps, topology.clients
    if len(aps) != 2 or len(clients) != 2:
        return False
    n_tx = aps[0].n_antennas
    n_rx = clients[0].n_antennas
    if any(ap.n_antennas != n_tx for ap in aps) or any(c.n_antennas != n_rx for c in clients):
        return False
    shape = (task.channels.n_subcarriers, n_rx, n_tx)
    return all(
        task.channels.channel(ap.name, client.name).shape == shape
        for ap in aps
        for client in clients
    )


def group_key(task) -> tuple:
    """Everything that must match for two tasks to share one engine batch."""
    topology = task.channels.topology
    return (
        topology.aps[0].n_antennas,
        topology.clients[0].n_antennas,
        task.channels.n_subcarriers,
        float(task.channels.noise_floor_mw),
        float(task.coherence_s),
        task.imperfections,
        bool(task.include_copa_plus),
        task.options,
    )


def partition_tasks(tasks: Sequence, max_batch: Optional[int] = None):
    """Split tasks into batchable groups and per-task leftovers.

    Returns ``(batches, singles)``: ``batches`` is a list of task lists,
    each homogeneous under :func:`group_key` (and split into runs of at
    most ``max_batch`` when given); ``singles`` holds every task that
    must go through the serial per-topology path.  Together they cover
    the input exactly once; callers reassemble results by task index.
    """
    singles: List = []
    keyed: Dict[tuple, List] = {}
    order: List[tuple] = []
    for task in tasks:
        if not batchable(task):
            singles.append(task)
            continue
        key = group_key(task)
        if key not in keyed:
            keyed[key] = []
            order.append(key)
        keyed[key].append(task)
    batches: List[List] = []
    for key in order:
        group = keyed[key]
        size = len(group) if max_batch is None else max(1, int(max_batch))
        for start in range(0, len(group), size):
            batches.append(group[start : start + size])
    return batches, singles


# ---------------------------------------------------------------------------
# The batched engine.
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _BatchDesign:
    """Batched :class:`~repro.core.precoding.TransmissionDesign`.

    ``precoder`` is flattened over (B, n_sc); ``active_rx`` is ``None``
    for all-antennas designs or a (B, n_active) index array (SDA keeps a
    different antenna per topology).
    """

    ap: int
    client: int
    #: (B * n_sc, n_tx, n_streams) unit-column precoders.
    precoder: np.ndarray
    active_rx: Optional[np.ndarray] = None

    @property
    def n_streams(self) -> int:
        return self.precoder.shape[2]


class BatchedStrategyEngine:
    """Evaluates the strategy menu for a batch of channel realizations.

    ``tasks`` is a homogeneous group (see :func:`group_key`) of
    :class:`repro.sim.runner.TopologyTask`-shaped objects.  :meth:`run`
    returns one :class:`StrategyOutcome` per task, bit-identical to what
    the serial :class:`~repro.core.strategy.StrategyEngine` produces for
    that task's seed.

    The collector, when enabled, records *batch-granular* spans (one
    ``engine.batch`` span, one span per scheme) and bulk counters with
    the same totals as B serial runs — but not the serial per-topology
    trace shape; observed runner tasks therefore bypass this engine.
    """

    def __init__(self, tasks: Sequence, collector: Optional[Collector] = None):
        tasks = list(tasks)
        if not tasks:
            raise ValueError("BatchedStrategyEngine needs at least one task")
        key = group_key(tasks[0])
        for task in tasks[1:]:
            if group_key(task) != key:
                raise ValueError(
                    "tasks are not homogeneous; partition with partition_tasks() first"
                )
        self.tasks = tasks
        self.collector = active(collector)
        first = tasks[0]
        self.options = first.options
        self.backend: ArrayBackend = get_backend(self.options.backend or DEFAULT_BACKEND)
        # The generic (non-fused) path runs the bit-exact NumPy reference
        # kernels on the host; accelerator backends only execute the
        # fused kernel.  ``_eager`` is the backend those host ops route
        # through — the selected backend itself when it is numpy-flavored,
        # the reference backend otherwise.
        self._eager: ArrayBackend = (
            self.backend if getattr(self.backend, "xp", None) is np else get_backend(DEFAULT_BACKEND)
        )
        self.imperfections = (
            first.imperfections if first.imperfections is not None else ImperfectionModel()
        )
        self.overhead_model = MacOverheadModel()
        self.overheads = self.overhead_model.overheads(first.coherence_s)
        tx_power_dbm = (
            self.options.tx_power_dbm if self.options.tx_power_dbm is not None else TX_POWER_DBM
        )
        self.tx_power_mw = float(dbm_to_mw(tx_power_dbm))
        self.max_iterations = (
            self.options.max_iterations if self.options.max_iterations is not None else 8
        )
        self.oracle_check = bool(self.options.oracle_check)
        self.noise_floor_mw = float(first.channels.noise_floor_mw)

        topology = first.channels.topology
        self.n_tx = topology.aps[0].n_antennas
        self.n_rx = topology.clients[0].n_antennas
        sample = first.channels.channel(topology.aps[0].name, topology.clients[0].name)
        self.n_sc = sample.shape[0]
        self.B = len(tasks)

        # Stacked channels, keyed by (AP index, client index).  CSI draws
        # replicate the serial engine exactly: per task, a fresh
        # default_rng(seed) measuring every (ap, client) link in the
        # serial nested-loop order.  The stacks stay on the host (the
        # eager backend); the fused path transfers them to the device in
        # one shot per run.
        asarray = self._eager.asarray
        shape = (self.B, self.n_sc, self.n_rx, self.n_tx)
        self.true: Dict[Tuple[int, int], np.ndarray] = {}
        self.csi: Dict[Tuple[int, int], np.ndarray] = {}
        for i in range(2):
            for j in range(2):
                self.true[(i, j)] = np.empty(shape, dtype=complex)
                self.csi[(i, j)] = np.empty(shape, dtype=complex)
        for b, task in enumerate(tasks):
            topo = task.channels.topology
            ap_names = [ap.name for ap in topo.aps]
            client_names = [c.name for c in topo.clients]
            rng = np.random.default_rng(task.seed)
            for i, ap in enumerate(ap_names):
                for j, client in enumerate(client_names):
                    self.csi[(i, j)][b] = task.channels.measured_csi(
                        ap, client, self.imperfections, rng
                    )
                    self.true[(i, j)][b] = task.channels.channel(ap, client)
        for link in self.true:
            self.true[link] = asarray(self.true[link])
            self.csi[link] = asarray(self.csi[link])

    # ------------------------------------------------------------------
    # channel access
    # ------------------------------------------------------------------

    def _flat(self, array: np.ndarray) -> np.ndarray:
        """(B, n_sc, ...) → (B * n_sc, ...): feed the per-slice gufuncs."""
        return array.reshape((array.shape[0] * array.shape[1],) + array.shape[2:])

    def _gather(
        self, link: Tuple[int, int], active_rx: Optional[np.ndarray], true_channel: bool
    ) -> np.ndarray:
        """Channel restricted to the active receive antennas, per row."""
        source = self.true[link] if true_channel else self.csi[link]
        if active_rx is None:
            return source
        index = self._eager.xp.asarray(active_rx)[:, None, :, None]
        return self._eager.take_along_axis(source, index, axis=2)

    # ------------------------------------------------------------------
    # design construction (from CSI — what the APs can actually compute)
    # ------------------------------------------------------------------

    def _bf_designs(self) -> List[_BatchDesign]:
        n_streams = min(self.n_rx, self.n_tx)
        return [
            _BatchDesign(ap=i, client=i, precoder=svd_beamformer(self._flat(self.csi[(i, i)]), n_streams))
            for i in range(2)
        ]

    def _null_designs(self) -> List[_BatchDesign]:
        limit = max_nulled_streams(self.n_tx, self.n_rx, self.n_rx)
        designs = []
        for i in range(2):
            precoder = nulling_precoder(
                self._flat(self.csi[(i, i)]), self._flat(self.csi[(i, 1 - i)]), limit
            )
            designs.append(_BatchDesign(ap=i, client=i, precoder=precoder))
        return designs

    def _sda_design_pair(self, leader: int) -> List[_BatchDesign]:
        """SDA designs with AP ``leader`` leading; index order is [AP1, AP2]."""
        follower = 1 - leader
        xp = self._eager.xp
        follower_own = self.csi[(follower, follower)]
        # Per-row best antenna: same multi-axis reduction as the serial
        # _best_antenna, evaluated on each row's contiguous slice.
        keep = np.array(
            [
                int(xp.argmax(xp.sum(xp.abs(follower_own[b]) ** 2, axis=(0, 2))))
                for b in range(self.B)
            ]
        )
        keep_rx = keep[:, None]
        leader_precoder = nulling_precoder(
            self._flat(self.csi[(leader, leader)]),
            self._flat(self._gather((leader, follower), keep_rx, False)),
            max_nulled_streams(self.n_tx, self.n_rx, 1),
        )
        follower_precoder = nulling_precoder(
            self._flat(self._gather((follower, follower), keep_rx, False)),
            self._flat(self.csi[(follower, leader)]),
            max_nulled_streams(self.n_tx, 1, self.n_rx),
        )
        pair: List[Optional[_BatchDesign]] = [None, None]
        pair[leader] = _BatchDesign(ap=leader, client=leader, precoder=leader_precoder)
        pair[follower] = _BatchDesign(
            ap=follower, client=follower, precoder=follower_precoder, active_rx=keep_rx
        )
        return pair  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # gains and coupling (batched precoding.stream_gains / cross_coupling)
    # ------------------------------------------------------------------

    def _stream_gains(self, design: _BatchDesign) -> np.ndarray:
        xp = self._eager.xp
        channel = self._flat(self._gather((design.ap, design.client), design.active_rx, False))
        effective = self._eager.matmul(channel, design.precoder)
        gains = xp.sum(xp.abs(effective) ** 2, axis=1)
        return gains.reshape(self.B, self.n_sc, design.n_streams)

    def _cross_coupling(
        self, design: _BatchDesign, victim: int, victim_active_rx: Optional[np.ndarray]
    ) -> np.ndarray:
        xp = self._eager.xp
        channel = self._flat(self._gather((design.ap, victim), victim_active_rx, False))
        effective = self._eager.matmul(channel, design.precoder)
        n_rx_active = effective.shape[1]
        coupling = xp.sum(xp.abs(effective) ** 2, axis=1) / n_rx_active
        return coupling.reshape(self.B, self.n_sc, design.n_streams)

    # ------------------------------------------------------------------
    # power allocation
    # ------------------------------------------------------------------

    def _equal_allocation(self, design: _BatchDesign) -> BatchStreamAllocation:
        """Status-quo 802.11: the power budget spread evenly everywhere."""
        xp = self._eager.xp
        n_s = design.n_streams
        powers = xp.full((self.B, self.n_sc, n_s), self.tx_power_mw / (n_s * self.n_sc))
        used = xp.ones((self.B, self.n_sc, n_s), dtype=bool)
        return BatchStreamAllocation(powers=powers, used=used, per_stream=[])

    def _sequential_allocation(
        self, design: _BatchDesign, batch_allocator, serial_allocator
    ) -> BatchStreamAllocation:
        """Equi-SNR (Algorithm 1) per stream, no concurrent interference."""
        gains = self._stream_gains(design)
        allocation = allocate_single_batch(
            gains, self.tx_power_mw, noise_mw=self.noise_floor_mw, allocator=batch_allocator
        )
        if self.oracle_check:
            from .oracle import shadow_check_single

            collector = self.collector if self.collector.enabled else None
            for b in range(self.B):
                shadow_check_single(
                    gains[b],
                    self.tx_power_mw,
                    allocation.row(b),
                    serial_allocator,
                    noise_mw=self.noise_floor_mw,
                    collector=collector,
                )
        return allocation

    def _concurrent_allocation(
        self, designs: Sequence[_BatchDesign], batch_allocator
    ) -> List[BatchStreamAllocation]:
        """The Fig. 6 iterative Equi-SINR joint allocation, all rows at once."""
        gains = []
        coupling = []
        for i in range(2):
            design = designs[i]
            gains.append(self._stream_gains(design))
            coupled = self._cross_coupling(design, 1 - i, designs[1 - i].active_rx)
            # Nulls computed from noisy CSI bottom out at the estimation-error
            # floor; the allocator must plan for that residual (§2.2).
            victim_csi = self.csi[(i, 1 - i)]
            entry_power = (self._eager.xp.abs(victim_csi) ** 2).reshape(self.B, -1).mean(axis=1)
            residual = self.imperfections.csi_error_linear * entry_power
            coupling.append(coupled + residual[:, None, None])
        context = BatchConcurrentContext(
            gains=gains,
            coupling=coupling,
            budgets=[self.tx_power_mw, self.tx_power_mw],
            noise_mw=[self.noise_floor_mw] * 2,
            leakage_linear=self.imperfections.carrier_leakage_linear,
        )
        allocations, _, _ = allocate_concurrent_batch(
            context,
            max_iterations=self.max_iterations,
            allocator=batch_allocator,
            collector=self.collector if self.collector.enabled else None,
        )
        return allocations

    def _note_allocations(self, allocations: Sequence[BatchStreamAllocation]) -> None:
        if not self.collector.enabled:
            return
        streams = 0
        dropped = 0
        for allocation in allocations:
            streams += self.B * len(allocation.per_stream)
            for stream in allocation.per_stream:
                dropped += int(stream.n_dropped().sum())
        self.collector.inc("alloc.streams", streams)
        self.collector.inc("alloc.dropped_subcarriers", dropped)

    # ------------------------------------------------------------------
    # throughput evaluation
    # ------------------------------------------------------------------

    def _rate_of(
        self,
        receiver: int,
        designs: Sequence[_BatchDesign],
        allocations: Sequence[BatchStreamAllocation],
        concurrent: bool,
        true_channel: bool,
    ) -> BatchRateSelection:
        """Batched rate selection for client ``receiver`` under one scheme."""
        xp = self._eager.xp
        design = designs[receiver]
        alloc = allocations[receiver]
        n_s = design.n_streams
        n_flat = self.B * self.n_sc
        leakage = self.imperfections.carrier_leakage_linear
        evm = self.imperfections.tx_evm_linear

        h_own = self._flat(
            self._gather((design.ap, design.client), design.active_rx, true_channel)
        )
        n_active = h_own.shape[1]
        effective = self._eager.matmul(h_own, design.precoder)
        data_powers = xp.where(alloc.used, alloc.powers, 0.0).reshape(n_flat, n_s)
        own_radiated = radiated_powers_batch(alloc.powers, alloc.used, leakage).reshape(
            n_flat, n_s
        )

        covariance = self.noise_floor_mw * xp.broadcast_to(
            xp.eye(n_active, dtype=complex), (n_flat, n_active, n_active)
        ).copy()
        covariance += tx_noise_covariance(h_own, own_radiated.sum(axis=1), evm)
        if concurrent:
            other = designs[1 - receiver]
            other_alloc = allocations[1 - receiver]
            other_radiated = radiated_powers_batch(
                other_alloc.powers, other_alloc.used, leakage
            ).reshape(n_flat, other.n_streams)
            h_cross_rows = self._gather((other.ap, design.client), design.active_rx, true_channel)
            h_cross = self._flat(h_cross_rows)
            eff_cross = self._eager.matmul(h_cross, other.precoder)
            covariance += interference_covariance(eff_cross, other_radiated)
            covariance += tx_noise_covariance(h_cross, other_radiated.sum(axis=1), evm)
            if not true_channel:
                # Prediction mode: the expected nulling residual from CSI
                # estimation error (§2.2), with each row's entry power
                # taken over the same active-antenna slice as serially.
                # The serial slice comes from fancy indexing and is laid
                # out antenna-major, so its flat np.mean sums elements in
                # (rx, sc, tx) memory order; transpose to match that
                # summation order bit for bit.
                cross_power = xp.abs(h_cross_rows) ** 2
                entry_power = (
                    cross_power.transpose(0, 2, 1, 3).reshape(self.B, -1).mean(axis=1)
                )
                residual = (
                    self.imperfections.csi_error_linear
                    * xp.repeat(entry_power, self.n_sc)
                    * other_radiated.sum(axis=1)
                )
                covariance += residual[:, None, None] * xp.eye(n_active)[None, :, :]

        sinr = mmse_sinr(effective, data_powers, covariance)
        return best_rate_batch(sinr.reshape(self.B, self.n_sc, n_s), used=alloc.used)

    def _scheme_rows(
        self,
        name: str,
        designs: Sequence[_BatchDesign],
        allocations: Sequence[BatchStreamAllocation],
        concurrent: bool,
        overhead: float,
        true_channel: bool,
    ) -> List[SchemeResult]:
        rates = [
            self._rate_of(i, designs, allocations, concurrent, true_channel) for i in range(2)
        ]
        factor = self.overhead_model.net_throughput_factor(overhead)
        if concurrent:
            throughput = [r.goodput_bps * factor for r in rates]
        else:
            # Sequential senders take turns: each client gets half the airtime.
            throughput = [r.goodput_bps * factor / 2.0 for r in rates]
        return [
            SchemeResult(
                name=name,
                concurrent=concurrent,
                client_throughput_bps=(float(throughput[0][b]), float(throughput[1][b])),
                rates=(rates[0].row(b), rates[1].row(b)),
                allocations=(allocations[0].row(b), allocations[1].row(b)),
            )
            for b in range(self.B)
        ]

    def _both(self, name, designs, allocations, concurrent, overhead):
        """(measured, predicted) result rows of one scheme."""
        col = self.collector
        with col.span("measure", scheme=str(name), batch=self.B):
            actual = self._scheme_rows(name, designs, allocations, concurrent, overhead, True)
        with col.span("predict", scheme=str(name), batch=self.B):
            predicted = self._scheme_rows(name, designs, allocations, concurrent, overhead, False)
        if col.enabled:
            col.inc(f"engine.scheme.{name}", self.B)
            for result in actual:
                col.observe(f"scheme.{name}.measured_mbps", result.aggregate_mbps)
        return actual, predicted

    # ------------------------------------------------------------------
    # scheme menu
    # ------------------------------------------------------------------

    def _full_nulling_feasible(self) -> bool:
        full_rank = min(self.n_tx, self.n_rx)
        return max_nulled_streams(self.n_tx, self.n_rx, self.n_rx) >= full_rank

    def _reduced_nulling_feasible(self) -> bool:
        return max_nulled_streams(self.n_tx, self.n_rx, self.n_rx) >= 1

    def _sda_applicable(self) -> bool:
        if self._full_nulling_feasible() or self.n_rx < 2:
            return False
        leader_ok = max_nulled_streams(self.n_tx, self.n_rx, 1) >= 1
        follower_ok = max_nulled_streams(self.n_tx, 1, self.n_rx) >= 1
        return leader_ok and follower_ok

    # ------------------------------------------------------------------
    # fused path (accelerator backends)
    # ------------------------------------------------------------------

    @staticmethod
    def _fused_rate_row(rate: Dict[str, np.ndarray], b: int) -> RateSelection:
        """One client's :class:`RateSelection` from fused kernel leaves.

        Mirrors ``BatchRateSelection.row``: a negative MCS index is the
        no-viable-MCS sentinel and collapses to the zero selection.
        """
        index = int(rate["mcs_index"][b])
        if index < 0:
            return RateSelection(mcs=None, goodput_bps=0.0, fer=1.0, channel_ber=0.5, n_used=0)
        return RateSelection(
            mcs=MCS_TABLE[index],
            goodput_bps=float(rate["goodput_bps"][b]),
            fer=float(rate["fer"][b]),
            channel_ber=float(rate["channel_ber"][b]),
            n_used=int(rate["n_used"][b]),
        )

    @staticmethod
    def _fused_alloc_row(alloc: Dict[str, object], b: int) -> StreamAllocation:
        """One AP's :class:`StreamAllocation` from fused kernel leaves."""
        per_stream = []
        for stream in alloc["streams"]:
            index = int(stream["mcs_index"][b])
            per_stream.append(
                Allocation(
                    powers=np.asarray(stream["powers"][b], dtype=float),
                    used=np.asarray(stream["used"][b], dtype=bool),
                    equalized_snr=float(stream["equalized_snr"][b]),
                    mcs=MCS_TABLE[index] if index >= 0 else None,
                    goodput_bps=float(stream["goodput_bps"][b]),
                )
            )
        return StreamAllocation(
            powers=np.asarray(alloc["powers"][b], dtype=float),
            used=np.asarray(alloc["used"][b], dtype=bool),
            per_stream=per_stream,
        )

    def _fused_scheme_rows(
        self, name: str, scheme: Dict[str, object], concurrent: bool, overhead: float
    ) -> Tuple[List[SchemeResult], List[SchemeResult]]:
        """(measured, predicted) result rows of one fused scheme."""
        factor = self.overhead_model.net_throughput_factor(overhead)
        share = 1.0 if concurrent else 0.5  # sequential senders split airtime
        rows = []
        for side in ("measured", "predicted"):
            rates = scheme[side]
            rows.append(
                [
                    SchemeResult(
                        name=name,
                        concurrent=concurrent,
                        client_throughput_bps=(
                            float(rates[0]["goodput_bps"][b]) * factor * share,
                            float(rates[1]["goodput_bps"][b]) * factor * share,
                        ),
                        rates=(
                            self._fused_rate_row(rates[0], b),
                            self._fused_rate_row(rates[1], b),
                        ),
                        allocations=(
                            self._fused_alloc_row(scheme["allocations"][0], b),
                            self._fused_alloc_row(scheme["allocations"][1], b),
                        ),
                    )
                    for b in range(self.B)
                ]
            )
        return rows[0], rows[1]

    def _run_fused(self, serial_allocator) -> List[StrategyOutcome]:
        """Evaluate the menu through the compiled fused kernel.

        One device dispatch covers the whole batch; results come back as
        a pytree of host arrays that is materialized into the same
        :class:`StrategyOutcome` objects the generic path builds.
        Observability is batch-granular (one ``engine.batch`` span, bulk
        counters) — observed tasks never reach this engine.
        """
        col = self.collector
        stack = lambda source: np.stack(
            [np.stack([source[(i, j)] for j in range(2)], axis=1) for i in range(2)],
            axis=1,
        )
        params = {
            "tx_power_mw": self.tx_power_mw,
            "noise_mw": self.noise_floor_mw,
            "csi_error": self.imperfections.csi_error_linear,
            "evm": self.imperfections.tx_evm_linear,
            "leakage": self.imperfections.carrier_leakage_linear,
        }
        with col.span(
            "engine.batch",
            allocator=getattr(serial_allocator, "__name__", str(serial_allocator)),
            antennas=f"{self.n_tx}x{self.n_rx}",
            topologies=self.B,
            backend=self.backend.name,
            fused=True,
        ):
            out = fused.run_fused_menu(
                self.backend, stack(self.true), stack(self.csi), params, self.max_iterations
            )

            ovh = self.overheads
            plan = [
                ("csma", SCHEME_CSMA, False, ovh.csma),
                ("copa_seq", SCHEME_COPA_SEQ, False, ovh.copa_sequential),
                ("conc_bf", SCHEME_CONC_BF, True, ovh.copa_concurrent),
                ("null", SCHEME_NULL, True, ovh.copa_concurrent),
                ("conc_null", SCHEME_CONC_NULL, True, ovh.copa_concurrent),
            ]
            schemes_rows: List[Dict[str, SchemeResult]] = [{} for _ in range(self.B)]
            predictions_rows: List[Dict[str, SchemeResult]] = [{} for _ in range(self.B)]
            for key, name, concurrent, overhead in plan:
                if key not in out:
                    continue
                actual, predicted = self._fused_scheme_rows(name, out[key], concurrent, overhead)
                for b in range(self.B):
                    schemes_rows[b][name] = actual[b]
                    predictions_rows[b][name] = predicted[b]
                if col.enabled:
                    col.inc(f"engine.scheme.{name}", self.B)
                    for result in actual:
                        col.observe(f"scheme.{name}.measured_mbps", result.aggregate_mbps)

            if "sda0_conc" in out:
                # SDA: both leader roles evaluated, results averaged per
                # scheme name exactly like the generic path.
                for kind, name in (("null", SCHEME_NULL), ("conc", SCHEME_CONC_SDA)):
                    roles = [
                        self._fused_scheme_rows(name, out[f"sda{leader}_{kind}"], True, ovh.copa_concurrent)
                        for leader in range(2)
                    ]
                    for b in range(self.B):
                        schemes_rows[b][name] = average_results(
                            name, [role[0][b] for role in roles]
                        )
                        predictions_rows[b][name] = average_results(
                            name, [role[1][b] for role in roles]
                        )
                    if col.enabled:
                        col.inc(f"engine.scheme.{name}", self.B)

            with col.span("choose", batch=self.B):
                copa = [choose_scheme(predictions_rows[b], fair=False) for b in range(self.B)]
                fair = [choose_scheme(predictions_rows[b], fair=True) for b in range(self.B)]
            if col.enabled:
                col.inc("engine.runs", self.B)
                for choice in copa:
                    col.inc(f"engine.choice.{choice}")
                for choice in fair:
                    col.inc(f"engine.fair_choice.{choice}")

        return [
            StrategyOutcome(
                schemes=schemes_rows[b],
                predictions=predictions_rows[b],
                copa_choice=copa[b],
                copa_fair_choice=fair[b],
            )
            for b in range(self.B)
        ]

    def run(self, allocator=None) -> List[StrategyOutcome]:
        """Evaluate the full menu for every task; one outcome per task.

        ``allocator`` overrides the options' serial per-stream allocator
        (used by :func:`run_batch` for the COPA+ mercury pass); it must
        have a batched twin in :data:`BATCHED_ALLOCATORS`.

        Backends with ``supports_fusion`` dispatch to the compiled fused
        kernel (:mod:`repro.core.fused`) when the run uses the default
        Equi-S(I)NR allocator without oracle shadow-checks; everything
        else takes the generic reference path below on the host.
        """
        serial_allocator = allocator
        if serial_allocator is None:
            serial_allocator = (
                self.options.allocator if self.options.allocator is not None else equi_snr.allocate
            )
        batch_allocator = BATCHED_ALLOCATORS[serial_allocator]

        if fused.supports(self.backend, serial_allocator, self.oracle_check):
            return self._run_fused(serial_allocator)

        schemes_rows: List[Dict[str, SchemeResult]] = [{} for _ in range(self.B)]
        predictions_rows: List[Dict[str, SchemeResult]] = [{} for _ in range(self.B)]
        ovh = self.overheads
        col = self.collector

        def store(name, both):
            actual, predicted = both
            for b in range(self.B):
                schemes_rows[b][name] = actual[b]
                predictions_rows[b][name] = predicted[b]

        with col.span(
            "engine.batch",
            allocator=getattr(serial_allocator, "__name__", str(serial_allocator)),
            antennas=f"{self.n_tx}x{self.n_rx}",
            topologies=self.B,
            backend=self.backend.name,
        ):
            with col.span("design", kind="beamforming"):
                bf = self._bf_designs()

            with col.span(f"scheme:{SCHEME_CSMA}"):
                with col.span("allocate"):
                    equal_bf = [self._equal_allocation(d) for d in bf]
                store(SCHEME_CSMA, self._both(SCHEME_CSMA, bf, equal_bf, False, ovh.csma))

            with col.span(f"scheme:{SCHEME_COPA_SEQ}"):
                with col.span("allocate"):
                    seq_alloc = [
                        self._sequential_allocation(bf[i], batch_allocator, serial_allocator)
                        for i in range(2)
                    ]
                self._note_allocations(seq_alloc)
                store(
                    SCHEME_COPA_SEQ,
                    self._both(SCHEME_COPA_SEQ, bf, seq_alloc, False, ovh.copa_sequential),
                )

            with col.span(f"scheme:{SCHEME_CONC_BF}"):
                with col.span("allocate"):
                    conc_bf_alloc = self._concurrent_allocation(bf, batch_allocator)
                self._note_allocations(conc_bf_alloc)
                store(
                    SCHEME_CONC_BF,
                    self._both(SCHEME_CONC_BF, bf, conc_bf_alloc, True, ovh.copa_concurrent),
                )

            if self._reduced_nulling_feasible():
                with col.span("design", kind="nulling"):
                    null_designs = self._null_designs()
                if self._full_nulling_feasible():
                    with col.span(f"scheme:{SCHEME_NULL}"):
                        with col.span("allocate"):
                            equal_null = [self._equal_allocation(d) for d in null_designs]
                        store(
                            SCHEME_NULL,
                            self._both(
                                SCHEME_NULL, null_designs, equal_null, True, ovh.copa_concurrent
                            ),
                        )
                with col.span(f"scheme:{SCHEME_CONC_NULL}"):
                    with col.span("allocate"):
                        conc_null_alloc = self._concurrent_allocation(null_designs, batch_allocator)
                    self._note_allocations(conc_null_alloc)
                    store(
                        SCHEME_CONC_NULL,
                        self._both(
                            SCHEME_CONC_NULL, null_designs, conc_null_alloc, True, ovh.copa_concurrent
                        ),
                    )

            if self._sda_applicable():
                sda_actual, sda_predicted = [], []
                for leader in range(2):
                    with col.span("sda.role", leader=leader):
                        with col.span("design", kind="sda"):
                            designs = self._sda_design_pair(leader)
                        with col.span(f"scheme:{SCHEME_NULL}"):
                            with col.span("allocate"):
                                equal = [self._equal_allocation(d) for d in designs]
                            a_eq, p_eq = self._both(
                                SCHEME_NULL, designs, equal, True, ovh.copa_concurrent
                            )
                        with col.span(f"scheme:{SCHEME_CONC_SDA}"):
                            with col.span("allocate"):
                                alloc = self._concurrent_allocation(designs, batch_allocator)
                            self._note_allocations(alloc)
                            a, p = self._both(
                                SCHEME_CONC_SDA, designs, alloc, True, ovh.copa_concurrent
                            )
                    sda_actual.append((a_eq, a))
                    sda_predicted.append((p_eq, p))
                for b in range(self.B):
                    schemes_rows[b][SCHEME_NULL] = average_results(
                        SCHEME_NULL, [role[0][b] for role in sda_actual]
                    )
                    predictions_rows[b][SCHEME_NULL] = average_results(
                        SCHEME_NULL, [role[0][b] for role in sda_predicted]
                    )
                    schemes_rows[b][SCHEME_CONC_SDA] = average_results(
                        SCHEME_CONC_SDA, [role[1][b] for role in sda_actual]
                    )
                    predictions_rows[b][SCHEME_CONC_SDA] = average_results(
                        SCHEME_CONC_SDA, [role[1][b] for role in sda_predicted]
                    )

            with col.span("choose", batch=self.B):
                copa = [choose_scheme(predictions_rows[b], fair=False) for b in range(self.B)]
                fair = [choose_scheme(predictions_rows[b], fair=True) for b in range(self.B)]
            if col.enabled:
                col.inc("engine.runs", self.B)
                for choice in copa:
                    col.inc(f"engine.choice.{choice}")
                for choice in fair:
                    col.inc(f"engine.fair_choice.{choice}")

        return [
            StrategyOutcome(
                schemes=schemes_rows[b],
                predictions=predictions_rows[b],
                copa_choice=copa[b],
                copa_fair_choice=fair[b],
            )
            for b in range(self.B)
        ]


def run_batch(
    tasks: Sequence, collector: Optional[Collector] = None
) -> List[Tuple[StrategyOutcome, Optional[StrategyOutcome]]]:
    """Evaluate a homogeneous task group; returns (outcome, plus_outcome) pairs.

    The COPA+ pass reuses the engine's measured CSI — the serial path
    re-measures with a fresh ``default_rng(task.seed)``, which draws the
    identical estimate, so sharing it preserves bit-identity.
    """
    engine = BatchedStrategyEngine(tasks, collector=collector)
    outcomes = engine.run()
    plus: List[Optional[StrategyOutcome]] = [None] * len(outcomes)
    if engine.tasks[0].include_copa_plus:
        plus = list(engine.run(allocator=mercury.mercury_allocate))
    return list(zip(outcomes, plus))
