"""Optimization-based allocator oracle and N-player equilibrium checker.

COPA's allocators are iterative heuristics; their existing checks are
pinned golden values and hand-written invariants.  This module provides an
*independent* second opinion for each of them by posing the same problems
as small mathematical programs and solving those with generic machinery:

* **Equi-S(I)NR** (Algorithm 1) — for every survivor count ``m`` the
  max-min-S(I)NR power allocation over the kept subcarriers is a linear
  program (maximize ``t`` s.t. ``g_k p_k >= t``, ``sum p <= P``).  The
  oracle solves it with ``scipy.optimize.linprog`` (water-level bisection
  when SciPy is unavailable), sweeps every ``(m, MCS)`` pair with scalar
  arithmetic, and keeps the goodput argmax — the same problem the
  vectorized cumsum implementation solves, by a disjoint code path.

* **Mercury/water-filling** (COPA+) — for a fixed kept set and
  constellation the optimal powers maximize the concave total mutual
  information ``sum_k I(g_k p_k)`` over the power simplex (Lozano, Tulino
  & Verdu 2006).  The oracle maximizes it directly with SLSQP using the
  exactly-consistent (I, mmse) pair from :mod:`repro.core.mercury`
  (dual bisection on the marginal rate as the SciPy-free fallback), and
  certifies any candidate allocation through its KKT residual.

* **Best-response equilibrium** — :class:`InterferenceGraph` generalizes
  the paper's 2-AP setting to N players over an interference graph.
  :func:`allocate_graph` runs the Figure-6 best-response dynamic for N
  players (bit-identical to :func:`repro.core.equi_sinr
  .allocate_concurrent` at N = 2), :func:`equilibrium_gaps` measures each
  player's regret against its oracle best response, and
  :func:`incentive_gaps` generalizes §3.5's 2-player
  incentive-compatibility ("fair") check to N players.

All solves emit ``oracle.solve`` spans and ``oracle.*`` counters through
an optional :class:`repro.obs.Collector`.  Nothing here imports SciPy at
module import time; :func:`solver_available` reports whether the LP/SLSQP
paths are live, and every entry point degrades to a bisection fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.collector import Collector, active
from ..phy.ber import uncoded_ber
from ..phy.coding import coded_ber, frame_error_rate
from ..phy.constants import (
    MCS_TABLE,
    MODULATIONS,
    MPDU_PAYLOAD_BYTES,
    N_DATA_SUBCARRIERS,
    Mcs,
    Modulation,
)
from ..phy.rates import best_rate
from . import equi_snr
from .equi_snr import MIN_GAIN
from .equi_sinr import (
    ConcurrentContext,
    StreamAllocation,
    effective_gains,
    radiated_powers,
)
from .mercury import (
    DEFAULT_DROPS,
    mercury_allocate,
    mmse_of_snr,
    mutual_information_of_snr,
)

__all__ = [
    "ORACLE_RTOL",
    "OracleSolution",
    "solver_available",
    "max_min_snr_powers",
    "oracle_equi_snr",
    "oracle_mercury",
    "oracle_single",
    "oracle_for",
    "allocator_key",
    "mercury_kkt_residual",
    "GraphPlayer",
    "InterferenceGraph",
    "GraphAllocation",
    "graph_from_context",
    "allocate_graph",
    "PlayerGap",
    "score_stream_allocation",
    "equilibrium_gaps",
    "IncentiveGap",
    "incentive_gaps",
    "shadow_check_single",
]

#: Documented per-scheme relative tolerance on predicted goodput between the
#: iterative allocator and its oracle (see EXPERIMENTS.md, "Correctness
#: oracles").  Equi-S(I)NR solves a finite sweep whose inner problem has a
#: unique optimum, so iterative and oracle must agree to solver precision;
#: mercury's inner bisection (1e-9 power tolerance, interpolated MMSE
#: tables) and the oracle's SLSQP land on the same optimum from different
#: directions, so its band is wider.
ORACLE_RTOL: Dict[str, float] = {
    "equi_snr": 1e-6,
    "equi_sinr": 1e-6,
    "mercury": 5e-3,
}


def _scipy_optimize():
    try:
        from scipy import optimize
    except ImportError:  # pragma: no cover - exercised via monkeypatch
        return None
    return optimize


def solver_available() -> bool:
    """True when SciPy's LP/SLSQP solvers back the oracle (else bisection)."""
    return _scipy_optimize() is not None


def _resolve_method(method: str) -> str:
    if method not in ("auto", "lp", "bisection"):
        raise ValueError(f"unknown oracle method {method!r}")
    if method == "auto":
        return "lp" if solver_available() else "bisection"
    if method == "lp" and not solver_available():
        raise RuntimeError("oracle method 'lp' requested but scipy is unavailable")
    return method


@dataclass(frozen=True)
class OracleSolution:
    """An oracle's answer to one stream's allocation problem."""

    #: Per-subcarrier transmit power (mW); dropped subcarriers get 0.
    powers: np.ndarray
    #: Boolean mask of subcarriers that carry data.
    used: np.ndarray
    #: Predicted PHY goodput in bit/s under the shared rate model.
    goodput_bps: float
    #: Index of the winning MCS, or -1 when nothing works.
    mcs_index: int
    #: The equalized S(I)NR of the winning configuration (0 for mercury).
    equalized_snr: float
    #: How the inner problem was solved: "lp", "slsqp" or "bisection".
    method: str

    @property
    def n_used(self) -> int:
        return int(self.used.sum())


# ----------------------------------------------------------------------
# Equi-S(I)NR: max-min SNR as an LP, goodput sweep over (m, MCS)
# ----------------------------------------------------------------------


def _max_min_snr_lp(gains: np.ndarray, total_power: float) -> Tuple[np.ndarray, float]:
    """Solve max t s.t. g_k p_k >= t, sum p <= P, p >= 0 with linprog."""
    optimize = _scipy_optimize()
    n = gains.size
    c = np.zeros(n + 1)
    c[-1] = -1.0
    a_ub = np.zeros((n + 1, n + 1))
    for k in range(n):
        a_ub[k, k] = -gains[k]
        a_ub[k, -1] = 1.0
    a_ub[-1, :n] = 1.0
    b_ub = np.zeros(n + 1)
    b_ub[-1] = total_power
    result = optimize.linprog(
        c, A_ub=a_ub, b_ub=b_ub, bounds=[(0.0, None)] * (n + 1), method="highs"
    )
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"max-min SNR LP failed: {result.message}")
    powers = np.asarray(result.x[:n], dtype=float)
    # Land exactly on the budget (the LP is tight there up to solver eps).
    total = powers.sum()
    if total > 0:
        powers *= total_power / total
    return powers, float(result.x[-1])


def _max_min_snr_bisection(gains: np.ndarray, total_power: float) -> Tuple[np.ndarray, float]:
    """Water-level bisection: the largest t with sum_k t / g_k <= P."""
    t_lo, t_hi = 0.0, total_power * float(gains.max())
    for _ in range(100):
        t_mid = 0.5 * (t_lo + t_hi)
        if float(np.sum(t_mid / gains)) <= total_power:
            t_lo = t_mid
        else:
            t_hi = t_mid
    powers = t_lo / gains
    total = powers.sum()
    if total > 0:
        powers *= total_power / total
    return powers, t_lo


def max_min_snr_powers(
    gains, total_power: float, method: str = "auto"
) -> Tuple[np.ndarray, float, str]:
    """Max-min-S(I)NR powers over the given (all-kept) subcarriers.

    Returns ``(powers, snr, method_used)``.  ``gains`` must all be usable
    (> :data:`repro.core.equi_snr.MIN_GAIN`).
    """
    gains = np.asarray(gains, dtype=float)
    if gains.ndim != 1 or gains.size == 0:
        raise ValueError("gains must be a non-empty 1-D array")
    if np.any(gains <= MIN_GAIN):
        raise ValueError("max_min_snr_powers requires usable gains only")
    if total_power <= 0:
        raise ValueError("total_power must be positive")
    resolved = _resolve_method(method)
    if resolved == "lp":
        powers, snr = _max_min_snr_lp(gains, total_power)
    else:
        powers, snr = _max_min_snr_bisection(gains, total_power)
    return powers, snr, resolved


def _scalar_goodput(snr: float, n_used: int, mcs: Mcs, payload_bytes: int) -> float:
    """Goodput of one (equalized SNR, survivor count, MCS) configuration."""
    ber = float(uncoded_ber(snr, mcs.modulation))
    post = float(coded_ber(ber, mcs.code_rate))
    fer = float(frame_error_rate(post, payload_bytes * 8))
    return mcs.rate_bps * n_used / N_DATA_SUBCARRIERS * (1.0 - fer)


def oracle_equi_snr(
    gains,
    total_power: float,
    mcs_table: Sequence[Mcs] = MCS_TABLE,
    payload_bytes: int = MPDU_PAYLOAD_BYTES,
    method: str = "auto",
    collector: Optional[Collector] = None,
) -> OracleSolution:
    """Independent re-solve of Algorithm 1 (drop + equalize + rate).

    For every survivor count ``m`` the kept set is the ``m`` strongest
    usable subcarriers (optimal by exchange: swapping a kept subcarrier
    for a stronger dropped one lowers ``sum 1/g`` and so raises the
    equalized S(I)NR — verified exhaustively in the oracle's test suite),
    the inner max-min power problem is solved as an LP (or by bisection),
    and every MCS is scored with scalar arithmetic.  Shares only the PHY
    rate-model primitives with the production allocator.
    """
    col = active(collector)
    gains = np.asarray(gains, dtype=float)
    if gains.ndim != 1:
        raise ValueError("gains must be one-dimensional (a single stream)")
    if total_power <= 0:
        raise ValueError("total_power must be positive")
    n = gains.size
    resolved = _resolve_method(method)

    with col.span("oracle.solve", kind="equi_snr", method=resolved):
        col.inc("oracle.solves")
        usable = np.flatnonzero(gains > MIN_GAIN)
        empty = OracleSolution(
            powers=np.zeros(n),
            used=np.zeros(n, dtype=bool),
            goodput_bps=0.0,
            mcs_index=-1,
            equalized_snr=0.0,
            method=resolved,
        )
        if usable.size == 0:
            return empty

        # Strongest usable subcarriers first.  Sweep m descending so the
        # incumbent is established early; a candidate whose zero-FER upper
        # bound (rate * m / N) cannot beat it is skipped without evaluating
        # the error model — a sound prune, not an approximation.
        order = usable[np.argsort(gains[usable])[::-1]]
        best = (0.0, -1, -1, 0.0)  # goodput, m, mcs index, snr
        max_rate = max(mcs.rate_bps for mcs in mcs_table)
        for m in range(order.size, 0, -1):
            if max_rate * m / N_DATA_SUBCARRIERS <= best[0]:
                break  # no smaller m can win either
            kept_gains = gains[order[:m]]
            _, snr = _max_min_snr_bisection(kept_gains, total_power)
            for mcs in mcs_table:
                if mcs.rate_bps * m / N_DATA_SUBCARRIERS <= best[0]:
                    continue
                goodput = _scalar_goodput(snr, m, mcs, payload_bytes)
                if goodput > best[0]:
                    best = (goodput, m, mcs.index, snr)

        goodput, m, mcs_index, snr = best
        if goodput <= 0.0:
            return empty

        kept = order[:m]
        # Solve the winning subset's power problem with the configured
        # solver (one LP per oracle solve keeps the sweep fast while the
        # returned powers still carry an independent LP certificate).
        kept_powers, snr_solved, method_used = max_min_snr_powers(
            gains[kept], total_power, method=resolved
        )
        powers = np.zeros(n)
        powers[kept] = kept_powers
        used = np.zeros(n, dtype=bool)
        used[kept] = True
        # Re-score at the solver's own level so goodput and powers agree.
        goodput, mcs_index = max(
            (_scalar_goodput(snr_solved, m, mcs, payload_bytes), mcs.index)
            for mcs in mcs_table
        )
        return OracleSolution(
            powers=powers,
            used=used,
            goodput_bps=float(goodput),
            mcs_index=int(mcs_index),
            equalized_snr=float(snr_solved),
            method=method_used,
        )


# ----------------------------------------------------------------------
# Mercury/water-filling: concave program + KKT certificate
# ----------------------------------------------------------------------


def _mercury_powers_slsqp(
    gains: np.ndarray, total_power: float, modulation: Modulation
) -> np.ndarray:
    """Maximize sum_k I(g_k p_k) on the simplex with SLSQP."""
    optimize = _scipy_optimize()
    n = gains.size

    def negative_mi(p: np.ndarray) -> float:
        return -float(np.sum(mutual_information_of_snr(gains * p, modulation)))

    def negative_grad(p: np.ndarray) -> np.ndarray:
        return -gains * mmse_of_snr(gains * p, modulation)

    result = optimize.minimize(
        negative_mi,
        np.full(n, total_power / n),
        jac=negative_grad,
        bounds=[(0.0, None)] * n,
        constraints=[
            {
                "type": "eq",
                "fun": lambda p: float(p.sum() - total_power),
                "jac": lambda p: np.ones_like(p),
            }
        ],
        method="SLSQP",
        options={"maxiter": 200, "ftol": 1e-12},
    )
    powers = np.clip(np.asarray(result.x, dtype=float), 0.0, None)
    total = powers.sum()
    if total > 0:
        powers *= total_power / total
    return powers


def _mercury_powers_dual_bisection(
    gains: np.ndarray, total_power: float, modulation: Modulation
) -> np.ndarray:
    """SciPy-free fallback: bisect the common marginal rate eta.

    At the optimum every active subcarrier has marginal mutual-information
    rate ``g_k * mmse(g_k p_k) = eta``.  For a trial eta the per-subcarrier
    powers are found by (vectorized) bisection on the *forward* MMSE curve
    — no use of the production code's inverted interpolation table — and
    the outer loop bisects eta until the budget is met.
    """
    snr_ceiling = 1e8  # top of the cached MMSE grid

    def powers_for(eta: float) -> np.ndarray:
        active_mask = gains * mmse_of_snr(np.zeros_like(gains), modulation) > eta
        powers = np.zeros_like(gains)
        if not active_mask.any():
            return powers
        g = gains[active_mask]
        lo = np.zeros_like(g)
        hi = np.full_like(g, snr_ceiling) / g
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            marginal = g * mmse_of_snr(g * mid, modulation)
            # Marginal rate decreases in power: too-high marginal -> raise p.
            lo = np.where(marginal > eta, mid, lo)
            hi = np.where(marginal > eta, hi, mid)
        powers[active_mask] = 0.5 * (lo + hi)
        return powers

    eta_hi = float(gains.max())  # mmse(0) = 1, so marginal at p=0 is g
    eta_lo = eta_hi * 1e-15
    if powers_for(eta_lo).sum() < total_power:
        # Saturated constellations cannot absorb the budget; spread the
        # remainder proportionally like the production fallback does.
        powers = powers_for(eta_lo)
        total = powers.sum()
        if total <= 0:
            return np.full_like(gains, total_power / gains.size)
        return powers * (total_power / total)
    for _ in range(80):
        eta_mid = np.sqrt(eta_lo * eta_hi)
        if powers_for(eta_mid).sum() >= total_power:
            eta_lo = eta_mid
        else:
            eta_hi = eta_mid
    powers = powers_for(eta_lo)
    total = powers.sum()
    if total > 0:
        powers *= total_power / total
    return powers


def mercury_kkt_residual(gains, powers, modulation: Modulation) -> float:
    """KKT certificate for a mercury/water-filling allocation.

    Returns the worst relative violation of stationarity: active
    subcarriers must share one marginal rate ``eta = g * mmse(g p)``, and
    inactive ones must start below it.  Near zero certifies optimality of
    the concave program independently of how the powers were computed.
    """
    gains = np.asarray(gains, dtype=float)
    powers = np.asarray(powers, dtype=float)
    active_mask = powers > 1e-9 * max(float(powers.max()), 1e-300)
    if not active_mask.any():
        return 0.0
    marginals = gains * mmse_of_snr(gains * powers, modulation)
    eta = float(np.median(marginals[active_mask]))
    if eta <= 0:
        return 0.0
    residual = float(np.max(np.abs(marginals[active_mask] - eta))) / eta
    inactive = ~active_mask
    if inactive.any():
        # An idle subcarrier whose zero-power marginal exceeds eta should
        # have received power — count it against the certificate.
        idle_marginals = gains[inactive]  # mmse(0) = 1
        violation = float(np.max(idle_marginals - eta, initial=0.0)) / eta
        residual = max(residual, violation)
    return residual


def oracle_mercury(
    gains,
    total_power: float,
    drop_candidates: Optional[Sequence[int]] = None,
    modulations: Sequence[Modulation] = MODULATIONS,
    method: str = "auto",
    collector: Optional[Collector] = None,
) -> OracleSolution:
    """Independent re-solve of mercury/water-filling with selection.

    Sweeps the same ``(drop count, constellation)`` grid as
    :func:`repro.core.mercury.mercury_allocate` (the grid is part of the
    algorithm's contract) but solves every inner power problem by direct
    maximization of the concave mutual-information objective — SLSQP when
    SciPy is available, dual bisection on the marginal rate otherwise —
    rather than the production eta-bisection over inverted MMSE tables.
    """
    col = active(collector)
    gains = np.asarray(gains, dtype=float)
    if gains.ndim != 1:
        raise ValueError("gains must be one-dimensional (a single stream)")
    if total_power <= 0:
        raise ValueError("total_power must be positive")
    resolved = _resolve_method(method)
    inner = _mercury_powers_slsqp if resolved == "lp" else _mercury_powers_dual_bisection
    method_used = "slsqp" if resolved == "lp" else "bisection"

    n = gains.size
    order = np.argsort(gains)
    drops = DEFAULT_DROPS if drop_candidates is None else tuple(drop_candidates)

    with col.span("oracle.solve", kind="mercury", method=method_used):
        col.inc("oracle.solves")
        best_goodput = 0.0
        best_powers = np.zeros(n)
        best_used = np.zeros(n, dtype=bool)
        best_mcs_index = -1
        # Highest-rate constellations first: once an incumbent exists, a
        # (drop, modulation) pair whose zero-FER bound (best table rate x
        # kept / N) cannot beat it skips its inner solve — a sound prune.
        by_rate = sorted(
            modulations,
            key=lambda mod: max(m.rate_bps for m in MCS_TABLE if m.modulation == mod),
            reverse=True,
        )
        for drop in drops:
            if drop >= n:
                continue
            kept = order[drop:]
            kept = kept[gains[kept] > 0]
            if kept.size == 0:
                continue
            sub_gains = gains[kept]
            for modulation in by_rate:
                ceiling = max(m.rate_bps for m in MCS_TABLE if m.modulation == modulation)
                if ceiling * kept.size / N_DATA_SUBCARRIERS <= best_goodput:
                    continue
                powers_kept = inner(sub_gains, total_power, modulation)
                sinr = np.zeros(n)
                sinr[kept] = powers_kept * sub_gains
                used = np.zeros(n, dtype=bool)
                used[kept] = powers_kept > 0
                if not used.any():
                    continue
                table = [m for m in MCS_TABLE if m.modulation == modulation]
                selection = best_rate(sinr, used=used, mcs_table=table)
                if selection.goodput_bps > best_goodput:
                    best_goodput = selection.goodput_bps
                    best_powers = np.zeros(n)
                    best_powers[kept] = powers_kept
                    best_used = used
                    best_mcs_index = selection.mcs.index if selection.mcs else -1

        return OracleSolution(
            powers=best_powers,
            used=best_used,
            goodput_bps=float(best_goodput),
            mcs_index=int(best_mcs_index),
            equalized_snr=0.0,
            method=method_used,
        )


# ----------------------------------------------------------------------
# Dispatch: which oracle cross-validates which iterative allocator
# ----------------------------------------------------------------------

#: Oracle entry points by scheme key (the keys of :data:`ORACLE_RTOL`).
_ORACLES: Dict[str, Callable] = {
    "equi_snr": oracle_equi_snr,
    "equi_sinr": oracle_equi_snr,  # same program on effective gains
    "mercury": oracle_mercury,
}


def oracle_for(key: str) -> Callable:
    """The oracle solver for a scheme key ("equi_snr"/"equi_sinr"/"mercury")."""
    try:
        return _ORACLES[key]
    except KeyError:
        raise KeyError(f"no oracle registered for {key!r}; known: {sorted(_ORACLES)}")


def allocator_key(allocator: Callable) -> Optional[str]:
    """Scheme key of a known per-stream allocator, or None if unrecognized."""
    if allocator is equi_snr.allocate:
        return "equi_snr"
    if allocator is mercury_allocate:
        return "mercury"
    return None


def oracle_single(
    gains: np.ndarray,
    total_power: float,
    interference: Optional[np.ndarray] = None,
    noise_mw: float = 1.0,
    oracle: Callable = oracle_equi_snr,
    collector: Optional[Collector] = None,
) -> List[OracleSolution]:
    """Oracle counterpart of :func:`repro.core.equi_sinr.allocate_single`.

    Splits the budget equally between streams (the paper's choice) and
    solves each stream's problem on its effective gains independently.
    """
    gains = np.asarray(gains, dtype=float)
    if gains.ndim != 2:
        raise ValueError("gains must have shape (n_subcarriers, n_streams)")
    n_streams = gains.shape[1]
    effective = effective_gains(gains, interference, noise_mw)
    budget = total_power / n_streams
    return [
        oracle(effective[:, s], budget, collector=collector) for s in range(n_streams)
    ]


# ----------------------------------------------------------------------
# N-player interference graph, best-response dynamics, equilibrium checks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GraphPlayer:
    """One (AP, client) pair in an N-player interference graph."""

    name: str
    #: (n_sc, n_streams) signal gain at the own client per unit power.
    gains: np.ndarray
    #: Transmit power budget in mW.
    budget: float
    #: Noise floor at the own client in mW.
    noise_mw: float

    @property
    def n_streams(self) -> int:
        return int(self.gains.shape[1])


@dataclass
class InterferenceGraph:
    """N players plus directed interference coupling between them.

    ``coupling[(victim, source)]`` is the per-(subcarrier, stream)
    interference gain of the source player's streams at the victim's
    client, per unit transmit power — the N-player generalization of
    :class:`repro.core.equi_sinr.ConcurrentContext`.  Missing edges mean
    the two networks do not hear each other (out of carrier-sense range).
    """

    players: List[GraphPlayer]
    coupling: Dict[Tuple[int, int], np.ndarray]
    leakage_linear: float = 10.0 ** (-27.0 / 10.0)

    def __post_init__(self):
        if len(self.players) < 2:
            raise ValueError("an interference graph needs at least two players")
        n_sc = self.players[0].gains.shape[0]
        for player in self.players:
            if player.gains.ndim != 2 or player.gains.shape[0] != n_sc:
                raise ValueError("all players must share the subcarrier axis")
        for (victim, source), edge in self.coupling.items():
            if victim == source:
                raise ValueError("a player cannot interfere with itself")
            if edge.shape != self.players[source].gains.shape[:1] + (
                self.players[source].n_streams,
            ):
                raise ValueError(
                    f"coupling ({victim}, {source}) must be (n_sc, n_streams_source)"
                )

    @property
    def n_players(self) -> int:
        return len(self.players)

    @property
    def n_subcarriers(self) -> int:
        return int(self.players[0].gains.shape[0])

    def interference_at(self, victim: int, radiated: Sequence[np.ndarray]) -> np.ndarray:
        """Total interference power (n_sc,) at one victim's client."""
        total = np.zeros(self.n_subcarriers)
        for source in range(self.n_players):
            if source == victim:
                continue
            edge = self.coupling.get((victim, source))
            if edge is not None:
                total += np.sum(edge * radiated[source], axis=1)
        return total


def graph_from_context(context: ConcurrentContext) -> InterferenceGraph:
    """The 2-player graph equivalent to a :class:`ConcurrentContext`."""
    players = [
        GraphPlayer(
            name=f"AP{a + 1}",
            gains=np.asarray(context.gains[a], dtype=float),
            budget=float(context.budgets[a]),
            noise_mw=float(context.noise_mw[a]),
        )
        for a in range(2)
    ]
    # context.coupling[a] is AP a's interference gain at the *other* client.
    coupling = {
        (1, 0): np.asarray(context.coupling[0], dtype=float),
        (0, 1): np.asarray(context.coupling[1], dtype=float),
    }
    return InterferenceGraph(
        players=players, coupling=coupling, leakage_linear=context.leakage_linear
    )


@dataclass
class GraphAllocation:
    """Joint allocation for all players of an interference graph."""

    allocations: List[StreamAllocation]
    iterations: int
    converged: bool

    @property
    def predicted_aggregate_bps(self) -> float:
        return float(sum(a.predicted_goodput_bps for a in self.allocations))


def allocate_graph(
    graph: InterferenceGraph,
    max_iterations: int = 8,
    tolerance: float = 1e-3,
    allocator=equi_snr.allocate,
    collector: Optional[Collector] = None,
) -> GraphAllocation:
    """Synchronous best-response dynamics over the interference graph.

    The N-player generalization of the Figure-6 iteration: every player
    starts assuming equal power spread everywhere, then repeatedly re-runs
    Algorithm 1 against the interference implied by everyone else's last
    radiated powers (leakage included), keeping the best joint allocation
    seen.  At N = 2 this reproduces :func:`repro.core.equi_sinr
    .allocate_concurrent` exactly.
    """
    from .equi_sinr import allocate_single  # local: avoids a cycle at import

    col = active(collector)
    n = graph.n_players
    n_sc = graph.n_subcarriers
    radiated = [
        np.full(p.gains.shape, p.budget / (p.n_streams * n_sc)) for p in graph.players
    ]

    best: Optional[GraphAllocation] = None
    previous: Optional[List[np.ndarray]] = None
    converged = False
    iterations_run = 0
    scale = sum(p.budget for p in graph.players)

    with col.span("oracle.graph_dynamics", players=n):
        for iteration in range(1, max_iterations + 1):
            iterations_run = iteration
            allocations = []
            for i, player in enumerate(graph.players):
                interference = graph.interference_at(i, radiated)
                allocations.append(
                    allocate_single(
                        player.gains,
                        player.budget,
                        interference=interference,
                        noise_mw=player.noise_mw,
                        allocator=allocator,
                    )
                )
            candidate = GraphAllocation(
                allocations=allocations, iterations=iteration, converged=False
            )
            if best is None or candidate.predicted_aggregate_bps > best.predicted_aggregate_bps:
                best = candidate

            new_radiated = [
                radiated_powers(a.powers, a.used, graph.leakage_linear)
                for a in allocations
            ]
            if previous is not None:
                change = sum(
                    float(np.abs(new_radiated[i] - previous[i]).sum()) for i in range(n)
                )
                if change <= tolerance * scale:
                    converged = True
                    break
            previous = new_radiated
            radiated = new_radiated

    assert best is not None
    return GraphAllocation(
        allocations=best.allocations, iterations=iterations_run, converged=converged
    )


def score_stream_allocation(
    player: GraphPlayer,
    allocation: StreamAllocation,
    interference: np.ndarray,
) -> float:
    """Predicted goodput of a fixed allocation under given interference.

    Re-scores the allocation's per-stream SINRs with the shared rate
    model; unlike ``Allocation.goodput_bps`` (computed against the
    interference seen at solve time) this evaluates the allocation at the
    joint operating point, which is what equilibrium checks need.
    """
    effective = effective_gains(player.gains, interference, player.noise_mw)
    total = 0.0
    for s in range(allocation.powers.shape[1]):
        used = allocation.used[:, s]
        if not used.any():
            continue
        sinr = allocation.powers[:, s] * effective[:, s]
        total += best_rate(sinr, used=used).goodput_bps
    return total


@dataclass(frozen=True)
class PlayerGap:
    """One player's distance from its best response."""

    player: str
    #: Goodput of the player's current allocation at the joint operating point.
    current_bps: float
    #: Goodput of the oracle best response to everyone else's allocation.
    best_response_bps: float

    @property
    def regret(self) -> float:
        """Relative improvement available by unilateral deviation (>= 0)."""
        if self.best_response_bps <= 0:
            return 0.0
        return max(0.0, self.best_response_bps - self.current_bps) / self.best_response_bps


def equilibrium_gaps(
    graph: InterferenceGraph,
    allocations: Sequence[StreamAllocation],
    oracle: Callable = oracle_equi_snr,
    collector: Optional[Collector] = None,
) -> List[PlayerGap]:
    """Per-player epsilon-best-response check of a joint allocation.

    Holding everyone else's radiated powers fixed, each player's best
    response is an independent single-stream oracle solve per stream; the
    gap between that and the player's current (re-scored) goodput is its
    regret.  A (near-)zero regret vector certifies a (near-)Nash
    equilibrium of the allocation game on the graph.
    """
    col = active(collector)
    if len(allocations) != graph.n_players:
        raise ValueError("one allocation per player is required")
    radiated = [
        radiated_powers(a.powers, a.used, graph.leakage_linear) for a in allocations
    ]
    gaps: List[PlayerGap] = []
    with col.span("oracle.equilibrium_check", players=graph.n_players):
        for i, player in enumerate(graph.players):
            interference = graph.interference_at(i, radiated)
            current = score_stream_allocation(player, allocations[i], interference)
            solutions = oracle_single(
                player.gains,
                player.budget,
                interference=interference,
                noise_mw=player.noise_mw,
                oracle=oracle,
                collector=collector,
            )
            best_response = float(sum(s.goodput_bps for s in solutions))
            gap = PlayerGap(
                player=player.name, current_bps=current, best_response_bps=best_response
            )
            col.observe("oracle.regret", gap.regret)
            gaps.append(gap)
    return gaps


@dataclass(frozen=True)
class IncentiveGap:
    """One player's concurrent throughput vs. its sequential baseline."""

    player: str
    #: Goodput at the joint operating point (everyone transmitting).
    concurrent_bps: float
    #: Goodput transmitting alone with a 1/N airtime share.
    sequential_bps: float

    def compatible(self, slack: float = 1e-3) -> bool:
        return self.concurrent_bps >= self.sequential_bps * (1.0 - slack)


def incentive_gaps(
    graph: InterferenceGraph,
    allocations: Sequence[StreamAllocation],
    oracle: Callable = oracle_equi_snr,
    collector: Optional[Collector] = None,
) -> List[IncentiveGap]:
    """N-player generalization of §3.5's incentive-compatibility check.

    COPA's 2-player "fair" mode admits a concurrent strategy only when
    neither client falls below its sequential (COPA-SEQ) throughput.  On a
    graph the sequential baseline is each player transmitting alone —
    interference-free, full budget — for a 1/N share of the airtime; a
    joint allocation is incentive compatible when every player's
    concurrent goodput meets that baseline.
    """
    if len(allocations) != graph.n_players:
        raise ValueError("one allocation per player is required")
    radiated = [
        radiated_powers(a.powers, a.used, graph.leakage_linear) for a in allocations
    ]
    share = 1.0 / graph.n_players
    gaps: List[IncentiveGap] = []
    for i, player in enumerate(graph.players):
        interference = graph.interference_at(i, radiated)
        concurrent = score_stream_allocation(player, allocations[i], interference)
        alone = oracle_single(
            player.gains,
            player.budget,
            interference=None,
            noise_mw=player.noise_mw,
            oracle=oracle,
            collector=collector,
        )
        sequential = float(sum(s.goodput_bps for s in alone)) * share
        gaps.append(
            IncentiveGap(
                player=player.name, concurrent_bps=concurrent, sequential_bps=sequential
            )
        )
    return gaps


# ----------------------------------------------------------------------
# Shadow checks (the StrategyEngine hook)
# ----------------------------------------------------------------------


def shadow_check_single(
    gains: np.ndarray,
    total_power: float,
    allocation: StreamAllocation,
    allocator: Callable,
    interference: Optional[np.ndarray] = None,
    noise_mw: float = 1.0,
    collector: Optional[Collector] = None,
) -> Optional[bool]:
    """Cross-validate one :func:`allocate_single` result in shadow mode.

    Compares each stream's predicted goodput against the matching oracle
    within the documented tolerance, recording ``oracle.agree`` /
    ``oracle.mismatch`` counters and an ``oracle.rel_gap`` histogram
    instead of raising (engines must never fail on an oracle bug).
    Returns True/False for agree/mismatch, or None when the engine runs an
    allocator the oracle registry does not know.
    """
    col = active(collector)
    key = allocator_key(allocator)
    if key is None:
        col.inc("oracle.skipped")
        return None
    if key == "equi_snr" and interference is not None:
        key = "equi_sinr"
    tolerance = ORACLE_RTOL[key]
    oracle = oracle_for(key)
    solutions = oracle_single(
        gains,
        total_power,
        interference=interference,
        noise_mw=noise_mw,
        oracle=oracle,
        collector=collector,
    )
    agree = True
    for stream, solution in zip(allocation.per_stream, solutions):
        reference = max(solution.goodput_bps, stream.goodput_bps)
        gap = (
            abs(solution.goodput_bps - stream.goodput_bps) / reference
            if reference > 0
            else 0.0
        )
        col.observe("oracle.rel_gap", gap)
        if gap > tolerance:
            agree = False
    col.inc("oracle.agree" if agree else "oracle.mismatch")
    return agree
