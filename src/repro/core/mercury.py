"""Mercury/water-filling power allocation (Lozano, Tulino & Verdú 2006).

Classic water-filling is optimal for Gaussian inputs; Wi-Fi transmits
discrete QAM constellations, for which the optimal per-subcarrier powers
follow the *mercury/water-filling* rule: with channel gains ``g_k`` and
water level ``1/η``,

    p_k = (1/g_k) · mmse⁻¹(η / g_k)   if g_k > η,   else 0,

where ``mmse(γ)`` is the minimum mean-square error of estimating the
constellation symbol at SNR γ.  The mercury (the ``mmse⁻¹`` correction)
pours *under* the water and reduces how much power a strong subcarrier
soaks up once its constellation is nearly saturated.

The paper uses iterated mercury/water-filling (plus explicit subcarrier
selection) as the impractical-but-better "COPA+" upper bound (§3.3, §4);
it reports 30–50 s of compute per allocation on their platform, which is
why COPA+ is evaluated in trace-driven emulation only.  Our NumPy
implementation is fast enough to run everywhere.

MMSE functions are computed numerically by Gauss–Hermite quadrature on the
per-dimension PAM decomposition of square QAM, then cached as monotone
interpolation tables.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np

from ..phy.constants import MCS_TABLE, MODULATIONS, Modulation
from ..phy.rates import best_rate, best_rate_batch
from .equi_snr import Allocation, BatchAllocation

__all__ = [
    "DEFAULT_DROPS",
    "mmse_pam",
    "mmse_curve",
    "mmse_of_snr",
    "mmse_inverse",
    "mutual_information_of_snr",
    "mercury_waterfilling",
    "mercury_waterfilling_batch",
    "mercury_allocate",
    "mercury_allocate_batch",
]

#: Gauss–Hermite order for the MMSE integrals.
_GH_ORDER = 81
#: SNR grid for the cached MMSE tables (linear, log-spaced).
_SNR_GRID = np.logspace(-6, 8, 561)


def _pam_points(points_per_dim: int) -> np.ndarray:
    levels = 2.0 * np.arange(points_per_dim) - (points_per_dim - 1)
    return levels / np.sqrt(np.mean(levels**2))


def mmse_pam(snr_linear, points_per_dim: int) -> np.ndarray:
    """MMSE of unit-energy PAM in real AWGN with noise variance 1/snr.

    Computed exactly (to quadrature accuracy) as
    ``1 − E_y[(E[x|y])²]`` with the expectation over ``y = x + n`` taken by
    Gauss–Hermite quadrature around each constellation point.
    """
    snr = np.atleast_1d(np.asarray(snr_linear, dtype=float))
    x = _pam_points(points_per_dim)
    nodes, weights = np.polynomial.hermite.hermgauss(_GH_ORDER)
    weights = weights / np.sqrt(np.pi)

    out = np.empty_like(snr)
    for idx, gamma in enumerate(snr):
        if gamma <= 0:
            out[idx] = 1.0
            continue
        sigma = 1.0 / np.sqrt(gamma)
        # y samples: x_i + sigma * sqrt(2) * node  (Gauss-Hermite for N(0, σ²)).
        y = x[:, None] + sigma * np.sqrt(2.0) * nodes[None, :]
        # posterior mean of x given each y
        diff = y[:, :, None] - x[None, None, :]
        log_like = -(diff**2) * gamma / 2.0
        log_like -= log_like.max(axis=2, keepdims=True)
        like = np.exp(log_like)
        posterior_mean = (like * x[None, None, :]).sum(axis=2) / like.sum(axis=2)
        second_moment = ((posterior_mean**2) * weights[None, :]).sum(axis=1).mean()
        out[idx] = max(1.0 - second_moment, 0.0)
    return out if np.ndim(snr_linear) else float(out[0])


def _points_per_dim(modulation: Modulation) -> Tuple[int, float]:
    """PAM order per dimension and the SNR scale factor for the modulation.

    BPSK puts all its energy in one real dimension, so the effective
    per-dimension SNR is doubled; square QAM splits evenly, giving per-dim
    SNR equal to the complex-symbol SNR.
    """
    if modulation.bits_per_symbol == 1:
        return 2, 2.0
    if modulation.bits_per_symbol % 2:
        raise ValueError(f"unsupported modulation {modulation!r}")
    return 2 ** (modulation.bits_per_symbol // 2), 1.0


@lru_cache(maxsize=None)
def mmse_curve(bits_per_symbol: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached (snr_grid, mmse values) table for a constellation."""
    modulation = next(m for m in MODULATIONS if m.bits_per_symbol == bits_per_symbol)
    per_dim, scale = _points_per_dim(modulation)
    values = mmse_pam(_SNR_GRID * scale, per_dim)
    return _SNR_GRID.copy(), np.asarray(values)


def mmse_of_snr(snr_linear, modulation: Modulation) -> np.ndarray:
    """MMSE of the complex constellation at the given symbol SNR."""
    grid, values = mmse_curve(modulation.bits_per_symbol)
    snr = np.asarray(snr_linear, dtype=float)
    return np.interp(snr, grid, values, left=1.0, right=0.0)


@lru_cache(maxsize=None)
def _mi_table(bits_per_symbol: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cumulative exact integral of the piecewise-linear MMSE interpolant.

    Returns ``(grid, mmse values, I(grid))`` with the mutual information in
    nats.  Below the grid the MMSE is 1 (so I(s) = s there); the cumulative
    values integrate the same interpolant :func:`mmse_of_snr` evaluates, so
    the pair (I, mmse) is an exactly consistent (objective, gradient) pair
    for optimizers — the I-MMSE relation dI/dsnr = mmse(snr).
    """
    grid, values = mmse_curve(bits_per_symbol)
    segments = np.diff(grid) * (values[:-1] + values[1:]) / 2.0
    cumulative = grid[0] + np.concatenate([[0.0], np.cumsum(segments)])
    return grid, values, cumulative


def mutual_information_of_snr(snr_linear, modulation: Modulation) -> np.ndarray:
    """Mutual information (nats) of the constellation at the given SNR.

    Defined as the exact integral of the interpolated MMSE curve, so
    :func:`mmse_of_snr` is its derivative everywhere — the property the
    oracle's concave program relies on.  Saturates at the constellation's
    entropy-limited ceiling once the MMSE table reaches zero.
    """
    grid, values, cumulative = _mi_table(modulation.bits_per_symbol)
    snr = np.atleast_1d(np.asarray(snr_linear, dtype=float))
    out = np.empty_like(snr)

    below = snr <= grid[0]
    above = snr >= grid[-1]
    inside = ~(below | above)
    out[below] = np.maximum(snr[below], 0.0)
    out[above] = cumulative[-1]
    if inside.any():
        s = snr[inside]
        index = np.searchsorted(grid, s, side="right") - 1
        g0, g1 = grid[index], grid[index + 1]
        v0, v1 = values[index], values[index + 1]
        slope = (v1 - v0) / (g1 - g0)
        ds = s - g0
        out[inside] = cumulative[index] + v0 * ds + 0.5 * slope * ds**2
    return out if np.ndim(snr_linear) else float(out[0])


def mmse_inverse(target, modulation: Modulation) -> np.ndarray:
    """SNR at which the constellation's MMSE equals ``target`` ∈ (0, 1].

    Targets at or above 1 map to SNR 0; targets at or below the table
    floor map to the top of the SNR grid (effectively "unbounded power",
    which the water-level bisection in :func:`mercury_waterfilling` never
    actually requests).
    """
    grid, values = mmse_curve(modulation.bits_per_symbol)
    target = np.asarray(target, dtype=float)
    # values are decreasing in snr; np.interp needs increasing x.
    return np.interp(target, values[::-1], grid[::-1], left=grid[-1], right=0.0)


def mercury_waterfilling(
    gains,
    total_power: float,
    modulation: Modulation,
    tolerance: float = 1e-9,
    max_bisections: int = 80,
) -> np.ndarray:
    """Optimal powers for a discrete constellation over parallel channels.

    ``gains[k]`` is the SINR per unit power on subcarrier k.  Returns the
    per-subcarrier powers summing to ``total_power`` (within tolerance).
    """
    gains = np.asarray(gains, dtype=float)
    if total_power <= 0:
        raise ValueError("total_power must be positive")
    positive = gains > 0
    if not positive.any():
        return np.zeros_like(gains)

    def powers_for(eta: float) -> np.ndarray:
        powers = np.zeros_like(gains)
        active = gains > eta
        if active.any():
            ratio = eta / gains[active]
            powers[active] = mmse_inverse(ratio, modulation) / gains[active]
        return powers

    # Total power decreases monotonically in eta; bisect in log space.
    eta_high = float(gains[positive].max())
    eta_low = eta_high * 1e-12
    # Expand the lower bracket until it yields at least the requested power.
    for _ in range(60):
        if powers_for(eta_low).sum() >= total_power:
            break
        eta_low /= 1e3
    else:
        # MMSE saturation: even "infinite water" can't absorb the budget on
        # this grid; fall back to proportional scaling of the max solution.
        powers = powers_for(eta_low)
        return powers * (total_power / max(powers.sum(), 1e-300))

    for _ in range(max_bisections):
        eta_mid = np.sqrt(eta_low * eta_high)
        total = powers_for(eta_mid).sum()
        if abs(total - total_power) <= tolerance * total_power:
            eta_low = eta_mid
            break
        if total > total_power:
            eta_low = eta_mid
        else:
            eta_high = eta_mid
    powers = powers_for(eta_low)
    scale = total_power / max(powers.sum(), 1e-300)
    return powers * scale


def mercury_waterfilling_batch(
    gains,
    total_power: float,
    modulation: Modulation,
    tolerance: float = 1e-9,
    max_bisections: int = 80,
) -> np.ndarray:
    """Row-batched :func:`mercury_waterfilling`, bit-identical per row.

    ``gains`` has shape (n_rows, n_sc) and must be strictly positive
    (the batched caller routes rows with non-positive gains to the serial
    path).  Every row follows exactly the serial water-level trajectory:
    the same bracket expansion, the same per-row bisection sequence (rows
    that converge freeze their bracket while the rest keep bisecting) and
    the same final proportional rescale — so the returned powers match
    the serial call row for row.
    """
    gains = np.asarray(gains, dtype=float)
    if total_power <= 0:
        raise ValueError("total_power must be positive")
    if gains.ndim != 2:
        raise ValueError("gains must have shape (n_rows, n_subcarriers)")
    if not np.all(gains > 0):
        raise ValueError("batched mercury/water-filling requires strictly positive gains")
    n_rows = gains.shape[0]

    def powers_for(eta: np.ndarray) -> np.ndarray:
        active = gains > eta[:, None]
        with np.errstate(over="ignore"):
            ratio = np.where(active, eta[:, None] / gains, 0.0)
            return np.where(active, mmse_inverse(ratio, modulation) / gains, 0.0)

    # Total power decreases monotonically in eta; bisect in log space.
    eta_high = gains.max(axis=1)
    eta_low = eta_high * 1e-12
    # Expand each row's lower bracket until it yields the requested power;
    # rows exhausting the 60 tries are MMSE-saturated and skip bisection
    # (their proportional rescale below matches the serial fallback).
    bracketed = np.zeros(n_rows, dtype=bool)
    for _ in range(60):
        pending = ~bracketed
        bracketed |= pending & (powers_for(eta_low).sum(axis=1) >= total_power)
        pending = ~bracketed
        if not pending.any():
            break
        eta_low = np.where(pending, eta_low / 1e3, eta_low)

    settled = ~bracketed
    for _ in range(max_bisections):
        active_rows = ~settled
        if not active_rows.any():
            break
        eta_mid = np.sqrt(eta_low * eta_high)
        totals = powers_for(eta_mid).sum(axis=1)
        converged = active_rows & (np.abs(totals - total_power) <= tolerance * total_power)
        eta_low = np.where(converged, eta_mid, eta_low)
        settled |= converged
        active_rows &= ~converged
        go_up = active_rows & (totals > total_power)
        eta_low = np.where(go_up, eta_mid, eta_low)
        eta_high = np.where(active_rows & ~go_up, eta_mid, eta_high)

    powers = powers_for(eta_low)
    scale = total_power / np.maximum(powers.sum(axis=1), 1e-300)
    return powers * scale[:, None]


#: Default drop-count candidates for the subcarrier-selection loop.  The
#: mercury rule already zeroes hopeless subcarriers, so a coarse sweep of
#: explicit drops (which also shrink the decoder's codeword) suffices.
#: Public because the candidate grid is part of the algorithm's contract:
#: the optimization oracle (:mod:`repro.core.oracle`) sweeps the same grid
#: with an independent inner solver.
DEFAULT_DROPS: Tuple[int, ...] = (0, 1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 26, 32, 40)
_DEFAULT_DROPS = DEFAULT_DROPS  # back-compat alias


def mercury_allocate(
    gains,
    total_power: float,
    drop_candidates: Optional[Sequence[int]] = None,
    modulations: Sequence[Modulation] = MODULATIONS,
) -> Allocation:
    """Mercury/water-filling with explicit subcarrier selection.

    A drop-in replacement for :func:`repro.core.equi_snr.allocate` (same
    signature contract: ``gains`` is S(I)NR per unit power).  For each
    candidate drop count and constellation, allocate the remaining
    subcarriers by mercury/water-filling and predict goodput with the
    single-decoder rate model; keep the best.
    """
    gains = np.asarray(gains, dtype=float)
    n = gains.size
    order = np.argsort(gains)
    drops = _DEFAULT_DROPS if drop_candidates is None else tuple(drop_candidates)

    best_goodput = 0.0
    best_powers = np.zeros(n)
    best_used = np.zeros(n, dtype=bool)
    best_mcs = None
    for drop in drops:
        if drop >= n:
            continue
        kept = order[drop:]
        kept = kept[gains[kept] > 0]
        if kept.size == 0:
            continue
        sub_gains = gains[kept]
        for modulation in modulations:
            powers_kept = mercury_waterfilling(sub_gains, total_power, modulation)
            sinr = np.zeros(n)
            sinr[kept] = powers_kept * sub_gains
            used = np.zeros(n, dtype=bool)
            used[kept] = powers_kept > 0
            if not used.any():
                continue
            table = [m for m in MCS_TABLE if m.modulation == modulation]
            selection = best_rate(sinr, used=used, mcs_table=table)
            if selection.goodput_bps > best_goodput:
                best_goodput = selection.goodput_bps
                best_powers = np.zeros(n)
                best_powers[kept] = powers_kept
                best_used = used
                best_mcs = selection.mcs

    return Allocation(
        powers=best_powers,
        used=best_used,
        equalized_snr=0.0,  # mercury does not equalize; field unused here
        mcs=best_mcs,
        goodput_bps=float(best_goodput),
    )


def mercury_allocate_batch(
    gains,
    total_power: float,
    drop_candidates: Optional[Sequence[int]] = None,
    modulations: Sequence[Modulation] = MODULATIONS,
) -> BatchAllocation:
    """Row-batched :func:`mercury_allocate`, bit-identical per row.

    ``gains`` has shape (n_rows, n_sc).  Rows with strictly positive
    gains — the overwhelmingly common case, since the engine feeds
    matched-filter gains over noise — share one vectorized sweep of the
    (drop count × constellation) grid; any row with a non-positive gain
    falls back to the serial :func:`mercury_allocate` (its kept-subcarrier
    filter makes the batch ragged), so results match in every case.
    """
    gains = np.asarray(gains, dtype=float)
    if gains.ndim != 2:
        raise ValueError("gains must have shape (n_rows, n_subcarriers)")
    n_rows, n = gains.shape
    drops = _DEFAULT_DROPS if drop_candidates is None else tuple(drop_candidates)

    best_goodput = np.zeros(n_rows)
    best_powers = np.zeros((n_rows, n))
    best_used = np.zeros((n_rows, n), dtype=bool)
    best_mcs_index = np.full(n_rows, -1)

    batchable = np.all(gains > 0, axis=1)
    rows = np.nonzero(batchable)[0]
    if rows.size:
        sub = gains[rows]
        order = np.argsort(sub, axis=1)
        for drop in drops:
            if drop >= n:
                continue
            kept = order[:, drop:]
            sub_gains = np.take_along_axis(sub, kept, axis=1)
            for modulation in modulations:
                powers_kept = mercury_waterfilling_batch(sub_gains, total_power, modulation)
                sinr = np.zeros((rows.size, n))
                np.put_along_axis(sinr, kept, powers_kept * sub_gains, axis=1)
                used = np.zeros((rows.size, n), dtype=bool)
                np.put_along_axis(used, kept, powers_kept > 0, axis=1)
                table = [m for m in MCS_TABLE if m.modulation == modulation]
                selection = best_rate_batch(sinr, used=used, mcs_table=table)
                improved = used.any(axis=1) & (selection.goodput_bps > best_goodput[rows])
                if not improved.any():
                    continue
                powers_full = np.zeros((rows.size, n))
                np.put_along_axis(powers_full, kept, powers_kept, axis=1)
                take = np.zeros(n_rows, dtype=bool)
                take[rows] = improved
                best_goodput[take] = selection.goodput_bps[improved]
                best_powers[take] = powers_full[improved]
                best_used[take] = used[improved]
                best_mcs_index[take] = selection.mcs_index[improved]

    for b in np.nonzero(~batchable)[0]:
        serial = mercury_allocate(gains[b], total_power, drop_candidates, modulations)
        best_goodput[b] = serial.goodput_bps
        best_powers[b] = serial.powers
        best_used[b] = serial.used
        best_mcs_index[b] = -1 if serial.mcs is None else serial.mcs.index

    return BatchAllocation(
        powers=best_powers,
        used=best_used,
        equalized_snr=np.zeros(n_rows),
        mcs_index=best_mcs_index,
        goodput_bps=best_goodput,
    )
