"""Pluggable array backend behind the batched strategy engine.

The batched engine (:mod:`repro.core.batch`) evaluates whole stacks of
topologies as ``(n_topologies, n_sc, n_rx, n_tx)`` arrays.  All of its
dense array work goes through an :class:`ArrayBackend`, a *thin* shim
over an array namespace plus the linear-algebra entry points the engine
needs (batched SVD, Hermitian solve, matmul, eigh/inv, einsum,
take_along_axis) and the special functions the rate model needs (erfc).
The shipped reference implementation is NumPy — the same kernels the
serial engine uses, which is what makes bit-identity between the two
paths provable — but the protocol deliberately mirrors the array-API
subset a CuPy or JAX namespace provides, so a GPU backend is an
implementation of this class, not a rewrite of the engine.

Two execution styles share the protocol:

* **Eager** backends (``"numpy"``) run the engine's generic batch path
  directly; :meth:`ArrayBackend.compile` is the identity and
  :meth:`ArrayBackend.vmap` is a host loop.
* **Fused** backends (``supports_fusion = True``) additionally run the
  trace-safe strategy-menu kernel in :mod:`repro.core.fused`:
  :meth:`vmap` maps the per-topology kernel over the batch axis and
  :meth:`compile` stages the mapped kernel (``jax.jit`` for the
  ``"jax"`` backend).  ``"numpy-fused"`` evaluates the identical kernel
  eagerly on NumPy, so the fused math is testable without jax installed.

Backends are looked up by name in a process-global registry so that
:class:`repro.core.options.EngineOptions` can validate its ``backend``
field at construction time (a typo fails in the caller's stack frame,
not inside a worker process) and so the CLI can enumerate valid
``--backend`` choices.  Registration is lazy: the ``"jax"`` name is
always registered, but jax itself is only imported when the backend is
first requested, so ``import repro`` never requires jax.

Determinism contract
--------------------
The ``"numpy"`` backend is the reference: results computed through it
are bit-identical to the serial engine by construction (same ufuncs,
same LAPACK drivers, same reduction orders).  Alternative backends are
*not* required to be bit-identical to NumPy — floating-point results on
other hardware legitimately differ in the last ulp, and the fused
kernel replaces the bit-exact masked-gather reductions with trace-safe
masked sums — but they must pass :func:`check_backend_conformance` and
stay within the golden values' 1e-6 relative tolerance (see the
tolerance policy in EXPERIMENTS.md and ``tests/core/test_fused.py`` /
``tests/core/test_backend_jax.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "NumpyFusedBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "check_backend_conformance",
    "tree_map",
    "tree_stack",
    "DEFAULT_BACKEND",
]

#: Name resolved when ``EngineOptions.backend`` is left unset.
DEFAULT_BACKEND = "numpy"


@runtime_checkable
class ArrayBackend(Protocol):
    """What the batched engine needs from an array library.

    ``xp`` is the backend's array namespace (``numpy`` itself for the
    reference backend; ``jax.numpy`` for the jax one) and must provide
    the array-API-style subset the engine calls through it (``matmul``,
    ``where``, ``einsum``, elementwise ufuncs, reductions).  The named
    methods below are the operations whose spelling differs across
    libraries often enough to deserve explicit seams.
    """

    #: Registry name, e.g. ``"numpy"``.
    name: str
    #: The array namespace used for elementwise ops and reductions.
    xp: object
    #: Whether the backend runs the fused strategy-menu kernel
    #: (:mod:`repro.core.fused`) instead of the generic batch path.
    supports_fusion: bool

    def asarray(self, array, dtype=None):
        """Move/convert ``array`` into this backend's native array type."""
        ...

    def to_numpy(self, array) -> np.ndarray:
        """Materialize a backend array as a host :class:`numpy.ndarray`."""
        ...

    def matmul(self, a, b):
        """Batched matrix multiply over the leading axes."""
        ...

    def svd(self, a, full_matrices: bool = True):
        """Batched singular value decomposition (per trailing 2-D slice)."""
        ...

    def solve(self, a, b):
        """Batched linear solve (per trailing 2-D slice)."""
        ...

    def eigh(self, a):
        """Batched Hermitian eigendecomposition (per trailing 2-D slice)."""
        ...

    def inv(self, a):
        """Batched matrix inverse (per trailing 2-D slice)."""
        ...

    def einsum(self, subscripts: str, *operands):
        """Einstein summation with the backend's reduction kernels."""
        ...

    def take_along_axis(self, array, indices, axis: int):
        """Gather along ``axis`` with an integer index array."""
        ...

    def erfc(self, x):
        """Complementary error function (the Q-function/BER seam)."""
        ...

    def vmap(self, fn: Callable, in_axes=0) -> Callable:
        """Map ``fn`` over a leading batch axis (``None`` = broadcast)."""
        ...

    def compile(self, fn: Callable, key=None) -> Callable:
        """Stage ``fn`` for repeated execution (identity for eager backends).

        ``key``, when given, lets the backend share one staged
        executable across calls that rebuild equivalent closures.
        """
        ...


def tree_map(fn: Callable, tree):
    """Apply ``fn`` to every array leaf of a nested dict/list/tuple."""
    if isinstance(tree, dict):
        return {key: tree_map(fn, value) for key, value in tree.items()}
    if isinstance(tree, (list, tuple)):
        return type(tree)(tree_map(fn, value) for value in tree)
    return fn(tree)


def tree_stack(trees: List):
    """Stack a list of identically-structured pytrees along a new axis 0.

    The NumPy analogue of what ``jax.vmap`` does to its outputs: every
    leaf across the list is stacked into one array with a leading batch
    axis.  Used by :meth:`NumpyBackend.vmap`.
    """
    first = trees[0]
    if isinstance(first, dict):
        return {key: tree_stack([tree[key] for tree in trees]) for key in first}
    if isinstance(first, (list, tuple)):
        return type(first)(
            tree_stack([tree[i] for tree in trees]) for i in range(len(first))
        )
    return np.stack([np.asarray(leaf) for leaf in trees], axis=0)


class NumpyBackend:
    """The reference backend: plain NumPy, shared with the serial engine."""

    name = "numpy"
    xp = np
    supports_fusion = False

    def asarray(self, array, dtype=None):
        return np.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    def matmul(self, a, b):
        return np.matmul(a, b)

    def svd(self, a, full_matrices: bool = True):
        return np.linalg.svd(a, full_matrices=full_matrices)

    def solve(self, a, b):
        return np.linalg.solve(a, b)

    def eigh(self, a):
        return np.linalg.eigh(a)

    def inv(self, a):
        return np.linalg.inv(a)

    def einsum(self, subscripts: str, *operands):
        return np.einsum(subscripts, *operands)

    def take_along_axis(self, array, indices, axis: int):
        return np.take_along_axis(array, indices, axis=axis)

    def erfc(self, x):
        from scipy.special import erfc

        return erfc(np.asarray(x, dtype=float))

    def vmap(self, fn: Callable, in_axes=0) -> Callable:
        """Host-loop vmap: call ``fn`` per row, stack the output pytrees."""

        def mapped(*args):
            axes = in_axes if isinstance(in_axes, (tuple, list)) else (in_axes,) * len(args)
            if len(axes) != len(args):
                raise ValueError(f"in_axes has {len(axes)} entries for {len(args)} arguments")
            sizes = {
                np.asarray(arg).shape[0] for arg, axis in zip(args, axes) if axis == 0
            }
            if len(sizes) != 1:
                raise ValueError(f"inconsistent batch sizes {sorted(sizes)}")
            (n_rows,) = sizes
            rows = [
                fn(
                    *(
                        arg[b] if axis == 0 else arg
                        for arg, axis in zip(args, axes)
                    )
                )
                for b in range(n_rows)
            ]
            return tree_stack(rows)

        return mapped

    def compile(self, fn: Callable, key=None) -> Callable:
        return fn


class NumpyFusedBackend(NumpyBackend):
    """The fused kernel evaluated eagerly on NumPy.

    Runs the exact trace-safe math the jax backend jits — same masked
    where/sum reductions, same inverse-permutation scatters — but on the
    host, one topology at a time.  It exists to (a) test the fused
    kernel's 1e-6 equivalence to the reference on machines without jax
    and (b) separate "fused-math divergence" from "jax/XLA divergence"
    when quantifying backend tolerance.  It is *not* a fast path.
    """

    name = "numpy-fused"
    supports_fusion = True


_REGISTRY: Dict[str, Callable[[], ArrayBackend]] = {}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register ``factory`` under ``name`` (e.g. at import of a plugin).

    Registration is what makes a name valid for ``EngineOptions.backend``
    and the CLI ``--backend`` flag; the factory is only called when the
    backend is first requested, so registering a backend whose library is
    not installed is harmless until someone selects it (the lazy
    ``"jax"`` registration below relies on exactly this).  Registering a
    name twice raises — a silent overwrite could reroute every cached
    ``EngineOptions.backend`` validation to different code.
    """
    if not name or not isinstance(name, str):
        raise TypeError(f"backend name must be a non-empty str, got {name!r}")
    if name in _REGISTRY:
        raise ValueError(
            f"array backend {name!r} is already registered; "
            "unregister it (remove from the registry) before replacing it"
        )
    _REGISTRY[name] = factory


def available_backends(importable_only: bool = False) -> List[str]:
    """Registered backend names, sorted for stable CLI/help output.

    With ``importable_only=True``, names whose factory raises
    :class:`ImportError` (a lazily-registered backend whose library is
    missing) are filtered out — the list of backends that would actually
    *work* on this machine, at the cost of importing each library.
    """
    names = sorted(_REGISTRY)
    if not importable_only:
        return names
    importable = []
    for name in names:
        try:
            _REGISTRY[name]()
        except ImportError:
            continue
        importable.append(name)
    return importable


def get_backend(name: str = DEFAULT_BACKEND) -> ArrayBackend:
    """Instantiate the backend registered under ``name``.

    An unknown name raises :class:`ValueError`.  A known name whose
    library is not installed raises :class:`ImportError` from the
    factory — the lazy-registration contract: the name is always valid
    to *select*, and fails with an actionable message only when first
    *used*.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown array backend {name!r}; registered backends: {available_backends()}"
        ) from None
    return factory()


def check_backend_conformance(backend: ArrayBackend) -> None:
    """Assert the invariants the batched engine relies on.

    Any future backend must pass this before being registered for real
    use; ``tests/core/test_backend.py`` runs it over every registered
    backend.  Raises :class:`AssertionError` with a specific message on
    the first violated invariant.
    """
    assert isinstance(backend.name, str) and backend.name, "backend.name must be a non-empty str"
    assert isinstance(backend.supports_fusion, bool), "backend.supports_fusion must be a bool"
    xp = backend.xp
    for attr in (
        "matmul",
        "where",
        "einsum",
        "abs",
        "sqrt",
        "cumsum",
        "argsort",
        "interp",
        "clip",
        "log1p",
        "expm1",
        "roll",
    ):
        assert hasattr(xp, attr), f"backend namespace lacks required function {attr!r}"

    # Host round trip preserves values, dtype kind and shape.
    host = np.arange(12, dtype=float).reshape(3, 4)
    native = backend.asarray(host)
    back = backend.to_numpy(native)
    assert back.shape == host.shape, "asarray/to_numpy round trip changed the shape"
    assert np.allclose(back, host), "asarray/to_numpy round trip changed the values"

    # Complex dtype survives the round trip (channels are complex128).
    cplx = backend.to_numpy(backend.asarray(np.array([1 + 2j, 3 - 4j])))
    assert np.iscomplexobj(cplx), "complex dtype lost in the asarray/to_numpy round trip"

    # Float64 precision survives the round trip (jax defaults to float32
    # unless x64 is enabled; the engine's tolerance policy assumes f64).
    precise = np.array([1.0 + 1e-12, 1.0 - 1e-12])
    round_tripped = backend.to_numpy(backend.asarray(precise))
    assert np.array_equal(round_tripped, precise), (
        "float64 precision lost in the round trip; the backend must run in "
        "double precision (for jax: jax.config.update('jax_enable_x64', True))"
    )

    # Batched matmul broadcasts over the leading axis.
    a = backend.asarray(np.ones((5, 2, 3)))
    b = backend.asarray(np.ones((5, 3, 4)))
    product = backend.to_numpy(backend.matmul(a, b))
    assert product.shape == (5, 2, 4), f"batched matmul shape wrong: {product.shape}"
    assert np.allclose(product, 3.0), "batched matmul values wrong"

    # Batched SVD decomposes each trailing 2-D slice.
    rng = np.random.default_rng(0)
    matrices = rng.standard_normal((4, 3, 3)) + 1j * rng.standard_normal((4, 3, 3))
    u, s, vh = backend.svd(backend.asarray(matrices), full_matrices=False)
    u, s, vh = backend.to_numpy(u), backend.to_numpy(s), backend.to_numpy(vh)
    assert s.shape == (4, 3), f"batched svd singular-value shape wrong: {s.shape}"
    rebuilt = u @ (s[..., None] * vh)
    assert np.allclose(rebuilt, matrices), "batched svd does not reconstruct its input"

    # Batched Hermitian solve over the leading axis.
    spd = np.einsum("kij,klj->kil", matrices, matrices.conj()) + 3 * np.eye(3)
    rhs = rng.standard_normal((4, 3, 1))
    solved = backend.to_numpy(backend.solve(backend.asarray(spd), backend.asarray(rhs)))
    assert solved.shape == (4, 3, 1), f"batched solve shape wrong: {solved.shape}"
    assert np.allclose(spd @ solved, rhs), "batched solve residual too large"

    # Batched Hermitian eigendecomposition reconstructs its input.
    eigenvalues, eigenvectors = backend.eigh(backend.asarray(spd))
    eigenvalues = backend.to_numpy(eigenvalues)
    eigenvectors = backend.to_numpy(eigenvectors)
    assert eigenvalues.shape == (4, 3), f"batched eigh value shape wrong: {eigenvalues.shape}"
    rebuilt = np.einsum(
        "kij,kj,klj->kil", eigenvectors, eigenvalues, eigenvectors.conj()
    )
    assert np.allclose(rebuilt, spd), "batched eigh does not reconstruct its input"

    # Batched inverse.
    inverse = backend.to_numpy(backend.inv(backend.asarray(spd)))
    assert np.allclose(inverse @ spd, np.eye(3)), "batched inv is not an inverse"

    # einsum through the named seam.
    quad = backend.to_numpy(
        backend.einsum("ki,ki->k", backend.asarray(matrices[:, :, 0].conj()), backend.asarray(matrices[:, :, 0]))
    )
    assert np.allclose(quad, np.sum(np.abs(matrices[:, :, 0]) ** 2, axis=1)), (
        "einsum ki,ki->k does not match the reference reduction"
    )

    # take_along_axis gathers with integer indices along a given axis.
    values = np.arange(20, dtype=float).reshape(4, 5)
    order = np.argsort(values[:, ::-1], axis=1)
    gathered = backend.to_numpy(
        backend.take_along_axis(backend.asarray(values), backend.asarray(order), axis=1)
    )
    assert np.array_equal(gathered, np.take_along_axis(values, order, axis=1)), (
        "take_along_axis does not match numpy's gather semantics"
    )

    # erfc matches scipy on the BER-relevant range.
    from scipy.special import erfc as scipy_erfc

    grid = np.linspace(0.0, 8.0, 17)
    ours = backend.to_numpy(backend.erfc(backend.asarray(grid)))
    assert np.allclose(ours, scipy_erfc(grid), rtol=1e-12, atol=1e-300), (
        "erfc diverges from scipy.special.erfc"
    )

    # vmap maps a pytree-returning function over the leading axis.
    def per_row(row, shift):
        return {"sum": row.sum() + shift, "double": row * 2.0}

    batch = backend.asarray(np.arange(6, dtype=float).reshape(3, 2))
    mapped = backend.vmap(per_row, in_axes=(0, None))(batch, backend.asarray(1.0))
    sums = backend.to_numpy(mapped["sum"])
    doubles = backend.to_numpy(mapped["double"])
    assert sums.shape == (3,), f"vmap scalar-leaf shape wrong: {sums.shape}"
    assert np.allclose(sums, [2.0, 6.0, 10.0]), "vmap sums wrong"
    assert doubles.shape == (3, 2), f"vmap array-leaf shape wrong: {doubles.shape}"

    # compile returns a callable computing the same values.
    compiled = backend.compile(lambda x: backend.xp.sqrt(x) + 1.0)
    out = backend.to_numpy(compiled(backend.asarray(np.array([4.0, 9.0]))))
    assert np.allclose(out, [3.0, 4.0]), "compile changed the function's values"


def _jax_backend_factory() -> ArrayBackend:
    """Lazy factory for the ``"jax"`` backend; imports jax on first use."""
    from .backend_jax import JaxBackend

    return JaxBackend()


register_backend("numpy", NumpyBackend)
register_backend("numpy-fused", NumpyFusedBackend)
register_backend("jax", _jax_backend_factory)
