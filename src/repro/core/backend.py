"""Pluggable array backend behind the batched strategy engine.

The batched engine (:mod:`repro.core.batch`) evaluates whole stacks of
topologies as ``(n_topologies, n_sc, n_rx, n_tx)`` arrays.  All of its
dense array work goes through an :class:`ArrayBackend`, a *thin* shim
over an array namespace plus the handful of linear-algebra entry points
the engine needs (batched SVD, Hermitian solve, matmul).  The shipped
implementation is NumPy — the same kernels the serial engine uses, which
is what makes bit-identity between the two paths provable — but the
protocol deliberately mirrors the array-API subset a CuPy or JAX
namespace provides, so a GPU backend is an implementation of this class,
not a rewrite of the engine.

Backends are looked up by name in a process-global registry so that
:class:`repro.core.options.EngineOptions` can validate its ``backend``
field at construction time (a typo fails in the caller's stack frame,
not inside a worker process) and so the CLI can enumerate valid
``--backend`` choices.

Determinism contract
--------------------
The ``"numpy"`` backend is the reference: results computed through it
are bit-identical to the serial engine by construction (same ufuncs,
same LAPACK drivers, same reduction orders).  Alternative backends are
*not* required to be bit-identical to NumPy — floating-point results on
other hardware legitimately differ in the last ulp — but they must pass
:func:`check_backend_conformance`, which pins the shapes, dtypes and
round-trip semantics the engine relies on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "check_backend_conformance",
    "DEFAULT_BACKEND",
]

#: Name resolved when ``EngineOptions.backend`` is left unset.
DEFAULT_BACKEND = "numpy"


@runtime_checkable
class ArrayBackend(Protocol):
    """What the batched engine needs from an array library.

    ``xp`` is the backend's array namespace (``numpy`` itself for the
    reference backend; ``cupy``/``jax.numpy`` for future ones) and must
    provide the array-API-style subset the engine calls through it
    (``matmul``, ``where``, ``einsum``, elementwise ufuncs, reductions).
    The named methods below are the operations whose spelling differs
    across libraries often enough to deserve explicit seams.
    """

    #: Registry name, e.g. ``"numpy"``.
    name: str
    #: The array namespace used for elementwise ops and reductions.
    xp: object

    def asarray(self, array, dtype=None):
        """Move/convert ``array`` into this backend's native array type."""
        ...

    def to_numpy(self, array) -> np.ndarray:
        """Materialize a backend array as a host :class:`numpy.ndarray`."""
        ...

    def matmul(self, a, b):
        """Batched matrix multiply over the leading axes."""
        ...

    def svd(self, a, full_matrices: bool = True):
        """Batched singular value decomposition (per trailing 2-D slice)."""
        ...

    def solve(self, a, b):
        """Batched linear solve (per trailing 2-D slice)."""
        ...


class NumpyBackend:
    """The reference backend: plain NumPy, shared with the serial engine."""

    name = "numpy"
    xp = np

    def asarray(self, array, dtype=None):
        return np.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    def matmul(self, a, b):
        return np.matmul(a, b)

    def svd(self, a, full_matrices: bool = True):
        return np.linalg.svd(a, full_matrices=full_matrices)

    def solve(self, a, b):
        return np.linalg.solve(a, b)


_REGISTRY: Dict[str, Callable[[], ArrayBackend]] = {}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register ``factory`` under ``name`` (e.g. at import of a plugin).

    Registration is what makes a name valid for ``EngineOptions.backend``
    and the CLI ``--backend`` flag; the factory is only called when the
    backend is first requested, so registering a backend whose library is
    not installed is harmless until someone selects it.
    """
    if not name or not isinstance(name, str):
        raise TypeError(f"backend name must be a non-empty str, got {name!r}")
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    """Registered backend names, sorted for stable CLI/help output."""
    return sorted(_REGISTRY)


def get_backend(name: str = DEFAULT_BACKEND) -> ArrayBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown array backend {name!r}; registered backends: {available_backends()}"
        ) from None
    return factory()


def check_backend_conformance(backend: ArrayBackend) -> None:
    """Assert the invariants the batched engine relies on.

    Any future backend must pass this before being registered for real
    use; ``tests/core/test_backend.py`` runs it over every registered
    backend.  Raises :class:`AssertionError` with a specific message on
    the first violated invariant.
    """
    assert isinstance(backend.name, str) and backend.name, "backend.name must be a non-empty str"
    xp = backend.xp
    for attr in ("matmul", "where", "einsum", "abs", "sqrt", "cumsum", "argsort", "interp"):
        assert hasattr(xp, attr), f"backend namespace lacks required function {attr!r}"

    # Host round trip preserves values, dtype kind and shape.
    host = np.arange(12, dtype=float).reshape(3, 4)
    native = backend.asarray(host)
    back = backend.to_numpy(native)
    assert back.shape == host.shape, "asarray/to_numpy round trip changed the shape"
    assert np.allclose(back, host), "asarray/to_numpy round trip changed the values"

    # Complex dtype survives the round trip (channels are complex128).
    cplx = backend.to_numpy(backend.asarray(np.array([1 + 2j, 3 - 4j])))
    assert np.iscomplexobj(cplx), "complex dtype lost in the asarray/to_numpy round trip"

    # Batched matmul broadcasts over the leading axis.
    a = backend.asarray(np.ones((5, 2, 3)))
    b = backend.asarray(np.ones((5, 3, 4)))
    product = backend.to_numpy(backend.matmul(a, b))
    assert product.shape == (5, 2, 4), f"batched matmul shape wrong: {product.shape}"
    assert np.allclose(product, 3.0), "batched matmul values wrong"

    # Batched SVD decomposes each trailing 2-D slice.
    rng = np.random.default_rng(0)
    matrices = rng.standard_normal((4, 3, 3)) + 1j * rng.standard_normal((4, 3, 3))
    u, s, vh = backend.svd(backend.asarray(matrices), full_matrices=False)
    u, s, vh = backend.to_numpy(u), backend.to_numpy(s), backend.to_numpy(vh)
    assert s.shape == (4, 3), f"batched svd singular-value shape wrong: {s.shape}"
    rebuilt = u @ (s[..., None] * vh)
    assert np.allclose(rebuilt, matrices), "batched svd does not reconstruct its input"

    # Batched Hermitian solve over the leading axis.
    spd = np.einsum("kij,klj->kil", matrices, matrices.conj()) + 3 * np.eye(3)
    rhs = rng.standard_normal((4, 3, 1))
    solved = backend.to_numpy(backend.solve(backend.asarray(spd), backend.asarray(rhs)))
    assert solved.shape == (4, 3, 1), f"batched solve shape wrong: {solved.shape}"
    assert np.allclose(spd @ solved, rhs), "batched solve residual too large"


register_backend("numpy", NumpyBackend)
