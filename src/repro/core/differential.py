"""Differential correctness harness: iterative allocators vs. the oracle.

Randomized cross-validation of the production power allocators against the
optimization oracle in :mod:`repro.core.oracle`.  Seeded scenarios are
drawn through the same pipeline the simulator uses — office topologies
from :mod:`repro.phy.topology`, tapped-delay-line channels, SVD
beamforming — so the oracle is exercised on the gain distributions the
allocators actually face, not synthetic toys.  Every disagreement beyond
the documented per-scheme tolerance is dumped as a minimal, replayable
reproducer (seed + the exact per-stream problem) so a failure in CI can be
re-run locally from the JSON alone.

Schema note: reproducer files carry ``"schema": "repro.oracle-repro/v1"``;
consumers must ignore unknown keys so fields can be added compatibly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.collector import Collector, active
from ..phy.channel import ChannelModel
from ..phy.constants import NOISE_FLOOR_DBM, TX_POWER_DBM
from ..phy.topology import TopologyGenerator
from ..sim.config import SimConfig
from ..util import dbm_to_mw
from . import equi_snr
from .equi_sinr import effective_gains
from .mercury import mercury_allocate
from .oracle import (
    ORACLE_RTOL,
    GraphPlayer,
    InterferenceGraph,
    allocate_graph,
    equilibrium_gaps,
    oracle_equi_snr,
    oracle_for,
    oracle_mercury,
)
from .precoding import beamforming_design, cross_coupling, stream_gains

__all__ = [
    "REPRODUCER_SCHEMA",
    "SCHEMES",
    "StreamCase",
    "Scenario",
    "Comparison",
    "SweepReport",
    "draw_scenario",
    "differential_sweep",
    "write_reproducer",
    "load_reproducer",
    "replay_reproducer",
    "draw_graph",
    "equilibrium_sweep",
    "EquilibriumReport",
]

REPRODUCER_SCHEMA = "repro.oracle-repro/v1"

#: Antenna configurations the scenario generator cycles through (by seed),
#: covering SISO, square MIMO and the paper's testbed 4x2 shape.
_ANTENNA_CYCLE: Tuple[Tuple[int, int], ...] = ((1, 1), (2, 2), (4, 2))

#: The iterative allocator behind each scheme key.  "equi_snr" and
#: "equi_sinr" share an implementation (the latter just runs on effective
#: gains that include interference); they are swept separately because the
#: gain distributions — and hence the numerical regimes — differ.
SCHEMES: Dict[str, Callable] = {
    "equi_snr": equi_snr.allocate,
    "equi_sinr": equi_snr.allocate,
    "mercury": mercury_allocate,
}


@dataclass(frozen=True)
class StreamCase:
    """One per-stream allocation problem extracted from a scenario."""

    #: Effective gains (S(I)NR per mW) the allocator and oracle both see.
    gains: np.ndarray
    #: Power budget for the stream in mW.
    budget: float
    #: Provenance label, e.g. "AP1/s0".
    label: str


@dataclass
class Scenario:
    """A seeded random scenario: per-stream cases plus replay provenance."""

    seed: int
    scheme: str
    antennas: Tuple[int, int]
    cases: List[StreamCase]
    noise_mw: float


def draw_scenario(
    seed: int,
    scheme: str,
    config: Optional[SimConfig] = None,
    tx_power_dbm: float = TX_POWER_DBM,
) -> Scenario:
    """Draw one seeded scenario for a scheme through the simulator pipeline.

    The topology, fading, and beamforming pipeline is the production one;
    what varies per scheme is the problem handed to the allocator:

    * ``equi_snr`` / ``mercury`` — interference-free effective gains (the
      Algorithm-1 and COPA+ sequential settings),
    * ``equi_sinr`` — effective gains under equal-spread interference from
      the other AP (Figure 6's iteration step).
    """
    if scheme not in SCHEMES:
        raise KeyError(f"unknown scheme {scheme!r}; known: {sorted(SCHEMES)}")
    rng = np.random.default_rng(seed)
    ap_antennas, client_antennas = _ANTENNA_CYCLE[seed % len(_ANTENNA_CYCLE)]
    generator = config.topology_generator() if config is not None else TopologyGenerator()
    model = config.channel_model() if config is not None else ChannelModel()
    topology = generator.sample(rng, ap_antennas=ap_antennas, client_antennas=client_antennas)
    channels = model.realize(topology, rng)
    noise_mw = channels.noise_floor_mw
    tx_power_mw = float(dbm_to_mw(tx_power_dbm))

    designs = []
    for i in range(2):
        ap, client = topology.aps[i].name, topology.clients[i].name
        designs.append(beamforming_design(channels.channel(ap, client), ap=ap, client=client))

    cases: List[StreamCase] = []
    for i in range(2):
        design = designs[i]
        gains = stream_gains(channels.channel(design.ap, design.client), design)
        n_sc, n_streams = gains.shape
        if scheme == "equi_sinr":
            other = designs[1 - i]
            coupled = cross_coupling(
                channels.channel(other.ap, design.client), other, victim_active_rx=design.active_rx
            )
            # Figure 6's opening assumption: the other sender spreads its
            # budget equally over every (subcarrier, stream) cell.
            spread = tx_power_mw / (other.n_streams * n_sc)
            interference = np.sum(coupled * spread, axis=1)
        else:
            interference = None
        effective = effective_gains(gains, interference, noise_mw)
        budget = tx_power_mw / n_streams
        for s in range(n_streams):
            cases.append(
                StreamCase(
                    gains=np.ascontiguousarray(effective[:, s]),
                    budget=budget,
                    label=f"{design.ap}/s{s}",
                )
            )
    return Scenario(
        seed=seed,
        scheme=scheme,
        antennas=(ap_antennas, client_antennas),
        cases=cases,
        noise_mw=noise_mw,
    )


@dataclass(frozen=True)
class Comparison:
    """One (stream case, allocator, oracle) comparison."""

    seed: int
    scheme: str
    label: str
    implementation_bps: float
    oracle_bps: float
    tolerance: float

    @property
    def rel_gap(self) -> float:
        reference = max(self.implementation_bps, self.oracle_bps)
        if reference <= 0:
            return 0.0
        return abs(self.implementation_bps - self.oracle_bps) / reference

    @property
    def agree(self) -> bool:
        return self.rel_gap <= self.tolerance


@dataclass
class SweepReport:
    """Outcome of a differential sweep over many seeds."""

    scheme: str
    tolerance: float
    comparisons: List[Comparison] = field(default_factory=list)
    reproducers: List[Path] = field(default_factory=list)

    @property
    def n_total(self) -> int:
        return len(self.comparisons)

    @property
    def mismatches(self) -> List[Comparison]:
        return [c for c in self.comparisons if not c.agree]

    @property
    def n_agree(self) -> int:
        return self.n_total - len(self.mismatches)

    @property
    def worst_gap(self) -> float:
        return max((c.rel_gap for c in self.comparisons), default=0.0)

    def summary(self) -> str:
        return (
            f"{self.scheme}: {self.n_agree}/{self.n_total} agree "
            f"(tolerance {self.tolerance:g}, worst gap {self.worst_gap:.3g})"
        )


def _compare_case(
    scheme: str,
    seed: int,
    case: StreamCase,
    tolerance: float,
    collector: Optional[Collector] = None,
) -> Comparison:
    allocator = SCHEMES[scheme]
    oracle = oracle_for(scheme)
    implementation = allocator(case.gains, case.budget)
    solution = oracle(case.gains, case.budget, collector=collector)
    return Comparison(
        seed=seed,
        scheme=scheme,
        label=case.label,
        implementation_bps=float(implementation.goodput_bps),
        oracle_bps=float(solution.goodput_bps),
        tolerance=tolerance,
    )


def differential_sweep(
    scheme: str,
    seeds: Sequence[int],
    tolerance: Optional[float] = None,
    config: Optional[SimConfig] = None,
    reproducer_dir: Optional[Path] = None,
    collector: Optional[Collector] = None,
) -> SweepReport:
    """Cross-validate one allocator against its oracle over seeded scenarios.

    Every stream of every scenario becomes one comparison; disagreements
    beyond ``tolerance`` (default: the documented :data:`ORACLE_RTOL`
    entry) are counted as ``oracle.mismatch`` and, when ``reproducer_dir``
    is given, dumped as replayable JSON reproducers.
    """
    col = active(collector)
    if tolerance is None:
        tolerance = ORACLE_RTOL[scheme]
    report = SweepReport(scheme=scheme, tolerance=tolerance)
    with col.span("oracle.differential_sweep", scheme=scheme, seeds=len(seeds)):
        for seed in seeds:
            scenario = draw_scenario(seed, scheme, config=config)
            for case in scenario.cases:
                comparison = _compare_case(scheme, seed, case, tolerance, collector=collector)
                report.comparisons.append(comparison)
                col.observe("oracle.rel_gap", comparison.rel_gap)
                if comparison.agree:
                    col.inc("oracle.agree")
                else:
                    col.inc("oracle.mismatch")
                    if reproducer_dir is not None:
                        report.reproducers.append(
                            write_reproducer(Path(reproducer_dir), comparison, case, scenario)
                        )
    return report


# ----------------------------------------------------------------------
# Reproducers: a mismatch must be replayable from its JSON alone
# ----------------------------------------------------------------------


def write_reproducer(
    directory: Path, comparison: Comparison, case: StreamCase, scenario: Scenario
) -> Path:
    """Dump one mismatch as a self-contained JSON reproducer.

    The gains are stored as full-precision floats (Python's ``repr`` round
    trip is exact for binary64), so a replay solves the *identical*
    problem — no topology re-draw, no RNG involved.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": REPRODUCER_SCHEMA,
        "scheme": comparison.scheme,
        "seed": comparison.seed,
        "label": comparison.label,
        "antennas": list(scenario.antennas),
        "noise_mw": scenario.noise_mw,
        "budget_mw": case.budget,
        "gains": [float(g) for g in case.gains],
        "implementation_bps": comparison.implementation_bps,
        "oracle_bps": comparison.oracle_bps,
        "rel_gap": comparison.rel_gap,
        "tolerance": comparison.tolerance,
    }
    name = f"mismatch-{comparison.scheme}-seed{comparison.seed}-{comparison.label.replace('/', '_')}.json"
    path = directory / name
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_reproducer(path: Path) -> Dict:
    """Load and schema-check a reproducer file."""
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema != REPRODUCER_SCHEMA:
        raise ValueError(f"unsupported reproducer schema {schema!r} (want {REPRODUCER_SCHEMA})")
    return payload


def replay_reproducer(payload: Dict, collector: Optional[Collector] = None) -> Comparison:
    """Re-run the exact comparison a reproducer file captured."""
    case = StreamCase(
        gains=np.asarray(payload["gains"], dtype=float),
        budget=float(payload["budget_mw"]),
        label=str(payload["label"]),
    )
    return _compare_case(
        str(payload["scheme"]),
        int(payload["seed"]),
        case,
        float(payload["tolerance"]),
        collector=collector,
    )


# ----------------------------------------------------------------------
# N-player equilibrium sweep over random interference graphs
# ----------------------------------------------------------------------


def draw_graph(
    seed: int,
    n_players: int = 3,
    config: Optional[SimConfig] = None,
    tx_power_dbm: float = TX_POWER_DBM,
) -> InterferenceGraph:
    """Draw a seeded N-player interference graph from the office pipeline.

    Uses :class:`repro.core.scheduler.Neighbourhood` to drop N (AP, client)
    pairs on one floor and realize every pairwise channel, then turns each
    pair's SVD design plus all cross couplings into an
    :class:`InterferenceGraph`.
    """
    from .scheduler import Neighbourhood  # local: scheduler imports core modules

    rng = np.random.default_rng(seed)
    ap_antennas, client_antennas = _ANTENNA_CYCLE[seed % len(_ANTENNA_CYCLE)]
    neighbourhood = Neighbourhood.sample(
        max(n_players, 2),
        rng,
        ap_antennas=ap_antennas,
        client_antennas=client_antennas,
        generator=config.topology_generator() if config is not None else None,
        model=config.channel_model() if config is not None else None,
    )
    tx_power_mw = float(dbm_to_mw(tx_power_dbm))
    noise_mw = neighbourhood.noise_floor_mw

    designs = []
    players = []
    for ap, client in neighbourhood.pairs:
        channel = neighbourhood.channels[(ap.name, client.name)]
        design = beamforming_design(channel, ap=ap.name, client=client.name)
        designs.append(design)
        players.append(
            GraphPlayer(
                name=ap.name,
                gains=stream_gains(channel, design),
                budget=tx_power_mw,
                noise_mw=noise_mw,
            )
        )

    coupling = {}
    for victim in range(len(players)):
        victim_client = neighbourhood.pairs[victim][1]
        for source in range(len(players)):
            if source == victim:
                continue
            source_ap = neighbourhood.pairs[source][0]
            channel = neighbourhood.channels[(source_ap.name, victim_client.name)]
            coupling[(victim, source)] = cross_coupling(
                channel, designs[source], victim_active_rx=designs[victim].active_rx
            )
    return InterferenceGraph(players=players, coupling=coupling)


@dataclass
class EquilibriumReport:
    """Regret statistics of the best-response dynamic over many graphs."""

    n_players: int
    #: Per-seed maximum player regret.
    max_regrets: List[float] = field(default_factory=list)
    #: Per-seed convergence flag of the best-response dynamic.
    converged: List[bool] = field(default_factory=list)

    @property
    def worst_regret(self) -> float:
        return max(self.max_regrets, default=0.0)

    @property
    def mean_regret(self) -> float:
        return float(np.mean(self.max_regrets)) if self.max_regrets else 0.0


def equilibrium_sweep(
    seeds: Sequence[int],
    n_players: int = 3,
    config: Optional[SimConfig] = None,
    collector: Optional[Collector] = None,
) -> EquilibriumReport:
    """Run the N-player dynamic on seeded graphs and measure regrets.

    The Figure-6 heuristic is *not* guaranteed to reach an equilibrium —
    this sweep quantifies how far it lands from one (per-player regret
    against the oracle best response) across random office graphs.
    """
    col = active(collector)
    report = EquilibriumReport(n_players=n_players)
    with col.span("oracle.equilibrium_sweep", players=n_players, seeds=len(seeds)):
        for seed in seeds:
            graph = draw_graph(seed, n_players=n_players, config=config)
            result = allocate_graph(graph, collector=collector)
            gaps = equilibrium_gaps(
                graph, result.allocations, oracle=oracle_equi_snr, collector=collector
            )
            report.max_regrets.append(max(g.regret for g in gaps))
            report.converged.append(result.converged)
    return report
