"""Terminal plotting: ASCII renderings of the paper's figure types.

The evaluation environment is headless, so the benchmarks and CLI render
their figures as text: CDF staircases (Figs. 10–13), per-subcarrier line
plots (Figs. 2, 4, 7) and grouped bar charts (Figs. 3, 14).  Every
function returns a string; nothing writes to stdout.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..core.schemes import SeriesKey
from .metrics import cdf

__all__ = ["ascii_cdf", "ascii_series", "ascii_bars"]

#: Fallback glyphs assigned to unrecognized series, in order.
_GLYPHS = "*o+x#@%&"

#: Canonical glyphs for the paper's scheme series, so a scheme keeps the
#: same glyph across figures regardless of which series a plot includes.
_CANONICAL_GLYPHS = {
    SeriesKey.CSMA.value: "*",
    SeriesKey.COPA.value: "o",
    SeriesKey.COPA_FAIR.value: "+",
    SeriesKey.NULL.value: "x",
    SeriesKey.COPA_SEQ.value: "#",
    SeriesKey.COPA_PLUS.value: "@",
    SeriesKey.COPA_PLUS_FAIR.value: "%",
}


def _series_glyphs(names: Sequence[str]) -> Dict[str, str]:
    """Name → glyph: canonical for known scheme series, ordered otherwise."""
    assigned: Dict[str, str] = {}
    used = set()
    for name in names:
        glyph = _CANONICAL_GLYPHS.get(name)
        if glyph is not None and glyph not in used:
            assigned[name] = glyph
            used.add(glyph)
    pool = (glyph for glyph in _GLYPHS if glyph not in used)
    for name in names:
        if name not in assigned:
            assigned[name] = next(pool, "?")
    return assigned


def _scale(values: np.ndarray, lo: float, hi: float, width: int) -> np.ndarray:
    if hi <= lo:
        return np.zeros(values.size, dtype=int)
    positions = (values - lo) / (hi - lo) * (width - 1)
    return np.clip(np.round(positions).astype(int), 0, width - 1)


def ascii_cdf(
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "Mbps",
) -> str:
    """Render empirical CDFs of several series on one set of axes.

    ``series`` maps a name to its sample values; each gets a glyph.  The
    y axis is cumulative probability 0→1, the x axis spans the pooled
    range of all samples — the format of the paper's Figures 10–13.
    """
    if not series:
        raise ValueError("need at least one series")
    pooled = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    lo, hi = float(pooled.min()), float(pooled.max())

    glyphs = _series_glyphs(list(series))
    grid = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        xs, ps = cdf(values)
        columns = _scale(xs, lo, hi, width)
        rows = np.clip(((1.0 - ps) * (height - 1)).round().astype(int), 0, height - 1)
        for column, row in zip(columns, rows):
            grid[row][column] = glyphs[name]

    lines = []
    for i, row in enumerate(grid):
        probability = 1.0 - i / (height - 1)
        lines.append(f"{probability:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<10.1f}{'':^{max(width - 20, 0)}}{hi:>10.1f}  ({x_label})")
    legend = "   ".join(f"{glyphs[name]}={name}" for name in series)
    lines.append("      " + legend)
    return "\n".join(lines)


def ascii_series(
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 14,
    y_label: str = "dB",
    x_label: str = "subcarrier",
) -> str:
    """Render per-index line series (the Figure 2/4/7 format).

    All series share the x axis (their index) and the pooled y range.
    NaN values (e.g. dropped subcarriers) are skipped.
    """
    if not series:
        raise ValueError("need at least one series")
    pooled = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    finite = pooled[np.isfinite(pooled)]
    if finite.size == 0:
        raise ValueError("no finite values to plot")
    lo, hi = float(finite.min()), float(finite.max())

    glyphs = _series_glyphs(list(series))
    grid = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        values = np.asarray(values, dtype=float)
        columns = _scale(np.arange(values.size).astype(float), 0, max(values.size - 1, 1), width)
        for index, value in enumerate(values):
            if not np.isfinite(value):
                continue
            row = height - 1 - int(_scale(np.array([value]), lo, hi, height)[0])
            grid[row][columns[index]] = glyphs[name]

    lines = [f"{hi:8.1f} |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append("         |" + "".join(row))
    lines.append(f"{lo:8.1f} |" + "".join(grid[-1]))
    lines.append("         +" + "-" * width)
    lines.append(f"          0{'':^{max(width - 12, 0)}}{x_label}")
    legend = "   ".join(f"{glyphs[name]}={name}" for name in series)
    lines.append("          " + legend + f"   (y: {y_label})")
    return "\n".join(lines)


def ascii_bars(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    baseline: Optional[float] = None,
) -> str:
    """Horizontal bar chart (the Figure 3/14 format).

    Bars are scaled to the largest magnitude; an optional ``baseline``
    draws a marker column (e.g. the CSMA reference).
    """
    if not values:
        raise ValueError("need at least one bar")
    label_width = max(len(name) for name in values)
    largest = max(abs(v) for v in values.values())
    if baseline is not None:
        largest = max(largest, abs(baseline))
    largest = largest or 1.0

    lines = []
    for name, value in values.items():
        length = int(round(abs(value) / largest * width))
        bar = "#" * length
        if baseline is not None:
            marker = int(round(abs(baseline) / largest * width))
            padded = list(bar.ljust(width))
            if 0 <= marker < width:
                padded[marker] = "|"
            bar = "".join(padded).rstrip()
        sign = "-" if value < 0 else ""
        lines.append(f"{name:<{label_width}}  {sign}{bar}  {value:.1f}{unit}")
    if baseline is not None:
        lines.append(f"{'':<{label_width}}  (| marks {baseline:.1f}{unit})")
    return "\n".join(lines)
