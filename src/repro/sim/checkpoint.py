"""Checkpoint-resume journal for the experiment runner (``repro.ckpt/v1``).

An interrupted 30-topology sweep should resume without recomputing the
topologies that already finished — and the resumed run must be
bit-identical to an uninterrupted one.  This module provides the on-disk
journal that makes that possible: an append-only JSON-Lines file of
completed :class:`repro.sim.runner.TaskResult` payloads keyed by
``(config_hash, index)``.

Determinism contract
--------------------
* ``config_hash`` is a SHA-256 fingerprint over everything that decides a
  task's result: index, seed, coherence time, the COPA+ flag, the engine
  options, the imperfection model and the raw channel bytes.  It
  deliberately **excludes** execution details (``attempt``, ``observe``,
  ``fault_plan``), so a chaos-interrupted run and its fault-free resume
  share a hash.
* Results are pickled NumPy-bearing dataclasses; pickling round-trips
  arrays bit-exactly, so series assembled from journal entries equal the
  freshly computed ones to the last bit (pinned by
  ``tests/sim/test_checkpoint.py``).

Schema (``repro.ckpt/v1``), one JSON object per line::

    {"schema": "repro.ckpt/v1", "config_hash": str,
     "n_tasks": int, "base_seed": int}                      # line 0
    {"kind": "result", "index": int, "attempt": int,
     "elapsed_s": float, "bytes": int, "sha256": str,
     "blob": "<base64 pickle of TaskResult>"}               # per result

Every entry line is flushed as soon as its task completes, so a crash
loses at most the in-flight task.  :func:`validate_journal` checks the
schema (and every blob digest) without unpickling anything — it is what
the CI ``chaos-smoke`` job runs on the uploaded artifact.  Loading a
journal *does* unpickle; journals are trusted local artifacts, never
untrusted input.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import sys
from typing import Dict, List, Optional, Sequence, Tuple

# Fingerprinting is hoisted into repro.sim.fingerprint so the checkpoint
# journal and the result cache (repro.cache) share one definition of
# "result-determining state"; re-exported here for backward compatibility.
from .fingerprint import (  # noqa: F401  (re-exports)
    describe_value as _describe,
    fingerprint_tasks,
    update_digest_with_channels as _update_with_channels,
)

__all__ = [
    "SCHEMA_ID",
    "CheckpointError",
    "fingerprint_tasks",
    "Journal",
    "load_completed",
    "validate_journal",
]

SCHEMA_ID = "repro.ckpt/v1"


class CheckpointError(ValueError):
    """A journal is malformed, mismatched or otherwise unusable."""


# ---------------------------------------------------------------------------
# The journal.
# ---------------------------------------------------------------------------


def _encode_result(result) -> Tuple[str, str, int]:
    raw = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(raw).decode("ascii"), hashlib.sha256(raw).hexdigest(), len(raw)


def _decode_blob(entry: dict) -> bytes:
    try:
        raw = base64.b64decode(entry["blob"].encode("ascii"), validate=True)
    except Exception as error:
        raise CheckpointError(f"entry for index {entry.get('index')}: bad base64 ({error})")
    if hashlib.sha256(raw).hexdigest() != entry.get("sha256"):
        raise CheckpointError(f"entry for index {entry.get('index')}: sha256 mismatch")
    return raw


class Journal:
    """Append-only checkpoint journal for one runner invocation.

    Open with :meth:`Journal.open`; completed results land in
    :attr:`completed` (index → ``TaskResult``) when resuming.  Use as a
    context manager so the file handle is always released.
    """

    def __init__(self, path: str, config_hash: str, completed: Dict[int, object], handle):
        self.path = path
        self.config_hash = config_hash
        self.completed = completed
        self._handle = handle

    @classmethod
    def open(cls, path: str, tasks: Sequence, resume: bool = False) -> "Journal":
        """Create (or, with ``resume=True``, reload) the journal at ``path``.

        Resuming verifies the stored ``config_hash`` against the tasks'
        fingerprint and raises :class:`CheckpointError` on mismatch — a
        journal never silently feeds results into a different experiment.
        A missing file with ``resume=True`` simply starts fresh.
        """
        config_hash = fingerprint_tasks(tasks)
        completed: Dict[int, object] = {}
        if resume and os.path.exists(path):
            header, entries = _read_lines(path, tolerate_partial_tail=True)
            if header.get("schema") != SCHEMA_ID:
                raise CheckpointError(
                    f"{path}: schema {header.get('schema')!r} is not {SCHEMA_ID!r}"
                )
            if header.get("config_hash") != config_hash:
                raise CheckpointError(
                    f"{path}: journal was written by a different experiment "
                    f"(config_hash {header.get('config_hash')!r} != {config_hash!r})"
                )
            for entry in entries:
                index = entry.get("index")
                if not isinstance(index, int) or not 0 <= index < len(tasks):
                    raise CheckpointError(f"{path}: entry index {index!r} out of range")
                completed[index] = pickle.loads(_decode_blob(entry))
            handle = open(path, "a")
        else:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            handle = open(path, "w")
            base_seed = int(tasks[0].seed) if tasks else 0
            handle.write(
                json.dumps(
                    {
                        "schema": SCHEMA_ID,
                        "config_hash": config_hash,
                        "n_tasks": len(tasks),
                        "base_seed": base_seed,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            handle.flush()
        return cls(path, config_hash, completed, handle)

    def record(self, result) -> None:
        """Append one completed task result and flush it to disk."""
        blob, sha256, n_bytes = _encode_result(result)
        entry = {
            "kind": "result",
            "index": int(result.record.index),
            "attempt": 0,
            "elapsed_s": float(result.elapsed_s),
            "bytes": n_bytes,
            "sha256": sha256,
            "blob": blob,
        }
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        self.completed[int(result.record.index)] = result

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def load_completed(path: str, config_hash: str, n_tasks: int) -> Dict[int, object]:
    """Read-only load of a journal's completed results (index → TaskResult).

    Unlike :meth:`Journal.open` this never opens the file for appending —
    it is the harvest-side reader of the sharded experiment service
    (:mod:`repro.sim.service`), which must be able to collect journals
    that other worker processes may still own.  The stored ``config_hash``
    is verified against the caller's expectation, every blob digest is
    checked, and a partial final line (a worker killed mid-write) is
    tolerated and simply recomputed by whoever reclaims the shard.
    """
    header, entries = _read_lines(path, tolerate_partial_tail=True)
    if header.get("schema") != SCHEMA_ID:
        raise CheckpointError(f"{path}: schema {header.get('schema')!r} is not {SCHEMA_ID!r}")
    if header.get("config_hash") != config_hash:
        raise CheckpointError(
            f"{path}: journal was written by a different experiment "
            f"(config_hash {header.get('config_hash')!r} != {config_hash!r})"
        )
    completed: Dict[int, object] = {}
    for entry in entries:
        index = entry.get("index")
        if not isinstance(index, int) or not 0 <= index < n_tasks:
            raise CheckpointError(f"{path}: entry index {index!r} out of range")
        completed[index] = pickle.loads(_decode_blob(entry))
    return completed


def _read_lines(path: str, tolerate_partial_tail: bool) -> Tuple[dict, List[dict]]:
    with open(path) as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise CheckpointError(f"{path}: empty journal")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise CheckpointError(f"{path}: unreadable header ({error})")
    entries: List[dict] = []
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError as error:
            # A crash mid-write leaves at most one partial final line;
            # resuming tolerates (and recomputes) it, validation does not.
            if tolerate_partial_tail and number == len(lines):
                break
            raise CheckpointError(f"{path}:{number}: unreadable entry ({error})")
    return header, entries


# ---------------------------------------------------------------------------
# Validation (dependency-free; what the CI chaos-smoke job runs).
# ---------------------------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckpointError(message)


def validate_journal(path: str) -> Dict[str, object]:
    """Validate a journal file against ``repro.ckpt/v1``; returns a summary.

    Checks the header, every entry's fields and every blob's SHA-256 —
    without unpickling any payload.  Raises :class:`CheckpointError` on
    the first violation.
    """
    header, entries = _read_lines(path, tolerate_partial_tail=False)
    _require(isinstance(header, dict), "header must be an object")
    _require(header.get("schema") == SCHEMA_ID, f"header.schema must be {SCHEMA_ID!r}")
    missing = {"config_hash", "n_tasks", "base_seed"} - set(header)
    _require(not missing, f"header missing fields: {sorted(missing)}")
    _require(
        isinstance(header["config_hash"], str) and len(header["config_hash"]) == 64,
        "header.config_hash must be a 64-char hex digest",
    )
    _require(
        isinstance(header["n_tasks"], int) and header["n_tasks"] >= 0,
        "header.n_tasks must be a non-negative int",
    )
    _require(isinstance(header["base_seed"], int), "header.base_seed must be an int")

    seen: set = set()
    for position, entry in enumerate(entries):
        _require(isinstance(entry, dict), f"entry[{position}] must be an object")
        _require(entry.get("kind") == "result", f"entry[{position}].kind must be 'result'")
        missing = {"index", "attempt", "elapsed_s", "bytes", "sha256", "blob"} - set(entry)
        _require(not missing, f"entry[{position}] missing fields: {sorted(missing)}")
        index = entry["index"]
        _require(
            isinstance(index, int) and 0 <= index < header["n_tasks"],
            f"entry[{position}].index must be in [0, {header['n_tasks']})",
        )
        _require(
            isinstance(entry["elapsed_s"], (int, float)) and entry["elapsed_s"] >= 0,
            f"entry[{position}].elapsed_s must be >= 0",
        )
        raw = _decode_blob(entry)
        _require(len(raw) == entry["bytes"], f"entry[{position}].bytes mismatches the blob")
        seen.add(index)
    return {
        "schema": header["schema"],
        "config_hash": header["config_hash"],
        "n_tasks": header["n_tasks"],
        "entries": len(entries),
        "indices": sorted(seen),
    }


def _main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.sim.checkpoint PATH`` — validate and summarize."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.sim.checkpoint JOURNAL_PATH", file=sys.stderr)
        return 2
    try:
        summary = validate_journal(argv[0])
    except (OSError, CheckpointError) as error:
        print(f"invalid journal: {error}", file=sys.stderr)
        return 1
    print(
        f"journal OK: schema {summary['schema']}, "
        f"{summary['entries']} of {summary['n_tasks']} tasks checkpointed "
        f"(indices {summary['indices']}), config {summary['config_hash'][:12]}…"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_main())
