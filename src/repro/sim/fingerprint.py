"""Config fingerprinting shared by checkpoints and the result cache.

Both the ``repro.ckpt/v1`` journal (:mod:`repro.sim.checkpoint`) and the
content-addressed result cache (:mod:`repro.cache`) need the same answer
to the same question: *which inputs decide a task's result?*  Keeping the
answer in one module means the two subsystems cannot drift — a field that
invalidates a cache entry also invalidates a journal, and vice versa.

Determinism contract
--------------------
Every fingerprint here is a SHA-256 over **result-determining state
only**:

* per-task: index, seed, coherence time, the COPA+ flag, every
  result-determining :class:`~repro.core.options.EngineOptions` field,
  the imperfection model, and the raw channel bytes (dict order is
  canonicalized by sorting, so insertion order never matters);
* execution-only task fields (``attempt``, ``observe``, ``fault_plan``)
  and observation-only options (:data:`RESULT_IRRELEVANT_OPTION_FIELDS`)
  are deliberately **excluded** — a retried, observed, chaos-injected or
  oracle-shadowed run produces the same bytes, so it must share keys
  with a clean run;
* the ``backend`` option is hashed *iff* it names a non-reference
  backend (see :data:`_REFERENCE_BACKEND`): reference runs keep their
  historical keys, while tolerance-equivalent backends get their own —
  a jax artifact must never be served to a numpy run as bit-identical;
* callables are described by ``module.qualname``, never by ``repr`` (a
  memory address would change every process restart).

The resulting hex digests are stable across processes, machines and
Python versions for a given repo state; ``tests/sim/test_fingerprint.py``
pins golden values to catch accidental drift.

Everything here is duck-typed (tasks, channel sets, scenario specs and
sim configs are only touched through their public attributes), so this
module imports nothing from the rest of the package and sits below both
:mod:`repro.sim.checkpoint` and :mod:`repro.cache` in the layering.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "describe_value",
    "update_digest_with_channels",
    "fingerprint_channels",
    "fingerprint_task",
    "fingerprint_tasks",
    "fingerprint_channel_config",
    "quantize_channels",
    "fingerprint_quantized",
]

#: Salt for per-task fingerprints; bump when the hashed fields change.
TASK_SALT = "repro.task/v1"
#: Salt for channel-realization config fingerprints.
CHANNELS_SALT = "repro.channels/v1"
#: Salt for quantized channel-cell fingerprints (the allocation service's
#: lookup keys); bump when the quantization scheme changes.
QUANTIZED_SALT = "repro.quant/v1"

#: :class:`repro.sim.config.SimConfig` fields that do **not** influence
#: :func:`repro.sim.experiment.generate_channel_sets`.  Everything not
#: listed here is hashed, so a *new* config field conservatively changes
#: the channel key until it is proven irrelevant and added to this set.
CHANNEL_IRRELEVANT_CONFIG_FIELDS = frozenset(
    {"coherence_s", "csi_error_db", "tx_evm_db", "carrier_leakage_db"}
)

#: :class:`repro.sim.experiment.ScenarioSpec` fields that do not influence
#: channel realization (``name`` is presentational; ``include_copa_plus``
#: only selects which engines run over the same channels).
CHANNEL_IRRELEVANT_SPEC_FIELDS = frozenset({"name", "include_copa_plus"})

#: :class:`repro.core.options.EngineOptions` fields that do **not**
#: influence results, like the execution-only task fields.
#: ``oracle_check`` shadow-validates allocations and records counters but
#: never alters what the engine returns, so a checked run must share keys
#: with an unchecked one.  Everything not listed here is hashed, so a new
#: option field conservatively changes the key until proven irrelevant.
RESULT_IRRELEVANT_OPTION_FIELDS = frozenset({"oracle_check"})

#: The backend whose results define bit-identity.  ``backend`` is hashed
#: *conditionally*: the reference backend (or an unset field) is skipped
#: — so every pre-existing cache key stays valid — while any other
#: backend's name is folded in.  Non-reference backends (``"jax"``,
#: ``"numpy-fused"``) are only tolerance-equivalent (1e-6, see
#: EXPERIMENTS.md), so their artifacts must never be served to, or
#: populated by, a reference run as "bit-identical".  Kept as a local
#: constant rather than an import: this module hashes only stdlib-visible
#: state on purpose (see the module docstring).
_REFERENCE_BACKEND = "numpy"

#: Option fields added after the ``repro.task/v1`` salt whose *unset*
#: (``None``) value is skipped so every pre-existing cache key stays
#: valid — mirroring the reference-backend rule above.  This is safe
#: because an unset cluster field runs the identical legacy code path
#: (the N=2 delegate is bit-identical by construction); any explicit
#: value is hashed and therefore invalidates the key.
_DEFAULT_SKIPPED_OPTION_FIELDS = frozenset({"cluster_policy", "cluster_threshold_db"})

#: ``ScenarioSpec`` fields added after the ``repro.channels/v1`` salt,
#: skipped at their historical default for the same reason: a 2-AP spec
#: must keep its pre-N-cell channel key, while any other AP count is
#: hashed (it changes both topology sampling and every engine result).
_DEFAULT_SKIPPED_SPEC_FIELDS = {"n_aps": 2}


def describe_value(value) -> str:
    """A stable, address-free description of one option value."""
    if value is None:
        return "None"
    if callable(value):
        module = getattr(value, "__module__", "?")
        name = getattr(value, "__qualname__", getattr(value, "__name__", repr(value)))
        return f"callable:{module}.{name}"
    return repr(value)


def update_digest_with_channels(digest, channels) -> None:
    """Feed one :class:`~repro.phy.channel.ChannelSet` into ``digest``.

    Channel matrices are hashed in sorted key order with their dtype and
    shape, so two sets holding bit-identical arrays fingerprint equal no
    matter how their dicts were built.
    """
    digest.update(f"noise={channels.noise_floor_mw!r};nsc={channels.n_subcarriers}".encode())
    for key in sorted(channels.channels):
        array = np.ascontiguousarray(channels.channels[key])
        digest.update(f"H|{key[0]}|{key[1]}|{array.dtype.str}|{array.shape}".encode())
        digest.update(array.tobytes())
    topology = channels.topology
    for (a, b), gain in sorted(topology.link_gain_db.items()):
        digest.update(f"gain|{a}|{b}|{gain!r}".encode())


def fingerprint_channels(channels) -> str:
    """SHA-256 over one realized channel set's content."""
    digest = hashlib.sha256()
    update_digest_with_channels(digest, channels)
    return digest.hexdigest()


def _update_digest_with_task(digest, task) -> None:
    digest.update(
        f"task|{task.index}|seed={task.seed}|coh={task.coherence_s!r}"
        f"|plus={int(task.include_copa_plus)}".encode()
    )
    for field in dataclasses.fields(task.options):
        if field.name in RESULT_IRRELEVANT_OPTION_FIELDS:
            continue
        value = getattr(task.options, field.name)
        if field.name == "backend" and value in (None, _REFERENCE_BACKEND):
            # Reference-backend runs keep their historical keys; see
            # _REFERENCE_BACKEND above.
            continue
        if field.name in _DEFAULT_SKIPPED_OPTION_FIELDS and value is None:
            continue
        digest.update(f"opt|{field.name}={describe_value(value)}".encode())
    digest.update(repr(task.imperfections).encode())
    update_digest_with_channels(digest, task.channels)


def fingerprint_task(task) -> str:
    """SHA-256 over everything that determines one task's result.

    This is the result cache's content address for the task's
    :class:`~repro.sim.runner.TaskResult`: two tasks share a key exactly
    when a correct engine must produce bit-identical records for them.
    """
    digest = hashlib.sha256()
    digest.update(TASK_SALT.encode())
    _update_digest_with_task(digest, task)
    return digest.hexdigest()


def fingerprint_tasks(tasks: Sequence) -> str:
    """SHA-256 over everything that determines the tasks' results.

    Execution-only fields (``attempt``, ``observe``, ``fault_plan``) are
    excluded on purpose: retried, observed or chaos-injected runs of the
    same experiment must resume each other's journals.
    """
    digest = hashlib.sha256()
    digest.update(f"repro.ckpt/v1;tasks={len(tasks)}".encode())
    for task in tasks:
        _update_digest_with_task(digest, task)
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Quantized channel fingerprints (the allocation service's lookup keys).
# ---------------------------------------------------------------------------

#: Magnitude bin for an exactly-zero channel entry (|h| = 0 has no dB
#: representation; any finite gain, however small, lands elsewhere).
_ZERO_BIN = np.iinfo(np.int64).min


def _phase_step_rad(grid_db: float) -> float:
    """Phase bin width matching ``grid_db``'s relative resolution.

    A magnitude step of ``grid_db`` dB multiplies ``|h|`` by
    ``10^(grid_db/20)``, i.e. moves ``ln|h|`` by ``grid_db·ln10/20``.
    Using the same numeric step (in radians) for ``arg(h)`` quantizes the
    complex logarithm ``ln h = ln|h| + i·arg(h)`` on a square grid — one
    parameter controls both axes at equal resolution.
    """
    return grid_db * math.log(10.0) / 20.0


def quantize_channels(channels, grid_db: float) -> Tuple:
    """The grid cell one :class:`~repro.phy.channel.ChannelSet` lands in.

    Every complex channel entry is quantized in log-polar form: the
    magnitude in dB is rounded to the nearest multiple of ``grid_db`` and
    the phase to the matching step (:func:`_phase_step_rad`); exact zeros
    get a reserved bin.  The noise floor and topology link gains are
    rounded on the same dB grid.  The result is a nested tuple of plain
    ints/strings — hashable and comparable — such that two channel sets
    share a cell **iff** this function returns equal tuples for them
    (which is exactly when :func:`fingerprint_quantized` collides).
    """
    if not grid_db > 0:
        raise ValueError(f"grid_db must be > 0, got {grid_db!r}")
    phase_step = _phase_step_rad(grid_db)
    entries = []
    for key in sorted(channels.channels):
        array = np.ascontiguousarray(channels.channels[key])
        magnitude = np.abs(array)
        nonzero = magnitude > 0
        safe = np.where(nonzero, magnitude, 1.0)
        mag_bins = np.where(
            nonzero,
            np.round(20.0 * np.log10(safe) / grid_db),
            float(_ZERO_BIN),
        ).astype(np.int64)
        phase_bins = np.where(
            nonzero, np.round(np.angle(array) / phase_step), 0.0
        ).astype(np.int64)
        entries.append(
            (
                str(key[0]),
                str(key[1]),
                array.shape,
                tuple(mag_bins.ravel().tolist()),
                tuple(phase_bins.ravel().tolist()),
            )
        )
    links = tuple(
        (str(a), str(b), int(round(gain / grid_db)))
        for (a, b), gain in sorted(channels.topology.link_gain_db.items())
    )
    noise_bin = int(round(10.0 * math.log10(channels.noise_floor_mw) / grid_db))
    return (int(channels.n_subcarriers), noise_bin, tuple(entries), links)


def fingerprint_quantized(channels, grid_db: float) -> str:
    """SHA-256 over the quantized cell of one channel set.

    This is the allocation service's lookup key ingredient: channel sets
    that quantize to the same ``grid_db`` cell share the key (and may
    share a cached strategy answer); any set in a different cell — or the
    same set under a different grid — gets a different key.  The grid
    itself is folded in, so answers computed at one tolerance are never
    served at another.
    """
    cell = quantize_channels(channels, grid_db)
    digest = hashlib.sha256()
    digest.update(QUANTIZED_SALT.encode())
    digest.update(f"|grid={grid_db!r}|".encode())
    digest.update(repr(cell).encode())
    return digest.hexdigest()


def fingerprint_channel_config(spec, config) -> str:
    """SHA-256 key for a scenario's full list of channel realizations.

    Hashes every :class:`ScenarioSpec` and :class:`SimConfig` field
    *except* the explicitly channel-irrelevant ones, so e.g. two configs
    differing only in ``coherence_s`` or ``csi_error_db`` share one set
    of realized channels while any seed/geometry/fading change gets a
    fresh key.  Unknown future fields are hashed by default — stale
    reuse is the one failure mode this must never have.
    """
    digest = hashlib.sha256()
    digest.update(CHANNELS_SALT.encode())
    for field in dataclasses.fields(spec):
        if field.name in CHANNEL_IRRELEVANT_SPEC_FIELDS:
            continue
        value = getattr(spec, field.name)
        if field.name in _DEFAULT_SKIPPED_SPEC_FIELDS and value == _DEFAULT_SKIPPED_SPEC_FIELDS[field.name]:
            continue
        digest.update(f"spec|{field.name}={describe_value(value)}".encode())
    for field in dataclasses.fields(config):
        if field.name in CHANNEL_IRRELEVANT_CONFIG_FIELDS:
            continue
        digest.update(f"config|{field.name}={describe_value(getattr(config, field.name))}".encode())
    return digest.hexdigest()
