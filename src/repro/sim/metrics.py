"""Statistics helpers for the evaluation: CDFs, summaries, comparisons.

The paper reports its results as across-topology CDFs with the mean in the
legend (Figs. 10–13), plus headline comparisons like "nulling
underperforms CSMA in 83% of topologies" and "COPA improves nulling's
throughput by a mean of 64%".  These helpers compute exactly those
quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["Summary", "cdf", "summarize", "ComparisonStats", "compare"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one scheme's across-topology results."""

    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    n: int


def summarize(values) -> Summary:
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarize an empty series")
    return Summary(
        mean=float(values.mean()),
        median=float(np.median(values)),
        std=float(values.std()),
        minimum=float(values.min()),
        maximum=float(values.max()),
        n=int(values.size),
    )


def cdf(values) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, P(X <= value))."""
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0:
        raise ValueError("cannot build a CDF from an empty series")
    probabilities = np.arange(1, values.size + 1) / values.size
    return values, probabilities


@dataclass(frozen=True)
class ComparisonStats:
    """How scheme A compares to scheme B across topologies."""

    #: Fraction of topologies where A strictly beats B.
    win_fraction: float
    #: Mean of (A − B) / B over all topologies.
    mean_improvement: float
    #: Median of (A − B) / B over all topologies.
    median_improvement: float
    #: Mean improvement restricted to topologies where A wins.
    mean_improvement_when_winning: float


def compare(a, b) -> ComparisonStats:
    """Per-topology relative comparison of two paired series."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("series must be non-empty and the same length")
    if np.any(b <= 0):
        raise ValueError("the baseline series must be positive")
    improvement = (a - b) / b
    wins = a > b
    when_winning = float(improvement[wins].mean()) if wins.any() else 0.0
    return ComparisonStats(
        win_fraction=float(wins.mean()),
        mean_improvement=float(improvement.mean()),
        median_improvement=float(np.median(improvement)),
        mean_improvement_when_winning=when_winning,
    )
