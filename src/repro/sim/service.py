"""Sharded multi-host experiment service over the shared result cache.

This module composes the pieces PRs 1/4/5 shipped — the deterministic
per-topology runner, the ``repro.ckpt/v1`` checkpoint journal and the
flock'd content-addressed :class:`~repro.cache.ResultCache` — into the
production-traffic path the ROADMAP asks for: **N cooperating processes
on one filesystem behave like one machine**, and a long-lived front end
answers strategy queries from the warm cache before falling back to
compute.

Two layers live here:

1. **The work-stealing shard runner.**  A *shard directory* holds one
   published experiment split into claimable shards of topology indices.
   Workers (:func:`run_worker`) race to claim shards through lease files
   — atomic ``os.replace`` publication under an ``fcntl`` flock sidecar,
   heartbeat-stamped so a dead worker's shard is reclaimed by a peer
   once its lease expires — and drain each claimed shard through the
   ordinary :func:`repro.sim.runner.run_tasks` with a per-shard
   ``repro.ckpt/v1`` journal and the shared cache as the artifact store.
   Because every task carries its private seed, *which* worker runs a
   shard (or re-runs it after stealing it from a corpse) is invisible in
   the results: a 4-process sharded run is bit-identical to one serial
   process, which is exactly what ``tests/sim/test_service_differential
   .py`` pins.

2. **The allocation service.**  :class:`AllocationService` answers
   "what should these channels do?" queries by *quantized* channel
   fingerprint (:func:`repro.sim.fingerprint.fingerprint_quantized`):
   channel sets that land in the same ``grid_db`` cell share a cached
   strategy answer, so repeat traffic is served from disk without
   touching the engine.  Misses compute through the regular engine and
   populate the cache for every later client.

Shard-directory layout (``repro.shard/v1``)::

    <shard_dir>/manifest.json          # the published experiment + shard table
    <shard_dir>/manifest.lock          # flock sidecar for publication
    <shard_dir>/leases/<shard>.lease   # current claim (owner, pid, heartbeat)
    <shard_dir>/leases/<shard>.lock    # flock sidecar for claim/heartbeat/release
    <shard_dir>/journals/<shard>.ckpt  # repro.ckpt/v1 journal of the shard's tasks
    <shard_dir>/done/<shard>.json      # completion marker (worker, counters)
    <shard_dir>/obs/<worker>.json      # repro.obs/v1 payload per observed worker

Protocol invariants:

* every published file (manifest, lease, done marker, obs payload) is
  written to a tmp file and moved into place with :func:`os.replace`, so
  readers never see torn state;
* claim, heartbeat and release all run under the shard's exclusive
  flock, so two workers never both conclude they won a lease that was
  live at decision time;
* a lease is *live* while its heartbeat stamp is younger than the TTL;
  workers heartbeat on every journaled task, so only a dead (or
  entirely stalled) worker's lease expires.  Reclaiming an expired lease
  resumes the dead worker's journal — completed topologies are loaded,
  not recomputed — and is counted as ``service.reclaim``;
* results are pure functions of the task specs, so even the pathological
  race (a live worker's lease expires mid-task and a peer re-runs the
  shard) only wastes work: both write bit-identical journal entries and
  artifacts.

Observability: workers record ``service.claim`` / ``service.steal`` /
``service.reclaim`` / ``service.shard_done`` counters and
``service.worker`` / ``service.shard[...]`` spans; the allocation
service records ``service.hit`` / ``service.miss`` counters and
``service.query`` spans.  Observed workers export their payload into
``obs/<worker>.json`` and :func:`harvest` merges every worker's spans
and metrics into the harvesting collector, so a multi-process run yields
one combined trace.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import socket
import time
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cache.lock import FileLock
from ..core.options import EngineOptions
from ..obs.collector import Collector, active
from ..obs.metrics import HistogramData, MetricsRegistry
from ..obs.tracing import SpanRecord, graft
from .checkpoint import Journal, load_completed
from .config import DEFAULT_CONFIG, SimConfig
from .experiment import ExperimentResult, ScenarioSpec, generate_channel_sets
from .fingerprint import (
    RESULT_IRRELEVANT_OPTION_FIELDS,
    describe_value,
    fingerprint_quantized,
    fingerprint_tasks,
)
from .runner import (
    SEED_OFFSET,
    RetryPolicy,
    RunnerStats,
    TopologyRecord,
    TopologyTask,
    build_tasks,
    evaluate_topology,
    run_tasks,
)

__all__ = [
    "SCHEMA_ID",
    "SERVICE_SALT",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_GRID_DB",
    "ServiceError",
    "ServiceTimeout",
    "ShardSpec",
    "ShardManifest",
    "ServiceStats",
    "QueryStats",
    "ServiceAnswer",
    "AllocationService",
    "publish_shards",
    "read_manifest",
    "run_worker",
    "worker_entry",
    "harvest",
    "run_sharded_experiment",
]

SCHEMA_ID = "repro.shard/v1"
#: Salt for composed allocation-service query keys; bump when the hashed
#: query context changes.
SERVICE_SALT = "repro.service/v1"
#: A worker that journals nothing for this long is presumed dead and its
#: shard becomes reclaimable.  Heartbeats fire per journaled task, so the
#: TTL needs to cover one task evaluation, not one shard.
DEFAULT_LEASE_TTL_S = 30.0
#: Default quantization grid for allocation-service lookups (dB).
DEFAULT_GRID_DB = 0.25


class ServiceError(RuntimeError):
    """The shard directory is missing, mismatched or incomplete."""


class ServiceTimeout(ServiceError):
    """Waiting on the shard directory exceeded the caller's deadline."""


# ---------------------------------------------------------------------------
# Atomic small-file helpers (manifest, leases, done markers).
# ---------------------------------------------------------------------------


def _write_json_atomic(path: str, payload: dict) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}.{uuid.uuid4().hex}"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _read_json(path: str) -> Optional[dict]:
    """The parsed JSON at ``path``, or ``None`` if missing/unreadable."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def default_worker_id() -> str:
    """Host- and process-unique worker identity for leases and markers."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


# ---------------------------------------------------------------------------
# The manifest: one published experiment, split into shards.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """One claimable slice of the experiment's topology indices."""

    shard_id: str
    start: int
    stop: int  # exclusive

    @property
    def indices(self) -> range:
        return range(self.start, self.stop)


def _encode_options(options: EngineOptions) -> Dict[str, object]:
    """JSON-serializable form of the non-default engine options.

    Callables are encoded by ``module:qualname`` and resolved by import
    on the worker side, so only module-level callables are supported —
    the same constraint the process-pool runner already imposes.
    """
    payload: Dict[str, object] = {}
    for f in dataclasses.fields(options):
        value = getattr(options, f.name)
        if value is None:
            continue
        if callable(value):
            qualname = getattr(value, "__qualname__", "")
            module = getattr(value, "__module__", "")
            if not module or "<" in qualname:
                raise ServiceError(
                    f"option {f.name!r} must be a module-level callable to be "
                    f"published in a shard manifest, got {value!r}"
                )
            payload[f.name] = {"callable": f"{module}:{qualname}"}
        elif isinstance(value, (bool, int, float, str)):
            payload[f.name] = value
        else:
            raise ServiceError(f"option {f.name!r} is not manifest-serializable: {value!r}")
    return payload


def _decode_options(payload: Dict[str, object]) -> EngineOptions:
    kwargs: Dict[str, object] = {}
    for name, value in payload.items():
        if isinstance(value, dict) and "callable" in value:
            module_name, _, qualname = str(value["callable"]).partition(":")
            obj = importlib.import_module(module_name)
            for part in qualname.split("."):
                obj = getattr(obj, part)
            kwargs[name] = obj
        else:
            kwargs[name] = value
    return EngineOptions(**kwargs)


@dataclass(frozen=True)
class ShardManifest:
    """The parsed ``manifest.json`` of one shard directory."""

    spec: ScenarioSpec
    config: SimConfig
    options: EngineOptions
    shards: Tuple[ShardSpec, ...]
    config_hash: str
    publisher: str

    @property
    def n_tasks(self) -> int:
        return self.config.n_topologies

    def build_tasks(self, cache=None, collector: Optional[Collector] = None) -> List[TopologyTask]:
        """Deterministically rebuild the full task list the publisher hashed.

        Channel realizations are drawn from the manifest's (spec, config)
        seeds — and memoized in the shared cache when one is attached, so
        only the first worker on a cold cache pays for generation.  The
        rebuilt tasks are verified against the published ``config_hash``;
        a mismatch means the code or manifest drifted and the worker must
        not contribute results.
        """
        channel_sets = generate_channel_sets(
            self.spec, self.config, cache=cache, collector=collector
        )
        tasks = build_tasks(
            channel_sets,
            base_seed=self.config.seed,
            coherence_s=self.config.coherence_s,
            imperfections=self.config.imperfections(),
            include_copa_plus=self.spec.include_copa_plus,
            options=self.options,
        )
        rebuilt_hash = fingerprint_tasks(tasks)
        if rebuilt_hash != self.config_hash:
            raise ServiceError(
                f"rebuilt tasks fingerprint {rebuilt_hash!r} does not match the "
                f"published config_hash {self.config_hash!r}; the shard directory "
                "was published by different code or configuration"
            )
        return tasks

    def as_payload(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_ID,
            "scenario": dataclasses.asdict(self.spec),
            "config": dataclasses.asdict(self.config),
            "options": _encode_options(self.options),
            "shards": [
                {"id": shard.shard_id, "start": shard.start, "stop": shard.stop}
                for shard in self.shards
            ],
            "n_tasks": self.n_tasks,
            "config_hash": self.config_hash,
            "publisher": self.publisher,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ShardManifest":
        if payload.get("schema") != SCHEMA_ID:
            raise ServiceError(
                f"manifest schema {payload.get('schema')!r} is not {SCHEMA_ID!r}"
            )
        try:
            spec = ScenarioSpec(**payload["scenario"])
            config = SimConfig(**payload["config"])
            options = _decode_options(payload.get("options", {}))
            shards = tuple(
                ShardSpec(shard_id=str(entry["id"]), start=int(entry["start"]), stop=int(entry["stop"]))
                for entry in payload["shards"]
            )
            config_hash = str(payload["config_hash"])
            publisher = str(payload.get("publisher", ""))
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(f"malformed shard manifest: {error}")
        return cls(
            spec=spec,
            config=config,
            options=options,
            shards=shards,
            config_hash=config_hash,
            publisher=publisher,
        )


def _manifest_path(shard_dir: str) -> str:
    return os.path.join(shard_dir, "manifest.json")


def _lease_paths(shard_dir: str, shard_id: str) -> Tuple[str, str]:
    leases = os.path.join(shard_dir, "leases")
    return os.path.join(leases, f"{shard_id}.lease"), os.path.join(leases, f"{shard_id}.lock")


def _journal_path(shard_dir: str, shard_id: str) -> str:
    return os.path.join(shard_dir, "journals", f"{shard_id}.ckpt")


def _done_path(shard_dir: str, shard_id: str) -> str:
    return os.path.join(shard_dir, "done", f"{shard_id}.json")


def _obs_path(shard_dir: str, worker_id: str) -> str:
    return os.path.join(shard_dir, "obs", f"{worker_id}.json")


def _partition(n_tasks: int, shard_size: Optional[int], n_shards: Optional[int]) -> Tuple[ShardSpec, ...]:
    """Contiguous shards covering ``range(n_tasks)`` exactly once."""
    if shard_size is not None and n_shards is not None:
        raise ValueError("pass shard_size or n_shards, not both")
    if n_tasks < 1:
        raise ValueError(f"cannot shard an empty experiment (n_tasks={n_tasks})")
    if shard_size is None:
        count = min(n_tasks, 8) if n_shards is None else n_shards
        if not 1 <= count <= n_tasks:
            raise ValueError(f"n_shards must be in [1, {n_tasks}], got {n_shards}")
        shard_size = -(-n_tasks // count)  # ceil
    elif not 1 <= shard_size <= n_tasks:
        raise ValueError(f"shard_size must be in [1, {n_tasks}], got {shard_size}")
    shards = []
    for number, start in enumerate(range(0, n_tasks, shard_size)):
        shards.append(
            ShardSpec(
                shard_id=f"shard_{number:03d}",
                start=start,
                stop=min(start + shard_size, n_tasks),
            )
        )
    return tuple(shards)


def read_manifest(shard_dir: str) -> Optional[ShardManifest]:
    """The published manifest of ``shard_dir``, or ``None`` if unpublished."""
    payload = _read_json(_manifest_path(shard_dir))
    return ShardManifest.from_payload(payload) if payload is not None else None


def publish_shards(
    shard_dir: str,
    spec: ScenarioSpec,
    config: SimConfig,
    options: Optional[EngineOptions] = None,
    shard_size: Optional[int] = None,
    n_shards: Optional[int] = None,
    publisher: Optional[str] = None,
    cache=None,
    collector: Optional[Collector] = None,
) -> ShardManifest:
    """Publish (or verify) one experiment's shard table in ``shard_dir``.

    Publication is idempotent and race-safe: the first caller to win the
    manifest flock writes ``manifest.json`` atomically; every later
    caller — concurrent or not — verifies that the existing manifest's
    ``config_hash`` matches what it would have published and raises
    :class:`ServiceError` on mismatch, so two different experiments can
    never share one shard directory.
    """
    options = EngineOptions.resolve(options)
    col = active(collector)
    with col.span("service.publish", scenario=spec.name, n_tasks=config.n_topologies):
        channel_sets = generate_channel_sets(spec, config, cache=cache, collector=collector)
        tasks = build_tasks(
            channel_sets,
            base_seed=config.seed,
            coherence_s=config.coherence_s,
            imperfections=config.imperfections(),
            include_copa_plus=spec.include_copa_plus,
            options=options,
        )
        manifest = ShardManifest(
            spec=spec,
            config=config,
            options=options,
            shards=_partition(len(tasks), shard_size, n_shards),
            config_hash=fingerprint_tasks(tasks),
            publisher=publisher or default_worker_id(),
        )
        os.makedirs(shard_dir, exist_ok=True)
        with FileLock(os.path.join(shard_dir, "manifest.lock")):
            existing = read_manifest(shard_dir)
            if existing is not None:
                if existing.config_hash != manifest.config_hash:
                    raise ServiceError(
                        f"{shard_dir} already holds a different experiment "
                        f"(config_hash {existing.config_hash!r} != {manifest.config_hash!r})"
                    )
                return existing
            _write_json_atomic(_manifest_path(shard_dir), manifest.as_payload())
    return manifest


def _wait_for_manifest(
    shard_dir: str, timeout_s: Optional[float], poll_s: float
) -> ShardManifest:
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    while True:
        manifest = read_manifest(shard_dir)
        if manifest is not None:
            return manifest
        if deadline is not None and time.monotonic() >= deadline:
            raise ServiceTimeout(f"no manifest published in {shard_dir} within {timeout_s}s")
        if timeout_s is None:
            raise ServiceError(f"{shard_dir} holds no manifest; publish_shards first")
        time.sleep(poll_s)


# ---------------------------------------------------------------------------
# Leases: claim, heartbeat, release.
# ---------------------------------------------------------------------------


@dataclass
class Lease:
    """One worker's live claim on one shard."""

    shard_id: str
    path: str
    lock_path: str
    worker_id: str
    ttl_s: float
    #: This claim took over an expired lease left by another worker.
    reclaimed: bool = False
    #: A peer reclaimed the shard from *us* (our heartbeat found a
    #: foreign owner).  We keep computing — results are bit-identical
    #: either way — but stop touching the lease file.
    lost: bool = False

    def _payload(self) -> dict:
        return {
            "schema": SCHEMA_ID,
            "shard": self.shard_id,
            "owner": self.worker_id,
            "pid": os.getpid(),
            "stamp": time.time(),
        }

    def heartbeat(self) -> None:
        """Refresh the lease stamp (no-op once the lease was lost)."""
        if self.lost:
            return
        with FileLock(self.lock_path):
            current = _read_json(self.path)
            if current is not None and current.get("owner") != self.worker_id:
                self.lost = True
                return
            _write_json_atomic(self.path, self._payload())

    def release(self) -> None:
        """Drop the claim so the lease file never outlives the work."""
        if self.lost:
            return
        with FileLock(self.lock_path):
            current = _read_json(self.path)
            if current is not None and current.get("owner") == self.worker_id:
                try:
                    os.unlink(self.path)
                except OSError:
                    pass


def _try_claim(
    shard_dir: str, shard: ShardSpec, worker_id: str, ttl_s: float
) -> Optional[Lease]:
    """Atomically claim ``shard`` unless a live peer already holds it.

    The whole decision — read the current lease, judge its freshness,
    publish ours — happens under the shard's exclusive flock, so exactly
    one of N racing workers wins.  An expired (or unreadable) lease left
    by another worker is taken over and flagged ``reclaimed``.
    """
    lease_path, lock_path = _lease_paths(shard_dir, shard.shard_id)
    lease = Lease(
        shard_id=shard.shard_id,
        path=lease_path,
        lock_path=lock_path,
        worker_id=worker_id,
        ttl_s=ttl_s,
    )
    with FileLock(lock_path):
        if os.path.exists(_done_path(shard_dir, shard.shard_id)):
            return None
        current = _read_json(lease_path)
        if current is not None:
            age = time.time() - float(current.get("stamp", 0.0))
            if current.get("owner") != worker_id:
                if age < ttl_s:
                    return None
                lease.reclaimed = True
        _write_json_atomic(lease_path, lease._payload())
    return lease


class _ShardJournal(Journal):
    """A shard's journal that heartbeats its lease on every record.

    Heartbeat-per-record means the lease TTL has to cover one *task*, not
    one shard — a worker grinding through a long shard stays visibly
    alive.  ``die_after_records`` is the chaos suite's deterministic
    stand-in for ``kill -9``: after N journaled results the process exits
    immediately (no lease release, no done marker, no cleanup), leaving
    exactly the on-disk state a crashed worker leaves.
    """

    lease: Optional[Lease] = None
    die_after_records: Optional[int] = None
    _records = 0

    def record(self, result) -> None:
        super().record(result)
        self._records += 1
        if self.die_after_records is not None and self._records >= self.die_after_records:
            os._exit(86)
        if self.lease is not None:
            self.lease.heartbeat()


# ---------------------------------------------------------------------------
# Worker and harvest.
# ---------------------------------------------------------------------------


@dataclass
class ServiceStats:
    """One worker's (or one harvest's) shard-service telemetry."""

    worker_id: str
    shards_total: int = 0
    #: Shards this worker claimed (fresh, stolen and reclaimed alike).
    shards_claimed: int = 0
    #: Claimed shards that were published by a *different* worker — the
    #: work actually stolen from the shared queue.
    shards_stolen: int = 0
    #: Claimed shards whose previous owner's lease had expired.
    shards_reclaimed: int = 0
    shards_completed: int = 0
    #: Tasks this worker delivered (computed, cache-served or resumed).
    tasks_completed: int = 0
    #: Tasks restored from a predecessor's journal instead of recomputed.
    tasks_resumed: int = 0
    #: Tasks served from the shared result cache instead of computed.
    tasks_from_cache: int = 0
    wall_s: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def _run_shard(
    shard_dir: str,
    shard: ShardSpec,
    lease: Lease,
    tasks: Sequence[TopologyTask],
    worker_id: str,
    cache,
    collector: Optional[Collector],
    workers: Optional[int],
    policy: Optional[RetryPolicy],
    stats: ServiceStats,
    die_after_tasks: Optional[int],
) -> None:
    """Drain one claimed shard: resume, prefill from cache, run, mark done."""
    col = active(collector)
    shard_tasks = list(tasks[shard.start : shard.stop])
    journal = _ShardJournal.open(_journal_path(shard_dir, shard.shard_id), tasks, resume=True)
    journal.lease = lease
    journal.die_after_records = die_after_tasks
    start = time.perf_counter()
    try:
        resumed = len(journal.completed)
        # Journal cache hits up front so every shard journal is complete
        # on its own — harvest never needs to consult the cache — and the
        # runner below skips them as already-completed work.
        prefilled = 0
        if cache is not None:
            for task in shard_tasks:
                if task.index in journal.completed:
                    continue
                hit = cache.load_result(task, collector=collector)
                if hit is not None:
                    journal.record(hit)
                    prefilled += 1
        _, run_stats = run_tasks(
            shard_tasks,
            workers=workers,
            collector=collector,
            policy=policy if policy is not None else RetryPolicy(),
            checkpoint=journal,
            cache=cache,
        )
    finally:
        journal.close()
    _write_json_atomic(
        _done_path(shard_dir, shard.shard_id),
        {
            "schema": SCHEMA_ID,
            "shard": shard.shard_id,
            "start": shard.start,
            "stop": shard.stop,
            "worker": worker_id,
            "reclaimed": lease.reclaimed,
            "resumed": resumed,
            "from_cache": prefilled,
            "elapsed_s": time.perf_counter() - start,
            "stamp": time.time(),
        },
    )
    stats.shards_completed += 1
    stats.tasks_completed += len(shard_tasks)
    stats.tasks_resumed += resumed
    stats.tasks_from_cache += prefilled
    col.inc("service.shard_done")
    col.inc("service.tasks", len(shard_tasks))


def run_worker(
    shard_dir: str,
    cache=None,
    worker_id: Optional[str] = None,
    workers: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    collector: Optional[Collector] = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_s: float = 0.05,
    timeout_s: Optional[float] = None,
    wait: bool = True,
    die_after_tasks: Optional[int] = None,
) -> ServiceStats:
    """Drain shards from ``shard_dir`` until the whole experiment is done.

    The worker scans the shard table, claims whatever is unclaimed (or
    held by an expired lease), runs each claimed shard through
    :func:`repro.sim.runner.run_tasks` with its per-shard journal and the
    shared ``cache``, and publishes a done marker.  With ``wait=True``
    (the default) it then lingers — polling every ``poll_s`` — until
    every shard has a done marker, reclaiming any shard whose owner dies
    on the way; this is what lets N workers started together all return
    only when the *experiment* (not just their own claims) is complete.
    ``timeout_s`` bounds the whole call (:class:`ServiceTimeout`).

    ``die_after_tasks`` is the chaos suite's hook: the worker process
    exits abruptly (``os._exit``) after journaling that many results,
    simulating ``kill -9`` mid-shard.  Never set it in production.

    Returns this worker's :class:`ServiceStats`; raises
    :class:`~repro.sim.runner.RunnerError` if a shard's tasks fail
    permanently (the lease is released first, so surviving workers — or
    a rerun — can pick the shard back up).
    """
    worker_id = worker_id or default_worker_id()
    col = active(collector)
    manifest = _wait_for_manifest(shard_dir, timeout_s if wait else None, poll_s)
    tasks = manifest.build_tasks(cache=cache, collector=collector)
    stats = ServiceStats(worker_id=worker_id, shards_total=len(manifest.shards))
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    start = time.perf_counter()
    with col.span("service.worker", worker=worker_id, shards=len(manifest.shards)):
        while True:
            claimed_any = False
            for shard in manifest.shards:
                if os.path.exists(_done_path(shard_dir, shard.shard_id)):
                    continue
                lease = _try_claim(shard_dir, shard, worker_id, lease_ttl_s)
                if lease is None:
                    continue
                claimed_any = True
                stats.shards_claimed += 1
                col.inc("service.claim")
                if manifest.publisher != worker_id:
                    stats.shards_stolen += 1
                    col.inc("service.steal")
                if lease.reclaimed:
                    stats.shards_reclaimed += 1
                    col.inc("service.reclaim")
                try:
                    with col.span(
                        f"service.shard[{shard.shard_id}]",
                        worker=worker_id,
                        start=shard.start,
                        stop=shard.stop,
                        reclaimed=lease.reclaimed,
                    ):
                        _run_shard(
                            shard_dir,
                            shard,
                            lease,
                            tasks,
                            worker_id,
                            cache,
                            collector,
                            workers,
                            policy,
                            stats,
                            die_after_tasks,
                        )
                finally:
                    lease.release()
            done = sum(
                1
                for shard in manifest.shards
                if os.path.exists(_done_path(shard_dir, shard.shard_id))
            )
            if done == len(manifest.shards):
                break
            if not wait and not claimed_any:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceTimeout(
                    f"{shard_dir}: {done}/{len(manifest.shards)} shards done "
                    f"within {timeout_s}s"
                )
            if not claimed_any:
                time.sleep(poll_s)
    stats.wall_s = time.perf_counter() - start
    if col.enabled:
        _export_worker_observations(shard_dir, worker_id, col, stats)
    return stats


def worker_entry(
    shard_dir: str,
    cache_root: Optional[str] = None,
    worker_id: Optional[str] = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    timeout_s: Optional[float] = None,
    die_after_tasks: Optional[int] = None,
    observe: bool = True,
) -> Dict[str, object]:
    """Module-level worker entry for subprocess/pool dispatch.

    Builds its own cache handle and collector from plain strings (so the
    call pickles across any process boundary), runs :func:`run_worker`
    and returns the stats as a JSON-able dict — what the differential
    suite, the chaos suite and the benchmark all spawn.
    """
    cache = None
    if cache_root is not None:
        from ..cache import ResultCache

        cache = ResultCache(cache_root)
    stats = run_worker(
        shard_dir,
        cache=cache,
        worker_id=worker_id,
        collector=Collector() if observe else None,
        lease_ttl_s=lease_ttl_s,
        timeout_s=timeout_s,
        die_after_tasks=die_after_tasks,
    )
    return stats.as_dict()


def _export_worker_observations(
    shard_dir: str, worker_id: str, collector: Collector, stats: ServiceStats
) -> None:
    """Publish this worker's spans/metrics for harvest-side merging."""
    from ..obs.export import collector_payload

    _write_json_atomic(
        _obs_path(shard_dir, worker_id),
        collector_payload(collector, meta={"worker": worker_id, **stats.as_dict()}),
    )


def _merge_worker_observations(
    shard_dir: str, collector: Collector, exclude_worker: Optional[str]
) -> int:
    """Graft every exported worker payload into ``collector``.

    Spans are re-based at the harvesting tracer's current offset under a
    ``service.worker_trace[...]`` span per worker; metrics merge through
    the registry's commutative rules, so the combined totals are
    independent of worker completion order.  The harvesting process's own
    payload (``exclude_worker``) is skipped — its spans and metrics are
    already live in ``collector``.  Returns the number of payloads merged.
    """
    obs_dir = os.path.join(shard_dir, "obs")
    if not os.path.isdir(obs_dir):
        return 0
    merged = 0
    for name in sorted(os.listdir(obs_dir)):
        if not name.endswith(".json"):
            continue
        worker = name[: -len(".json")]
        if exclude_worker is not None and worker == exclude_worker:
            continue
        payload = _read_json(os.path.join(obs_dir, name))
        if payload is None:
            continue
        spans = [
            SpanRecord(
                span_id=int(entry["id"]),
                parent_id=entry["parent"],
                name=str(entry["name"]),
                start_s=float(entry["start_s"]),
                duration_s=float(entry["duration_s"]),
                attrs=dict(entry.get("attrs", {})),
            )
            for entry in payload.get("trace", {}).get("spans", [])
        ]
        base = collector.tracer.now()
        parent = collector.tracer.record(
            f"service.worker_trace[{worker}]",
            start_s=base,
            duration_s=max((span.end_s for span in spans), default=0.0),
            worker=worker,
        )
        graft(collector.tracer, spans, parent_id=parent, base_offset_s=base)
        registry = MetricsRegistry()
        metrics = payload.get("metrics", {})
        for counter, value in metrics.get("counters", {}).items():
            registry.counters[str(counter)] = float(value)
        for gauge, value in metrics.get("gauges", {}).items():
            registry.gauges[str(gauge)] = float(value)
        for histogram, data in metrics.get("histograms", {}).items():
            if not data.get("count"):
                continue
            registry.histograms[str(histogram)] = HistogramData(
                count=int(data["count"]),
                total=float(data["total"]),
                minimum=float(data["min"]),
                maximum=float(data["max"]),
            )
        collector.metrics.merge(registry)
        merged += 1
    return merged


def harvest(
    shard_dir: str,
    cache=None,
    collector: Optional[Collector] = None,
    timeout_s: Optional[float] = None,
    poll_s: float = 0.05,
    exclude_worker: Optional[str] = None,
) -> ExperimentResult:
    """Assemble the full :class:`ExperimentResult` from a shard directory.

    Reads every shard's journal (read-only — running workers are never
    disturbed), verifies each against the manifest's ``config_hash``, and
    orders the union of completed results into the exact record list a
    single serial :func:`~repro.sim.experiment.run_experiment` produces.
    With ``timeout_s`` the call polls until every shard has a done
    marker; otherwise an incomplete directory raises
    :class:`ServiceError` immediately.  Worker observability payloads are
    merged into ``collector`` (see :func:`_merge_worker_observations`).
    """
    col = active(collector)
    manifest = _wait_for_manifest(shard_dir, timeout_s, poll_s)
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    while True:
        pending = [
            shard.shard_id
            for shard in manifest.shards
            if not os.path.exists(_done_path(shard_dir, shard.shard_id))
        ]
        if not pending:
            break
        if deadline is None or time.monotonic() >= deadline:
            raise (ServiceTimeout if deadline is not None else ServiceError)(
                f"{shard_dir}: shards not yet done: {pending}"
            )
        time.sleep(poll_s)
    with col.span("service.harvest", scenario=manifest.spec.name, shards=len(manifest.shards)):
        start = time.perf_counter()
        tasks = manifest.build_tasks(cache=cache, collector=collector)
        completed: Dict[int, object] = {}
        workers_seen = set()
        resumed = cache_hits = 0
        for shard in manifest.shards:
            completed.update(
                load_completed(
                    _journal_path(shard_dir, shard.shard_id),
                    manifest.config_hash,
                    len(tasks),
                )
            )
            marker = _read_json(_done_path(shard_dir, shard.shard_id)) or {}
            workers_seen.add(marker.get("worker", "?"))
            resumed += int(marker.get("resumed", 0))
            cache_hits += int(marker.get("from_cache", 0))
        missing = [task.index for task in tasks if task.index not in completed]
        if missing:
            raise ServiceError(
                f"{shard_dir}: journals are missing completed results for "
                f"topologies {missing}"
            )
        records: List[TopologyRecord] = [completed[task.index].record for task in tasks]
        col.inc("service.harvests")
        merged = 0
        if col.enabled:
            merged = _merge_worker_observations(shard_dir, col, exclude_worker)
    stats = RunnerStats(
        workers=max(1, len(workers_seen)),
        chunk_size=max(shard.stop - shard.start for shard in manifest.shards),
        parallel=len(workers_seen) > 1,
        total_wall_s=time.perf_counter() - start,
        topology_wall_s=tuple(completed[task.index].elapsed_s for task in tasks),
        observed=col.enabled,
        spans_merged=merged,
        resumed=resumed,
        cache_hits=cache_hits,
    )
    return ExperimentResult(spec=manifest.spec, records=records, stats=stats)


def run_sharded_experiment(
    spec: ScenarioSpec,
    config: SimConfig,
    shard_dir: str,
    options: Optional[EngineOptions] = None,
    workers: Optional[int] = None,
    cache=None,
    collector: Optional[Collector] = None,
    policy: Optional[RetryPolicy] = None,
    shard_size: Optional[int] = None,
    n_shards: Optional[int] = None,
    worker_id: Optional[str] = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_s: float = 0.05,
    timeout_s: Optional[float] = None,
) -> ExperimentResult:
    """Publish, co-work and harvest one sharded experiment in-process.

    This is what ``run_experiment(..., shard_dir=...)`` routes to: the
    calling process publishes the shard table if nobody has (idempotent
    and race-safe), becomes one more cooperating worker, then harvests
    the combined result — so N processes each calling this on one shard
    directory all return the *same*, bit-identical
    :class:`ExperimentResult` that one serial process computes alone.
    """
    worker_id = worker_id or default_worker_id()
    publish_shards(
        shard_dir,
        spec,
        config,
        options=options,
        shard_size=shard_size,
        n_shards=n_shards,
        publisher=worker_id,
        cache=cache,
        collector=collector,
    )
    service_stats = run_worker(
        shard_dir,
        cache=cache,
        worker_id=worker_id,
        workers=workers,
        policy=policy,
        collector=collector,
        lease_ttl_s=lease_ttl_s,
        poll_s=poll_s,
        timeout_s=timeout_s,
    )
    result = harvest(
        shard_dir,
        cache=cache,
        collector=collector,
        timeout_s=timeout_s,
        poll_s=poll_s,
        exclude_worker=worker_id,
    )
    result.service_stats = service_stats
    return result


# ---------------------------------------------------------------------------
# The allocation service: strategy queries by quantized channel fingerprint.
# ---------------------------------------------------------------------------


@dataclass
class QueryStats:
    """Hit/miss telemetry for one :class:`AllocationService` handle."""

    hits: int = 0
    misses: int = 0

    @property
    def queries(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "queries": self.queries,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class ServiceAnswer:
    """One strategy query's answer and how it was served."""

    record: TopologyRecord
    key: str
    hit: bool
    elapsed_s: float

    @property
    def outcome(self):
        return self.record.outcome

    @property
    def copa_mbps(self) -> float:
        return self.record.outcome.copa.aggregate_bps / 1e6


class AllocationService:
    """Answer strategy queries from the warm cache by quantized fingerprint.

    The service front-end for the many-client regime: a query presents a
    realized :class:`~repro.phy.channel.ChannelSet`, the service looks up
    the cache under a key composed of the channels' *quantized* cell
    (:func:`repro.sim.fingerprint.fingerprint_quantized` at ``grid_db``)
    plus every result-determining piece of query context (engine options,
    imperfection model, coherence time, the service seed, the COPA+
    flag).  A hit returns the cached strategy answer without touching the
    engine; a miss computes through :func:`repro.sim.runner
    .evaluate_topology` (deterministically — the service seed is fixed,
    so the same query always computes the same answer) and stores the
    result for every later client of the shared cache.

    Quantization is a tolerance trade-off, not a bit-identity claim: any
    channel set in the same ``grid_db`` cell is served the cell's first
    computed answer.  ``grid_db`` picks the operating point — the
    sensitivity matrix in ``tests/sim/test_fingerprint.py`` and the
    EXPERIMENTS.md policy section quantify the divergence; exact repeat
    queries are always bit-identical by construction.
    """

    def __init__(
        self,
        cache,
        grid_db: float = DEFAULT_GRID_DB,
        config: Optional[SimConfig] = None,
        options: Optional[EngineOptions] = None,
        include_copa_plus: bool = False,
        collector: Optional[Collector] = None,
    ):
        if not grid_db > 0:
            raise ValueError(f"grid_db must be > 0, got {grid_db!r}")
        self.cache = cache
        self.grid_db = float(grid_db)
        self.config = DEFAULT_CONFIG if config is None else config
        self.options = EngineOptions.resolve(options)
        self.include_copa_plus = bool(include_copa_plus)
        self.collector = collector
        self.stats = QueryStats()

    def query_key(self, channels) -> str:
        """The composed service cache key for one query's channels."""
        digest = hashlib.sha256()
        digest.update(SERVICE_SALT.encode())
        digest.update(
            f"|grid={self.grid_db!r}|coh={self.config.coherence_s!r}"
            f"|seed={self.config.seed}|plus={int(self.include_copa_plus)}|".encode()
        )
        for f in dataclasses.fields(self.options):
            if f.name in RESULT_IRRELEVANT_OPTION_FIELDS:
                continue
            value = getattr(self.options, f.name)
            if f.name == "backend" and value in (None, "numpy"):
                continue
            digest.update(f"opt|{f.name}={describe_value(value)}".encode())
        digest.update(repr(self.config.imperfections()).encode())
        digest.update(fingerprint_quantized(channels, self.grid_db).encode())
        return digest.hexdigest()

    def query(self, channels) -> ServiceAnswer:
        """Serve one strategy query: warm cache first, engine on miss."""
        col = active(self.collector)
        key = self.query_key(channels)
        start = time.perf_counter()
        with col.span("service.query", key=key[:12], grid_db=self.grid_db):
            result = self.cache.load_service_answer(key, collector=self.collector)
            hit = result is not None
            if hit:
                self.stats.hits += 1
                col.inc("service.hit")
            else:
                self.stats.misses += 1
                col.inc("service.miss")
                task = TopologyTask(
                    index=0,
                    channels=channels,
                    imperfections=self.config.imperfections(),
                    seed=self.config.seed + SEED_OFFSET,
                    coherence_s=self.config.coherence_s,
                    include_copa_plus=self.include_copa_plus,
                    options=self.options,
                )
                result = evaluate_topology(task)
                self.cache.store_service_answer(key, result, collector=self.collector)
        return ServiceAnswer(
            record=result.record,
            key=key,
            hit=hit,
            elapsed_s=time.perf_counter() - start,
        )
