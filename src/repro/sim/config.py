"""One frozen bundle of calibrated simulation parameters.

Every experiment in the reproduction uses :data:`DEFAULT_CONFIG` unless it
is explicitly studying a parameter (the ablation benches).  The values
were calibrated once against the paper's measurement figures — Fig. 2's
per-subcarrier fading spread, Fig. 3's nulling statistics, Fig. 9's
signal/interference scatter — and then frozen; no per-figure tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..phy.channel import ChannelModel
from ..phy.fading import exponential_pdp
from ..phy.noise import ImperfectionModel
from ..phy.topology import PathLossModel, TopologyGenerator

__all__ = ["SimConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class SimConfig:
    """Calibrated physical parameters for the whole evaluation."""

    #: RMS delay spread of the indoor channel (60 ns → several fades/20 MHz).
    rms_delay_spread_s: float = 60e-9
    #: Kronecker antenna correlation at both ends (office, λ/2 spacing);
    #: calibrated so nulling's collateral damage matches Fig. 3.
    antenna_correlation: float = 0.65
    #: CSI estimation-error power relative to the channel; −26 dB puts the
    #: mean INR reduction of nulling at Fig. 3's ≈27 dB.
    csi_error_db: float = -26.0
    #: Transmitter EVM noise floor (−35 dB).
    tx_evm_db: float = -35.0
    #: Adjacent-carrier leakage of dropped subcarriers (Maxim 2829: −27 dB).
    carrier_leakage_db: float = -27.0
    #: Coherence time charged for CSI dissemination overhead (§4.1: 30 ms).
    coherence_s: float = 0.030
    #: Number of topologies per experiment (the paper measures 30).
    n_topologies: int = 30
    #: Base seed; topology t uses seed ``seed + t`` for reproducibility.
    seed: int = 2015

    def topology_generator(self) -> TopologyGenerator:
        return TopologyGenerator(path_loss=PathLossModel())

    def channel_model(self) -> ChannelModel:
        return ChannelModel(
            pdp=exponential_pdp(self.rms_delay_spread_s),
            tx_correlation=self.antenna_correlation,
            rx_correlation=self.antenna_correlation,
        )

    def imperfections(self) -> ImperfectionModel:
        return ImperfectionModel(
            csi_error_db=self.csi_error_db,
            tx_evm_db=self.tx_evm_db,
            carrier_leakage_db=self.carrier_leakage_db,
        )

    def rng_for_topology(self, index: int) -> np.random.Generator:
        return np.random.default_rng(self.seed + index)

    def with_(self, **overrides) -> "SimConfig":
        """A copy with some fields replaced (for ablations)."""
        return replace(self, **overrides)


DEFAULT_CONFIG = SimConfig()
