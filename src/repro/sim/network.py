"""Per-topology PHY measurements: the quantities behind Figures 2, 3 and 4.

These functions reproduce the paper's motivating measurements on our
simulated substrate: what nulling does to interference (INR), to the
signal of interest ("collateral damage", SNR) and to the end-to-end SINR,
both averaged and per subcarrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..phy.channel import ChannelSet
from ..phy.constants import TX_POWER_DBM
from ..phy.mimo import (
    effective_channel,
    interference_covariance,
    mmse_sinr,
    nulling_precoder,
    svd_beamformer,
    tx_noise_covariance,
)
from ..phy.noise import ImperfectionModel
from ..util import dbm_to_mw, linear_to_db

__all__ = [
    "NullingEffect",
    "measure_nulling_effect",
    "per_subcarrier_rx_power_dbm",
    "BerComparison",
    "copa_vs_nopa_example",
]


@dataclass(frozen=True)
class NullingEffect:
    """Per-subcarrier nulling measurements at one client (Figs. 3 & 4).

    All arrays are length n_subcarriers, in dB.  "BF" is the baseline in
    which the AP beamforms freely toward its client; "null" is the same AP
    constrained to null toward the other client.
    """

    snr_bf_db: np.ndarray
    snr_null_db: np.ndarray
    inr_bf_db: np.ndarray
    inr_null_db: np.ndarray
    sinr_bf_db: np.ndarray
    sinr_null_db: np.ndarray

    @property
    def inr_reduction_db(self) -> float:
        """Mean drop in interference-to-noise ratio from nulling (≈27 dB)."""
        return float(np.mean(self.inr_bf_db) - np.mean(self.inr_null_db))

    @property
    def snr_reduction_db(self) -> float:
        """Mean collateral damage to the signal of interest (≈8 dB)."""
        return float(np.mean(self.snr_bf_db) - np.mean(self.snr_null_db))

    @property
    def sinr_increase_db(self) -> float:
        """Mean end-to-end SINR improvement from nulling (≈18 dB)."""
        return float(np.mean(self.sinr_null_db) - np.mean(self.sinr_bf_db))

    @property
    def snr_null_std_db(self) -> float:
        """Across-subcarrier variability nulling introduces (Fig. 4)."""
        return float(np.std(self.snr_null_db))

    @property
    def snr_bf_std_db(self) -> float:
        return float(np.std(self.snr_bf_db))


def measure_nulling_effect(
    channels: ChannelSet,
    imperfections: Optional[ImperfectionModel] = None,
    rng: Optional[np.random.Generator] = None,
    client_index: int = 0,
    n_streams: Optional[int] = None,
    tx_power_dbm: float = TX_POWER_DBM,
) -> NullingEffect:
    """Measure what nulling does at one client of a topology.

    Both APs transmit at full power, split equally across streams and
    subcarriers.  Precoders are computed from *noisy* CSI and evaluated on
    the true channels, which is where the residual interference of §2.2
    comes from.
    """
    imperfections = imperfections if imperfections is not None else ImperfectionModel()
    rng = rng if rng is not None else np.random.default_rng(0)

    topology = channels.topology
    own_ap = topology.aps[client_index].name
    other_ap = topology.aps[1 - client_index].name
    client = topology.clients[client_index].name
    other_client = topology.clients[1 - client_index].name

    h_own = channels.channel(own_ap, client)
    h_cross = channels.channel(other_ap, client)
    n_sc, n_rx, n_tx = h_own.shape
    if n_streams is None:
        n_streams = min(n_rx, n_tx)

    csi_own = channels.measured_csi(own_ap, client, imperfections, rng)
    csi_own_cross = channels.measured_csi(own_ap, other_client, imperfections, rng)
    csi_other_own = channels.measured_csi(other_ap, other_client, imperfections, rng)
    csi_other_cross = channels.measured_csi(other_ap, client, imperfections, rng)

    power_mw = float(dbm_to_mw(tx_power_dbm))
    powers = np.full((n_sc, n_streams), power_mw / (n_streams * n_sc))

    w_own_bf = svd_beamformer(csi_own, n_streams)
    w_own_null = nulling_precoder(csi_own, csi_own_cross, n_streams)
    w_other_bf = svd_beamformer(csi_other_own, n_streams)
    w_other_null = nulling_precoder(csi_other_own, csi_other_cross, n_streams)

    noise = channels.noise_floor_mw
    eye = np.broadcast_to(np.eye(n_rx, dtype=complex), (n_sc, n_rx, n_rx)).copy()

    def rx_interference(precoder_other):
        eff = effective_channel(h_cross, precoder_other)
        return np.einsum("ksn,kn->k", np.abs(eff) ** 2, powers) / n_rx

    def snr(precoder_own):
        eff = effective_channel(h_own, precoder_own)
        cov = noise * eye + tx_noise_covariance(
            h_own, powers.sum(axis=1), imperfections.tx_evm_linear
        )
        return mmse_sinr(eff, powers, cov).mean(axis=1)

    def sinr(precoder_own, precoder_other):
        eff = effective_channel(h_own, precoder_own)
        eff_cross = effective_channel(h_cross, precoder_other)
        cov = noise * eye
        cov += interference_covariance(eff_cross, powers)
        cov += tx_noise_covariance(h_cross, powers.sum(axis=1), imperfections.tx_evm_linear)
        cov += tx_noise_covariance(h_own, powers.sum(axis=1), imperfections.tx_evm_linear)
        return mmse_sinr(eff, powers, cov).mean(axis=1)

    per_antenna_noise = noise
    return NullingEffect(
        snr_bf_db=linear_to_db(snr(w_own_bf)),
        snr_null_db=linear_to_db(snr(w_own_null)),
        inr_bf_db=linear_to_db(rx_interference(w_other_bf) / per_antenna_noise),
        inr_null_db=linear_to_db(rx_interference(w_other_null) / per_antenna_noise),
        sinr_bf_db=linear_to_db(sinr(w_own_bf, w_other_bf)),
        sinr_null_db=linear_to_db(sinr(w_own_null, w_other_null)),
    )


def per_subcarrier_rx_power_dbm(
    channels: ChannelSet,
    tx: str,
    rx: str,
    tx_antenna: int = 0,
    tx_power_dbm: float = TX_POWER_DBM,
) -> np.ndarray:
    """Figure 2's quantity: received power per subcarrier per RX antenna.

    One transmit antenna sends with the power budget split equally across
    subcarriers; returns shape (n_rx_antennas, n_subcarriers) in dBm.
    """
    h = channels.channel(tx, rx)
    n_sc = h.shape[0]
    per_subcarrier_mw = dbm_to_mw(tx_power_dbm) / n_sc
    rx_power = per_subcarrier_mw * np.abs(h[:, :, tx_antenna]) ** 2
    return linear_to_db(rx_power.T)


@dataclass(frozen=True)
class BerComparison:
    """Figure 7's data: per-subcarrier uncoded BER, COPA vs no-PA.

    Both transmissions use the *same* nulling precoding matrix; the only
    difference is the power allocation.  ``copa_ber`` is NaN on subcarriers
    COPA drops.  Rates are the goodput-maximizing selections of each.
    """

    nopa_ber: np.ndarray
    copa_ber: np.ndarray
    copa_dropped: np.ndarray
    nopa_rate_bps: float
    copa_rate_bps: float
    nopa_mcs_index: int
    copa_mcs_index: int


def copa_vs_nopa_example(
    channels: ChannelSet,
    imperfections: Optional[ImperfectionModel] = None,
    rng: Optional[np.random.Generator] = None,
    client_index: int = 0,
) -> BerComparison:
    """Reproduce the §3.2.2 example: same nulling precoder, two allocations.

    Runs the full strategy engine once, takes the concurrent-nulling
    designs, and evaluates the true per-subcarrier SINR under (a) equal
    power ("NoPA") and (b) COPA's Equi-SINR allocation, converting both to
    uncoded BER at each scheme's own best bitrate.
    """
    from ..core.strategy import StrategyEngine
    from ..phy.ber import uncoded_ber
    from ..phy.rates import best_rate

    imperfections = imperfections if imperfections is not None else ImperfectionModel()
    rng = rng if rng is not None else np.random.default_rng(0)
    engine = StrategyEngine(channels, imperfections=imperfections, rng=rng)

    designs = engine._null_designs()
    equal = [engine._equal_allocation(d) for d in designs]
    copa = engine._concurrent_allocation(designs)

    def sinr_of(allocations):
        design = designs[client_index]
        alloc = allocations[client_index]
        active = list(design.active_rx)
        h_own = channels.channel(design.ap, design.client)[:, active, :]
        other = designs[1 - client_index]
        other_alloc = allocations[1 - client_index]
        from ..core.equi_sinr import radiated_powers as _radiated

        other_radiated = _radiated(
            other_alloc.powers, other_alloc.used, imperfections.carrier_leakage_linear
        )
        own_radiated = _radiated(
            alloc.powers, alloc.used, imperfections.carrier_leakage_linear
        )
        h_cross = channels.channel(other.ap, design.client)[:, active, :]
        n_sc = h_own.shape[0]
        cov = channels.noise_floor_mw * np.broadcast_to(
            np.eye(len(active), dtype=complex), (n_sc, len(active), len(active))
        ).copy()
        cov += interference_covariance(h_cross @ other.precoder, other_radiated)
        cov += tx_noise_covariance(
            h_cross, other_radiated.sum(axis=1), imperfections.tx_evm_linear
        )
        cov += tx_noise_covariance(
            h_own, own_radiated.sum(axis=1), imperfections.tx_evm_linear
        )
        data_powers = np.where(alloc.used, alloc.powers, 0.0)
        return mmse_sinr(h_own @ design.precoder, data_powers, cov), alloc.used

    nopa_sinr, nopa_used = sinr_of(equal)
    copa_sinr, copa_used = sinr_of(copa)

    nopa_rate = best_rate(nopa_sinr, used=nopa_used)
    copa_rate = best_rate(copa_sinr, used=copa_used)

    # A transmission can be entirely undecodable (mcs None) — the paper's
    # point taken to its extreme; display its BER at the most robust MCS.
    from ..phy.constants import MCS_TABLE

    nopa_modulation = (nopa_rate.mcs or MCS_TABLE[0]).modulation
    copa_modulation = (copa_rate.mcs or MCS_TABLE[0]).modulation

    # Per-subcarrier BER (averaged over streams) at each scheme's own MCS.
    nopa_ber = uncoded_ber(nopa_sinr, nopa_modulation).mean(axis=1)
    copa_cell_ber = uncoded_ber(copa_sinr, copa_modulation)
    used_counts = copa_used.sum(axis=1)
    copa_sum = np.where(copa_used, copa_cell_ber, 0.0).sum(axis=1)
    copa_ber = np.where(used_counts > 0, copa_sum / np.maximum(used_counts, 1), np.nan)
    dropped = ~copa_used.any(axis=1)

    return BerComparison(
        nopa_ber=nopa_ber,
        copa_ber=copa_ber,
        copa_dropped=dropped,
        nopa_rate_bps=nopa_rate.goodput_bps,
        copa_rate_bps=copa_rate.goodput_bps,
        nopa_mcs_index=nopa_rate.mcs.index if nopa_rate.mcs else -1,
        copa_mcs_index=copa_rate.mcs.index if copa_rate.mcs else -1,
    )
