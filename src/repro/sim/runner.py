"""Process-pool experiment runner: deterministic fan-out over topologies.

Per-topology evaluation is embarrassingly parallel — the strategy engine
for topology ``t`` depends only on that topology's channel realization and
its private seed (``config.seed + 10_000 + t``), never on its neighbours.
This module exploits that: it turns a scenario into a list of picklable
:class:`TopologyTask` specs and fans them out to worker processes via
:class:`concurrent.futures.ProcessPoolExecutor`.

Determinism guarantee: every task carries the *exact* seed the serial loop
in :func:`repro.sim.experiment.run_experiment` would have used, and each
worker rebuilds its RNG from that seed alone.  Parallel results are
therefore bit-identical to serial ones — order, values and all — which is
what the equivalence suite in ``tests/sim/test_runner.py`` pins.  The same
construction makes **retries pure replays**: a re-dispatched task carries
the same seed, so its result is bit-identical to a first-try success
(pinned by the chaos suite in ``tests/sim/test_chaos.py``).

Fault tolerance: pass ``policy=`` (a :class:`RetryPolicy`) and each task
gets bounded retries with exponential backoff, a per-attempt result-wait
timeout on the pool path, and an integrity check that rejects corrupt
results.  A broken pool (real or injected via :mod:`repro.sim.faults`)
degrades gracefully — completed results are kept and the remaining
topologies are re-dispatched serially.  Tasks that fail permanently raise
:class:`RunnerError` *after* every other topology finished, so one
poisoned topology never discards a sweep's surviving results.

Checkpoint-resume: pass ``checkpoint=`` (a path) and every completed
:class:`TaskResult` is journaled to disk (``repro.ckpt/v1``, see
:mod:`repro.sim.checkpoint`); ``resume=True`` reloads completed indices
instead of recomputing them, bit-identically.

Result caching: pass ``cache=`` (a :class:`repro.cache.ResultCache`) and
every task is looked up by its content address before dispatch — hits
skip evaluation entirely — while freshly computed results are stored
after harvest.  Cache keys exclude execution-only state (attempt,
observation, fault plans), so caching composes with retries, chaos
injection and checkpoints: the journal fingerprint still covers the full
task list, and a cached result is bit-identical to a cold one (pinned by
``tests/sim/test_cache_differential.py``).

Graceful degradation: with ``workers=1`` (or one task, or an unpicklable
task, or a pool that fails to start) the runner evaluates serially in the
calling process and records why in :attr:`RunnerStats.fallback_reason`; it
never crashes because the platform lacks working multiprocessing.

Observability: pass ``collector=`` (a :class:`repro.obs.Collector`) to
:func:`run_tasks` and every task is evaluated under a worker-local
collector whose spans and metrics travel back with the record — plain
picklable data — and are grafted into the parent trace under one
``topology[i]`` span per task.  Only the one accepted result per topology
is merged: crashed, corrupted, timed-out or pool-orphaned attempts never
graft partial spans or metrics into the parent trace.  Retry, timeout and
fallback events appear as ``runner.retry``/``runner.timeout``/
``runner.fallback`` spans and counters.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import batch as batch_engine
from ..core.mercury import mercury_allocate
from ..core.ncell import GraphStrategyEngine
from ..core.options import EngineOptions
from ..core.strategy import StrategyEngine, StrategyOutcome
from ..obs.collector import Collector, active
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import SpanRecord, graft
from ..phy.channel import ChannelSet
from ..phy.noise import ImperfectionModel
from .checkpoint import Journal
from .faults import FaultPlan

__all__ = [
    "SEED_OFFSET",
    "TopologyTask",
    "TopologyRecord",
    "TaskResult",
    "RetryPolicy",
    "RunnerEvent",
    "RunnerError",
    "RunnerStats",
    "build_tasks",
    "evaluate_batch",
    "evaluate_topology",
    "resolve_workers",
    "auto_chunk_size",
    "run_tasks",
]

#: The serial loop evaluates topology ``t`` with ``config.seed + 10_000 + t``;
#: tasks must carry exactly that seed for parallel results to be identical.
SEED_OFFSET = 10_000


@dataclass
class TopologyRecord:
    """Everything measured in one topology."""

    index: int
    channels: ChannelSet
    outcome: StrategyOutcome
    plus_outcome: Optional[StrategyOutcome] = None


@dataclass(frozen=True)
class TopologyTask:
    """Picklable spec for evaluating one topology in any process.

    Carries everything a worker needs — the channel realization, the
    imperfection model, the exact per-topology engine seed and the typed
    strategy-engine options — so evaluation depends on nothing ambient.
    """

    index: int
    channels: ChannelSet
    imperfections: ImperfectionModel
    #: Exact engine seed (``config.seed + SEED_OFFSET + index``).
    seed: int
    coherence_s: float
    #: Also evaluate the mercury/water-filling COPA+ variant.
    include_copa_plus: bool = False
    #: Validated :class:`StrategyEngine` overrides (picklable by
    #: construction unless a non-module-level callable is supplied, which
    #: triggers the serial fallback instead).
    options: EngineOptions = EngineOptions()
    #: Build a worker-local collector and ship spans/metrics back with the
    #: record (set by :func:`run_tasks` when it was given a collector).
    observe: bool = False
    #: Which retry this dispatch is (0 = first attempt).  Part of the spec
    #: so attempt-counted fault injection needs no cross-process state;
    #: never touches the RNG, so every attempt is a pure replay.
    attempt: int = 0
    #: Deterministic fault-injection hooks (chaos tests only; ``None`` in
    #: production runs).
    fault_plan: Optional[FaultPlan] = None


@dataclass
class TaskResult:
    """What one task evaluation produced, wherever it ran."""

    record: TopologyRecord
    #: Wall-clock seconds of this task's evaluation.
    elapsed_s: float
    #: Worker-local spans (``None`` unless the task was observed).
    spans: Optional[List[SpanRecord]] = None
    #: Worker-local metrics (``None`` unless the task was observed).
    metrics: Optional[MetricsRegistry] = None


def evaluate_topology(task: TopologyTask) -> TaskResult:
    """Evaluate one task; module-level so workers import it by reference.

    The CSI RNG is rebuilt from the task seed for each engine, so COPA and
    COPA+ see identical noisy CSI and the result is independent of which
    process (or order) ran the task.  Observation never touches the RNG,
    so observed results are bit-identical to unobserved ones — and neither
    do the fault hooks, so a retried attempt is a pure replay.
    """
    if task.fault_plan is not None:
        task.fault_plan.fire_before(task.index, task.attempt)
    collector = Collector() if task.observe else None
    start = time.perf_counter()
    kwargs = task.options.engine_kwargs()
    cluster_kwargs = task.options.cluster_kwargs()
    # N-AP topologies (or an explicit cluster policy) route through the
    # interference-graph engine; plain 2-AP tasks keep the legacy engine,
    # byte-for-byte.  The graph engine's single-cluster N=2 path delegates
    # to StrategyEngine with the same RNG, so both spellings agree exactly.
    if len(task.channels.topology.aps) != 2 or cluster_kwargs:
        engine_cls: Callable = GraphStrategyEngine
        kwargs = {**kwargs, **cluster_kwargs}
    else:
        engine_cls = StrategyEngine
    outcome = engine_cls(
        task.channels,
        imperfections=task.imperfections,
        rng=np.random.default_rng(task.seed),
        coherence_s=task.coherence_s,
        collector=collector,
        **kwargs,
    ).run()
    plus_outcome = None
    if task.include_copa_plus:
        plus_kwargs = dict(kwargs)
        plus_kwargs["allocator"] = mercury_allocate
        plus_outcome = engine_cls(
            task.channels,
            imperfections=task.imperfections,
            rng=np.random.default_rng(task.seed),
            coherence_s=task.coherence_s,
            collector=collector,
            **plus_kwargs,
        ).run()
    record = TopologyRecord(
        index=task.index,
        channels=task.channels,
        outcome=outcome,
        plus_outcome=plus_outcome,
    )
    result = TaskResult(
        record=record,
        elapsed_s=time.perf_counter() - start,
        spans=list(collector.spans) if collector is not None else None,
        metrics=collector.metrics if collector is not None else None,
    )
    if task.fault_plan is not None:
        result = task.fault_plan.fire_after(task.index, task.attempt, result)
    return result


def build_tasks(
    channel_sets: Sequence[ChannelSet],
    base_seed: int,
    coherence_s: float,
    imperfections: ImperfectionModel,
    include_copa_plus: bool = False,
    options: Optional[EngineOptions] = None,
    observe: bool = False,
    fault_plan: Optional[FaultPlan] = None,
) -> List[TopologyTask]:
    """One task per channel realization, each with its private seed.

    ``options`` is the typed engine configuration
    (:class:`~repro.core.options.EngineOptions`) or ``None``; any other
    value — including the long-retired ``engine_kwargs`` dict — raises
    :class:`TypeError`.  ``fault_plan`` installs deterministic fault
    injection (chaos tests only).
    """
    resolved = EngineOptions.resolve(options)
    return [
        TopologyTask(
            index=index,
            channels=channels,
            imperfections=imperfections,
            seed=base_seed + SEED_OFFSET + index,
            coherence_s=coherence_s,
            include_copa_plus=include_copa_plus,
            options=resolved,
            observe=observe,
            fault_plan=fault_plan,
        )
        for index, channels in enumerate(channel_sets)
    ]


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner reacts to failing, hanging or corrupt tasks.

    ``max_retries`` bounds *re-attempts per task* (0 = fail on the first
    error).  ``task_timeout_s`` is the per-attempt result-wait timeout on
    the pool path; the serial path cannot pre-empt a running evaluation,
    so overruns there are detected post-hoc and counted without discarding
    the (valid) result.  Backoff grows exponentially from
    ``backoff_base_s`` by ``backoff_factor`` per retry, capped at
    ``backoff_max_s``; ``sleep`` is injectable so tests stay instant.

    Retries never affect results: a re-dispatched task carries the same
    seed, so the accepted result is bit-identical to a fault-free run.
    """

    max_retries: int = 2
    task_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.task_timeout_s is not None and not self.task_timeout_s > 0:
            raise ValueError(f"task_timeout_s must be > 0, got {self.task_timeout_s}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0 or self.backoff_factor < 1:
            raise ValueError("backoff parameters must be non-negative (factor >= 1)")

    def backoff_s(self, retry_number: int) -> float:
        """Delay before retry ``retry_number`` (0-based)."""
        return min(self.backoff_max_s, self.backoff_base_s * self.backoff_factor**max(0, retry_number))


@dataclass(frozen=True)
class RunnerEvent:
    """One fault-tolerance event (retry, timeout, fallback or failure)."""

    kind: str
    index: int
    attempt: int
    detail: str = ""


class RunnerError(RuntimeError):
    """Some topologies failed permanently (retries exhausted).

    Raised only after every other topology finished, so surviving results
    are already journaled (when a checkpoint is active) and are also
    attached as :attr:`records`.  :attr:`failures` maps topology index to
    a one-line reason — what the CLI prints per index.
    """

    def __init__(
        self,
        failures: Mapping[int, str],
        records: Sequence[TopologyRecord] = (),
        total: int = 0,
    ):
        self.failures = dict(failures)
        self.records = list(records)
        self.total = total
        indices = ", ".join(f"topology[{index}]" for index in sorted(self.failures))
        super().__init__(
            f"{len(self.failures)} of {total} topologies failed permanently ({indices})"
        )


@dataclass(frozen=True)
class RunnerStats:
    """Timing/progress telemetry of one runner invocation."""

    #: Worker count the runner resolved to (1 for the serial path).
    workers: int
    #: Tasks handed to each worker per dispatch round.
    chunk_size: int
    #: Whether the process pool actually ran (False → serial path).
    parallel: bool
    #: End-to-end wall-clock of the whole run, seconds.
    total_wall_s: float
    #: Per-topology wall-clock, seconds, in topology order.
    topology_wall_s: Tuple[float, ...]
    #: Why the runner degraded to serial, if it did.
    fallback_reason: Optional[str] = None
    #: Whether per-task observability was on for this run.
    observed: bool = False
    #: Spans merged into the parent trace (0 when not observed).
    spans_merged: int = 0
    #: Re-attempts dispatched after a crash, timeout or corrupt result.
    retries: int = 0
    #: Per-attempt timeout events (pool waits and serial post-hoc overruns).
    timeouts: int = 0
    #: Pool-breakage degradation events (serial re-dispatch episodes).
    fallbacks: int = 0
    #: Topologies restored from a checkpoint journal instead of recomputed.
    resumed: int = 0
    #: Topologies served from the content-addressed result cache.
    cache_hits: int = 0
    #: Topologies that missed the cache and were (re)computed (0 when no
    #: cache was attached).
    cache_misses: int = 0
    #: Largest batched-engine dispatch unit used (1 = per-topology path).
    batch_size: int = 1

    @property
    def n_topologies(self) -> int:
        return len(self.topology_wall_s)

    @property
    def busy_s(self) -> float:
        """Total compute time summed over topologies (all workers)."""
        return float(sum(self.topology_wall_s))

    @property
    def topologies_per_s(self) -> float:
        if self.total_wall_s <= 0:
            return 0.0
        return self.n_topologies / self.total_wall_s

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker·seconds spent evaluating topologies."""
        if self.total_wall_s <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.workers * self.total_wall_s))


def resolve_workers(workers: Optional[int] = None) -> int:
    """Normalize a worker request: ``None`` → serial, ``<= 0`` → all cores."""
    if workers is None:
        return 1
    if workers <= 0:
        return os.cpu_count() or 1
    return int(workers)


def auto_chunk_size(n_tasks: int, workers: int) -> int:
    """Default chunking: ~4 dispatch rounds per worker, at least 1 task.

    Small chunks keep workers busy when per-topology times vary (COPA+
    tails are long); one giant chunk would serialize stragglers.
    """
    if n_tasks <= 0 or workers <= 1:
        return 1
    return max(1, math.ceil(n_tasks / (workers * 4)))


def _picklable(task: TopologyTask) -> bool:
    try:
        pickle.dumps(task)
        return True
    except Exception:
        return False


def _run_serial(tasks: Sequence[TopologyTask]) -> List[TaskResult]:
    return [evaluate_topology(task) for task in tasks]


def evaluate_batch(tasks: Sequence[TopologyTask]) -> List[TaskResult]:
    """Evaluate a chunk of tasks through the batched engine; task order kept.

    Module-level so pool workers import it by reference, like
    :func:`evaluate_topology`.  Tasks are grouped by
    :func:`repro.core.batch.group_key`; each group runs as one
    :class:`~repro.core.batch.BatchedStrategyEngine` dispatch, bit-identical
    to the per-topology path.  Tasks the batched engine cannot take
    (observed, fault-injected, custom allocators/selectors, non-2x2
    topologies) fall back to :func:`evaluate_topology` individually, as
    does a whole group if its batched dispatch raises.  Per-task
    ``elapsed_s`` is the batch wall-clock divided evenly over its rows —
    the logical serial timeline the observability merge expects.
    """
    tasks = list(tasks)
    results: Dict[int, TaskResult] = {}
    batches, singles = batch_engine.partition_tasks(tasks)
    for single in singles:
        results[single.index] = evaluate_topology(single)
    for group in batches:
        start = time.perf_counter()
        try:
            outcomes = batch_engine.run_batch(group)
        except Exception:
            # Never lose a sweep to a batching defect: replay the group
            # through the reference per-topology path.
            for task in group:
                results[task.index] = evaluate_topology(task)
            continue
        elapsed_s = (time.perf_counter() - start) / len(group)
        for task, (outcome, plus_outcome) in zip(group, outcomes):
            record = TopologyRecord(
                index=task.index,
                channels=task.channels,
                outcome=outcome,
                plus_outcome=plus_outcome,
            )
            results[task.index] = TaskResult(record=record, elapsed_s=elapsed_s)
    return [results[task.index] for task in tasks]


def _intact(task: TopologyTask, result: TaskResult) -> bool:
    """Cheap integrity check: does the result belong to this task?

    A corrupt result (a poisoned IPC message, or an injected CORRUPT
    fault) claims the wrong index; rejecting it turns corruption into an
    ordinary retryable failure.
    """
    return result.record.index == task.index and result.elapsed_s >= 0


# ---------------------------------------------------------------------------
# Fault-tolerant dispatch (active when policy/checkpoint/faults are in play).
# ---------------------------------------------------------------------------


class _PoolBroken(Exception):
    """Internal: the pool died while waiting on ``culprit_index``."""

    def __init__(self, culprit_index: int, error: BaseException):
        self.culprit_index = culprit_index
        self.error = error
        super().__init__(str(error))


def _evaluate_with_retries(
    task: TopologyTask, policy: RetryPolicy, events: List[RunnerEvent]
) -> Tuple[Optional[TaskResult], Optional[str]]:
    """Serial evaluation of one task under the retry policy.

    The serial path cannot pre-empt a hung evaluation; overruns of
    ``task_timeout_s`` are detected post-hoc (wall-clock around the call)
    and recorded as timeout events while the completed result is kept.
    """
    attempt = task.attempt
    while True:
        reason: Optional[str] = None
        result: Optional[TaskResult] = None
        start = time.perf_counter()
        try:
            result = evaluate_topology(replace(task, attempt=attempt))
        except Exception as error:  # noqa: BLE001 — every failure is retryable here
            reason = f"{type(error).__name__}: {error}"
        if result is not None:
            wall_s = time.perf_counter() - start
            if policy.task_timeout_s is not None and wall_s > policy.task_timeout_s:
                events.append(
                    RunnerEvent(
                        "timeout",
                        task.index,
                        attempt,
                        f"ran {wall_s:.3f}s > {policy.task_timeout_s:.3f}s "
                        "(post-hoc; serial evaluation cannot be pre-empted)",
                    )
                )
            if _intact(task, result):
                return result, None
            reason = "integrity check failed (corrupt result)"
        if attempt - task.attempt >= policy.max_retries:
            events.append(RunnerEvent("failure", task.index, attempt, reason or ""))
            return None, reason
        events.append(RunnerEvent("retry", task.index, attempt + 1, reason or ""))
        policy.sleep(policy.backoff_s(attempt - task.attempt))
        attempt += 1


def _submit(pool: ProcessPoolExecutor, task: TopologyTask):
    try:
        return pool.submit(evaluate_topology, task)
    except BrokenProcessPool as error:
        raise _PoolBroken(task.index, error)


def _run_parallel_ft(
    pending: Sequence[TopologyTask],
    n_workers: int,
    policy: RetryPolicy,
    events: List[RunnerEvent],
    on_complete: Callable[[TopologyTask, TaskResult], None],
) -> Dict[int, str]:
    """Pool dispatch with per-attempt timeouts, retries and integrity checks.

    Every task is its own future; results are harvested in task order so
    retry/timeout accounting is deterministic for a given fault plan.  A
    :class:`BrokenProcessPool` (real or simulated) escalates as
    :class:`_PoolBroken` so the caller can degrade to serial re-dispatch.
    Returns index → reason for tasks that exhausted their retries.
    """
    failures: Dict[int, str] = {}
    abandoned = False
    pool = ProcessPoolExecutor(max_workers=n_workers)
    try:
        futures = {task.index: _submit(pool, task) for task in pending}
        for task in pending:
            attempt = task.attempt
            while True:
                future = futures[task.index]
                reason: Optional[str] = None
                result: Optional[TaskResult] = None
                try:
                    result = future.result(timeout=policy.task_timeout_s)
                except FuturesTimeoutError:
                    # The attempt may still be running; abandon its future
                    # (its eventual result is never merged) and re-dispatch.
                    abandoned = True
                    future.cancel()
                    reason = f"no result within {policy.task_timeout_s:.3f}s"
                    events.append(RunnerEvent("timeout", task.index, attempt, reason))
                except BrokenProcessPool as error:
                    abandoned = True
                    raise _PoolBroken(task.index, error)
                except Exception as error:  # noqa: BLE001 — worker exception
                    reason = f"{type(error).__name__}: {error}"
                if result is not None:
                    if _intact(task, result):
                        on_complete(task, result)
                        break
                    reason = "integrity check failed (corrupt result)"
                if attempt - task.attempt >= policy.max_retries:
                    events.append(RunnerEvent("failure", task.index, attempt, reason or ""))
                    failures[task.index] = reason or "unknown failure"
                    break
                events.append(RunnerEvent("retry", task.index, attempt + 1, reason or ""))
                policy.sleep(policy.backoff_s(attempt - task.attempt))
                attempt += 1
                futures[task.index] = _submit(pool, replace(task, attempt=attempt))
        return failures
    finally:
        # Don't block on abandoned (possibly hung) attempts; their workers
        # drain in the background and their results are discarded.
        pool.shutdown(wait=not abandoned, cancel_futures=True)


def _run_ft(
    tasks: Sequence[TopologyTask],
    n_workers: int,
    policy: RetryPolicy,
    journal: Optional[Journal],
    events: List[RunnerEvent],
) -> Tuple[Dict[int, TaskResult], Dict[int, str], bool, Optional[str], int]:
    """The fault-tolerant driver: resume, pool dispatch, serial degradation.

    Returns ``(completed, failures, parallel, fallback_reason, resumed)``.
    """
    completed: Dict[int, TaskResult] = {}
    resumed = 0
    if journal is not None:
        completed.update(journal.completed)
        resumed = len(completed)

    def on_complete(task: TopologyTask, result: TaskResult) -> None:
        completed[task.index] = result
        if journal is not None:
            journal.record(result)

    pending = [task for task in tasks if task.index not in completed]
    failures: Dict[int, str] = {}
    parallel = False
    fallback_reason: Optional[str] = None
    serial_pending: List[TopologyTask] = list(pending)

    if n_workers > 1 and len(pending) > 1 and _picklable(pending[0]):
        try:
            failures = _run_parallel_ft(pending, n_workers, policy, events, on_complete)
            parallel = True
            serial_pending = []
        except _PoolBroken as broken:
            parallel = True
            detail = f"{type(broken.error).__name__}: {broken.error}"
            events.append(RunnerEvent("fallback", broken.culprit_index, 0, detail))
            fallback_reason = (
                f"process pool broke while waiting on topology {broken.culprit_index} "
                f"({type(broken.error).__name__}); re-dispatching the remainder serially"
            )
            serial_pending = []
            for task in pending:
                if task.index in completed or task.index in failures:
                    continue
                if task.index == broken.culprit_index:
                    # The culprit's replay is a retry: its attempt counter
                    # advances so injected faults don't re-fire forever.
                    events.append(
                        RunnerEvent("retry", task.index, task.attempt + 1, "replay after pool breakage")
                    )
                    task = replace(task, attempt=task.attempt + 1)
                serial_pending.append(task)
        except (OSError, RuntimeError, pickle.PicklingError) as error:
            fallback_reason = f"process pool failed ({type(error).__name__}: {error})"
    elif n_workers > 1 and 0 < len(pending) <= 1:
        fallback_reason = "one task or fewer; pool overhead not worth it"
    elif n_workers > 1 and pending:
        fallback_reason = "task is not picklable (e.g. a lambda in the engine options)"

    for task in serial_pending:
        result, reason = _evaluate_with_retries(task, policy, events)
        if result is not None:
            on_complete(task, result)
        else:
            failures[task.index] = reason or "unknown failure"
    return completed, failures, parallel, fallback_reason, resumed


# ---------------------------------------------------------------------------
# Observability merge.
# ---------------------------------------------------------------------------


def _merge_observations(
    collector: Collector,
    results: Sequence[TaskResult],
    dispatch_start_s: float,
    n_workers: int,
    chunk: int,
    parallel: bool,
    events: Sequence[RunnerEvent] = (),
) -> int:
    """Graft worker spans/metrics into the parent collector.

    Each task gets a ``topology[i]`` span under one ``runner.run_tasks``
    span; tasks are laid out back-to-back from the dispatch start (a
    logical serial timeline — see the module docstring).  Fault-tolerance
    events become zero-duration ``runner.<kind>`` spans under the dispatch
    span plus ``runner.<kind>`` counters.  Returns the number of spans
    added to the parent trace.
    """
    tracer = collector.tracer
    elapsed = [result.elapsed_s for result in results]
    dispatch_id = tracer.record(
        "runner.run_tasks",
        start_s=dispatch_start_s,
        duration_s=float(sum(elapsed)),
        workers=n_workers,
        chunk_size=chunk,
        parallel=parallel,
        tasks=len(results),
    )
    n_spans = 1
    cursor = dispatch_start_s
    for result in results:
        topology_id = tracer.record(
            f"topology[{result.record.index}]",
            start_s=cursor,
            duration_s=result.elapsed_s,
            parent_id=dispatch_id,
            index=result.record.index,
        )
        n_spans += 1
        if result.spans:
            n_spans += graft(tracer, result.spans, parent_id=topology_id, base_offset_s=cursor)
        if result.metrics is not None:
            collector.metrics.merge(result.metrics)
        cursor += result.elapsed_s
    for event in events:
        tracer.record(
            f"runner.{event.kind}",
            start_s=dispatch_start_s,
            duration_s=0.0,
            parent_id=dispatch_id,
            index=event.index,
            attempt=event.attempt,
            detail=event.detail,
        )
        n_spans += 1
        collector.inc(f"runner.{event.kind}")
    collector.inc("runner.tasks", len(results))
    return n_spans


def _count(events: Sequence[RunnerEvent], kind: str) -> int:
    return sum(1 for event in events if event.kind == kind)


def run_tasks(
    tasks: Sequence[TopologyTask],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    collector: Optional[Collector] = None,
    policy: Optional[RetryPolicy] = None,
    checkpoint: Optional[Union[str, Journal]] = None,
    resume: bool = False,
    cache=None,
) -> Tuple[List[TopologyRecord], RunnerStats]:
    """Evaluate every task, in parallel when possible; results in task order.

    Records come back ordered like ``tasks`` regardless of which worker
    finished first, and are bit-identical to what :func:`_run_serial` would
    produce (each task carries its own seed).  Pool-start failures, broken
    pools and unpicklable tasks degrade to the serial path with the reason
    recorded in the returned :class:`RunnerStats`.

    ``batch_size`` controls the batched-engine dispatch unit
    (:func:`evaluate_batch`): ``None`` (the default) batches automatically
    — each worker chunk (or the whole list, serially) is evaluated as
    stacked arrays, bit-identical to per-topology evaluation; ``1``
    forces the legacy per-topology path; ``k > 1`` caps batches at ``k``
    tasks.  Fault-tolerant runs (``policy``/``checkpoint``/fault plans)
    always evaluate per topology, whatever ``batch_size`` says.

    Fault tolerance activates when ``policy``/``checkpoint`` is given (or
    any task carries a fault plan): per-attempt timeouts, bounded retries
    with backoff, integrity checks, serial re-dispatch on pool breakage
    and an optional ``repro.ckpt/v1`` journal (``checkpoint=`` path;
    ``resume=True`` reloads completed topologies bit-identically).  Tasks
    that fail permanently raise :class:`RunnerError` only after all other
    topologies finished.

    When ``collector`` is given, every task is observed (worker-local
    spans + metrics, merged back here) regardless of which path ran it —
    so serial and parallel runs yield the same trace shape.

    When ``cache`` is given (a :class:`repro.cache.ResultCache`), each
    task is looked up by content address first; hits are excluded from
    dispatch and fresh results are stored after harvest.  A checkpoint
    journal, if any, is still fingerprinted over the *full* task list,
    so cached and uncached runs of one experiment share journals.
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    col = active(collector)
    tasks = list(tasks)
    fault_tolerant = (
        policy is not None
        or checkpoint is not None
        or any(task.fault_plan is not None for task in tasks)
    )
    if col.enabled:
        tasks = [replace(task, observe=True) for task in tasks]
    all_tasks = tasks
    cached: Dict[int, TaskResult] = {}
    if cache is not None:
        for task in all_tasks:
            hit = cache.load_result(task, collector=collector)
            if hit is not None:
                cached[task.index] = hit
        tasks = [task for task in all_tasks if task.index not in cached]
    n_workers = resolve_workers(workers)
    chunk = int(chunk_size) if chunk_size else auto_chunk_size(len(tasks), n_workers)
    dispatch_start_s = col.tracer.now()
    start = time.perf_counter()

    fallback_reason: Optional[str] = None
    results: Optional[List[TaskResult]] = None
    parallel = False
    events: List[RunnerEvent] = []
    resumed = 0

    # Observed runs need per-topology traces, so they keep the per-task
    # path; everything else goes through the batched engine by default.
    use_batch = batch_size != 1 and not col.enabled
    effective_batch = 1

    if not fault_tolerant:
        if not tasks:
            results = []  # everything was served from the cache
        elif n_workers <= 1:
            fallback_reason = None if workers in (None, 1) else "resolved to a single worker"
        elif len(tasks) <= 1:
            fallback_reason = "one task or fewer; pool overhead not worth it"
        elif tasks and not _picklable(tasks[0]):
            fallback_reason = "task is not picklable (e.g. a lambda in the engine options)"
        else:
            try:
                with ProcessPoolExecutor(max_workers=n_workers) as pool:
                    if use_batch:
                        # One batched dispatch per worker chunk instead of
                        # one task: same load-balancing unit, B× fewer
                        # engine invocations.
                        unit = chunk if batch_size is None else batch_size
                        groups = [tasks[i : i + unit] for i in range(0, len(tasks), unit)]
                        nested = list(pool.map(evaluate_batch, groups))
                        results = [result for group in nested for result in group]
                        effective_batch = unit
                    else:
                        results = list(pool.map(evaluate_topology, tasks, chunksize=chunk))
                parallel = True
            except (OSError, BrokenProcessPool, RuntimeError, pickle.PicklingError) as error:
                fallback_reason = f"process pool failed ({type(error).__name__}: {error})"
                results = None
        if results is None:
            if use_batch and tasks:
                unit = len(tasks) if batch_size is None else batch_size
                results = []
                for offset in range(0, len(tasks), unit):
                    results.extend(evaluate_batch(tasks[offset : offset + unit]))
                effective_batch = unit
            else:
                results = _run_serial(tasks)
    else:
        retry_policy = policy if policy is not None else RetryPolicy()
        journal: Optional[Journal] = None
        owns_journal = False
        if isinstance(checkpoint, Journal):
            journal = checkpoint
        elif checkpoint is not None:
            # Fingerprint over the full task list (not just cache misses)
            # so the journal stays resumable whether or not a cache was
            # attached, and however the hit pattern falls.
            journal = Journal.open(str(checkpoint), all_tasks, resume=resume)
            owns_journal = True
        try:
            if n_workers <= 1 and workers not in (None, 1):
                fallback_reason = "resolved to a single worker"
            completed, failures, parallel, ft_fallback, resumed = _run_ft(
                tasks, n_workers, retry_policy, journal, events
            )
            if ft_fallback is not None:
                fallback_reason = ft_fallback
        finally:
            if owns_journal and journal is not None:
                journal.close()
        if failures:
            survivors = [
                (cached.get(t.index) or completed[t.index]).record
                for t in all_tasks
                if t.index in cached or t.index in completed
            ]
            raise RunnerError(failures, records=survivors, total=len(all_tasks))
        results = [completed[task.index] for task in tasks]
        chunk = 1 if parallel else chunk

    if cache is not None:
        for task, result in zip(tasks, results):
            cache.store_result(task, result, collector=collector)
        computed = {task.index: result for task, result in zip(tasks, results)}
        results = [cached.get(task.index) or computed[task.index] for task in all_tasks]

    n_spans = 0
    if col.enabled:
        n_spans = _merge_observations(
            col,
            results,
            dispatch_start_s,
            n_workers if parallel else 1,
            chunk,
            parallel,
            events=events,
        )

    stats = RunnerStats(
        workers=n_workers if parallel else 1,
        chunk_size=chunk if parallel else len(tasks) or 1,
        parallel=parallel,
        total_wall_s=time.perf_counter() - start,
        topology_wall_s=tuple(result.elapsed_s for result in results),
        fallback_reason=fallback_reason,
        observed=col.enabled,
        spans_merged=n_spans,
        retries=_count(events, "retry"),
        timeouts=_count(events, "timeout"),
        fallbacks=_count(events, "fallback"),
        resumed=resumed,
        cache_hits=len(cached),
        cache_misses=len(tasks) if cache is not None else 0,
        batch_size=max(1, effective_batch),
    )
    return [result.record for result in results], stats
