"""Process-pool experiment runner: deterministic fan-out over topologies.

Per-topology evaluation is embarrassingly parallel — the strategy engine
for topology ``t`` depends only on that topology's channel realization and
its private seed (``config.seed + 10_000 + t``), never on its neighbours.
This module exploits that: it turns a scenario into a list of picklable
:class:`TopologyTask` specs and fans them out to worker processes via
:class:`concurrent.futures.ProcessPoolExecutor`.

Determinism guarantee: every task carries the *exact* seed the serial loop
in :func:`repro.sim.experiment.run_experiment` would have used, and each
worker rebuilds its RNG from that seed alone.  Parallel results are
therefore bit-identical to serial ones — order, values and all — which is
what the equivalence suite in ``tests/sim/test_runner.py`` pins.

Graceful degradation: with ``workers=1`` (or one task, or an unpicklable
task, or a pool that fails to start) the runner evaluates serially in the
calling process and records why in :attr:`RunnerStats.fallback_reason`; it
never crashes because the platform lacks working multiprocessing.

Observability: pass ``collector=`` (a :class:`repro.obs.Collector`) to
:func:`run_tasks` and every task is evaluated under a worker-local
collector whose spans and metrics travel back with the record — plain
picklable data — and are grafted into the parent trace under one
``topology[i]`` span per task.  Worker span *offsets* are re-based onto a
logical serial timeline (cross-process clocks share no origin); the
*durations* are real measurements.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.mercury import mercury_allocate
from ..core.options import EngineOptions
from ..core.strategy import StrategyEngine, StrategyOutcome
from ..obs.collector import Collector, active
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import SpanRecord, graft
from ..phy.channel import ChannelSet
from ..phy.noise import ImperfectionModel

__all__ = [
    "SEED_OFFSET",
    "TopologyTask",
    "TopologyRecord",
    "TaskResult",
    "RunnerStats",
    "build_tasks",
    "evaluate_topology",
    "resolve_workers",
    "auto_chunk_size",
    "run_tasks",
]

#: The serial loop evaluates topology ``t`` with ``config.seed + 10_000 + t``;
#: tasks must carry exactly that seed for parallel results to be identical.
SEED_OFFSET = 10_000


@dataclass
class TopologyRecord:
    """Everything measured in one topology."""

    index: int
    channels: ChannelSet
    outcome: StrategyOutcome
    plus_outcome: Optional[StrategyOutcome] = None


@dataclass(frozen=True)
class TopologyTask:
    """Picklable spec for evaluating one topology in any process.

    Carries everything a worker needs — the channel realization, the
    imperfection model, the exact per-topology engine seed and the typed
    strategy-engine options — so evaluation depends on nothing ambient.
    """

    index: int
    channels: ChannelSet
    imperfections: ImperfectionModel
    #: Exact engine seed (``config.seed + SEED_OFFSET + index``).
    seed: int
    coherence_s: float
    #: Also evaluate the mercury/water-filling COPA+ variant.
    include_copa_plus: bool = False
    #: Validated :class:`StrategyEngine` overrides (picklable by
    #: construction unless a non-module-level callable is supplied, which
    #: triggers the serial fallback instead).
    options: EngineOptions = EngineOptions()
    #: Build a worker-local collector and ship spans/metrics back with the
    #: record (set by :func:`run_tasks` when it was given a collector).
    observe: bool = False


@dataclass
class TaskResult:
    """What one task evaluation produced, wherever it ran."""

    record: TopologyRecord
    #: Wall-clock seconds of this task's evaluation.
    elapsed_s: float
    #: Worker-local spans (``None`` unless the task was observed).
    spans: Optional[List[SpanRecord]] = None
    #: Worker-local metrics (``None`` unless the task was observed).
    metrics: Optional[MetricsRegistry] = None


def evaluate_topology(task: TopologyTask) -> TaskResult:
    """Evaluate one task; module-level so workers import it by reference.

    The CSI RNG is rebuilt from the task seed for each engine, so COPA and
    COPA+ see identical noisy CSI and the result is independent of which
    process (or order) ran the task.  Observation never touches the RNG,
    so observed results are bit-identical to unobserved ones.
    """
    collector = Collector() if task.observe else None
    start = time.perf_counter()
    kwargs = task.options.engine_kwargs()
    outcome = StrategyEngine(
        task.channels,
        imperfections=task.imperfections,
        rng=np.random.default_rng(task.seed),
        coherence_s=task.coherence_s,
        collector=collector,
        **kwargs,
    ).run()
    plus_outcome = None
    if task.include_copa_plus:
        plus_kwargs = dict(kwargs)
        plus_kwargs["allocator"] = mercury_allocate
        plus_outcome = StrategyEngine(
            task.channels,
            imperfections=task.imperfections,
            rng=np.random.default_rng(task.seed),
            coherence_s=task.coherence_s,
            collector=collector,
            **plus_kwargs,
        ).run()
    record = TopologyRecord(
        index=task.index,
        channels=task.channels,
        outcome=outcome,
        plus_outcome=plus_outcome,
    )
    return TaskResult(
        record=record,
        elapsed_s=time.perf_counter() - start,
        spans=list(collector.spans) if collector is not None else None,
        metrics=collector.metrics if collector is not None else None,
    )


def build_tasks(
    channel_sets: Sequence[ChannelSet],
    base_seed: int,
    coherence_s: float,
    imperfections: ImperfectionModel,
    include_copa_plus: bool = False,
    engine_kwargs: Optional[Dict] = None,
    options: Optional[EngineOptions] = None,
    observe: bool = False,
) -> List[TopologyTask]:
    """One task per channel realization, each with its private seed.

    ``options`` is the typed engine configuration; ``engine_kwargs`` is the
    deprecated dict form (converted with a :class:`DeprecationWarning`).
    Passing both is an error.
    """
    if engine_kwargs is not None and options is not None:
        raise TypeError("pass either options or the deprecated engine_kwargs, not both")
    resolved = EngineOptions.coerce(engine_kwargs if options is None else options)
    return [
        TopologyTask(
            index=index,
            channels=channels,
            imperfections=imperfections,
            seed=base_seed + SEED_OFFSET + index,
            coherence_s=coherence_s,
            include_copa_plus=include_copa_plus,
            options=resolved,
            observe=observe,
        )
        for index, channels in enumerate(channel_sets)
    ]


@dataclass(frozen=True)
class RunnerStats:
    """Timing/progress telemetry of one runner invocation."""

    #: Worker count the runner resolved to (1 for the serial path).
    workers: int
    #: Tasks handed to each worker per dispatch round.
    chunk_size: int
    #: Whether the process pool actually ran (False → serial path).
    parallel: bool
    #: End-to-end wall-clock of the whole run, seconds.
    total_wall_s: float
    #: Per-topology wall-clock, seconds, in topology order.
    topology_wall_s: Tuple[float, ...]
    #: Why the runner degraded to serial, if it did.
    fallback_reason: Optional[str] = None
    #: Whether per-task observability was on for this run.
    observed: bool = False
    #: Spans merged into the parent trace (0 when not observed).
    spans_merged: int = 0

    @property
    def n_topologies(self) -> int:
        return len(self.topology_wall_s)

    @property
    def busy_s(self) -> float:
        """Total compute time summed over topologies (all workers)."""
        return float(sum(self.topology_wall_s))

    @property
    def topologies_per_s(self) -> float:
        if self.total_wall_s <= 0:
            return 0.0
        return self.n_topologies / self.total_wall_s

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker·seconds spent evaluating topologies."""
        if self.total_wall_s <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.workers * self.total_wall_s))


def resolve_workers(workers: Optional[int] = None) -> int:
    """Normalize a worker request: ``None`` → serial, ``<= 0`` → all cores."""
    if workers is None:
        return 1
    if workers <= 0:
        return os.cpu_count() or 1
    return int(workers)


def auto_chunk_size(n_tasks: int, workers: int) -> int:
    """Default chunking: ~4 dispatch rounds per worker, at least 1 task.

    Small chunks keep workers busy when per-topology times vary (COPA+
    tails are long); one giant chunk would serialize stragglers.
    """
    if n_tasks <= 0 or workers <= 1:
        return 1
    return max(1, math.ceil(n_tasks / (workers * 4)))


def _picklable(task: TopologyTask) -> bool:
    try:
        pickle.dumps(task)
        return True
    except Exception:
        return False


def _run_serial(tasks: Sequence[TopologyTask]) -> List[TaskResult]:
    return [evaluate_topology(task) for task in tasks]


def _merge_observations(
    collector: Collector,
    results: Sequence[TaskResult],
    dispatch_start_s: float,
    n_workers: int,
    chunk: int,
    parallel: bool,
) -> int:
    """Graft worker spans/metrics into the parent collector.

    Each task gets a ``topology[i]`` span under one ``runner.run_tasks``
    span; tasks are laid out back-to-back from the dispatch start (a
    logical serial timeline — see the module docstring).  Returns the
    number of spans added to the parent trace.
    """
    tracer = collector.tracer
    elapsed = [result.elapsed_s for result in results]
    dispatch_id = tracer.record(
        "runner.run_tasks",
        start_s=dispatch_start_s,
        duration_s=float(sum(elapsed)),
        workers=n_workers,
        chunk_size=chunk,
        parallel=parallel,
        tasks=len(results),
    )
    n_spans = 1
    cursor = dispatch_start_s
    for result in results:
        topology_id = tracer.record(
            f"topology[{result.record.index}]",
            start_s=cursor,
            duration_s=result.elapsed_s,
            parent_id=dispatch_id,
            index=result.record.index,
        )
        n_spans += 1
        if result.spans:
            n_spans += graft(tracer, result.spans, parent_id=topology_id, base_offset_s=cursor)
        if result.metrics is not None:
            collector.metrics.merge(result.metrics)
        cursor += result.elapsed_s
    collector.inc("runner.tasks", len(results))
    return n_spans


def run_tasks(
    tasks: Sequence[TopologyTask],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    collector: Optional[Collector] = None,
) -> Tuple[List[TopologyRecord], RunnerStats]:
    """Evaluate every task, in parallel when possible; results in task order.

    Records come back ordered like ``tasks`` regardless of which worker
    finished first, and are bit-identical to what :func:`_run_serial` would
    produce (each task carries its own seed).  Pool-start failures, broken
    pools and unpicklable tasks degrade to the serial path with the reason
    recorded in the returned :class:`RunnerStats`.

    When ``collector`` is given, every task is observed (worker-local
    spans + metrics, merged back here) regardless of which path ran it —
    so serial and parallel runs yield the same trace shape.
    """
    col = active(collector)
    tasks = list(tasks)
    if col.enabled:
        tasks = [replace(task, observe=True) for task in tasks]
    n_workers = resolve_workers(workers)
    chunk = int(chunk_size) if chunk_size else auto_chunk_size(len(tasks), n_workers)
    dispatch_start_s = col.tracer.now()
    start = time.perf_counter()

    fallback_reason: Optional[str] = None
    results: Optional[List[TaskResult]] = None
    parallel = False

    if n_workers <= 1:
        fallback_reason = None if workers in (None, 1) else "resolved to a single worker"
    elif len(tasks) <= 1:
        fallback_reason = "one task or fewer; pool overhead not worth it"
    elif tasks and not _picklable(tasks[0]):
        fallback_reason = "task is not picklable (e.g. a lambda in the engine options)"
    else:
        try:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                results = list(pool.map(evaluate_topology, tasks, chunksize=chunk))
            parallel = True
        except (OSError, BrokenProcessPool, RuntimeError, pickle.PicklingError) as error:
            fallback_reason = f"process pool failed ({type(error).__name__}: {error})"
            results = None

    if results is None:
        results = _run_serial(tasks)

    n_spans = 0
    if col.enabled:
        n_spans = _merge_observations(
            col, results, dispatch_start_s, n_workers if parallel else 1, chunk, parallel
        )

    stats = RunnerStats(
        workers=n_workers if parallel else 1,
        chunk_size=chunk if parallel else len(tasks) or 1,
        parallel=parallel,
        total_wall_s=time.perf_counter() - start,
        topology_wall_s=tuple(result.elapsed_s for result in results),
        fallback_reason=fallback_reason,
        observed=col.enabled,
        spans_merged=n_spans,
    )
    return [result.record for result in results], stats
