"""Markdown report generation: one self-contained evaluation writeup.

Turns experiment results into the kind of report EXPERIMENTS.md contains —
scheme tables with paper reference values, headline comparisons, ASCII
CDFs — so a user can rerun the evaluation under modified parameters and
get a like-for-like document (``python -m repro.cli report``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .experiment import ExperimentResult
from .metrics import compare
from .plots import ascii_cdf

__all__ = ["PAPER_MEANS", "scheme_table", "headline_section", "experiment_report"]

#: The paper's CDF-legend means (Mbit/s), for side-by-side columns.
PAPER_MEANS: Dict[str, Dict[str, float]] = {
    "1x1": {
        "csma": 47.7,
        "copa_seq": 51.6,
        "copa_fair": 53.3,
        "copa": 54.7,
        "copa_plus_fair": 53.7,
        "copa_plus": 55.0,
    },
    "4x2": {
        "csma": 110.1,
        "copa_seq": 110.4,
        "null": 83.1,
        "copa_fair": 123.9,
        "copa": 128.1,
        "copa_plus_fair": 132.0,
        "copa_plus": 136.2,
    },
    "4x2-10dB": {
        "csma": 110.1,
        "copa_seq": 110.4,
        "null": 131.7,
        "copa_fair": 175.8,
        "copa": 178.8,
        "copa_plus_fair": 184.4,
        "copa_plus": 185.9,
    },
    "3x2": {
        "csma": 104.1,
        "copa_seq": 108.9,
        "null": 87.4,
        "copa_fair": 117.8,
        "copa": 121.6,
        "copa_plus_fair": 122.9,
        "copa_plus": 126.4,
    },
}


def scheme_table(result: ExperimentResult, paper: Optional[Dict[str, float]] = None) -> str:
    """A markdown table of per-scheme means (and medians), paper alongside."""
    if paper is None:
        paper = PAPER_MEANS.get(result.spec.name, {})
    lines = ["| scheme | paper Mbps | measured Mbps | median | std |", "|---|---|---|---|---|"]
    for key in result.available_series():
        summary = result.summary(key)
        reference = f"{paper[key]:.1f}" if key in paper else "—"
        lines.append(
            f"| {key} | {reference} | {summary.mean:.1f} | {summary.median:.1f} | {summary.std:.1f} |"
        )
    return "\n".join(lines)


def headline_section(result: ExperimentResult) -> str:
    """The §1-style headline comparisons, when nulling was measured."""
    lines: List[str] = []
    available = result.available_series()
    if "null" in available:
        null_vs_csma = compare(result.series_mbps("null"), result.series_mbps("csma"))
        rescue = compare(result.series_mbps("copa"), result.series_mbps("null"))
        lines.append(
            f"- vanilla nulling underperforms CSMA in "
            f"{1 - null_vs_csma.win_fraction:.0%} of topologies"
        )
        lines.append(
            f"- COPA improves on vanilla nulling by {rescue.mean_improvement:.0%} mean"
        )
    copa_vs_csma = compare(result.series_mbps("copa"), result.series_mbps("csma"))
    lines.append(
        f"- COPA beats CSMA in {copa_vs_csma.win_fraction:.0%} of topologies "
        f"({copa_vs_csma.mean_improvement:+.0%} mean aggregate)"
    )
    fair_cost = 1.0 - result.series_mbps("copa_fair").mean() / result.series_mbps("copa").mean()
    lines.append(f"- the price of fairness: {fair_cost:.1%} of COPA's aggregate")
    return "\n".join(lines)


def experiment_report(
    result: ExperimentResult,
    title: Optional[str] = None,
    include_cdf: bool = True,
    cdf_keys: Sequence[str] = ("csma", "null", "copa_fair", "copa"),
) -> str:
    """A complete markdown section for one experiment."""
    name = result.spec.name
    lines = [f"## {title or f'Scenario {name}'}", ""]
    lines.append(
        f"{len(result.records)} topologies, "
        f"{result.spec.ap_antennas}-antenna APs, "
        f"{result.spec.client_antennas}-antenna clients"
        + (
            f", interference {result.spec.interference_offset_db:+g} dB"
            if result.spec.interference_offset_db
            else ""
        )
    )
    lines.append("")
    lines.append(scheme_table(result))
    lines.append("")
    lines.append(headline_section(result))
    if include_cdf:
        series = {
            key: result.series_mbps(key)
            for key in cdf_keys
            if key in result.available_series()
        }
        if series:
            lines.append("")
            lines.append("```")
            lines.append(ascii_cdf(series))
            lines.append("```")
    return "\n".join(lines) + "\n"
