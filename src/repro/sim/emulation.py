"""Trace-driven emulation: record channel realizations, transform, replay.

The paper's §4.4 takes the CSI traces of all 4×2 topologies, reduces the
interference strength by 10 dB while leaving the signal of interest
unchanged, and replays the experiment — producing Figure 12.  The same
mechanism serves COPA+ ("these curves are trace-driven emulation based on
real CSI measurements").

Traces can also be persisted to ``.npz`` files so experiments are exactly
replayable across processes.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

import numpy as np

from ..core.options import EngineOptions
from ..obs.collector import Collector, active
from ..phy.channel import ChannelSet
from ..phy.topology import Node, Topology
from .config import DEFAULT_CONFIG, SimConfig
from .faults import FaultPlan
from .runner import RetryPolicy
from .experiment import (
    ExperimentResult,
    ScenarioSpec,
    generate_channel_sets,
    run_experiment,
)

__all__ = [
    "scaled_traces",
    "run_emulated_experiment",
    "save_trace",
    "load_trace",
    "save_traces",
    "load_traces",
]


def scaled_traces(traces: Sequence[ChannelSet], interference_offset_db: float) -> List[ChannelSet]:
    """Copies of the traces with every cross link scaled by the offset."""
    return [trace.scaled_interference(interference_offset_db) for trace in traces]


def run_emulated_experiment(
    spec: ScenarioSpec,
    interference_offset_db: float,
    config: SimConfig = DEFAULT_CONFIG,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    options: Optional[EngineOptions] = None,
    collector: Optional[Collector] = None,
    policy: Optional[RetryPolicy] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    cache=None,
) -> ExperimentResult:
    """Record the scenario's traces, weaken interference, replay (§4.4).

    The replay fans out to a process pool when ``workers`` asks for one;
    emulated traces are plain :class:`ChannelSet` data, so the parallel
    path is bit-identical to the serial one (see :mod:`repro.sim.runner`).
    The execution/observability/fault-tolerance keywords (``workers``,
    ``chunk_size``, ``batch_size``, ``options``, ``collector``, ``policy``,
    ``checkpoint``, ``resume``, ``fault_plan``, ``cache``) match
    :func:`repro.sim.experiment.run_experiment`; with a cache, the base
    (unscaled) traces are memoized once and every offset's scaled replay
    is derived from — and cached under — its own content address.
    """
    # Resolve here so a bad options value fails in the caller's frame.
    options = EngineOptions.resolve(options)
    col = active(collector)
    with col.span("emulation", scenario=spec.name, offset_db=interference_offset_db):
        with col.span("record_traces"):
            traces = generate_channel_sets(spec, config, cache=cache, collector=collector)
        with col.span("transform_traces"):
            emulated = scaled_traces(traces, interference_offset_db)
        emulated_spec = ScenarioSpec(
            name=f"{spec.name}{interference_offset_db:+g}dB",
            ap_antennas=spec.ap_antennas,
            client_antennas=spec.client_antennas,
            interference_offset_db=interference_offset_db,
            include_copa_plus=spec.include_copa_plus,
            n_aps=spec.n_aps,
        )
        return run_experiment(
            emulated_spec,
            config,
            channel_sets=emulated,
            workers=workers,
            chunk_size=chunk_size,
            batch_size=batch_size,
            options=options,
            collector=collector,
            policy=policy,
            checkpoint=checkpoint,
            resume=resume,
            fault_plan=fault_plan,
            cache=cache,
        )


# ---------------------------------------------------------------------------
# Trace persistence.
# ---------------------------------------------------------------------------


def save_trace(channels: ChannelSet, path: str) -> None:
    """Persist one channel realization (topology + channels) as ``.npz``."""
    topology = channels.topology
    payload = {
        "noise_floor_mw": np.array(channels.noise_floor_mw),
        "n_subcarriers": np.array(channels.n_subcarriers),
        "node_names": np.array(
            [node.name for node in topology.aps + topology.clients], dtype=object
        ),
        "node_kinds": np.array(
            ["ap"] * len(topology.aps) + ["client"] * len(topology.clients), dtype=object
        ),
        "node_positions": np.array(
            [node.position_m for node in topology.aps + topology.clients]
        ),
        "node_antennas": np.array(
            [node.n_antennas for node in topology.aps + topology.clients]
        ),
        "gain_keys": np.array(
            ["|".join(pair) for pair in topology.link_gain_db], dtype=object
        ),
        "gain_values": np.array(list(topology.link_gain_db.values())),
    }
    for (tx, rx), h in channels.channels.items():
        payload[f"H|{tx}|{rx}"] = h
    np.savez_compressed(path, **payload, allow_pickle=True)


def load_trace(path: str) -> ChannelSet:
    """Load a channel realization saved by :func:`save_trace`."""
    with np.load(path, allow_pickle=True) as data:
        names = list(data["node_names"])
        kinds = list(data["node_kinds"])
        positions = data["node_positions"]
        antennas = data["node_antennas"]
        nodes = [
            Node(str(name), (float(pos[0]), float(pos[1])), int(n_ant))
            for name, pos, n_ant in zip(names, positions, antennas)
        ]
        aps = [node for node, kind in zip(nodes, kinds) if kind == "ap"]
        clients = [node for node, kind in zip(nodes, kinds) if kind == "client"]
        gains = {
            tuple(key.split("|")): float(value)
            for key, value in zip(data["gain_keys"], data["gain_values"])
        }
        topology = Topology(aps=aps, clients=clients, link_gain_db=gains)
        channels = {}
        for key in data.files:
            if key.startswith("H|"):
                _, tx, rx = key.split("|")
                channels[(tx, rx)] = data[key]
        return ChannelSet(
            topology=topology,
            channels=channels,
            noise_floor_mw=float(data["noise_floor_mw"]),
            n_subcarriers=int(data["n_subcarriers"]),
        )


def save_traces(traces: Sequence[ChannelSet], directory: str) -> List[str]:
    """Persist a whole scenario's traces; returns the file paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for index, trace in enumerate(traces):
        path = os.path.join(directory, f"trace_{index:03d}.npz")
        save_trace(trace, path)
        paths.append(path)
    return paths


def load_traces(directory: str) -> List[ChannelSet]:
    """Load every trace in a directory, in index order."""
    names = sorted(
        name for name in os.listdir(directory) if name.startswith("trace_") and name.endswith(".npz")
    )
    if not names:
        raise FileNotFoundError(f"no trace_*.npz files in {directory!r}")
    return [load_trace(os.path.join(directory, name)) for name in names]
