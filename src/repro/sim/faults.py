"""Deterministic fault injection for the experiment runner.

Long seeded sweeps (Table 1 / Fig. 6 reproductions, the coherence and
interference sweeps) only become trustworthy at scale when the runner
provably survives worker failures.  This module provides the *fault side*
of that proof: seedable, picklable fault plans that the chaos suite
(``tests/sim/test_chaos.py``) installs through the public
``fault_plan=`` keyword — no monkeypatching of runner internals.

A :class:`FaultPlan` maps topology indices to :class:`FaultSpec` entries.
Plans travel inside :class:`repro.sim.runner.TopologyTask` specs, so they
work identically in the calling process and in pool workers.  Faults are
**attempt-counted**: a spec with ``trips=1`` fires only while the task's
``attempt`` counter is below 1, so the runner's retry (which re-dispatches
the task with ``attempt + 1``) is a clean replay of the *same* seed — the
retried result is bit-identical to what a fault-free run produces.  No
mutable cross-process state is needed; the attempt number is part of the
task spec itself.

Fault classes
-------------
``CRASH``
    raise :class:`InjectedCrash` (a worker that dies with an exception).
``HANG``
    sleep ``hang_s`` seconds before returning normally (a stuck worker;
    the runner's per-task timeout must catch it).
``CORRUPT``
    return a result whose record index does not match the task (a
    poisoned message; the runner's integrity check must catch it).
``POOL_BREAK``
    raise :class:`SimulatedPoolBreak`, a :class:`BrokenProcessPool`
    subclass — from a pool worker it reaches the parent exactly like a
    real pool breakage and must trigger graceful serial degradation.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "InjectedCrash",
    "SimulatedPoolBreak",
]


class FaultKind(str, Enum):
    """The fault classes the chaos suite exercises."""

    CRASH = "crash"
    HANG = "hang"
    CORRUPT = "corrupt"
    POOL_BREAK = "pool_break"


class InjectedFault(RuntimeError):
    """Base class for every deliberately injected failure."""


class InjectedCrash(InjectedFault):
    """An injected worker crash (module-level, so it pickles across pools)."""


class SimulatedPoolBreak(BrokenProcessPool):
    """An injected pool breakage.

    Subclasses :class:`BrokenProcessPool` so the parent process cannot
    (and must not) distinguish it from a genuinely broken pool — the
    runner's degradation path is exercised for real.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault at one topology index.

    ``trips`` bounds how many attempts the fault fires on: the fault is
    active while ``attempt < trips``, so the default of 1 fails the first
    attempt and lets the first retry succeed.  ``when`` places crashes
    either before any work happens or after the engine ran (a worker that
    dies *after* emitting spans — the partial-observation case).
    """

    kind: FaultKind
    trips: int = 1
    #: How long a HANG sleeps before completing normally.
    hang_s: float = 4.0
    #: "before" fires before evaluation, "after" fires once the outcome
    #: exists (CORRUPT is always applied after, by nature).
    when: str = "before"

    def __post_init__(self):
        if self.trips < 1:
            raise ValueError(f"trips must be >= 1, got {self.trips}")
        if self.when not in ("before", "after"):
            raise ValueError(f"when must be 'before' or 'after', got {self.when!r}")
        if self.hang_s < 0:
            raise ValueError(f"hang_s must be >= 0, got {self.hang_s}")


@dataclass(frozen=True)
class FaultPlan:
    """Index → fault mapping, installed on tasks via ``fault_plan=``."""

    faults: Mapping[int, FaultSpec]

    @classmethod
    def at(cls, indices: Iterable[int], kind: FaultKind, **spec_kwargs) -> "FaultPlan":
        """One identical fault at each explicit index."""
        spec = FaultSpec(kind=FaultKind(kind), **spec_kwargs)
        return cls(faults={int(index): spec for index in indices})

    @classmethod
    def random(
        cls,
        seed: int,
        n_tasks: int,
        kind: FaultKind,
        n_faults: int = 1,
        **spec_kwargs,
    ) -> "FaultPlan":
        """Faults at seeded random indices (what the chaos suite uses).

        The indices depend only on ``seed``/``n_tasks``/``n_faults`` —
        never on timing — so every chaos run is replayable.
        """
        if not 0 <= n_faults <= n_tasks:
            raise ValueError(f"n_faults must be within [0, {n_tasks}], got {n_faults}")
        rng = np.random.default_rng(seed)
        indices = rng.choice(n_tasks, size=n_faults, replace=False)
        return cls.at((int(i) for i in indices), kind, **spec_kwargs)

    def active(self, index: int, attempt: int) -> Optional[FaultSpec]:
        """The fault to apply for this (index, attempt), if any."""
        spec = self.faults.get(index)
        if spec is None or attempt >= spec.trips:
            return None
        return spec

    def indices(self) -> Dict[int, FaultKind]:
        """Index → kind view (handy for test assertions)."""
        return {index: spec.kind for index, spec in sorted(self.faults.items())}

    # -- hook points called by repro.sim.runner.evaluate_topology ---------

    def fire_before(self, index: int, attempt: int) -> None:
        """Apply a ``when='before'`` fault: crash, hang or break the pool."""
        spec = self.active(index, attempt)
        if spec is None or spec.when != "before":
            return
        self._fire(spec, index, attempt)

    def fire_after(self, index: int, attempt: int, result):
        """Apply a ``when='after'`` fault; may return a corrupted result."""
        spec = self.active(index, attempt)
        if spec is None or (spec.when != "after" and spec.kind is not FaultKind.CORRUPT):
            return result
        if spec.kind is FaultKind.CORRUPT:
            # A poisoned message: the record claims the wrong index.  The
            # runner's integrity check must reject and replay it.
            corrupt_record = dataclasses.replace(result.record, index=-(index + 1))
            return dataclasses.replace(result, record=corrupt_record)
        self._fire(spec, index, attempt)
        return result

    @staticmethod
    def _fire(spec: FaultSpec, index: int, attempt: int) -> None:
        if spec.kind is FaultKind.CRASH:
            raise InjectedCrash(f"injected crash at topology {index} (attempt {attempt})")
        if spec.kind is FaultKind.HANG:
            time.sleep(spec.hang_s)
            return
        if spec.kind is FaultKind.POOL_BREAK:
            raise SimulatedPoolBreak(
                f"injected pool breakage at topology {index} (attempt {attempt})"
            )
        raise ValueError(f"unhandled fault kind {spec.kind!r}")  # pragma: no cover
