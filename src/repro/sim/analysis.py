"""Allocation analyses: what COPA actually does with the subcarriers.

§4.2 observes that in the single-antenna scenario "COPA has selected a
form of OFDMA, with some subcarriers being used by only one AP at a time
... each subcarrier is used by the AP that can best make use of it", and
§3.2 argues dropped subcarriers free capacity for the other sender.
These functions quantify that behaviour from the allocations the strategy
engine records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.strategy import SchemeResult, StrategyOutcome

__all__ = [
    "SubcarrierSharing",
    "sharing_of",
    "sharing_across_topologies",
    "power_concentration",
]


@dataclass(frozen=True)
class SubcarrierSharing:
    """How two concurrent transmissions divide the band."""

    #: Number of subcarriers carrying data for both APs.
    shared: int
    #: Used by exactly one AP (the paper's "form of OFDMA").
    exclusive: int
    #: Abandoned by both.
    unused: int
    n_subcarriers: int

    @property
    def shared_fraction(self) -> float:
        return self.shared / self.n_subcarriers

    @property
    def exclusive_fraction(self) -> float:
        return self.exclusive / self.n_subcarriers

    @property
    def unused_fraction(self) -> float:
        return self.unused / self.n_subcarriers


def sharing_of(result: SchemeResult) -> SubcarrierSharing:
    """Subcarrier-usage breakdown of one concurrent scheme result.

    A subcarrier counts as used by an AP when any of its streams carries
    data there.  Raises for sequential schemes or results without recorded
    allocations (sharing is only meaningful for concurrent transmission).
    """
    if not result.concurrent:
        raise ValueError("subcarrier sharing is defined for concurrent schemes only")
    if result.allocations is None:
        raise ValueError("this result does not carry its allocations")
    used = [allocation.used.any(axis=1) for allocation in result.allocations]
    both = int(np.sum(used[0] & used[1]))
    either = int(np.sum(used[0] | used[1]))
    n = used[0].size
    return SubcarrierSharing(
        shared=both,
        exclusive=either - both,
        unused=n - either,
        n_subcarriers=n,
    )


def sharing_across_topologies(
    outcomes: Sequence[StrategyOutcome],
    fair: bool = False,
) -> List[SubcarrierSharing]:
    """Sharing breakdowns for every topology where COPA chose concurrency."""
    results = []
    for outcome in outcomes:
        chosen = outcome.copa_fair if fair else outcome.copa
        if not chosen.concurrent or chosen.allocations is None:
            continue
        results.append(sharing_of(chosen))
    return results


def power_concentration(result: SchemeResult) -> Dict[str, float]:
    """How unevenly each AP spreads its power (Jain index over used cells).

    1.0 means equal power everywhere (CSMA-style); smaller values mean the
    allocator concentrated power on a subset of subcarriers.
    """
    if result.allocations is None:
        raise ValueError("this result does not carry its allocations")
    out: Dict[str, float] = {}
    for index, allocation in enumerate(result.allocations):
        powers = allocation.powers[allocation.used]
        if powers.size == 0:
            out[f"ap{index + 1}"] = 1.0
            continue
        out[f"ap{index + 1}"] = float(
            powers.sum() ** 2 / (powers.size * np.sum(powers**2))
        )
    return out
