"""Parameter sweeps: how COPA's advantage moves with the environment.

The paper evaluates fixed operating points (30 ms coherence, its one
building's interference levels, three antenna configurations).  These
sweeps generalize the evaluation along the axes the paper discusses:

* **coherence time** — COPA's ITS/CSI overhead amortizes over the
  coherence window (Table 1), so its net win over CSMA grows as the
  environment gets more static;
* **interference strength** — §4.4's −10 dB emulation, generalized to a
  curve: where does concurrency stop paying?
* **antenna configuration** — the 1×1 → 3×2 → 4×2 progression of §4.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.options import EngineOptions
from ..obs.collector import Collector, active
from .runner import RetryPolicy
from .config import DEFAULT_CONFIG, SimConfig
from .emulation import scaled_traces
from .experiment import ExperimentResult, ScenarioSpec, generate_channel_sets, run_experiment

__all__ = [
    "SweepPoint",
    "SweepResult",
    "sweep_coherence_time",
    "sweep_interference",
    "sweep_antenna_configurations",
]


@dataclass(frozen=True)
class SweepPoint:
    """One operating point of a sweep."""

    parameter: float
    #: Scheme name → mean aggregate throughput in Mbit/s.
    means_mbps: Dict[str, float]

    def gain_over_csma(self, key: str = "copa") -> float:
        return self.means_mbps[key] / self.means_mbps["csma"] - 1.0


@dataclass
class SweepResult:
    """An ordered collection of sweep points."""

    parameter_name: str
    points: List[SweepPoint]

    def series(self, key: str) -> Tuple[np.ndarray, np.ndarray]:
        """(parameter values, mean Mbps) arrays for one scheme."""
        xs = np.array([p.parameter for p in self.points])
        ys = np.array([p.means_mbps[key] for p in self.points])
        return xs, ys

    def gains(self, key: str = "copa") -> np.ndarray:
        return np.array([p.gain_over_csma(key) for p in self.points])


def _means(result: ExperimentResult) -> Dict[str, float]:
    return result.mean_table_mbps()


def _point_checkpoint(checkpoint_dir: Optional[str], point_index: int) -> Optional[str]:
    """Per-point journal path inside the sweep's checkpoint directory.

    Journals are keyed by config-hash, so a resumed sweep only reuses a
    point's journal when that point's tasks are identical.
    """
    if checkpoint_dir is None:
        return None
    os.makedirs(checkpoint_dir, exist_ok=True)
    return os.path.join(checkpoint_dir, f"point_{point_index:02d}.ckpt")


def _point_shard_dir(shard_dir: Optional[str], point_index: int) -> Optional[str]:
    """Per-point shard directory for service-routed sweeps.

    Each point is its own published experiment (its own manifest,
    config-hash, leases and journals), so N sweep processes sharing the
    parent directory cooperate point by point — and the per-point
    checkpoint machinery is superseded by the service's shard journals.
    """
    if shard_dir is None:
        return None
    return os.path.join(shard_dir, f"point_{point_index:02d}")


def sweep_coherence_time(
    coherence_values_s: Sequence[float] = (0.004, 0.030, 0.120, 1.0),
    spec: ScenarioSpec = ScenarioSpec("4x2", 4, 2, include_copa_plus=False),
    config: SimConfig = DEFAULT_CONFIG,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    options: Optional[EngineOptions] = None,
    collector: Optional[Collector] = None,
    policy: Optional["RetryPolicy"] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    cache=None,
    shard_dir: Optional[str] = None,
) -> SweepResult:
    """COPA vs CSMA as the channel gets more static.

    Channels are held fixed across points (the same traces are replayed),
    so only the MAC-overhead amortization varies — isolating Table 1's
    effect on end-to-end throughput.  The execution/observability keywords
    (``workers``, ``chunk_size``, ``options``, ``collector``) are the same
    surface :func:`repro.sim.experiment.run_experiment` takes and are
    forwarded to every point's experiment.  With ``cache`` the shared
    traces are memoized once and each point's per-topology results are
    cached under their own coherence-specific content addresses.

    ``shard_dir`` routes every point through the sharded experiment
    service (one subdirectory per point; see
    :mod:`repro.sim.service`): workers regenerate the shared traces from
    the manifest instead of receiving them — ``coherence_s`` is
    channel-irrelevant, so every point rebuilds the *same* realization
    (one cached artifact) and results stay bit-identical to the replayed
    path.  ``checkpoint_dir``/``resume`` are superseded by the service's
    per-shard journals and ignored for sharded points.
    """
    # Resolve here so a bad options value fails in the caller's frame.
    options = EngineOptions.resolve(options)
    col = active(collector)
    with col.span("sweep", parameter="coherence_s", points=len(list(coherence_values_s))):
        traces = (
            None
            if shard_dir is not None
            else generate_channel_sets(spec, config, cache=cache, collector=collector)
        )
        points = []
        for point_index, coherence_s in enumerate(coherence_values_s):
            point_shard = _point_shard_dir(shard_dir, point_index)
            with col.span("sweep.point", value=float(coherence_s)):
                result = run_experiment(
                    spec,
                    config.with_(coherence_s=coherence_s),
                    channel_sets=traces,
                    workers=workers,
                    chunk_size=chunk_size,
                    options=options,
                    collector=collector,
                    policy=policy,
                    checkpoint=None
                    if point_shard
                    else _point_checkpoint(checkpoint_dir, point_index),
                    resume=False if point_shard else resume,
                    cache=cache,
                    shard_dir=point_shard,
                )
            points.append(SweepPoint(parameter=coherence_s, means_mbps=_means(result)))
            col.inc("sweep.points")
    return SweepResult(parameter_name="coherence_s", points=points)


def sweep_interference(
    offsets_db: Sequence[float] = (0.0, -5.0, -10.0, -20.0),
    spec: ScenarioSpec = ScenarioSpec("4x2", 4, 2, include_copa_plus=False),
    config: SimConfig = DEFAULT_CONFIG,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    options: Optional[EngineOptions] = None,
    collector: Optional[Collector] = None,
    policy: Optional["RetryPolicy"] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    cache=None,
    shard_dir: Optional[str] = None,
) -> SweepResult:
    """§4.4 generalized: scale the cross links through a range of offsets.

    One base channel realization is drawn (or, with ``cache``, reloaded
    from the channel cache) and every point derives its operating
    conditions from it via :meth:`ChannelSet.scaled_interference` — the
    cheap transform — so the cache holds a single base realization plus
    per-offset result artifacts, never one realization per offset.

    ``shard_dir`` routes every point through the sharded experiment
    service (one subdirectory per point).  Sharded workers cannot receive
    arrays, so each point's manifest carries the offset in its scenario
    spec and workers apply :meth:`ChannelSet.scaled_interference` to the
    regenerated base realization — the *same* transform this function
    applies in-process, so per-topology results (and their cache keys)
    are bit-identical between the two modes.  Requires
    ``spec.interference_offset_db == 0`` (stacking two offsets in one
    dB-domain scale is not bit-equal to applying them in sequence).
    """
    # Resolve here so a bad options value fails in the caller's frame.
    options = EngineOptions.resolve(options)
    if shard_dir is not None and spec.interference_offset_db:
        raise ValueError(
            "sweep_interference(shard_dir=...) needs a base spec with "
            "interference_offset_db == 0; the sweep offsets become the "
            "manifest's per-point offset"
        )
    col = active(collector)
    with col.span("sweep", parameter="interference_offset_db", points=len(list(offsets_db))):
        traces = (
            None
            if shard_dir is not None
            else generate_channel_sets(spec, config, cache=cache, collector=collector)
        )
        points = []
        for point_index, offset in enumerate(offsets_db):
            point_shard = _point_shard_dir(shard_dir, point_index)
            with col.span("sweep.point", value=float(offset)):
                if point_shard is not None:
                    result = run_experiment(
                        ScenarioSpec(
                            spec.name,
                            spec.ap_antennas,
                            spec.client_antennas,
                            interference_offset_db=float(offset),
                            include_copa_plus=spec.include_copa_plus,
                            n_aps=spec.n_aps,
                        ),
                        config,
                        workers=workers,
                        options=options,
                        collector=collector,
                        policy=policy,
                        cache=cache,
                        shard_dir=point_shard,
                    )
                else:
                    emulated = scaled_traces(traces, offset) if offset else list(traces)
                    result = run_experiment(
                        spec,
                        config,
                        channel_sets=emulated,
                        workers=workers,
                        chunk_size=chunk_size,
                        options=options,
                        collector=collector,
                        policy=policy,
                        checkpoint=_point_checkpoint(checkpoint_dir, point_index),
                        resume=resume,
                        cache=cache,
                    )
            points.append(SweepPoint(parameter=offset, means_mbps=_means(result)))
            col.inc("sweep.points")
    return SweepResult(parameter_name="interference_offset_db", points=points)


def sweep_antenna_configurations(
    configurations: Sequence[Tuple[int, int]] = ((1, 1), (2, 2), (3, 2), (4, 2)),
    config: SimConfig = DEFAULT_CONFIG,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    options: Optional[EngineOptions] = None,
    collector: Optional[Collector] = None,
    policy: Optional["RetryPolicy"] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    cache=None,
    shard_dir: Optional[str] = None,
) -> SweepResult:
    """The §4 progression: spatial degrees of freedom vs COPA's win.

    The parameter value encodes the configuration as ``ap + client / 10``
    (e.g. 4.2 for 4×2); use :meth:`SweepResult.series` labels accordingly.
    ``shard_dir`` routes every point through the sharded experiment
    service (one subdirectory per point, superseding per-point
    checkpoints).
    """
    # Resolve here so a bad options value fails in the caller's frame.
    options = EngineOptions.resolve(options)
    col = active(collector)
    with col.span("sweep", parameter="antennas", points=len(list(configurations))):
        points = []
        for point_index, (ap_antennas, client_antennas) in enumerate(configurations):
            spec = ScenarioSpec(
                f"{ap_antennas}x{client_antennas}",
                ap_antennas,
                client_antennas,
                include_copa_plus=False,
            )
            point_shard = _point_shard_dir(shard_dir, point_index)
            with col.span("sweep.point", value=ap_antennas + client_antennas / 10.0):
                result = run_experiment(
                    spec,
                    config,
                    workers=workers,
                    chunk_size=chunk_size,
                    options=options,
                    collector=collector,
                    policy=policy,
                    checkpoint=None
                    if point_shard
                    else _point_checkpoint(checkpoint_dir, point_index),
                    resume=False if point_shard else resume,
                    cache=cache,
                    shard_dir=point_shard,
                )
            points.append(
                SweepPoint(
                    parameter=ap_antennas + client_antennas / 10.0,
                    means_mbps=_means(result),
                )
            )
            col.inc("sweep.points")
    return SweepResult(parameter_name="antennas", points=points)
