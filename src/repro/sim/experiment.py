"""The §4 evaluation loop: run the strategy engine across many topologies.

One :class:`ScenarioSpec` corresponds to one of the paper's evaluation
scenarios (single-antenna, 4×2 constrained, 3×2 overconstrained, 4×2 with
weakened interference); :func:`run_experiment` plays 30 topologies through
the COPA strategy engine (and optionally the mercury/water-filling COPA+
variant) and returns per-topology series ready for CDF plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.options import EngineOptions
from ..core.schemes import SERIES_KEYS, Scheme, SeriesKey
from ..obs.collector import Collector, active
from ..phy.channel import ChannelSet
from .config import DEFAULT_CONFIG, SimConfig
from .faults import FaultPlan
from .metrics import Summary, summarize
from .runner import RetryPolicy, RunnerStats, TopologyRecord, build_tasks, run_tasks

__all__ = [
    "ScenarioSpec",
    "SINGLE_ANTENNA",
    "CONSTRAINED_4X2",
    "OVERCONSTRAINED_3X2",
    "TopologyRecord",
    "ExperimentResult",
    "SERIES_KEYS",
    "SeriesKey",
    "generate_channel_sets",
    "run_experiment",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One evaluation scenario (§4.1's bullet list)."""

    name: str
    ap_antennas: int
    client_antennas: int
    #: Scale applied to the cross links (Fig. 12 uses −10 dB).
    interference_offset_db: float = 0.0
    #: Also run the impractical mercury/water-filling COPA+ variant.
    include_copa_plus: bool = True
    #: Number of interfering AP/client pairs.  2 (the paper's setting)
    #: runs the legacy engine; larger counts route every topology through
    #: the N-cell interference-graph engine (:mod:`repro.core.ncell`).
    n_aps: int = 2


SINGLE_ANTENNA = ScenarioSpec("1x1", ap_antennas=1, client_antennas=1)
CONSTRAINED_4X2 = ScenarioSpec("4x2", ap_antennas=4, client_antennas=2)
OVERCONSTRAINED_3X2 = ScenarioSpec("3x2", ap_antennas=3, client_antennas=2)


@dataclass
class ExperimentResult:
    """Per-topology aggregate throughputs for every scheme of interest."""

    spec: ScenarioSpec
    records: List[TopologyRecord]
    #: Runner telemetry (worker count, per-topology wall-clock, utilization).
    stats: Optional[RunnerStats] = None
    #: Shard-service telemetry (a :class:`repro.sim.service.ServiceStats`)
    #: when the run went through a shard directory; ``None`` otherwise.
    service_stats: Optional[object] = None

    def _aggregate(self, record: TopologyRecord, key: str) -> Optional[float]:
        outcome = record.outcome
        if key == SeriesKey.CSMA:
            return outcome.schemes[Scheme.CSMA].aggregate_bps
        if key == SeriesKey.COPA_SEQ:
            return outcome.schemes[Scheme.COPA_SEQ].aggregate_bps
        if key == SeriesKey.NULL:
            scheme = outcome.schemes.get(Scheme.NULL)
            return None if scheme is None else scheme.aggregate_bps
        if key == SeriesKey.COPA:
            return outcome.copa.aggregate_bps
        if key == SeriesKey.COPA_FAIR:
            return outcome.copa_fair.aggregate_bps
        if key == SeriesKey.COPA_PLUS:
            return None if record.plus_outcome is None else record.plus_outcome.copa.aggregate_bps
        if key == SeriesKey.COPA_PLUS_FAIR:
            return (
                None
                if record.plus_outcome is None
                else record.plus_outcome.copa_fair.aggregate_bps
            )
        raise KeyError(f"unknown series {key!r}; known: {SERIES_KEYS}")

    def series_mbps(self, key: str) -> np.ndarray:
        """Aggregate throughput (Mbit/s) per topology for one scheme."""
        values = [self._aggregate(record, key) for record in self.records]
        if any(v is None for v in values):
            raise KeyError(f"series {key!r} was not measured in this experiment")
        return np.asarray(values, dtype=float) / 1e6

    def summary(self, key: str) -> Summary:
        return summarize(self.series_mbps(key))

    def available_series(self) -> List[str]:
        """Series that were measured, probed cheaply on the first record.

        Scheme availability is uniform across a scenario's topologies (it
        depends only on the antenna configuration and ``include_copa_plus``),
        so probing one record's aggregates suffices — no need to recompute
        every full series just to see which ones exist.
        """
        if not self.records:
            return []
        probe = self.records[0]
        return [key for key in SERIES_KEYS if self._aggregate(probe, key) is not None]

    def mean_table_mbps(self) -> Dict[str, float]:
        """Scheme → mean aggregate Mbit/s (the numbers in the CDF legends)."""
        return {key: float(self.series_mbps(key).mean()) for key in self.available_series()}


def generate_channel_sets(
    spec: ScenarioSpec,
    config: SimConfig = DEFAULT_CONFIG,
    cache=None,
    collector: Optional[Collector] = None,
) -> List[ChannelSet]:
    """Draw the scenario's channel realizations (its "traces").

    Separated from :func:`run_experiment` so trace-driven emulation
    (§4.4 / Fig. 12) can transform recorded channels before replaying.

    ``cache`` (a :class:`repro.cache.ResultCache`) memoizes the whole
    list under a fingerprint of the channel-determining spec/config
    fields — two configs differing only in engine-side parameters (e.g.
    ``coherence_s``) share one realization, bit-identically.
    """
    if cache is not None:
        hit = cache.load_channel_sets(spec, config, collector=collector)
        if hit is not None:
            return hit
    generator = config.topology_generator()
    model = config.channel_model()
    sets = []
    for index in range(config.n_topologies):
        rng = config.rng_for_topology(index)
        topology = generator.sample(rng, spec.ap_antennas, spec.client_antennas, spec.n_aps)
        channels = model.realize(topology, rng)
        if spec.interference_offset_db:
            channels = channels.scaled_interference(spec.interference_offset_db)
        sets.append(channels)
    if cache is not None:
        cache.store_channel_sets(spec, config, sets, collector=collector)
    return sets


def run_experiment(
    spec: ScenarioSpec,
    config: SimConfig = DEFAULT_CONFIG,
    channel_sets: Optional[Sequence[ChannelSet]] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    options: Optional[EngineOptions] = None,
    collector: Optional[Collector] = None,
    policy: Optional[RetryPolicy] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    cache=None,
    shard_dir: Optional[str] = None,
) -> ExperimentResult:
    """Run the full strategy evaluation over a scenario's topologies.

    ``channel_sets`` overrides trace generation (used by the emulation
    path); the CSI-measurement RNG is re-seeded per topology so COPA and
    COPA+ see identical noisy CSI.

    Every experiment entry point (this one, the sweeps, the emulation
    replay) shares the same execution/observability keywords:

    ``workers``
        fans topologies out to a process pool (``None``/1 → serial,
        ``<= 0`` → one per CPU); every topology carries its private seed,
        so parallel results are bit-identical to serial ones.
    ``chunk_size``
        overrides the dispatch chunking policy.
    ``batch_size``
        the batched-engine dispatch unit (see
        :func:`repro.sim.runner.run_tasks`): ``None`` batches
        automatically, ``1`` forces the legacy per-topology path.
    ``options``
        a validated :class:`~repro.core.options.EngineOptions` (e.g.
        ``rate_selector`` for §4.6's multi-decoder evaluation, or
        ``backend`` to pick the array backend), or ``None`` for all
        defaults.  Anything else — including the long-retired
        ``engine_kwargs`` dict — raises :class:`TypeError`.
    ``collector``
        a :class:`repro.obs.Collector` that receives stage spans (scenario
        setup, runner dispatch, one subtree per topology and scheme) and
        allocator/engine metrics.  ``None`` (default) disables
        observability on a no-op fast path.
    ``policy``
        a :class:`~repro.sim.runner.RetryPolicy` enabling per-task
        timeouts and bounded retries with backoff; retried topologies are
        pure seed replays, so results stay bit-identical.
    ``checkpoint`` / ``resume``
        path of a ``repro.ckpt/v1`` journal of completed topologies;
        ``resume=True`` reloads finished indices instead of recomputing
        them (see :mod:`repro.sim.checkpoint`).
    ``fault_plan``
        deterministic fault injection (:mod:`repro.sim.faults`) — the
        chaos suite's hook; leave ``None`` for real runs.
    ``cache``
        a :class:`repro.cache.ResultCache`: channel realizations and
        per-topology results are looked up by content address before
        being recomputed, and stored after harvest.  Cached results are
        bit-identical to cold ones; ``None`` (default) skips every cache
        code path.
    ``shard_dir``
        route the run through the sharded experiment service
        (:mod:`repro.sim.service`): publish the topology shards into this
        directory (idempotently), cooperate with any other worker
        processes draining it, and harvest the combined — bit-identical —
        result.  Requires regenerable channels (``channel_sets`` must be
        ``None``; shards carry the spec/config, not arrays) and is
        mutually exclusive with ``checkpoint``/``resume``/``fault_plan``
        (the service journals per shard and chaos-injects through its own
        hook); ``chunk_size``/``batch_size`` don't apply to the per-task
        fault-tolerant path workers run.
    """
    # Resolve here so a bad options value fails in the caller's frame.
    options = EngineOptions.resolve(options)
    if shard_dir is not None:
        if channel_sets is not None:
            raise ValueError(
                "shard_dir requires regenerable channels; pass channel_sets=None "
                "(use spec.interference_offset_db for emulated scenarios)"
            )
        if checkpoint is not None or resume or fault_plan is not None:
            raise ValueError(
                "shard_dir is mutually exclusive with checkpoint/resume/fault_plan; "
                "the service keeps per-shard journals itself"
            )
        from .service import run_sharded_experiment

        return run_sharded_experiment(
            spec,
            config,
            shard_dir,
            options=options,
            workers=workers,
            cache=cache,
            collector=collector,
            policy=policy,
        )
    col = active(collector)
    with col.span("experiment", scenario=spec.name, n_topologies=config.n_topologies):
        if channel_sets is None:
            with col.span("generate_channel_sets"):
                channel_sets = generate_channel_sets(
                    spec, config, cache=cache, collector=collector
                )
        tasks = build_tasks(
            channel_sets,
            base_seed=config.seed,
            coherence_s=config.coherence_s,
            imperfections=config.imperfections(),
            include_copa_plus=spec.include_copa_plus,
            options=options,
            fault_plan=fault_plan,
        )
        records, stats = run_tasks(
            tasks,
            workers=workers,
            chunk_size=chunk_size,
            batch_size=batch_size,
            collector=collector,
            policy=policy,
            checkpoint=checkpoint,
            resume=resume,
            cache=cache,
        )
    return ExperimentResult(spec=spec, records=records, stats=stats)
