"""The §4 evaluation loop: run the strategy engine across many topologies.

One :class:`ScenarioSpec` corresponds to one of the paper's evaluation
scenarios (single-antenna, 4×2 constrained, 3×2 overconstrained, 4×2 with
weakened interference); :func:`run_experiment` plays 30 topologies through
the COPA strategy engine (and optionally the mercury/water-filling COPA+
variant) and returns per-topology series ready for CDF plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.mercury import mercury_allocate
from ..core.strategy import (
    SCHEME_COPA_SEQ,
    SCHEME_CSMA,
    SCHEME_NULL,
    StrategyEngine,
    StrategyOutcome,
)
from ..phy.channel import ChannelSet
from .config import DEFAULT_CONFIG, SimConfig
from .metrics import Summary, summarize

__all__ = [
    "ScenarioSpec",
    "SINGLE_ANTENNA",
    "CONSTRAINED_4X2",
    "OVERCONSTRAINED_3X2",
    "TopologyRecord",
    "ExperimentResult",
    "generate_channel_sets",
    "run_experiment",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One evaluation scenario (§4.1's bullet list)."""

    name: str
    ap_antennas: int
    client_antennas: int
    #: Scale applied to the cross links (Fig. 12 uses −10 dB).
    interference_offset_db: float = 0.0
    #: Also run the impractical mercury/water-filling COPA+ variant.
    include_copa_plus: bool = True


SINGLE_ANTENNA = ScenarioSpec("1x1", ap_antennas=1, client_antennas=1)
CONSTRAINED_4X2 = ScenarioSpec("4x2", ap_antennas=4, client_antennas=2)
OVERCONSTRAINED_3X2 = ScenarioSpec("3x2", ap_antennas=3, client_antennas=2)


@dataclass
class TopologyRecord:
    """Everything measured in one topology."""

    index: int
    channels: ChannelSet
    outcome: StrategyOutcome
    plus_outcome: Optional[StrategyOutcome] = None


#: Series names accepted by :meth:`ExperimentResult.series`.
SERIES_KEYS = (
    "csma",
    "copa_seq",
    "null",
    "copa",
    "copa_fair",
    "copa_plus",
    "copa_plus_fair",
)


@dataclass
class ExperimentResult:
    """Per-topology aggregate throughputs for every scheme of interest."""

    spec: ScenarioSpec
    records: List[TopologyRecord]

    def _aggregate(self, record: TopologyRecord, key: str) -> Optional[float]:
        outcome = record.outcome
        if key == "csma":
            return outcome.schemes[SCHEME_CSMA].aggregate_bps
        if key == "copa_seq":
            return outcome.schemes[SCHEME_COPA_SEQ].aggregate_bps
        if key == "null":
            scheme = outcome.schemes.get(SCHEME_NULL)
            return None if scheme is None else scheme.aggregate_bps
        if key == "copa":
            return outcome.copa.aggregate_bps
        if key == "copa_fair":
            return outcome.copa_fair.aggregate_bps
        if key == "copa_plus":
            return None if record.plus_outcome is None else record.plus_outcome.copa.aggregate_bps
        if key == "copa_plus_fair":
            return (
                None
                if record.plus_outcome is None
                else record.plus_outcome.copa_fair.aggregate_bps
            )
        raise KeyError(f"unknown series {key!r}; known: {SERIES_KEYS}")

    def series_mbps(self, key: str) -> np.ndarray:
        """Aggregate throughput (Mbit/s) per topology for one scheme."""
        values = [self._aggregate(record, key) for record in self.records]
        if any(v is None for v in values):
            raise KeyError(f"series {key!r} was not measured in this experiment")
        return np.asarray(values, dtype=float) / 1e6

    def summary(self, key: str) -> Summary:
        return summarize(self.series_mbps(key))

    def available_series(self) -> List[str]:
        available = []
        for key in SERIES_KEYS:
            try:
                self.series_mbps(key)
            except KeyError:
                continue
            available.append(key)
        return available

    def mean_table_mbps(self) -> Dict[str, float]:
        """Scheme → mean aggregate Mbit/s (the numbers in the CDF legends)."""
        return {key: float(self.series_mbps(key).mean()) for key in self.available_series()}


def generate_channel_sets(
    spec: ScenarioSpec,
    config: SimConfig = DEFAULT_CONFIG,
) -> List[ChannelSet]:
    """Draw the scenario's channel realizations (its "traces").

    Separated from :func:`run_experiment` so trace-driven emulation
    (§4.4 / Fig. 12) can transform recorded channels before replaying.
    """
    generator = config.topology_generator()
    model = config.channel_model()
    sets = []
    for index in range(config.n_topologies):
        rng = config.rng_for_topology(index)
        topology = generator.sample(rng, spec.ap_antennas, spec.client_antennas)
        channels = model.realize(topology, rng)
        if spec.interference_offset_db:
            channels = channels.scaled_interference(spec.interference_offset_db)
        sets.append(channels)
    return sets


def run_experiment(
    spec: ScenarioSpec,
    config: SimConfig = DEFAULT_CONFIG,
    channel_sets: Optional[Sequence[ChannelSet]] = None,
    engine_kwargs: Optional[dict] = None,
) -> ExperimentResult:
    """Run the full strategy evaluation over a scenario's topologies.

    ``channel_sets`` overrides trace generation (used by the emulation
    path); the CSI-measurement RNG is re-seeded per topology so COPA and
    COPA+ see identical noisy CSI.  ``engine_kwargs`` are forwarded to the
    :class:`StrategyEngine` (e.g. ``rate_selector`` for §4.6's
    multi-decoder evaluation).
    """
    if channel_sets is None:
        channel_sets = generate_channel_sets(spec, config)
    engine_kwargs = dict(engine_kwargs or {})
    imperfections = config.imperfections()
    records: List[TopologyRecord] = []
    for index, channels in enumerate(channel_sets):
        outcome = StrategyEngine(
            channels,
            imperfections=imperfections,
            rng=np.random.default_rng(config.seed + 10_000 + index),
            coherence_s=config.coherence_s,
            **engine_kwargs,
        ).run()
        plus_outcome = None
        if spec.include_copa_plus:
            plus_outcome = StrategyEngine(
                channels,
                imperfections=imperfections,
                rng=np.random.default_rng(config.seed + 10_000 + index),
                coherence_s=config.coherence_s,
                allocator=mercury_allocate,
                **engine_kwargs,
            ).run()
        records.append(
            TopologyRecord(
                index=index, channels=channels, outcome=outcome, plus_outcome=plus_outcome
            )
        )
    return ExperimentResult(spec=spec, records=records)
