"""Experiment harness: scenarios, runners, metrics, trace emulation."""

from .analysis import SubcarrierSharing, power_concentration, sharing_across_topologies, sharing_of
from .checkpoint import CheckpointError, Journal, fingerprint_tasks, validate_journal
from .config import DEFAULT_CONFIG, SimConfig
from .emulation import run_emulated_experiment, scaled_traces, load_trace, save_trace
from .fingerprint import (
    fingerprint_channel_config,
    fingerprint_channels,
    fingerprint_task,
)
from .faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    SimulatedPoolBreak,
)
from .experiment import (
    CONSTRAINED_4X2,
    OVERCONSTRAINED_3X2,
    SINGLE_ANTENNA,
    ExperimentResult,
    ScenarioSpec,
    TopologyRecord,
    generate_channel_sets,
    run_experiment,
)
from .metrics import ComparisonStats, Summary, cdf, compare, summarize
from .network import (
    BerComparison,
    NullingEffect,
    copa_vs_nopa_example,
    measure_nulling_effect,
    per_subcarrier_rx_power_dbm,
)
from .plots import ascii_bars, ascii_cdf, ascii_series
from .reporting import experiment_report, headline_section, scheme_table
from .runner import (
    RetryPolicy,
    RunnerError,
    RunnerEvent,
    RunnerStats,
    TopologyTask,
    auto_chunk_size,
    build_tasks,
    evaluate_topology,
    resolve_workers,
    run_tasks,
)
from .sweep import (
    SweepPoint,
    SweepResult,
    sweep_antenna_configurations,
    sweep_coherence_time,
    sweep_interference,
)

__all__ = [
    "BerComparison",
    "CONSTRAINED_4X2",
    "CheckpointError",
    "ComparisonStats",
    "DEFAULT_CONFIG",
    "ExperimentResult",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "Journal",
    "NullingEffect",
    "RetryPolicy",
    "RunnerError",
    "RunnerEvent",
    "RunnerStats",
    "SimulatedPoolBreak",
    "TopologyTask",
    "fingerprint_channel_config",
    "fingerprint_channels",
    "fingerprint_task",
    "fingerprint_tasks",
    "validate_journal",
    "OVERCONSTRAINED_3X2",
    "SINGLE_ANTENNA",
    "ScenarioSpec",
    "SimConfig",
    "Summary",
    "TopologyRecord",
    "SubcarrierSharing",
    "SweepPoint",
    "SweepResult",
    "ascii_bars",
    "ascii_cdf",
    "ascii_series",
    "auto_chunk_size",
    "build_tasks",
    "cdf",
    "evaluate_topology",
    "resolve_workers",
    "run_tasks",
    "compare",
    "copa_vs_nopa_example",
    "experiment_report",
    "headline_section",
    "power_concentration",
    "scheme_table",
    "sharing_across_topologies",
    "sharing_of",
    "sweep_antenna_configurations",
    "sweep_coherence_time",
    "sweep_interference",
    "generate_channel_sets",
    "load_trace",
    "measure_nulling_effect",
    "per_subcarrier_rx_power_dbm",
    "run_emulated_experiment",
    "run_experiment",
    "save_trace",
    "scaled_traces",
    "summarize",
]
