"""The MAC substrate: ITS coordination, CSI compression, DCF contention."""

from .compression import (
    compress_csi,
    compression_ratio,
    decompress_csi,
    lzw_compress,
    lzw_decompress,
)
from .csi_cache import CsiCache, CsiEntry
from .csma import DcfSimulator, DcfStats, Station, jain_fairness
from .frames import Decision, ItsAck, ItsInit, ItsReq, parse_frame
from .its import ItsPhase, ItsRunStats, ItsSimulator, TimelineEvent
from .timing import MacOverheadModel, MacOverheads, coherence_time_s, table1_rows

__all__ = [
    "CsiCache",
    "CsiEntry",
    "DcfSimulator",
    "DcfStats",
    "Decision",
    "ItsAck",
    "ItsInit",
    "ItsPhase",
    "ItsReq",
    "ItsRunStats",
    "ItsSimulator",
    "MacOverheadModel",
    "MacOverheads",
    "Station",
    "TimelineEvent",
    "coherence_time_s",
    "compress_csi",
    "compression_ratio",
    "decompress_csi",
    "jain_fairness",
    "lzw_compress",
    "lzw_decompress",
    "parse_frame",
    "table1_rows",
]
