"""CSI compression: adaptive delta modulation + Lempel–Ziv (§3.1).

"COPA compresses CSI information and precoding matrices using adaptive
delta modulation across subcarriers' amplitude and phase (separately), and
compressing the result using a lossless variant Lempel-Ziv data
compression algorithm.  This yields a compression ratio of two on average
for the channels in our testbed."

The channel response is smooth across adjacent subcarriers (it is the DFT
of a short impulse response), so per-antenna-pair amplitude (dB) and
unwrapped phase sequences are highly predictable from their neighbours:
delta modulation with an adaptive step turns them into small integers, and
an LZW pass squeezes the redundancy out of the resulting byte stream.

The codec is lossy only in the quantization step (tested to keep the
reconstructed channel within a fraction of a dB); the LZ stage is
lossless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = [
    "lzw_compress",
    "lzw_decompress",
    "adm_encode",
    "adm_decode",
    "compress_csi",
    "decompress_csi",
    "raw_csi_bytes",
    "compression_ratio",
]

# ---------------------------------------------------------------------------
# LZW (a lossless Lempel–Ziv variant) over byte strings.
# ---------------------------------------------------------------------------

_MAX_CODE_BITS = 16


class _BitWriter:
    """Accumulates integers of varying bit widths into a byte stream."""

    def __init__(self):
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def to_bytes(self) -> bytes:
        padded = self._bits + [0] * (-len(self._bits) % 8)
        out = bytearray()
        for i in range(0, len(padded), 8):
            byte = 0
            for bit in padded[i : i + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


class _BitReader:
    """Reads back integers written by :class:`_BitWriter`."""

    def __init__(self, data: bytes):
        self._data = data
        self._position = 0

    def read(self, width: int) -> int:
        value = 0
        for _ in range(width):
            byte_index, bit_index = divmod(self._position, 8)
            if byte_index >= len(self._data):
                raise ValueError("LZW bit stream exhausted")
            bit = (self._data[byte_index] >> (7 - bit_index)) & 1
            value = (value << 1) | bit
            self._position += 1
        return value


def _code_width(dictionary_size: int) -> int:
    """Bits needed for the next code given the current dictionary size."""
    return max(9, min(_MAX_CODE_BITS, dictionary_size.bit_length()))


def lzw_compress(data: bytes) -> bytes:
    """LZW with a growing dictionary and variable-width code packing.

    The first output byte flags the encoding: 1 = LZW codes follow, 0 =
    the input was stored verbatim because compression would have expanded
    it (possible for very short or incompressible inputs).
    """
    if not data:
        return b"\x00"
    dictionary = {bytes([i]): i for i in range(256)}
    next_code = 256
    writer = _BitWriter()
    current = bytes([data[0]])
    for byte in data[1:]:
        candidate = current + bytes([byte])
        if candidate in dictionary:
            current = candidate
        else:
            writer.write(dictionary[current], _code_width(next_code))
            if next_code < (1 << _MAX_CODE_BITS):
                dictionary[candidate] = next_code
                next_code += 1
            current = bytes([byte])
    writer.write(dictionary[current], _code_width(next_code))
    # Store the original length so the decoder knows when to stop.
    compressed = len(data).to_bytes(4, "big") + writer.to_bytes()
    if len(compressed) + 1 >= len(data) + 1:
        return b"\x00" + data
    return b"\x01" + compressed


def lzw_decompress(data: bytes) -> bytes:
    """Inverse of :func:`lzw_compress`."""
    if not data:
        raise ValueError("empty LZW blob")
    flag, payload = data[0], data[1:]
    if flag == 0:
        return payload
    if flag != 1:
        raise ValueError(f"unknown LZW flag byte {flag}")
    original_length = int.from_bytes(payload[:4], "big")
    reader = _BitReader(payload[4:])
    dictionary: List[bytes] = [bytes([i]) for i in range(256)]
    result = bytearray()
    next_code = 256
    previous = bytes([reader.read(_code_width(next_code))])
    result += previous
    while len(result) < original_length:
        code = reader.read(_code_width(next_code + 1 if next_code < (1 << _MAX_CODE_BITS) else next_code))
        if code < len(dictionary):
            entry = dictionary[code]
        elif code == len(dictionary):
            entry = previous + previous[:1]
        else:
            raise ValueError(f"corrupt LZW stream: code {code} out of range")
        result += entry
        if next_code < (1 << _MAX_CODE_BITS):
            dictionary.append(previous + entry[:1])
            next_code += 1
        previous = entry
    return bytes(result)


# ---------------------------------------------------------------------------
# Adaptive delta modulation of one real-valued sequence.
# ---------------------------------------------------------------------------

#: Delta codes are 4-bit two's-complement-ish: values −7 … +7, with ±7
#: triggering a step-size increase and small values a decrease.
_DELTA_LEVELS = 7
_STEP_GROW = 1.5
_STEP_SHRINK = 0.9
_MIN_STEP = 1e-4


@dataclass(frozen=True)
class AdmParameters:
    """Initial conditions of the ADM coder for one sequence."""

    first_value: float
    initial_step: float


def adm_encode(sequence: np.ndarray) -> Tuple[AdmParameters, np.ndarray]:
    """Encode a sequence as 4-bit adaptive deltas.

    Returns the coder parameters (sent verbatim) and one signed 4-bit code
    per remaining sample.  The step size adapts: codes saturating at ±7
    grow it, codes near zero shrink it — tracking both the flat and the
    fast-fading parts of the channel response.
    """
    sequence = np.asarray(sequence, dtype=float).ravel()
    if sequence.size == 0:
        raise ValueError("cannot encode an empty sequence")
    # Seed the step from the typical sample-to-sample change (the mean
    # absolute difference also covers ramps, whose diff has zero variance).
    spread = float(np.mean(np.abs(np.diff(sequence)))) if sequence.size > 1 else 0.0
    # Quantize the header values to the float16 wire format up front so the
    # encoder's internal reconstruction matches the decoder's exactly.
    step = float(np.float16(max(spread / 2.0, _MIN_STEP)))
    first = float(np.float16(sequence[0]))
    params = AdmParameters(first_value=first, initial_step=step)

    codes = np.empty(sequence.size - 1, dtype=np.int8)
    reconstructed = first
    for i, target in enumerate(sequence[1:]):
        delta = target - reconstructed
        code = int(np.clip(round(delta / step), -_DELTA_LEVELS, _DELTA_LEVELS))
        codes[i] = code
        reconstructed += code * step
        if abs(code) == _DELTA_LEVELS:
            step *= _STEP_GROW
        elif abs(code) <= 1:
            step = max(step * _STEP_SHRINK, _MIN_STEP)
    return params, codes


def adm_decode(params: AdmParameters, codes: np.ndarray) -> np.ndarray:
    """Reconstruct the sequence from its ADM codes."""
    codes = np.asarray(codes, dtype=np.int8)
    out = np.empty(codes.size + 1)
    out[0] = params.first_value
    step = params.initial_step
    value = params.first_value
    for i, code in enumerate(codes):
        value += int(code) * step
        out[i + 1] = value
        if abs(int(code)) == _DELTA_LEVELS:
            step *= _STEP_GROW
        elif abs(int(code)) <= 1:
            step = max(step * _STEP_SHRINK, _MIN_STEP)
    return out


def _pack_nibbles(codes: np.ndarray) -> bytes:
    """Pack signed 4-bit codes two per byte (offset-8 representation)."""
    offset = (np.asarray(codes, dtype=np.int16) + 8).astype(np.uint8)
    if offset.size % 2:
        offset = np.concatenate([offset, np.array([8], dtype=np.uint8)])
    return bytes((offset[0::2] << 4) | offset[1::2])


def _unpack_nibbles(data: bytes, count: int) -> np.ndarray:
    raw = np.frombuffer(data, dtype=np.uint8)
    high = (raw >> 4).astype(np.int16) - 8
    low = (raw & 0x0F).astype(np.int16) - 8
    codes = np.empty(raw.size * 2, dtype=np.int16)
    codes[0::2] = high
    codes[1::2] = low
    return codes[:count].astype(np.int8)


# ---------------------------------------------------------------------------
# Whole-CSI codec.
# ---------------------------------------------------------------------------

import struct

_SEQ_HEADER = struct.Struct("!ee")  # first value, initial step (float16)
_CSI_HEADER = struct.Struct("!HBB")  # n_subcarriers, n_rx, n_tx

#: Bytes per complex channel entry in the uncompressed reference format
#: (8-bit amplitude + 8-bit phase), the baseline for the compression ratio.
RAW_BYTES_PER_ENTRY = 2


def raw_csi_bytes(n_subcarriers: int, n_rx: int, n_tx: int) -> int:
    """Size of the uncompressed quantized CSI report."""
    return n_subcarriers * n_rx * n_tx * RAW_BYTES_PER_ENTRY


def compress_csi(channel: np.ndarray) -> bytes:
    """Compress one link's CSI (n_sc, n_rx, n_tx) to a byte blob.

    Layout (before the LZ pass): all per-sequence headers first, then one
    contiguous nibble stream holding every sequence's delta codes — the
    homogeneous stream is what lets the Lempel–Ziv stage find repeats.
    """
    channel = np.asarray(channel, dtype=complex)
    if channel.ndim != 3:
        raise ValueError("channel must have shape (n_sc, n_rx, n_tx)")
    n_sc, n_rx, n_tx = channel.shape
    headers = bytearray()
    all_codes: List[np.ndarray] = []
    for r in range(n_rx):
        for t in range(n_tx):
            entry = channel[:, r, t]
            amplitude_db = 20.0 * np.log10(np.maximum(np.abs(entry), 1e-15))
            phase = np.unwrap(np.angle(entry))
            for sequence in (amplitude_db, phase):
                params, codes = adm_encode(sequence)
                headers += _SEQ_HEADER.pack(params.first_value, params.initial_step)
                all_codes.append(codes)
    body = bytes(headers) + _pack_nibbles(np.concatenate(all_codes))
    return _CSI_HEADER.pack(n_sc, n_rx, n_tx) + lzw_compress(body)


def decompress_csi(blob: bytes) -> np.ndarray:
    """Reconstruct the (quantized) CSI from :func:`compress_csi` output."""
    n_sc, n_rx, n_tx = _CSI_HEADER.unpack_from(blob)
    body = lzw_decompress(blob[_CSI_HEADER.size :])
    n_sequences = n_rx * n_tx * 2
    # Every sequence spans the full band: n_sc - 1 delta codes each.
    n_codes_each = n_sc - 1
    params: List[AdmParameters] = []
    counts: List[int] = [n_codes_each] * n_sequences
    offset = 0
    for _ in range(n_sequences):
        first, step = _SEQ_HEADER.unpack_from(body, offset)
        offset += _SEQ_HEADER.size
        params.append(AdmParameters(first, step))
    codes = _unpack_nibbles(body[offset:], sum(counts))

    channel = np.empty((n_sc, n_rx, n_tx), dtype=complex)
    position = 0
    sequence_index = 0
    for r in range(n_rx):
        for t in range(n_tx):
            decoded = []
            for _ in range(2):
                count = counts[sequence_index]
                decoded.append(
                    adm_decode(params[sequence_index], codes[position : position + count])
                )
                position += count
                sequence_index += 1
            amplitude_db, phase = decoded
            channel[:, r, t] = 10.0 ** (amplitude_db / 20.0) * np.exp(1j * phase)
    return channel


def compression_ratio(channel: np.ndarray) -> float:
    """Raw quantized size over compressed size (paper: ≈2 on average)."""
    channel = np.asarray(channel)
    compressed = len(compress_csi(channel))
    return raw_csi_bytes(*channel.shape) / compressed
