"""Per-sender CSI cache with coherence-time expiry (§3.1, step ①).

A COPA AP overhears frames from nearby clients and APs, measures the
channel from each sender (reciprocity makes the reverse channel equal to
the transpose), and caches the result indexed by sender address.  Entries
are only trustworthy for one coherence time; after that the AP must
re-measure (or probe with an NDP) before using them for nulling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["CsiEntry", "CsiCache"]


@dataclass(frozen=True)
class CsiEntry:
    """One cached measurement: the channel *from* the sender to us."""

    sender: str
    channel: np.ndarray
    measured_at_s: float

    def age_s(self, now_s: float) -> float:
        return now_s - self.measured_at_s


class CsiCache:
    """Keyed by sender address; entries expire after one coherence time."""

    def __init__(self, coherence_s: float = 0.030):
        if coherence_s <= 0:
            raise ValueError("coherence time must be positive")
        self.coherence_s = coherence_s
        self._entries: Dict[str, CsiEntry] = {}

    def update(self, sender: str, channel: np.ndarray, now_s: float) -> None:
        """Record a fresh measurement overheard from ``sender``."""
        self._entries[sender] = CsiEntry(sender=sender, channel=np.asarray(channel), measured_at_s=now_s)

    def get(self, sender: str, now_s: float) -> Optional[CsiEntry]:
        """The cached entry if it is still within its coherence window."""
        entry = self._entries.get(sender)
        if entry is None:
            return None
        if entry.age_s(now_s) > self.coherence_s:
            return None
        return entry

    def reverse_channel(self, sender: str, now_s: float) -> Optional[np.ndarray]:
        """The channel *to* the sender, by reciprocity (transposed antennas)."""
        entry = self.get(sender, now_s)
        if entry is None:
            return None
        return np.swapaxes(entry.channel, -1, -2)

    def is_fresh(self, sender: str, now_s: float) -> bool:
        return self.get(sender, now_s) is not None

    def evict_stale(self, now_s: float) -> int:
        """Drop expired entries; returns how many were removed."""
        stale = [k for k, e in self._entries.items() if e.age_s(now_s) > self.coherence_s]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sender: str) -> bool:
        return sender in self._entries
