"""The ITS exchange state machine (Fig. 5) and its airtime accounting.

Drives the full over-the-air coordination sequence between a Leader and a
Follower AP:

① both APs passively measure CSI from overheard client transmissions
  (the :class:`~repro.mac.csi_cache.CsiCache`),
② the contention winner sends ``ITS INIT``,
③ the Follower replies with ``ITS REQ`` carrying compressed CSI when the
  Leader's cached copy has gone stale,
④ the Leader computes the best joint strategy and answers ``ITS ACK``
  with the decision (and the Follower's precoder when concurrent),
⑤ both APs transmit — concurrently or sequentially.

The simulator charges real airtime for every frame (control frames at the
basic rate, payload bits included), so the measured overhead of a long run
can be checked against the analytic Table-1 model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional

import numpy as np

from .compression import compress_csi
from .csi_cache import CsiCache
from .frames import Decision, ItsAck, ItsInit, ItsReq
from .timing import MacOverheadModel

__all__ = ["ItsPhase", "TimelineEvent", "ItsSimulator", "ItsRunStats"]


class ItsPhase(Enum):
    """Where an ITS exchange currently stands."""

    IDLE = "idle"
    INIT_SENT = "init_sent"
    REQ_SENT = "req_sent"
    ACK_SENT = "ack_sent"
    DATA = "data"


@dataclass(frozen=True)
class TimelineEvent:
    """One airtime-consuming event on the simulated medium."""

    start_s: float
    duration_s: float
    kind: str
    description: str

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass
class ItsRunStats:
    """Aggregate accounting of a simulated run."""

    events: List[TimelineEvent]
    txops: int
    csi_refreshes: int

    def airtime_by_kind(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for event in self.events:
            totals[event.kind] = totals.get(event.kind, 0.0) + event.duration_s
        return totals

    @property
    def overhead_fraction(self) -> float:
        """Fraction of medium time not spent on data payload."""
        totals = self.airtime_by_kind()
        data = totals.get("data", 0.0)
        other = sum(v for k, v in totals.items() if k != "data")
        return other / (other + data) if (other + data) > 0 else 0.0


class ItsSimulator:
    """Plays ITS exchanges between two COPA APs over simulated time.

    ``decide`` is the Leader's strategy oracle: given nothing (this layer
    is agnostic to PHY detail) it returns a :class:`Decision`; by default
    every opportunity is taken concurrently.  ``channel_provider`` returns
    the (possibly new) CSI array for a named link, so real channel data can
    flow through the compressed REQ frames.
    """

    def __init__(
        self,
        leader: str,
        follower: str,
        clients: Dict[str, str],
        timing: Optional[MacOverheadModel] = None,
        coherence_s: float = 0.030,
        decide: Optional[Callable[[], Decision]] = None,
        channel_provider: Optional[Callable[[str, str], np.ndarray]] = None,
    ):
        if leader == follower:
            raise ValueError("leader and follower must differ")
        if set(clients) != {leader, follower}:
            raise ValueError("clients must map exactly the two AP names")
        self.leader = leader
        self.follower = follower
        self.clients = clients
        self.timing = timing if timing is not None else MacOverheadModel()
        self.coherence_s = coherence_s
        self.decide = decide if decide is not None else (lambda: Decision.CONCURRENT)
        self.channel_provider = channel_provider
        self.phase = ItsPhase.IDLE
        self.cache = CsiCache(coherence_s)
        self.events: List[TimelineEvent] = []
        self.now_s = 0.0
        self._csi_refreshes = 0
        self._last_full_exchange_s: Optional[float] = None

    # ------------------------------------------------------------------

    def _emit(self, duration_s: float, kind: str, description: str) -> None:
        self.events.append(TimelineEvent(self.now_s, duration_s, kind, description))
        self.now_s += duration_s

    def _control(self, n_bytes: int, kind: str, description: str, payload_bytes: int = 0) -> None:
        """One control frame: header at the basic rate, bulk payload at the
        payload rate (matching :class:`MacOverheadModel`'s accounting)."""
        airtime = self.timing.control_airtime_s(n_bytes - payload_bytes, payload_bytes * 8)
        self._emit(airtime, kind, description)
        self._emit(self.timing.sifs_s, "gap", "SIFS")

    def _csi_is_stale(self) -> bool:
        if self._last_full_exchange_s is None:
            return True
        return (self.now_s - self._last_full_exchange_s) > self.coherence_s

    def _csi_blob(self) -> bytes:
        """Compressed CSI for the Follower's two client links."""
        if self.channel_provider is None:
            # No PHY attached: use the default payload size from the timing
            # model so the airtime accounting still matches Table 1.
            return bytes(self.timing.csi_bits // 8)
        blobs = []
        for client in self.clients.values():
            channel = self.channel_provider(self.follower, client)
            blobs.append(compress_csi(channel))
        return b"".join(blobs)

    # ------------------------------------------------------------------

    def run_txop(self) -> Decision:
        """One full Fig.-5 sequence: ITS exchange then data; returns the decision."""
        if self.phase != ItsPhase.IDLE:
            raise RuntimeError(f"exchange already in progress ({self.phase})")

        refresh = self._csi_is_stale()
        leader_client = self.clients[self.leader]
        follower_client = self.clients[self.follower]

        init = ItsInit(self.leader, leader_client, airtime_us=int(self.timing.txop_s * 1e6))
        self.phase = ItsPhase.INIT_SENT
        self._control(init.byte_size, "its", "ITS INIT")

        csi = self._csi_blob() if refresh else b""
        req = ItsReq(self.leader, self.follower, leader_client, follower_client, csi)
        if refresh:
            self.cache.update(self.follower, np.frombuffer(csi, dtype=np.uint8), self.now_s)
            self._csi_refreshes += 1
            self._last_full_exchange_s = self.now_s
        self.phase = ItsPhase.REQ_SENT
        self._control(
            req.byte_size, "its", "ITS REQ" + (" + CSI" if refresh else ""),
            payload_bytes=len(csi),
        )

        decision = self.decide()
        precoder = bytes(self.timing.precoder_bits // 8) if (refresh and decision == Decision.CONCURRENT) else b""
        ack = ItsAck(
            self.leader, self.follower, leader_client, follower_client, decision, precoder
        )
        self.phase = ItsPhase.ACK_SENT
        self._control(
            ack.byte_size, "its", f"ITS ACK ({decision.name})",
            payload_bytes=len(precoder),
        )

        self.phase = ItsPhase.DATA
        self._emit(self.timing.data_fixed_overhead_s, "phy", "preamble + block-ACK")
        if decision == Decision.CONCURRENT:
            self._emit(self.timing.txop_s, "data", "concurrent A-MPDUs")
        else:
            self._emit(self.timing.txop_s, "data", f"{self.leader} A-MPDU")
            self._emit(self.timing.data_fixed_overhead_s, "phy", "preamble + block-ACK")
            self._emit(self.timing.txop_s, "data", f"{self.follower} A-MPDU")
        self.phase = ItsPhase.IDLE
        return decision

    def run(self, n_txops: int) -> ItsRunStats:
        """Run many transmit opportunities back-to-back."""
        for _ in range(n_txops):
            self.run_txop()
        return ItsRunStats(
            events=list(self.events), txops=n_txops, csi_refreshes=self._csi_refreshes
        )
