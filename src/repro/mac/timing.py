"""802.11 timing and the analytic MAC-overhead model behind Table 1.

The paper charges every scheme its medium-access overhead on top of the
4 ms transmit opportunity: CSMA pays a CTS-to-self (or RTS/CTS), COPA pays
the ITS INIT/REQ/ACK exchange plus the CSI and precoding-matrix payloads.
CSI only has to be refreshed once per *coherence time*, so COPA's overhead
falls as the environment gets more static — Table 1 tabulates the
percentages for coherence times of 4, 30 and 1000 ms.

Conventions (matching the numbers in the paper's Table 1): contention
overhead (DIFS + backoff) is common to every scheme and excluded;
control frames ride the 24 Mbit/s basic rate behind a legacy preamble;
the data transmission itself pays an HT preamble and a block-ACK.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..phy.constants import (
    BASIC_RATE_BPS,
    CTS_BYTES,
    CW_MIN,
    DIFS_S,
    PLCP_PREAMBLE_HT_S,
    PLCP_PREAMBLE_LEGACY_S,
    RTS_BYTES,
    SIFS_S,
    SLOT_TIME_S,
    TXOP_DURATION_S,
)

__all__ = [
    "coherence_time_s",
    "MacOverheadModel",
    "MacOverheads",
    "table1_rows",
]

#: Default compressed CSI payload carried in an ITS REQ: two client links'
#: worth of per-subcarrier amplitude+phase after ~2× compression (§3.1).
DEFAULT_CSI_BITS = 6400
#: Precoding matrix for the follower, carried in the ITS ACK.
DEFAULT_PRECODER_BITS = 3200
#: ITS control frames: MAC header + identities + airtime field (+ FCS).
ITS_INIT_BYTES = 24
ITS_REQ_HEADER_BYTES = 30
ITS_ACK_HEADER_BYTES = 30
#: Block-ACK for the A-MPDU.
BLOCK_ACK_BYTES = 32


def coherence_time_s(speed_m_per_s: float, wavelength_m: float, m: float = 0.25) -> float:
    """Channel coherence time t_c = m·λ/v (§3.1; m = 0.25 is conservative).

    For λ ≈ 12.3 cm this gives ≈28 ms at walking speed (4 km/h) and
    ≈112 ms at 1 km/h, the figures quoted in the paper.
    """
    if speed_m_per_s <= 0:
        raise ValueError("speed must be positive")
    return m * wavelength_m / speed_m_per_s


@dataclass(frozen=True)
class MacOverheads:
    """Per-scheme throughput-cost fractions in [0, 1)."""

    csma: float
    rts_cts: float
    copa_sequential: float
    copa_concurrent: float


@dataclass(frozen=True)
class MacOverheadModel:
    """Computes the throughput fraction each scheme loses to MAC overhead."""

    txop_s: float = TXOP_DURATION_S
    basic_rate_bps: float = BASIC_RATE_BPS
    #: Bulk payloads (CSI, precoding matrices) ride a mid-range data rate
    #: rather than the basic rate; control headers stay at the basic rate.
    payload_rate_bps: float = 54e6
    sifs_s: float = SIFS_S
    csi_bits: int = DEFAULT_CSI_BITS
    precoder_bits: int = DEFAULT_PRECODER_BITS
    #: DIFS + mean backoff (CWmin/2 slots), the contention cost every
    #: scheme pays per TXOP.  Excluded from Table 1 (it is common to all
    #: schemes) but included in end-to-end throughput accounting.
    contention_s: float = DIFS_S + (CW_MIN / 2.0) * SLOT_TIME_S
    #: A-MPDU framing efficiency: payload / (payload + MAC header + FCS +
    #: MPDU delimiter + padding) for 1500-byte MPDUs.
    mpdu_efficiency: float = 1500.0 / 1540.0

    def control_airtime_s(self, n_bytes: int, extra_bits: int = 0) -> float:
        """Airtime of a control frame: legacy preamble, header at the basic
        rate, bulk payload (``extra_bits``) at the payload rate."""
        header = n_bytes * 8 / self.basic_rate_bps
        payload = extra_bits / self.payload_rate_bps
        return PLCP_PREAMBLE_LEGACY_S + header + payload

    @property
    def data_fixed_overhead_s(self) -> float:
        """Overhead every data transmission pays: HT preamble, SIFS, block-ACK."""
        return PLCP_PREAMBLE_HT_S + self.sifs_s + self.control_airtime_s(BLOCK_ACK_BYTES)

    @property
    def cts_to_self_s(self) -> float:
        return self.control_airtime_s(CTS_BYTES) + self.sifs_s

    @property
    def rts_cts_s(self) -> float:
        return self.control_airtime_s(RTS_BYTES) + self.sifs_s + self.cts_to_self_s

    def its_exchange_s(self, include_csi: bool) -> float:
        """ITS INIT + REQ + ACK with SIFS gaps; CSI/precoder payloads optional.

        The CSI rides in the REQ and the follower's precoding matrix in the
        ACK (Fig. 5); both are only present when the coherence clock says
        the cached values have gone stale.
        """
        init = self.control_airtime_s(ITS_INIT_BYTES)
        req = self.control_airtime_s(ITS_REQ_HEADER_BYTES, self.csi_bits if include_csi else 0)
        ack = self.control_airtime_s(ITS_ACK_HEADER_BYTES, self.precoder_bits if include_csi else 0)
        return init + req + ack + 3 * self.sifs_s

    @staticmethod
    def _fraction(overhead_s: float, useful_s: float) -> float:
        return overhead_s / (overhead_s + useful_s)

    def csma_overhead(self) -> float:
        """CTS-to-self CSMA: constant, coherence-independent."""
        return self._fraction(self.cts_to_self_s + self.data_fixed_overhead_s, self.txop_s)

    def rts_cts_overhead(self) -> float:
        return self._fraction(self.rts_cts_s + self.data_fixed_overhead_s, self.txop_s)

    def copa_overhead(self, coherence_s: float, concurrent: bool) -> float:
        """COPA's overhead at a given coherence time.

        Concurrent rounds run a (short) ITS exchange per TXOP and ship
        CSI + precoder once per coherence time.  Sequential rounds need no
        per-TXOP exchange after the first one of a coherence interval
        ("the other does not send an ITS REQ back for the rest of the
        coherence time", §3.1).
        """
        if coherence_s <= 0:
            raise ValueError("coherence time must be positive")
        txops_per_coherence = max(coherence_s / self.txop_s, 1.0)
        full_exchange = self.its_exchange_s(include_csi=True)
        short_exchange = self.its_exchange_s(include_csi=False)
        if concurrent:
            per_txop = short_exchange + (full_exchange - short_exchange) / txops_per_coherence
        else:
            per_txop = full_exchange / txops_per_coherence
        return self._fraction(per_txop + self.data_fixed_overhead_s, self.txop_s)

    def net_throughput_factor(self, scheme_overhead: float) -> float:
        """Fraction of the PHY goodput that survives all MAC costs.

        Combines the scheme's Table-1 overhead with the contention cost
        and A-MPDU framing efficiency common to every scheme.
        """
        contention_factor = self.txop_s / (self.txop_s + self.contention_s)
        return (1.0 - scheme_overhead) * contention_factor * self.mpdu_efficiency

    def overheads(self, coherence_s: float) -> MacOverheads:
        """All four schemes' overhead fractions at one coherence time."""
        return MacOverheads(
            csma=self.csma_overhead(),
            rts_cts=self.rts_cts_overhead(),
            copa_sequential=self.copa_overhead(coherence_s, concurrent=False),
            copa_concurrent=self.copa_overhead(coherence_s, concurrent=True),
        )


def table1_rows(
    coherence_times_ms: Sequence[float] = (4.0, 30.0, 1000.0),
    model: MacOverheadModel = MacOverheadModel(),
) -> Dict[float, MacOverheads]:
    """Reproduce Table 1: overhead percentages per coherence time."""
    return {tc: model.overheads(tc / 1e3) for tc in coherence_times_ms}
