"""ITS control frames (Fig. 5) and their wire encoding.

COPA coordinates entirely over the air with three control frames:

* ``ITS INIT`` — the contention winner (Leader) announces which client it
  is about to serve and for how long (the airtime field doubles as an
  RTS/CTS-style NAV for non-participating radios).
* ``ITS REQ``  — a Follower asks to join the transmit opportunity and
  attaches the compressed CSI from itself to *both* clients.
* ``ITS ACK``  — the Leader announces the joint decision (concurrent or
  sequential) and, when concurrent, ships the Follower's precoding matrix.

Frames serialize to bytes with ``struct`` so the MAC simulation charges
real airtime for real payload sizes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = [
    "Decision",
    "ItsInit",
    "ItsReq",
    "ItsAck",
    "parse_frame",
    "MAC_ADDRESS_BYTES",
]

MAC_ADDRESS_BYTES = 6
_HEADER = struct.Struct("!BH")  # frame type, payload length
_INIT_BODY = struct.Struct("!6s6sI")  # leader, client, airtime (µs)
_REQ_FIXED = struct.Struct("!6s6s6s6sI")  # leader, follower, c1, c2, csi length
_ACK_FIXED = struct.Struct("!6s6s6s6sBI")  # ids, decision, precoder length

_TYPE_INIT = 1
_TYPE_REQ = 2
_TYPE_ACK = 3


class Decision(Enum):
    """The Leader's verdict in the ITS ACK (§3.1)."""

    SEQUENTIAL = 0
    CONCURRENT = 1


def _addr(value: str) -> bytes:
    """Encode a node name as a fixed-width pseudo-MAC address."""
    raw = value.encode("utf-8")
    if len(raw) > MAC_ADDRESS_BYTES:
        raise ValueError(f"node name {value!r} too long for an address field")
    return raw.ljust(MAC_ADDRESS_BYTES, b"\x00")


def _unaddr(raw: bytes) -> str:
    return raw.rstrip(b"\x00").decode("utf-8")


@dataclass(frozen=True)
class ItsInit:
    """Intention-to-send announcement from the elected Leader."""

    leader: str
    client: str
    airtime_us: int

    def to_bytes(self) -> bytes:
        body = _INIT_BODY.pack(_addr(self.leader), _addr(self.client), self.airtime_us)
        return _HEADER.pack(_TYPE_INIT, len(body)) + body

    @property
    def byte_size(self) -> int:
        return _HEADER.size + _INIT_BODY.size


@dataclass(frozen=True)
class ItsReq:
    """Follower's request to join, carrying compressed CSI to both clients."""

    leader: str
    follower: str
    client1: str
    client2: str
    compressed_csi: bytes = b""

    def to_bytes(self) -> bytes:
        body = _REQ_FIXED.pack(
            _addr(self.leader),
            _addr(self.follower),
            _addr(self.client1),
            _addr(self.client2),
            len(self.compressed_csi),
        )
        body += self.compressed_csi
        return _HEADER.pack(_TYPE_REQ, len(body)) + body

    @property
    def byte_size(self) -> int:
        return _HEADER.size + _REQ_FIXED.size + len(self.compressed_csi)


@dataclass(frozen=True)
class ItsAck:
    """Leader's decision, optionally carrying the Follower's precoder."""

    leader: str
    follower: str
    client1: str
    client2: str
    decision: Decision
    precoder_blob: bytes = b""

    def to_bytes(self) -> bytes:
        body = _ACK_FIXED.pack(
            _addr(self.leader),
            _addr(self.follower),
            _addr(self.client1),
            _addr(self.client2),
            self.decision.value,
            len(self.precoder_blob),
        )
        body += self.precoder_blob
        return _HEADER.pack(_TYPE_ACK, len(body)) + body

    @property
    def byte_size(self) -> int:
        return _HEADER.size + _ACK_FIXED.size + len(self.precoder_blob)


def parse_frame(data: bytes):
    """Decode a frame produced by any of the ``to_bytes`` methods."""
    if len(data) < _HEADER.size:
        raise ValueError("truncated frame header")
    frame_type, length = _HEADER.unpack_from(data)
    body = data[_HEADER.size : _HEADER.size + length]
    if len(body) != length:
        raise ValueError("truncated frame body")
    if frame_type == _TYPE_INIT:
        leader, client, airtime = _INIT_BODY.unpack(body)
        return ItsInit(_unaddr(leader), _unaddr(client), airtime)
    if frame_type == _TYPE_REQ:
        leader, follower, c1, c2, csi_len = _REQ_FIXED.unpack_from(body)
        csi = body[_REQ_FIXED.size : _REQ_FIXED.size + csi_len]
        if len(csi) != csi_len:
            raise ValueError("truncated CSI payload")
        return ItsReq(_unaddr(leader), _unaddr(follower), _unaddr(c1), _unaddr(c2), csi)
    if frame_type == _TYPE_ACK:
        leader, follower, c1, c2, decision, blob_len = _ACK_FIXED.unpack_from(body)
        blob = body[_ACK_FIXED.size : _ACK_FIXED.size + blob_len]
        if len(blob) != blob_len:
            raise ValueError("truncated precoder payload")
        return ItsAck(
            _unaddr(leader),
            _unaddr(follower),
            _unaddr(c1),
            _unaddr(c2),
            Decision(decision),
            blob,
        )
    raise ValueError(f"unknown frame type {frame_type}")
