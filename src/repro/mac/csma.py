"""Slotted DCF contention, including COPA's fairness-deference tweak.

A round-based model of 802.11's distributed coordination function: every
backlogged station draws a backoff from its contention window, the
smallest counter wins the round, ties collide and double the colliders'
windows.  On top of this we model COPA pairs: when one member of a pair
wins, the pair runs an ITS exchange and (in sequential mode) consumes two
consecutive TXOPs — which is unfair to third-party senders, so §3.1
proposes that after a sequential COPA round the pair defers by drawing its
next backoff from ``[aCWmin+1, 2·aCWmin+1]`` instead of ``[0, aCWmin]``.
The paper leaves evaluating this to future work; we implement and
benchmark it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..phy.constants import CW_MAX, CW_MIN

__all__ = ["Station", "DcfStats", "DcfSimulator", "jain_fairness"]


@dataclass
class Station:
    """One contending sender."""

    name: str
    #: Name of the COPA partner AP, or None for a standalone sender.
    copa_partner: Optional[str] = None

    # -- mutable contention state --
    cw: int = CW_MIN
    backoff: int = 0
    #: True when the §3.1 deference window applies to the next draw.
    defer_next: bool = False


def jain_fairness(shares: Sequence[float]) -> float:
    """Jain's fairness index: 1 is perfectly fair, 1/n is maximally unfair."""
    shares = np.asarray(shares, dtype=float)
    if shares.size == 0:
        raise ValueError("need at least one share")
    total = shares.sum()
    if total == 0:
        return 1.0
    return float(total**2 / (shares.size * np.sum(shares**2)))


@dataclass
class DcfStats:
    """Outcome of a contention simulation."""

    txops_won: Dict[str, int]
    collisions: int
    rounds: int

    def share(self, name: str) -> float:
        total = sum(self.txops_won.values())
        return self.txops_won[name] / total if total else 0.0

    @property
    def fairness(self) -> float:
        return jain_fairness(list(self.txops_won.values()))

    @property
    def collision_rate(self) -> float:
        return self.collisions / self.rounds if self.rounds else 0.0


class DcfSimulator:
    """Round-based DCF with optional COPA pairs.

    ``copa_mode`` selects what a winning COPA pair does with the medium:
    ``"sequential"`` — both members transmit back-to-back (two TXOPs);
    ``"concurrent"`` — both transmit at once (each gets a TXOP's worth);
    ``None`` — pairs behave like independent CSMA stations.
    """

    def __init__(
        self,
        stations: Sequence[Station],
        rng: np.random.Generator,
        copa_mode: Optional[str] = "sequential",
        fairness_deference: bool = False,
        cw_min: int = CW_MIN,
        cw_max: int = CW_MAX,
    ):
        if copa_mode not in (None, "sequential", "concurrent"):
            raise ValueError(f"unknown copa_mode {copa_mode!r}")
        names = [s.name for s in stations]
        if len(set(names)) != len(names):
            raise ValueError("station names must be unique")
        by_name = {s.name: s for s in stations}
        for station in stations:
            if station.copa_partner is not None:
                partner = by_name.get(station.copa_partner)
                if partner is None or partner.copa_partner != station.name:
                    raise ValueError(
                        f"COPA pairing of {station.name!r} is not symmetric"
                    )
        self.stations = list(stations)
        self.rng = rng
        self.copa_mode = copa_mode
        self.fairness_deference = fairness_deference
        self.cw_min = cw_min
        self.cw_max = cw_max
        for station in self.stations:
            station.cw = cw_min
            station.backoff = self._draw(station)

    def _draw(self, station: Station) -> int:
        """Draw a backoff; a deferring COPA pair uses the shifted window."""
        if station.defer_next:
            station.defer_next = False
            return int(self.rng.integers(self.cw_min + 1, 2 * self.cw_min + 2))
        return int(self.rng.integers(0, station.cw + 1))

    def _winner(self) -> Tuple[Optional[Station], List[Station]]:
        """Advance one contention round; returns (winner or None, colliders)."""
        minimum = min(s.backoff for s in self.stations)
        lowest = [s for s in self.stations if s.backoff == minimum]
        for station in self.stations:
            station.backoff -= minimum
        if len(lowest) == 1:
            return lowest[0], []
        return None, lowest

    def run(self, n_rounds: int) -> DcfStats:
        """Simulate ``n_rounds`` medium acquisitions."""
        txops = {s.name: 0 for s in self.stations}
        collisions = 0
        for _ in range(n_rounds):
            winner, colliders = self._winner()
            if winner is None:
                collisions += 1
                for station in colliders:
                    station.cw = min(2 * station.cw + 1, self.cw_max)
                    station.backoff = self._draw(station)
                continue

            winner.cw = self.cw_min
            partner = self._partner(winner)
            if partner is not None and self.copa_mode is not None:
                txops[winner.name] += 1
                txops[partner.name] += 1
                if self.copa_mode == "sequential" and self.fairness_deference:
                    # §3.1: after winning two consecutive TXOPs, defer once.
                    winner.defer_next = True
                    partner.defer_next = True
                partner.cw = self.cw_min
                partner.backoff = self._draw(partner)
            else:
                txops[winner.name] += 1
            winner.backoff = self._draw(winner)
        return DcfStats(txops_won=txops, collisions=collisions, rounds=n_rounds)

    def _partner(self, station: Station) -> Optional[Station]:
        if station.copa_partner is None:
            return None
        return next(s for s in self.stations if s.name == station.copa_partner)
