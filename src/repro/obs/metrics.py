"""Process-local metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is a flat, picklable bag of named instruments.
Worker processes each fill their own registry and the parent merges them;
merging is **commutative and associative** by construction so the result
is independent of worker completion order:

* counters add,
* histograms combine their summary statistics (count/total/min/max add,
  min, max respectively),
* gauges resolve conflicts by ``max`` — a deliberate, documented policy.
  A gauge is a point-in-time reading, so any cross-process combination is
  a convention; ``max`` is the only natural commutative choice.  Use
  counters or histograms for values that must aggregate exactly.

The disabled path (:class:`NullMetricsRegistry`) accepts every call and
stores nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Union

__all__ = [
    "HistogramData",
    "MetricsRegistry",
    "NullMetricsRegistry",
]

Number = Union[int, float]


@dataclass
class HistogramData:
    """Summary statistics of one histogram (no raw samples retained)."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "HistogramData") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters, gauges and histograms for one process."""

    enabled = True

    def __init__(self):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramData] = {}

    def inc(self, name: str, value: Number = 1) -> None:
        """Add to a monotonically growing counter."""
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def set_gauge(self, name: str, value: Number) -> None:
        """Record a point-in-time reading (last write wins in-process)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: Number) -> None:
        """Feed one sample into a histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = HistogramData()
        histogram.observe(value)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in; order-independent (see module doc)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, value in other.gauges.items():
            current = self.gauges.get(name)
            self.gauges[name] = value if current is None else max(current, value)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = HistogramData()
            mine.merge(histogram)

    def as_payload(self) -> Dict[str, Mapping[str, object]]:
        """Plain sorted dicts, ready for the JSON exporter."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "histograms": {
                name: {
                    "count": histogram.count,
                    "total": histogram.total,
                    "min": histogram.minimum if histogram.count else None,
                    "max": histogram.maximum if histogram.count else None,
                    "mean": histogram.mean,
                }
                for name, histogram in sorted(self.histograms.items())
            },
        }


class NullMetricsRegistry:
    """Disabled registry: every instrument is a no-op, nothing is stored."""

    enabled = False
    counters: Mapping[str, float] = {}
    gauges: Mapping[str, float] = {}
    histograms: Mapping[str, HistogramData] = {}

    def inc(self, name: str, value: Number = 1) -> None:
        return None

    def set_gauge(self, name: str, value: Number) -> None:
        return None

    def observe(self, name: str, value: Number) -> None:
        return None

    def merge(self, other) -> None:
        return None

    def as_payload(self) -> Dict[str, Mapping[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}
