"""Exporters: schema-stable JSON and CSV renderings of a collector.

The JSON payload is versioned (:data:`SCHEMA_ID`) and deterministic for a
given collector — keys are sorted and spans are emitted in document order
``(start_s, span_id)`` — so exports diff cleanly and CI can pin them.
:func:`validate_payload` checks the documented schema without any external
dependency; it is what the CI observability job runs against the CLI's
``--metrics-out`` artifact.

Schema (``repro.obs/v1``)::

    {
      "schema": "repro.obs/v1",
      "meta":    {<str: scalar>},               # caller-provided context
      "trace":   {"spans": [
          {"id": int, "parent": int|null, "name": str,
           "start_s": float, "duration_s": float, "attrs": {...}}
      ]},
      "metrics": {
          "counters":   {<name>: float},
          "gauges":     {<name>: float},
          "histograms": {<name>: {"count": int, "total": float,
                                   "min": float|null, "max": float|null,
                                   "mean": float}}
      }
    }
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Mapping, Optional, Sequence

from .collector import Collector
from .tracing import SpanRecord

__all__ = [
    "SCHEMA_ID",
    "SchemaError",
    "collector_payload",
    "to_json",
    "write_json",
    "write_metrics_csv",
    "write_spans_csv",
    "validate_payload",
]

SCHEMA_ID = "repro.obs/v1"


class SchemaError(ValueError):
    """A payload does not conform to the documented export schema."""


def _span_payload(record: SpanRecord) -> Dict[str, object]:
    return {
        "id": record.span_id,
        "parent": record.parent_id,
        "name": record.name,
        "start_s": record.start_s,
        "duration_s": record.duration_s,
        "attrs": {key: record.attrs[key] for key in sorted(record.attrs)},
    }


def collector_payload(
    collector: Collector, meta: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """The full ``repro.obs/v1`` payload for one collector."""
    spans = sorted(collector.spans, key=lambda record: (record.start_s, record.span_id))
    return {
        "schema": SCHEMA_ID,
        "meta": {key: (meta or {})[key] for key in sorted(meta or {})},
        "trace": {"spans": [_span_payload(record) for record in spans]},
        "metrics": collector.metrics.as_payload(),
    }


def to_json(
    collector: Collector, meta: Optional[Mapping[str, object]] = None, indent: int = 2
) -> str:
    """Deterministic JSON: same collector in, byte-identical text out."""
    return json.dumps(collector_payload(collector, meta), indent=indent, sort_keys=True)


def write_json(
    collector: Collector, path: str, meta: Optional[Mapping[str, object]] = None
) -> None:
    with open(path, "w") as handle:
        handle.write(to_json(collector, meta))
        handle.write("\n")


def write_metrics_csv(collector: Collector, path: str) -> None:
    """Flat CSV of every instrument: ``kind,name,field,value`` rows."""
    payload = collector.metrics.as_payload()
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["kind", "name", "field", "value"])
        for name, value in payload["counters"].items():
            writer.writerow(["counter", name, "value", value])
        for name, value in payload["gauges"].items():
            writer.writerow(["gauge", name, "value", value])
        for name, stats in payload["histograms"].items():
            for field in ("count", "total", "min", "max", "mean"):
                writer.writerow(["histogram", name, field, stats[field]])


def write_spans_csv(collector: Collector, path: str) -> None:
    """Flat CSV of the trace, document order."""
    spans = sorted(collector.spans, key=lambda record: (record.start_s, record.span_id))
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "parent", "name", "start_s", "duration_s", "attrs"])
        for record in spans:
            attrs = ";".join(f"{key}={record.attrs[key]}" for key in sorted(record.attrs))
            writer.writerow(
                [record.span_id, record.parent_id, record.name, record.start_s, record.duration_s, attrs]
            )


# ---------------------------------------------------------------------------
# Validation (dependency-free; what the CI observability job runs).
# ---------------------------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_span(entry, index: int, seen_ids: set) -> None:
    _require(isinstance(entry, dict), f"span[{index}] must be an object")
    missing = {"id", "parent", "name", "start_s", "duration_s", "attrs"} - set(entry)
    _require(not missing, f"span[{index}] missing fields: {sorted(missing)}")
    _require(isinstance(entry["id"], int), f"span[{index}].id must be an int")
    _require(entry["id"] not in seen_ids, f"span[{index}].id duplicated")
    _require(
        entry["parent"] is None or isinstance(entry["parent"], int),
        f"span[{index}].parent must be an int or null",
    )
    _require(isinstance(entry["name"], str) and entry["name"], f"span[{index}].name must be a non-empty string")
    _require(_is_number(entry["start_s"]) and entry["start_s"] >= 0, f"span[{index}].start_s must be >= 0")
    _require(
        _is_number(entry["duration_s"]) and entry["duration_s"] >= 0,
        f"span[{index}].duration_s must be >= 0",
    )
    _require(isinstance(entry["attrs"], dict), f"span[{index}].attrs must be an object")
    for key, value in entry["attrs"].items():
        _require(isinstance(key, str), f"span[{index}] attr keys must be strings")
        _require(
            isinstance(value, (str, int, float, bool)),
            f"span[{index}].attrs[{key!r}] must be a JSON scalar",
        )


def _validate_histogram(name: str, stats) -> None:
    _require(isinstance(stats, dict), f"histogram {name!r} must be an object")
    missing = {"count", "total", "min", "max", "mean"} - set(stats)
    _require(not missing, f"histogram {name!r} missing fields: {sorted(missing)}")
    _require(isinstance(stats["count"], int) and stats["count"] >= 0, f"histogram {name!r}.count must be >= 0")
    _require(_is_number(stats["total"]), f"histogram {name!r}.total must be a number")
    _require(_is_number(stats["mean"]), f"histogram {name!r}.mean must be a number")
    for bound in ("min", "max"):
        _require(
            stats[bound] is None or _is_number(stats[bound]),
            f"histogram {name!r}.{bound} must be a number or null",
        )
    if stats["count"] == 0:
        _require(stats["min"] is None and stats["max"] is None, f"empty histogram {name!r} must have null bounds")


def validate_payload(payload) -> None:
    """Raise :class:`SchemaError` unless ``payload`` matches ``repro.obs/v1``."""
    _require(isinstance(payload, dict), "payload must be an object")
    _require(payload.get("schema") == SCHEMA_ID, f"schema must be {SCHEMA_ID!r}")
    missing = {"meta", "trace", "metrics"} - set(payload)
    _require(not missing, f"payload missing sections: {sorted(missing)}")

    _require(isinstance(payload["meta"], dict), "meta must be an object")
    trace = payload["trace"]
    _require(isinstance(trace, dict) and isinstance(trace.get("spans"), list), "trace.spans must be a list")
    seen_ids: set = set()
    for index, entry in enumerate(trace["spans"]):
        _validate_span(entry, index, seen_ids)
        seen_ids.add(entry["id"])
    for index, entry in enumerate(trace["spans"]):
        _require(
            entry["parent"] is None or entry["parent"] in seen_ids,
            f"span[{index}].parent references an unknown span",
        )

    metrics = payload["metrics"]
    _require(isinstance(metrics, dict), "metrics must be an object")
    missing = {"counters", "gauges", "histograms"} - set(metrics)
    _require(not missing, f"metrics missing sections: {sorted(missing)}")
    for section in ("counters", "gauges"):
        _require(isinstance(metrics[section], dict), f"metrics.{section} must be an object")
        for name, value in metrics[section].items():
            _require(isinstance(name, str), f"metrics.{section} keys must be strings")
            _require(_is_number(value), f"metrics.{section}[{name!r}] must be a number")
    _require(isinstance(metrics["histograms"], dict), "metrics.histograms must be an object")
    for name, stats in metrics["histograms"].items():
        _validate_histogram(name, stats)
