"""Stage-level tracing: nested spans with monotonic timing.

A :class:`Tracer` records :class:`SpanRecord` entries — named, attributed
intervals measured with :func:`time.perf_counter` and nested via a plain
stack (the strategy engine is single-threaded per process, so no
thread-local machinery is needed).  Spans from worker processes are plain
picklable dataclasses; :func:`graft` re-bases and re-parents them into the
parent process's trace so one experiment yields one tree even when its
topologies ran in a process pool.

The disabled path is a shared :data:`NULL_SPAN` singleton: entering and
exiting it allocates nothing, which is what keeps observability free when
it is off (see ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = [
    "AttrValue",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "graft",
    "format_trace",
]

#: Span attributes are restricted to JSON-scalar types so every trace is
#: exportable without a custom encoder.
AttrValue = Union[str, int, float, bool]


@dataclass
class SpanRecord:
    """One finished span: a named interval inside a trace.

    ``start_s`` is an offset from the owning tracer's origin (a
    ``perf_counter`` timestamp captured at tracer creation), so values are
    monotonic and comparable *within* one tracer but carry no wall-clock
    meaning across processes — :func:`graft` re-bases them on merge.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    duration_s: float
    attrs: Dict[str, AttrValue] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class _ActiveSpan:
    """Context manager for one live span; records itself on exit."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, AttrValue]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def set_attr(self, key: str, value: AttrValue) -> None:
        """Attach an attribute discovered mid-span (e.g. a result count)."""
        self.attrs[key] = value

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        self.parent_id = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self.span_id)
        self._start = time.perf_counter() - tracer._origin
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        end = time.perf_counter() - tracer._origin
        tracer._stack.pop()
        tracer.spans.append(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start_s=self._start,
                duration_s=end - self._start,
                attrs=self.attrs,
            )
        )
        return False


class _NullSpan:
    """The no-op span: one shared instance, nothing allocated per use."""

    __slots__ = ()

    #: Mirrors :attr:`_ActiveSpan.span_id` so callers can nest manufactured
    #: spans under a with-block without checking whether tracing is on.
    span_id = None

    def set_attr(self, key: str, value: AttrValue) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Records spans for one process; finished spans land in :attr:`spans`.

    Spans are appended in *exit* order (children before their parents);
    exporters sort by ``(start_s, span_id)`` to recover document order.
    """

    enabled = True

    def __init__(self):
        self._origin = time.perf_counter()
        self._next_id = 0
        self._stack: List[int] = []
        self.spans: List[SpanRecord] = []

    def now(self) -> float:
        """Monotonic seconds since this tracer's origin."""
        return time.perf_counter() - self._origin

    def span(self, name: str, **attrs: AttrValue) -> _ActiveSpan:
        """A context manager measuring one named stage."""
        return _ActiveSpan(self, name, attrs)

    def record(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        parent_id: Optional[int] = None,
        **attrs: AttrValue,
    ) -> int:
        """Append a manufactured span (used when grafting worker results)."""
        span_id = self._next_id
        self._next_id += 1
        self.spans.append(
            SpanRecord(
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                start_s=start_s,
                duration_s=duration_s,
                attrs=attrs,
            )
        )
        return span_id


class NullTracer:
    """Disabled tracer: shares one no-op span, records nothing."""

    enabled = False
    #: Immutable and empty forever — the disabled path allocates no spans.
    spans: Sequence[SpanRecord] = ()

    def now(self) -> float:
        return 0.0

    def span(self, name: str, **attrs: AttrValue) -> _NullSpan:
        return NULL_SPAN

    def record(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        parent_id: Optional[int] = None,
        **attrs: AttrValue,
    ) -> None:
        return None


def graft(
    tracer: Tracer,
    spans: Iterable[SpanRecord],
    parent_id: Optional[int] = None,
    base_offset_s: float = 0.0,
) -> int:
    """Copy another process's spans into ``tracer`` under ``parent_id``.

    Span ids are remapped into the parent tracer's id space, root spans are
    re-parented under ``parent_id``, and every start offset is shifted by
    ``base_offset_s`` (the parent-side start of the grafted subtree).
    Returns the number of spans added.
    """
    spans = list(spans)
    id_map: Dict[int, int] = {}
    for record in spans:
        id_map[record.span_id] = tracer._next_id
        tracer._next_id += 1
    for record in spans:
        parent = id_map.get(record.parent_id) if record.parent_id is not None else parent_id
        tracer.spans.append(
            SpanRecord(
                span_id=id_map[record.span_id],
                parent_id=parent,
                name=record.name,
                start_s=base_offset_s + record.start_s,
                duration_s=record.duration_s,
                attrs=dict(record.attrs),
            )
        )
    return len(spans)


def _format_attrs(attrs: Dict[str, AttrValue]) -> str:
    if not attrs:
        return ""
    body = ", ".join(f"{key}={value}" for key, value in sorted(attrs.items()))
    return f"  {{{body}}}"


def format_trace(spans: Sequence[SpanRecord], max_depth: Optional[int] = None) -> str:
    """Render a trace as an indented ASCII tree, document order.

    Durations are printed in milliseconds; ``max_depth`` truncates deep
    engine internals for terminal use (``None`` prints everything).
    """
    spans = sorted(spans, key=lambda record: (record.start_s, record.span_id))
    children: Dict[Optional[int], List[SpanRecord]] = {}
    for record in spans:
        children.setdefault(record.parent_id, []).append(record)

    lines: List[str] = []

    def walk(record: SpanRecord, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        lines.append(
            f"{'  ' * depth}{record.name}  {record.duration_s * 1e3:.2f} ms"
            f"{_format_attrs(record.attrs)}"
        )
        for child in children.get(record.span_id, []):
            walk(child, depth + 1)

    known = {record.span_id for record in spans}
    for record in spans:
        if record.parent_id is None or record.parent_id not in known:
            walk(record, 0)
    return "\n".join(lines)
