"""repro.obs — zero-dependency tracing and metrics for the reproduction.

The observability layer behind every perf claim in this repo: nested
:class:`Span` timing via :class:`Tracer`, process-local counters/gauges/
histograms via :class:`MetricsRegistry`, and schema-stable JSON/CSV
exporters.  Disabled by default; pass ``collector=Collector()`` to any
experiment entry point (``run_experiment``, the sweeps,
``run_emulated_experiment``) or use the CLI's ``--trace`` /
``--metrics-out`` flags.

Quick start::

    from repro.obs import Collector, format_trace, to_json
    from repro.sim.experiment import SINGLE_ANTENNA, run_experiment

    collector = Collector()
    result = run_experiment(SINGLE_ANTENNA, collector=collector)
    print(format_trace(collector.spans, max_depth=2))
    print(to_json(collector))
"""

from .collector import NULL_COLLECTOR, Collector, active
from .export import (
    SCHEMA_ID,
    SchemaError,
    collector_payload,
    to_json,
    validate_payload,
    write_json,
    write_metrics_csv,
    write_spans_csv,
)
from .metrics import HistogramData, MetricsRegistry, NullMetricsRegistry
from .tracing import (
    NULL_SPAN,
    NullTracer,
    SpanRecord,
    Tracer,
    format_trace,
    graft,
)

__all__ = [
    "Collector",
    "NULL_COLLECTOR",
    "NULL_SPAN",
    "active",
    "SCHEMA_ID",
    "SchemaError",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "HistogramData",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "collector_payload",
    "format_trace",
    "graft",
    "to_json",
    "validate_payload",
    "write_json",
    "write_metrics_csv",
    "write_spans_csv",
]
