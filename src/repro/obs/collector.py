"""The :class:`Collector`: one handle bundling a tracer and a registry.

Every instrumented entry point in the reproduction takes an optional
``collector`` keyword.  ``None`` (the default) resolves to the shared
:data:`NULL_COLLECTOR`, whose tracer and registry are no-op singletons —
the instrumentation then costs one attribute lookup and an empty context
manager per stage, which is what keeps the disabled overhead under the
5% budget the ISSUE sets.

Collectors are process-local.  Worker processes build their own enabled
collector when a task asks for observation and ship the resulting spans
and registry back with the record; :func:`repro.sim.runner.run_tasks`
grafts them into the parent's collector.
"""

from __future__ import annotations

from typing import Optional, Union

from .metrics import MetricsRegistry, NullMetricsRegistry
from .tracing import NullTracer, Tracer

__all__ = ["Collector", "NULL_COLLECTOR", "active"]

_NULL_TRACER = NullTracer()
_NULL_REGISTRY = NullMetricsRegistry()


class Collector:
    """Tracing + metrics for one observed run.

    ``Collector()`` is enabled; ``Collector(enabled=False)`` behaves like
    no collector at all (and is what :data:`NULL_COLLECTOR` is).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.tracer: Union[Tracer, NullTracer] = Tracer() if enabled else _NULL_TRACER
        self.metrics: Union[MetricsRegistry, NullMetricsRegistry] = (
            MetricsRegistry() if enabled else _NULL_REGISTRY
        )

    # Delegates, so call sites read ``collector.span(...)`` / ``.inc(...)``.
    def span(self, name, **attrs):
        return self.tracer.span(name, **attrs)

    def inc(self, name, value=1):
        self.metrics.inc(name, value)

    def set_gauge(self, name, value):
        self.metrics.set_gauge(name, value)

    def observe(self, name, value):
        self.metrics.observe(name, value)

    @property
    def spans(self):
        return self.tracer.spans


#: Shared disabled collector; resolves every ``collector=None`` default.
NULL_COLLECTOR = Collector(enabled=False)


def active(collector: Optional[Collector]) -> Collector:
    """The collector to instrument against: the given one, or the no-op."""
    return NULL_COLLECTOR if collector is None else collector
