"""Command-line front end: run experiments and print paper-style tables.

Usage::

    python -m repro.cli scenarios                 # list scenarios
    python -m repro.cli run 4x2 [-n 30] [--plus]  # one scenario's CDF table
    python -m repro.cli run 4x2 --interference -10
    python -m repro.cli run 4x2 --trace --metrics-out obs.json
    python -m repro.cli table1                    # the MAC-overhead table
    python -m repro.cli nulling [-n 30]           # Figure 3's statistics
    python -m repro.cli topology [--seed 7]       # inspect one topology

    python -m repro.cli service publish 4x2 --shard-dir DIR -n 30
    python -m repro.cli service worker --shard-dir DIR --cache-dir CACHE
    python -m repro.cli service harvest --shard-dir DIR
    python -m repro.cli service query 4x2 --cache-dir CACHE --repeat 2

All numbers use the frozen calibration in :mod:`repro.sim.config`.
"""

from __future__ import annotations

import argparse
import os
import sys


def _positive_int(value: str) -> int:
    """argparse type: a strictly positive topology count."""
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return parsed


def _nonnegative_int(value: str) -> int:
    """argparse type: a retry budget (0 = fail on the first error)."""
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return parsed


def _positive_float(value: str) -> float:
    """argparse type: a strictly positive timeout in seconds."""
    parsed = float(value)
    if not parsed > 0:
        raise argparse.ArgumentTypeError("must be > 0 seconds")
    return parsed


def _default_workers() -> int:
    """CPU-count-aware default for ``--workers`` (overridable via env)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _engine_options(args) -> EngineOptions:
    """Typed engine options from the environment plus CLI overrides."""
    options = EngineOptions.from_env()
    if getattr(args, "backend", None):
        options = options.replace(backend=args.backend)
    if getattr(args, "cluster_policy", None):
        options = options.replace(cluster_policy=args.cluster_policy)
    if getattr(args, "cluster_threshold", None) is not None:
        options = options.replace(cluster_threshold_db=args.cluster_threshold)
    return options


def _spec_n_aps(args) -> int:
    return getattr(args, "n_aps", None) or 2


def _scenario_name(base_name: str, n_aps: int) -> str:
    """Scenario label with the AP count folded in for N-cell runs."""
    return base_name if n_aps == 2 else f"{base_name}-n{n_aps}"


def _print_runner_stats(result) -> None:
    stats = result.stats
    if stats is None:
        return
    mode = f"{stats.workers} workers" if stats.parallel else "serial"
    line = (
        f"\nevaluated {stats.n_topologies} topologies in {stats.total_wall_s:.1f}s"
        f" ({stats.topologies_per_s:.2f} topologies/s, {mode}"
    )
    if stats.parallel:
        line += f", chunk {stats.chunk_size}, {stats.worker_utilization:.0%} utilization"
    line += ")"
    if stats.fallback_reason:
        line += f"\nserial fallback: {stats.fallback_reason}"
    if stats.retries or stats.timeouts or stats.fallbacks or stats.resumed:
        line += (
            f"\nfault tolerance: {stats.retries} retries, {stats.timeouts} timeouts,"
            f" {stats.fallbacks} pool fallbacks, {stats.resumed} resumed from checkpoint"
        )
    if stats.cache_hits or stats.cache_misses:
        line += f"\ncache: {stats.cache_hits} hits, {stats.cache_misses} misses"
    print(line)


def _make_cache(args):
    """A ResultCache when --cache-dir asked for one (and --no-cache didn't veto).

    ``None`` keeps every experiment entry point on the cache-free fast
    path — no lookups, no key hashing, no filesystem traffic.
    """
    cache_dir = getattr(args, "cache_dir", None)
    if getattr(args, "no_cache", False) or not cache_dir:
        return None
    from .cache import ResultCache

    return ResultCache(cache_dir)


def _print_cache_stats(args, cache) -> None:
    if not getattr(args, "cache_stats", False):
        return
    if cache is None:
        print("cache: disabled")
        return
    stats = cache.stats
    print(
        f"cache: {stats.hits} hits, {stats.misses} misses"
        f" ({stats.hit_rate:.0%} hit rate), {stats.corrupt} corrupt,"
        f" {stats.stores} stores, {stats.bytes_read} B read,"
        f" {stats.bytes_written} B written [{cache.root}]"
    )


def _retry_policy(args):
    """The runner's fault-tolerance policy from the CLI flags."""
    from .sim.runner import RetryPolicy

    return RetryPolicy(max_retries=args.max_retries, task_timeout_s=args.task_timeout)


def _report_runner_failure(error) -> int:
    """One line per failed topology instead of a raw pool traceback."""
    print(f"error: {error}", file=sys.stderr)
    for index in sorted(error.failures):
        print(f"  topology[{index}]: {error.failures[index]}", file=sys.stderr)
    if error.records:
        print(
            f"  {len(error.records)} of {error.total} topologies completed;"
            " rerun with --checkpoint/--resume to keep them",
            file=sys.stderr,
        )
    return 1


def _check_resume_flags(args) -> bool:
    if getattr(args, "resume", False) and not getattr(args, "checkpoint", None):
        print("error: --resume requires --checkpoint PATH", file=sys.stderr)
        return False
    return True

import numpy as np

from .core.backend import available_backends
from .core.clustering import CLUSTER_POLICIES
from .core.options import EngineOptions
from .obs import Collector, format_trace, write_json
from .sim.config import DEFAULT_CONFIG
from .sim.emulation import run_emulated_experiment
from .sim.experiment import ScenarioSpec, generate_channel_sets, run_experiment
from .sim.metrics import compare
from .sim.network import measure_nulling_effect
from .sim.runner import RunnerError


def _make_collector(args) -> "Collector | None":
    """A live collector when --trace/--metrics-out asked for one, else None.

    ``None`` keeps the runner on the no-op fast path — observability costs
    nothing unless explicitly requested.
    """
    if getattr(args, "trace", False) or getattr(args, "metrics_out", None):
        return Collector()
    return None


def _emit_observability(args, collector, meta: dict) -> None:
    if collector is None:
        return
    if getattr(args, "trace", False):
        print("\ntrace:")
        print(format_trace(collector.spans))
    path = getattr(args, "metrics_out", None)
    if path:
        write_json(collector, path, meta=meta)
        print(f"wrote metrics to {path}")

SCENARIOS = {
    "1x1": ScenarioSpec("1x1", 1, 1),
    "4x2": ScenarioSpec("4x2", 4, 2),
    "3x2": ScenarioSpec("3x2", 3, 2),
}


def _print_series_table(result) -> None:
    """The per-scheme summary table (shared by run/harvest so their
    outputs are directly diffable)."""
    print(f"{'scheme':<16}{'mean Mbps':>11}{'median':>9}{'min':>8}{'max':>8}")
    for key in result.available_series():
        s = result.summary(key)
        print(f"{key:<16}{s.mean:>11.1f}{s.median:>9.1f}{s.minimum:>8.1f}{s.maximum:>8.1f}")


def _run_for_args(args, spec, config, collector, cache):
    """Dispatch run/report to the sharded, emulated or direct path."""
    if getattr(args, "shard_dir", None):
        if args.checkpoint or args.resume:
            print(
                "error: --shard-dir supersedes --checkpoint/--resume "
                "(the service journals per shard)",
                file=sys.stderr,
            )
            return None
        # The manifest carries the offset; workers regenerate-and-scale,
        # which is bit-identical to the in-process emulation transform.
        return run_experiment(
            ScenarioSpec(
                spec.name,
                spec.ap_antennas,
                spec.client_antennas,
                interference_offset_db=args.interference,
                include_copa_plus=spec.include_copa_plus,
                n_aps=spec.n_aps,
            ),
            config,
            workers=args.workers,
            options=_engine_options(args),
            collector=collector,
            policy=_retry_policy(args),
            cache=cache,
            shard_dir=args.shard_dir,
        )
    if args.interference:
        return run_emulated_experiment(
            spec,
            args.interference,
            config,
            workers=args.workers,
            chunk_size=args.chunk_size,
            batch_size=args.batch_size,
            options=_engine_options(args),
            collector=collector,
            policy=_retry_policy(args),
            checkpoint=args.checkpoint,
            resume=args.resume,
            cache=cache,
        )
    return run_experiment(
        spec,
        config,
        workers=args.workers,
        chunk_size=args.chunk_size,
        batch_size=args.batch_size,
        options=_engine_options(args),
        collector=collector,
        policy=_retry_policy(args),
        checkpoint=args.checkpoint,
        resume=args.resume,
        cache=cache,
    )


def _cmd_scenarios(_args) -> int:
    print("scenario   APs x clients   description")
    print("1x1        1 ant / 1 ant   single-antenna pairs (§4.2, Fig. 10)")
    print("4x2        4 ant / 2 ant   constrained nulling (§4.3, Fig. 11)")
    print("3x2        3 ant / 2 ant   overconstrained + SDA (§4.5, Fig. 13)")
    print("add --interference -10 to any for the §4.4 emulation (Fig. 12)")
    print("add --n-aps N [--cluster-policy fixed|threshold|greedy] for N-cell runs")
    return 0


def _cmd_run(args) -> int:
    spec = SCENARIOS[args.scenario]
    n_aps = _spec_n_aps(args)
    spec = ScenarioSpec(
        _scenario_name(spec.name, n_aps),
        spec.ap_antennas,
        spec.client_antennas,
        include_copa_plus=args.plus,
        n_aps=n_aps,
    )
    config = DEFAULT_CONFIG.with_(n_topologies=args.topologies)
    if not _check_resume_flags(args):
        return 2
    collector = _make_collector(args)
    cache = _make_cache(args)
    try:
        result = _run_for_args(args, spec, config, collector, cache)
    except RunnerError as error:
        return _report_runner_failure(error)
    if result is None:
        return 2

    print(f"scenario {result.spec.name}: {args.topologies} topologies")
    _print_series_table(result)

    if "null" in result.available_series():
        stats = compare(result.series_mbps("null"), result.series_mbps("csma"))
        print(f"\nnulling beats CSMA in {stats.win_fraction:.0%} of topologies")
        rescue = compare(result.series_mbps("copa"), result.series_mbps("null"))
        print(f"COPA improves on nulling by {rescue.mean_improvement:.0%} mean")
    _print_runner_stats(result)
    _print_cache_stats(args, cache)
    _emit_observability(
        args,
        collector,
        meta={"command": "run", "scenario": args.scenario, "topologies": args.topologies},
    )
    return 0


def _cmd_table1(_args) -> int:
    from .mac.timing import table1_rows

    print(f"{'coherence':>10} {'COPA conc':>10} {'COPA seq':>10} {'CSMA CTS':>10} {'RTS/CTS':>10}")
    for tc, row in table1_rows().items():
        print(
            f"{tc:>9g}ms {row.copa_concurrent:>10.1%} {row.copa_sequential:>10.1%}"
            f" {row.csma:>10.1%} {row.rts_cts:>10.1%}"
        )
    return 0


def _cmd_nulling(args) -> int:
    config = DEFAULT_CONFIG.with_(n_topologies=args.topologies)
    sets = generate_channel_sets(SCENARIOS["4x2"], config)
    imperfections = config.imperfections()
    inr, snr, sinr = [], [], []
    for index, channels in enumerate(sets):
        for client in (0, 1):
            effect = measure_nulling_effect(
                channels, imperfections, np.random.default_rng(5000 + index), client
            )
            inr.append(effect.inr_reduction_db)
            snr.append(effect.snr_reduction_db)
            sinr.append(effect.sinr_increase_db)
    print(f"measurements: {len(inr)} ({args.topologies} topologies x 2 clients)")
    print(f"INR reduction:  {np.mean(inr):6.1f} dB mean ({np.std(inr):.1f} std)   paper: ~27")
    print(f"SNR reduction:  {np.mean(snr):6.1f} dB mean ({np.std(snr):.1f} std)   paper: ~8")
    print(f"SINR increase:  {np.mean(sinr):6.1f} dB mean ({np.std(sinr):.1f} std)   paper: ~18")
    return 0


def _cmd_report(args) -> int:
    from .sim.reporting import experiment_report

    spec = SCENARIOS[args.scenario]
    n_aps = _spec_n_aps(args)
    spec = ScenarioSpec(
        _scenario_name(spec.name, n_aps),
        spec.ap_antennas,
        spec.client_antennas,
        include_copa_plus=args.plus,
        n_aps=n_aps,
    )
    config = DEFAULT_CONFIG.with_(n_topologies=args.topologies)
    if not _check_resume_flags(args):
        return 2
    collector = _make_collector(args)
    cache = _make_cache(args)
    try:
        result = _run_for_args(args, spec, config, collector, cache)
    except RunnerError as error:
        return _report_runner_failure(error)
    if result is None:
        return 2
    text = experiment_report(result)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    _print_cache_stats(args, cache)
    _emit_observability(
        args,
        collector,
        meta={"command": "report", "scenario": args.scenario, "topologies": args.topologies},
    )
    return 0


def _service_spec_config(args):
    """(spec, config) for one service command's scenario arguments."""
    spec = SCENARIOS[args.scenario]
    n_aps = _spec_n_aps(args)
    spec = ScenarioSpec(
        _scenario_name(spec.name, n_aps),
        spec.ap_antennas,
        spec.client_antennas,
        interference_offset_db=getattr(args, "interference", 0.0),
        include_copa_plus=args.plus,
        n_aps=n_aps,
    )
    return spec, DEFAULT_CONFIG.with_(n_topologies=args.topologies)


def _print_service_stats(stats) -> None:
    print(
        f"worker {stats.worker_id}: claimed {stats.shards_claimed}"
        f"/{stats.shards_total} shards ({stats.shards_stolen} stolen,"
        f" {stats.shards_reclaimed} reclaimed), completed"
        f" {stats.tasks_completed} topologies ({stats.tasks_resumed} resumed,"
        f" {stats.tasks_from_cache} from cache) in {stats.wall_s:.1f}s"
    )


def _cmd_service_publish(args) -> int:
    from .sim.service import ServiceError, publish_shards

    spec, config = _service_spec_config(args)
    cache = _make_cache(args)
    try:
        manifest = publish_shards(
            args.shard_dir,
            spec,
            config,
            options=_engine_options(args),
            shard_size=args.shard_size,
            n_shards=args.shards,
            cache=cache,
        )
    except (OSError, ValueError, ServiceError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        f"published {len(manifest.shards)} shards of {manifest.n_tasks} "
        f"topologies (scenario {manifest.spec.name}) in {args.shard_dir}"
    )
    print(f"config {manifest.config_hash[:12]}…")
    return 0


def _cmd_service_worker(args) -> int:
    from .sim.service import ServiceError, run_worker

    collector = _make_collector(args)
    cache = _make_cache(args)
    try:
        stats = run_worker(
            args.shard_dir,
            cache=cache,
            worker_id=args.worker_id,
            policy=_retry_policy(args),
            collector=collector,
            lease_ttl_s=args.lease_ttl,
            timeout_s=args.timeout,
        )
    except RunnerError as error:
        return _report_runner_failure(error)
    except (OSError, ServiceError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    _print_service_stats(stats)
    _print_cache_stats(args, cache)
    _emit_observability(
        args,
        collector,
        meta={"command": "service worker", "shard_dir": args.shard_dir, **stats.as_dict()},
    )
    return 0


def _cmd_service_harvest(args) -> int:
    from .sim.service import ServiceError, harvest

    collector = _make_collector(args)
    cache = _make_cache(args)
    try:
        result = harvest(
            args.shard_dir, cache=cache, collector=collector, timeout_s=args.timeout
        )
    except (OSError, ServiceError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"scenario {result.spec.name}: {len(result.records)} topologies")
    _print_series_table(result)
    _print_runner_stats(result)
    _print_cache_stats(args, cache)
    _emit_observability(
        args,
        collector,
        meta={
            "command": "service harvest",
            "shard_dir": args.shard_dir,
            "scenario": result.spec.name,
            "topologies": len(result.records),
        },
    )
    return 0


def _cmd_service_query(args) -> int:
    from .sim.service import AllocationService

    cache = _make_cache(args)
    if cache is None:
        print("error: service query requires --cache-dir PATH", file=sys.stderr)
        return 2
    spec, config = _service_spec_config(args)
    collector = _make_collector(args)
    service = AllocationService(
        cache,
        grid_db=args.grid_db,
        config=config,
        options=_engine_options(args),
        include_copa_plus=args.plus,
        collector=collector,
    )
    channel_sets = generate_channel_sets(spec, config, cache=cache, collector=collector)
    if args.topology is not None:
        if not 0 <= args.topology < len(channel_sets):
            print(
                f"error: --topology must be in [0, {len(channel_sets)})", file=sys.stderr
            )
            return 2
        channel_sets = channel_sets[args.topology : args.topology + 1]
    for repeat in range(args.repeat):
        for index, channels in enumerate(channel_sets):
            answer = service.query(channels)
            if repeat == 0:
                served = "hit" if answer.hit else "miss"
                print(
                    f"topology[{index}]: copa {answer.copa_mbps:8.1f} Mbps"
                    f"  ({served}, {answer.elapsed_s * 1e3:.1f} ms,"
                    f" key {answer.key[:12]}…)"
                )
    stats = service.stats
    print(
        f"service queries: {stats.queries}, hits: {stats.hits},"
        f" misses: {stats.misses}, hit rate: {stats.hit_rate:.1%}"
        f" (grid {args.grid_db:g} dB)"
    )
    _print_cache_stats(args, cache)
    _emit_observability(
        args,
        collector,
        meta={"command": "service query", "scenario": args.scenario, **stats.as_dict()},
    )
    return 0


def _cmd_topology(args) -> int:
    config = DEFAULT_CONFIG
    rng = np.random.default_rng(args.seed)
    topology = config.topology_generator().sample(rng, 4, 2)
    print("node  position (m)        antennas")
    for node in topology.aps + topology.clients:
        print(
            f"{node.name:<5} ({node.position_m[0]:5.1f}, {node.position_m[1]:5.1f})"
            f"      {node.n_antennas}"
        )
    print("\nlink gains (dB):")
    for (a, b), gain in sorted(topology.link_gain_db.items()):
        print(f"  {a:<4} <-> {b:<4} {gain:7.1f}")
    for i, (signal, interference) in enumerate(topology.signal_and_interference_dbm()):
        print(f"C{i + 1}: signal {signal:.1f} dBm, interference {interference:.1f} dBm")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list the evaluation scenarios").set_defaults(
        func=_cmd_scenarios
    )

    def add_runner_args(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "-w",
            "--workers",
            type=int,
            default=_default_workers(),
            help="worker processes for per-topology fan-out; 1 = serial, "
            "<= 0 = one per CPU (default: all CPUs, or $REPRO_WORKERS)",
        )
        command.add_argument(
            "--chunk-size",
            type=_positive_int,
            default=None,
            help="topologies per worker dispatch (default: auto)",
        )
        command.add_argument(
            "--batch-size",
            type=_positive_int,
            default=None,
            help="topologies per batched-engine dispatch; 1 = legacy "
            "per-topology evaluation (default: auto, bit-identical)",
        )
        command.add_argument(
            "--backend",
            choices=available_backends(),
            default=None,
            help="array backend for the batched engine "
            "(default: $REPRO_BACKEND, else numpy)",
        )
        command.add_argument(
            "--trace",
            action="store_true",
            help="collect spans and print the run's timing tree",
        )
        command.add_argument(
            "--metrics-out",
            metavar="PATH",
            default=None,
            help="write the trace + metrics as repro.obs/v1 JSON to PATH",
        )
        command.add_argument(
            "--max-retries",
            type=_nonnegative_int,
            default=2,
            help="re-attempts per topology before the run fails (default: 2)",
        )
        command.add_argument(
            "--task-timeout",
            type=_positive_float,
            metavar="SECONDS",
            default=None,
            help="per-topology result-wait timeout on the pool path "
            "(default: none)",
        )
        command.add_argument(
            "--checkpoint",
            metavar="PATH",
            default=None,
            help="journal completed topologies to PATH (repro.ckpt/v1)",
        )
        command.add_argument(
            "--resume",
            action="store_true",
            help="reload completed topologies from --checkpoint instead of "
            "recomputing them (bit-identical)",
        )
        command.add_argument(
            "--cache-dir",
            metavar="PATH",
            default=os.environ.get("REPRO_CACHE_DIR"),
            help="content-addressed result cache root (repro.cache/v1); "
            "warm runs reload channel realizations and per-topology "
            "results bit-identically (default: $REPRO_CACHE_DIR)",
        )
        command.add_argument(
            "--no-cache",
            action="store_true",
            help="ignore --cache-dir / $REPRO_CACHE_DIR and recompute everything",
        )
        command.add_argument(
            "--cache-stats",
            action="store_true",
            help="print cache hit/miss/corrupt counts and byte totals after the run",
        )
        command.add_argument(
            "--shard-dir",
            metavar="DIR",
            default=None,
            help="run through the sharded experiment service: publish the "
            "run's shards into DIR (idempotent), cooperate with any other "
            "workers on it, and harvest the combined bit-identical result",
        )

    def add_ncell_args(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--n-aps",
            type=_positive_int,
            default=2,
            help="interfering AP/client pairs per topology; > 2 runs the "
            "N-cell interference-graph engine (default: 2, the paper's setting)",
        )
        command.add_argument(
            "--cluster-policy",
            choices=CLUSTER_POLICIES,
            default=None,
            help="cluster-formation policy for N-cell runs: coordinate "
            "within clusters, CSMA across them (default: fixed = one "
            "cluster of all APs)",
        )
        command.add_argument(
            "--cluster-threshold",
            type=float,
            metavar="DB",
            default=None,
            help="cross-gain threshold in dB for the threshold/greedy "
            "policies (default: -80)",
        )

    run = sub.add_parser("run", help="run one scenario and print its CDF table")
    run.add_argument("scenario", choices=sorted(SCENARIOS))
    run.add_argument("-n", "--topologies", type=_positive_int, default=30)
    run.add_argument("--plus", action="store_true", help="include COPA+ (slow)")
    run.add_argument(
        "--interference",
        type=float,
        default=0.0,
        help="scale cross links by this many dB (e.g. -10 for Fig. 12)",
    )
    add_runner_args(run)
    add_ncell_args(run)
    run.set_defaults(func=_cmd_run)

    sub.add_parser("table1", help="print the reproduced Table 1").set_defaults(
        func=_cmd_table1
    )

    nulling = sub.add_parser("nulling", help="Figure 3's nulling statistics")
    nulling.add_argument("-n", "--topologies", type=_positive_int, default=30)
    nulling.set_defaults(func=_cmd_nulling)

    topo = sub.add_parser("topology", help="inspect one generated topology")
    topo.add_argument("--seed", type=int, default=7)
    topo.set_defaults(func=_cmd_topology)

    report = sub.add_parser(
        "report", help="write a markdown evaluation report for one scenario"
    )
    report.add_argument("scenario", choices=sorted(SCENARIOS))
    report.add_argument("-n", "--topologies", type=_positive_int, default=30)
    report.add_argument("--plus", action="store_true", help="include COPA+ (slow)")
    report.add_argument("--interference", type=float, default=0.0)
    report.add_argument("-o", "--output", default=None, help="file path (default: stdout)")
    add_runner_args(report)
    add_ncell_args(report)
    report.set_defaults(func=_cmd_report)

    service = sub.add_parser(
        "service",
        help="sharded multi-process experiment service + allocation queries",
    )
    ssub = service.add_subparsers(dest="service_command", required=True)

    def add_cache_args(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--cache-dir",
            metavar="PATH",
            default=os.environ.get("REPRO_CACHE_DIR"),
            help="shared repro.cache/v1 root (default: $REPRO_CACHE_DIR)",
        )
        command.add_argument("--no-cache", action="store_true", help="run cache-free")
        command.add_argument(
            "--cache-stats", action="store_true", help="print cache counters at exit"
        )

    def add_obs_args(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--trace", action="store_true", help="collect spans and print the timing tree"
        )
        command.add_argument(
            "--metrics-out",
            metavar="PATH",
            default=None,
            help="write the trace + metrics as repro.obs/v1 JSON to PATH",
        )

    publish = ssub.add_parser(
        "publish", help="publish one experiment's claimable shards into a directory"
    )
    publish.add_argument("scenario", choices=sorted(SCENARIOS))
    publish.add_argument("--shard-dir", metavar="DIR", required=True)
    publish.add_argument("-n", "--topologies", type=_positive_int, default=30)
    publish.add_argument("--plus", action="store_true", help="include COPA+ (slow)")
    publish.add_argument(
        "--interference",
        type=float,
        default=0.0,
        help="scale cross links by this many dB (carried in the manifest)",
    )
    shard_count = publish.add_mutually_exclusive_group()
    shard_count.add_argument(
        "--shards", type=_positive_int, default=None, help="shard count (default: ≤ 8)"
    )
    shard_count.add_argument(
        "--shard-size", type=_positive_int, default=None, help="topologies per shard"
    )
    publish.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="array backend recorded in the manifest (default: $REPRO_BACKEND)",
    )
    add_cache_args(publish)
    add_ncell_args(publish)
    publish.set_defaults(func=_cmd_service_publish)

    worker = ssub.add_parser(
        "worker", help="claim and drain shards until the experiment completes"
    )
    worker.add_argument("--shard-dir", metavar="DIR", required=True)
    worker.add_argument("--worker-id", default=None, help="lease identity (default: auto)")
    worker.add_argument(
        "--lease-ttl",
        type=_positive_float,
        metavar="SECONDS",
        default=30.0,
        help="heartbeat age after which a peer's lease is reclaimable (default: 30)",
    )
    worker.add_argument(
        "--timeout",
        type=_positive_float,
        metavar="SECONDS",
        default=None,
        help="give up if the experiment is not complete in time (default: wait)",
    )
    worker.add_argument(
        "--max-retries",
        type=_nonnegative_int,
        default=2,
        help="re-attempts per topology before the shard fails (default: 2)",
    )
    worker.add_argument(
        "--task-timeout",
        type=_positive_float,
        metavar="SECONDS",
        default=None,
        help="per-topology result-wait timeout on the pool path (default: none)",
    )
    add_cache_args(worker)
    add_obs_args(worker)
    worker.set_defaults(func=_cmd_service_worker)

    harvest = ssub.add_parser(
        "harvest", help="assemble and print the combined result of a shard directory"
    )
    harvest.add_argument("--shard-dir", metavar="DIR", required=True)
    harvest.add_argument(
        "--timeout",
        type=_positive_float,
        metavar="SECONDS",
        default=None,
        help="poll until every shard is done (default: fail if incomplete)",
    )
    add_cache_args(harvest)
    add_obs_args(harvest)
    harvest.set_defaults(func=_cmd_service_harvest)

    query = ssub.add_parser(
        "query", help="answer strategy queries from the warm cache (compute on miss)"
    )
    query.add_argument("scenario", choices=sorted(SCENARIOS))
    query.add_argument("-n", "--topologies", type=_positive_int, default=8)
    query.add_argument("--plus", action="store_true", help="include COPA+ (slow)")
    query.add_argument(
        "--interference", type=float, default=0.0, help="cross-link offset in dB"
    )
    query.add_argument(
        "--grid-db",
        type=_positive_float,
        default=0.25,
        help="quantization grid for the lookup key (default: 0.25 dB)",
    )
    query.add_argument(
        "--topology", type=int, default=None, help="query one topology index only"
    )
    query.add_argument(
        "--repeat",
        type=_positive_int,
        default=1,
        help="query each topology this many times (repeats hit the warm cache)",
    )
    query.add_argument(
        "--backend", choices=available_backends(), default=None, help="array backend"
    )
    add_cache_args(query)
    add_obs_args(query)
    query.set_defaults(func=_cmd_service_query)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
