"""Small numeric helpers shared across the library.

Power-unit conventions used throughout ``repro``:

* Linear powers are in **milliwatts** (mW) unless a name says otherwise.
* Logarithmic absolute powers are in **dBm**; logarithmic ratios are in dB.
* Complex channel gains ``h`` are amplitude gains, so received power for
  transmit power ``p`` is ``p * abs(h) ** 2``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_mw",
    "mw_to_dbm",
    "q_function",
    "hermitian",
    "is_unitary_columns",
    "masked_row_apply",
    "masked_row_means",
]

#: Smallest linear power we represent, to keep logs finite (-400 dB).
_POWER_FLOOR = 1e-40


def db_to_linear(db):
    """Convert a ratio in dB to a linear ratio."""
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0)


def linear_to_db(linear):
    """Convert a linear ratio to dB; values <= 0 are floored, not errors."""
    return 10.0 * np.log10(np.maximum(np.asarray(linear, dtype=float), _POWER_FLOOR))


def dbm_to_mw(dbm):
    """Convert absolute power in dBm to milliwatts."""
    return db_to_linear(dbm)


def mw_to_dbm(mw):
    """Convert absolute power in milliwatts to dBm."""
    return linear_to_db(mw)


def q_function(x):
    """Gaussian tail probability Q(x) = P(N(0,1) > x)."""
    from scipy.special import erfc

    return 0.5 * erfc(np.asarray(x, dtype=float) / np.sqrt(2.0))


def hermitian(matrix: np.ndarray) -> np.ndarray:
    """Conjugate transpose, acting on the last two axes."""
    return np.conj(np.swapaxes(matrix, -1, -2))


def masked_row_apply(values, mask, reduce, fill: float = 0.0) -> np.ndarray:
    """Bit-exact per-row masked reductions, without a Python loop per row.

    For each row ``b`` this computes
    ``reduce(values[b][mask[b]][None, :])`` — a reduction over the row's
    masked-in elements *in their original order* — and is bit-identical to
    doing exactly that row by row.  The trick: NumPy's pairwise-summation
    grouping depends only on the number of elements reduced, so rows with
    the same masked-in count can be gathered into one ``(rows, count)``
    matrix and reduced along the last axis in a single call.  ``reduce``
    receives such a matrix and must reduce ``axis=-1`` elementwise-then-
    pairwise (e.g. ``lambda g: g.mean(axis=-1)``).

    Rows whose mask is empty get ``fill``.  Trailing axes of ``values``
    beyond the first are flattened row-major, matching the semantics of
    boolean indexing on the full row.
    """
    values = np.asarray(values)
    mask = np.asarray(mask, dtype=bool)
    if values.shape != mask.shape:
        raise ValueError(f"mask shape {mask.shape} != values shape {values.shape}")
    n_rows = values.shape[0]
    flat_values = values.reshape(n_rows, -1)
    flat_mask = mask.reshape(n_rows, -1)
    counts = flat_mask.sum(axis=1)
    out = np.full(n_rows, fill, dtype=float)
    for count in np.unique(counts):
        if count == 0:
            continue
        rows = np.nonzero(counts == count)[0]
        gathered = flat_values[rows][flat_mask[rows]].reshape(rows.size, count)
        out[rows] = reduce(gathered)
    return out


def masked_row_means(values, mask, fill: float = 0.0) -> np.ndarray:
    """Per-row ``float(values[b][mask[b]].mean())``, vectorized bit-exactly."""
    return masked_row_apply(values, mask, lambda gathered: gathered.mean(axis=-1), fill=fill)


def is_unitary_columns(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """True if the matrix has orthonormal columns (W^H W = I)."""
    matrix = np.asarray(matrix)
    gram = hermitian(matrix) @ matrix
    identity = np.eye(matrix.shape[-1])
    return bool(np.allclose(gram, identity, atol=tol))
