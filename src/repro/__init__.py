"""repro — a full reproduction of COPA (CoNEXT 2015).

COPA (CoOperative Power Allocation) lets two loosely-cooperating 802.11
MIMO access points transmit concurrently by combining per-subcarrier power
allocation, interference nulling and multi-stream transmission.  This
package implements the paper's algorithms plus every substrate they need:
an indoor OFDM/MIMO channel simulator, an 802.11n link model, and the ITS
over-the-air coordination protocol.

Quick start::

    import numpy as np
    from repro import StrategyEngine, ChannelModel, TopologyGenerator

    rng = np.random.default_rng(7)
    topology = TopologyGenerator().sample(rng, ap_antennas=4, client_antennas=2)
    channels = ChannelModel().realize(topology, rng)
    outcome = StrategyEngine(channels, rng=rng).run()
    print(outcome.copa_choice, outcome.copa.aggregate_mbps, "Mbps")
"""

from .core import (
    SCHEME_CONC_BF,
    SCHEME_CONC_NULL,
    SCHEME_CONC_SDA,
    SCHEME_COPA_SEQ,
    SCHEME_CSMA,
    SCHEME_NULL,
    SCHEMES,
    SERIES_KEYS,
    EngineOptions,
    Scheme,
    SchemeResult,
    SeriesKey,
    StrategyEngine,
    StrategyOutcome,
)
from .mac import MacOverheadModel, MacOverheads, table1_rows
from .obs import Collector
from .phy import (
    ChannelModel,
    ChannelSet,
    ImperfectionModel,
    Topology,
    TopologyGenerator,
)

__version__ = "1.0.0"

__all__ = [
    "ChannelModel",
    "ChannelSet",
    "Collector",
    "EngineOptions",
    "ImperfectionModel",
    "MacOverheadModel",
    "MacOverheads",
    "SCHEMES",
    "SERIES_KEYS",
    "Scheme",
    "SeriesKey",
    "SCHEME_CONC_BF",
    "SCHEME_CONC_NULL",
    "SCHEME_CONC_SDA",
    "SCHEME_COPA_SEQ",
    "SCHEME_CSMA",
    "SCHEME_NULL",
    "SchemeResult",
    "StrategyEngine",
    "StrategyOutcome",
    "Topology",
    "TopologyGenerator",
    "table1_rows",
    "__version__",
]
