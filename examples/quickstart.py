"""Quickstart: evaluate COPA on one random interfering-AP topology.

Draws an indoor topology with two 4-antenna APs and two 2-antenna clients,
realizes a frequency-selective channel, and runs the full Figure-8
strategy engine: CSMA, COPA-SEQ, vanilla nulling, and COPA's concurrent
strategies, printing per-scheme throughput and the strategies COPA picks.

Run:  python examples/quickstart.py [seed]
"""

import sys

import numpy as np

from repro import ChannelModel, StrategyEngine, TopologyGenerator


def main(seed: int = 7) -> None:
    rng = np.random.default_rng(seed)

    # 1. An office floor with two interfering AP/client pairs.
    topology = TopologyGenerator().sample(rng, ap_antennas=4, client_antennas=2)
    print("Topology:")
    for node in topology.aps + topology.clients:
        print(
            f"  {node.name}: position ({node.position_m[0]:.1f}, {node.position_m[1]:.1f}) m,"
            f" {node.n_antennas} antennas"
        )
    for i, (signal, interference) in enumerate(topology.signal_and_interference_dbm()):
        print(f"  C{i + 1}: signal {signal:.1f} dBm, interference {interference:.1f} dBm")

    # 2. Small-scale fading: per-subcarrier MIMO channel matrices.
    channels = ChannelModel().realize(topology, rng)

    # 3. The strategy engine: builds precoders from noisy CSI, allocates
    #    power per subcarrier, predicts every strategy and picks the best.
    outcome = StrategyEngine(channels, rng=rng).run()

    print("\nMeasured aggregate throughput per strategy:")
    for name, result in sorted(outcome.schemes.items(), key=lambda kv: -kv[1].aggregate_bps):
        per_client = ", ".join(f"{t / 1e6:.1f}" for t in result.client_throughput_bps)
        kind = "concurrent" if result.concurrent else "sequential"
        print(f"  {name:<10} {result.aggregate_mbps:7.1f} Mbps  ({kind}; per-client {per_client})")

    print(f"\nCOPA picks:       {outcome.copa_choice}  -> {outcome.copa.aggregate_mbps:.1f} Mbps")
    print(
        f"COPA fair picks:  {outcome.copa_fair_choice}  -> {outcome.copa_fair.aggregate_mbps:.1f} Mbps"
    )
    csma = outcome.schemes["csma"].aggregate_mbps
    print(f"Gain over CSMA:   {outcome.copa.aggregate_mbps / csma - 1:+.0%}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
