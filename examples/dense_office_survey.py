"""A dense-office survey: the paper's §4.3 experiment in miniature.

Sweeps N random 4×2 office topologies, runs the full strategy menu in
each, and prints the across-topology comparison the paper's Figure 11
makes: CSMA vs vanilla nulling vs COPA (greedy and fair), plus the
headline statistics ("nulling underperforms CSMA in X% of topologies...").

Run:  python examples/dense_office_survey.py [n_topologies]
"""

import sys

import numpy as np

from repro.sim.config import SimConfig
from repro.sim.experiment import ScenarioSpec, run_experiment
from repro.sim.metrics import cdf, compare


def ascii_cdf(series_by_name, width: int = 60) -> str:
    """A tiny terminal CDF plot: one row per decile, one column per scheme."""
    lines = []
    names = list(series_by_name)
    lines.append("    CDF  " + "".join(f"{name:>12}" for name in names))
    for decile in range(1, 11):
        q = decile / 10
        row = f"   {q:4.1f}  "
        for name in names:
            values = np.sort(series_by_name[name])
            index = min(int(np.ceil(q * len(values))) - 1, len(values) - 1)
            row += f"{values[index]:>12.1f}"
        lines.append(row)
    return "\n".join(lines)


def main(n_topologies: int = 12) -> None:
    config = SimConfig(n_topologies=n_topologies)
    spec = ScenarioSpec("4x2", 4, 2, include_copa_plus=False)
    print(f"Running {n_topologies} random 4x2 office topologies ...")
    result = run_experiment(spec, config)

    series = {
        "CSMA": result.series_mbps("csma"),
        "Null": result.series_mbps("null"),
        "COPA fair": result.series_mbps("copa_fair"),
        "COPA": result.series_mbps("copa"),
    }

    print("\nMean aggregate throughput (Mbps):")
    for name, values in series.items():
        print(f"  {name:<10} {values.mean():7.1f}  (median {np.median(values):.1f})")

    print("\nThroughput at each CDF decile (Mbps):")
    print(ascii_cdf(series))

    null_vs_csma = compare(series["Null"], series["CSMA"])
    copa_vs_null = compare(series["COPA"], series["Null"])
    copa_vs_csma = compare(series["COPA"], series["CSMA"])
    print("\nHeadline statistics:")
    print(
        f"  vanilla nulling underperforms CSMA in "
        f"{1 - null_vs_csma.win_fraction:.0%} of topologies (paper: 83%)"
    )
    print(
        f"  COPA improves on vanilla nulling by {copa_vs_null.mean_improvement:.0%} "
        f"mean (paper: ~54-64%)"
    )
    print(
        f"  COPA beats CSMA in {copa_vs_csma.win_fraction:.0%} of topologies "
        f"by {copa_vs_csma.mean_improvement:.0%} mean"
    )

    choices = {}
    for record in result.records:
        choices[record.outcome.copa_choice] = choices.get(record.outcome.copa_choice, 0) + 1
    print(f"\nStrategies COPA chose: {choices}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
