"""A walking client: coherence time, CSI refresh, strategy adaptation.

A client walks across the floor from its own AP toward the interfering
one.  At walking speed the channel stays coherent for ~28 ms (§3.1's
t_c = 0.25·λ/v), so every coherence window the APs re-measure CSI, re-run
strategy selection, and the chosen strategy changes as the interference
geometry changes — strong signal / weak interference near home, heavy
cross-interference in the overlap zone.

Run:  python examples/mobility_walkthrough.py [n_steps]

The optional argument controls how many half-second steps of the walk
are simulated (default 10); e.g. ``2`` for a quick smoke run.
"""

import sys

import numpy as np

from repro.core.strategy import StrategyEngine
from repro.mac.timing import coherence_time_s
from repro.phy import ChannelModel
from repro.phy.constants import CARRIER_WAVELENGTH_M
from repro.phy.topology import Node, PathLossModel, Topology

WALK_SPEED_M_S = 4.0 / 3.6  # 4 km/h
STEP_S = 0.5  # report every half second of walking


def build_topology(client1_x: float) -> Topology:
    """Two APs 14 m apart; client 1 sits at ``client1_x`` on the line."""
    loss = PathLossModel(shadowing_sigma_db=0.0)
    aps = [Node("AP1", (2.0, 5.0), 4), Node("AP2", (16.0, 5.0), 4)]
    clients = [Node("C1", (client1_x, 6.0), 2), Node("C2", (14.5, 4.0), 2)]
    topology = Topology(aps=aps, clients=clients)
    nodes = aps + clients
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            topology.link_gain_db[(a.name, b.name)] = -loss.path_loss_db(a.distance_to(b))
    return topology


def main(n_steps: int = 10) -> None:
    coherence = coherence_time_s(WALK_SPEED_M_S, CARRIER_WAVELENGTH_M)
    print(
        f"walking at {WALK_SPEED_M_S * 3.6:.0f} km/h -> coherence time "
        f"{coherence * 1e3:.0f} ms (t_c = 0.25 lambda / v)"
    )
    print(
        f"CSI refreshes per second: {1 / coherence:.0f}; "
        f"strategy re-selected each window\n"
    )

    model = ChannelModel()
    print(f"{'t (s)':>6} {'C1 x (m)':>9} {'SIR (dB)':>9} {'choice':>10} "
          f"{'copa Mbps':>10} {'csma Mbps':>10}")
    rng = np.random.default_rng(123)
    for step in range(n_steps):
        t = step * STEP_S
        x = 3.5 + WALK_SPEED_M_S * t
        topology = build_topology(x)
        channels = model.realize(topology, rng)
        signal, interference = topology.signal_and_interference_dbm()[0]
        outcome = StrategyEngine(channels, rng=rng, coherence_s=coherence).run()
        print(
            f"{t:>6.1f} {x:>9.1f} {signal - interference:>9.1f} "
            f"{outcome.copa_choice:>10} {outcome.copa.aggregate_mbps:>10.1f} "
            f"{outcome.schemes['csma'].aggregate_mbps:>10.1f}"
        )

    print(
        "\nAs C1 walks toward AP2, its signal-to-interference ratio falls and"
        "\nthe concurrency gain shrinks; near the overlap zone COPA's nulled"
        "\nstrategy approaches CSMA and (as in the paper) the occasional"
        "\nmisprediction appears — §4.3's 'sometimes COPA gives negligible"
        "\nimprovement over CSMA'."
    )


if __name__ == "__main__":
    main(n_steps=int(sys.argv[1]) if len(sys.argv) > 1 else 10)
