"""Signal-level demonstration: COPA's allocation on a real sample stream.

Everything the throughput experiments predict analytically is exercised
here at the waveform level: bits → convolutional encoder → QAM → OFDM →
multipath channel + AWGN → FFT → equalizer → demapper → Viterbi.  We
compare equal-power 802.11 against COPA's Equi-SNR allocation (with
subcarrier dropping) on the same frequency-selective channel and count
actual bit errors.

Run:  python examples/signal_level_link.py
"""

import numpy as np

from repro.core.equi_snr import allocate
from repro.phy.constants import MCS_TABLE
from repro.phy.fading import TappedDelayLine, exponential_pdp
from repro.phy.ofdm import data_subcarrier_bins, equalize, ofdm_demodulate, ofdm_modulate
from repro.phy.qam import demodulate_hard, modulate
from repro.phy.viterbi import encode, puncture, viterbi_decode
from repro.util import db_to_linear, linear_to_db

N_SC = 52
N_OFDM_SYMBOLS = 40
MEAN_SNR_DB = 17.0


def frequency_selective_channel(rng):
    """One SISO multipath realization with deep in-band fades."""
    tdl = TappedDelayLine.sample(1, 1, exponential_pdp(90e-9), rng)
    taps = tdl.taps[:, 0, 0]
    h_freq = np.fft.fft(taps, 64)[data_subcarrier_bins(N_SC)]
    return taps[:14], h_freq


def transmit(bits, mcs, powers, h_taps, h_freq, noise_var, rng):
    """Run one coded transmission; returns decoded bits and used mask."""
    used = powers > 0
    n_used = int(used.sum())
    bits_per_symbol = mcs.modulation.bits_per_symbol
    n_coded = n_used * bits_per_symbol * N_OFDM_SYMBOLS
    n_info = n_coded * mcs.code_rate[0] // mcs.code_rate[1]
    info = bits[:n_info]

    coded = puncture(encode(info), mcs.code_rate)[:n_coded]
    symbols = modulate(coded, mcs.modulation)
    grid = np.zeros((N_OFDM_SYMBOLS, N_SC), dtype=complex)
    grid[:, used] = symbols.reshape(N_OFDM_SYMBOLS, n_used)
    # Per-subcarrier amplitude scaling implements the power allocation.
    grid *= np.sqrt(powers)[None, :]

    samples = ofdm_modulate(grid)
    # Multipath + AWGN at the receiver.
    from repro.phy.ofdm import apply_multipath

    received = apply_multipath(samples, h_taps)
    noise = np.sqrt(noise_var / 2) * (
        rng.standard_normal(received.shape) + 1j * rng.standard_normal(received.shape)
    )
    received = received + noise

    rx_grid = ofdm_demodulate(received)
    equalized = equalize(rx_grid, h_freq * np.sqrt(powers)[None, :])
    rx_symbols = equalized[:, used].ravel()
    hard = demodulate_hard(rx_symbols, mcs.modulation)
    decoded = viterbi_decode(hard, mcs.code_rate, n_info_bits=n_info)
    return info, decoded, n_info


def main() -> None:
    rng = np.random.default_rng(5)
    h_taps, h_freq = frequency_selective_channel(rng)

    gain = np.abs(h_freq) ** 2
    total_power = float(N_SC)  # unit power per subcarrier on average
    noise_var = float(np.mean(gain)) / db_to_linear(MEAN_SNR_DB)

    print("Channel: per-subcarrier SNR at equal power (dB):")
    snr_equal = gain * (total_power / N_SC) / noise_var
    print("  " + " ".join(f"{linear_to_db(s):.0f}" for s in snr_equal))

    # COPA's Algorithm 1 on this channel.
    allocation = allocate(gain / noise_var, total_power)
    print(
        f"\nCOPA allocation: drops {allocation.n_dropped} subcarriers, "
        f"predicts {allocation.mcs} at {allocation.goodput_bps / 1e6:.1f} Mbps equivalent"
    )

    bits = rng.integers(0, 2, 400_000).astype(np.int8)
    results = {}
    for label, powers, mcs in (
        ("equal power", np.full(N_SC, total_power / N_SC), MCS_TABLE[4]),
        ("COPA", allocation.powers, allocation.mcs),
    ):
        info, decoded, n_info = transmit(bits, mcs, powers, h_taps, h_freq, noise_var, rng)
        errors = int(np.sum(info != decoded))
        carried = n_info * (1 if errors == 0 else 0)
        results[label] = (mcs, errors, n_info)
        print(
            f"  {label:<12} {mcs.modulation.name} {mcs.code_rate[0]}/{mcs.code_rate[1]}: "
            f"{errors} bit errors in {n_info} info bits "
            f"({'frame OK' if errors == 0 else 'frame LOST'})"
        )

    equal_errors = results["equal power"][1]
    copa_errors = results["COPA"][1]
    print(
        "\nCOPA carries "
        f"{results['COPA'][2]} info bits with {copa_errors} errors; equal power "
        f"suffers {equal_errors} errors at the same modulation class — the "
        "analytic pipeline's prediction, reproduced sample by sample."
    )


if __name__ == "__main__":
    main()
