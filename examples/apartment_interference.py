"""Two apartments sharing a wall: a COPA session over wall-clock time.

The paper's motivating scenario (§1): two Wi-Fi networks owned by
different tenants interfere.  This example runs the full control plane —
contention, leader election, the ITS INIT/REQ/ACK exchange with real
compressed-CSI payload sizes, strategy selection once per coherence
interval — for half a second of simulated air time, then reports what the
two households actually got, with and without COPA's incentive-compatible
fairness rule.

Run:  python examples/apartment_interference.py [duration_s]

The optional argument shortens (or lengthens) the simulated air time —
e.g. ``0.05`` for a quick smoke run; the default is half a second.
"""

import sys

import numpy as np

from repro import ChannelModel, TopologyGenerator
from repro.core import CopaSession
from repro.phy.topology import Node, Topology, PathLossModel


def build_apartment_topology() -> Topology:
    """Two 4-antenna APs in adjacent apartments, one client each.

    The wall between the apartments adds 8 dB to every cross link.
    """
    loss = PathLossModel()
    wall_db = 8.0
    aps = [Node("AP1", (2.0, 2.0), 4), Node("AP2", (9.0, 2.5), 4)]
    clients = [Node("C1", (4.5, 4.0), 2), Node("C2", (6.8, 4.5), 2)]
    topology = Topology(aps=aps, clients=clients)
    nodes = aps + clients
    same_side = {"AP1": 0, "C1": 0, "AP2": 1, "C2": 1}
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            crosses_wall = same_side[a.name] != same_side[b.name]
            penalty = wall_db if crosses_wall else 0.0
            topology.link_gain_db[(a.name, b.name)] = -(
                loss.path_loss_db(a.distance_to(b)) + penalty
            )
    return topology


def run_session(channels, fair: bool, seed: int, duration_s: float = 0.5):
    session = CopaSession(channels, fair=fair, rng=np.random.default_rng(seed))
    records = session.run(duration_s=duration_s)
    return session, records


def main(duration_s: float = 0.5) -> None:
    rng = np.random.default_rng(11)
    topology = build_apartment_topology()
    channels = ChannelModel().realize(topology, rng)

    print("Apartment topology (8 dB wall on cross links):")
    for i, (signal, interference) in enumerate(topology.signal_and_interference_dbm()):
        print(f"  household {i + 1}: signal {signal:.1f} dBm, interference {interference:.1f} dBm")

    for fair in (False, True):
        session, records = run_session(channels, fair, seed=3, duration_s=duration_s)
        t1, t2 = CopaSession.throughput_mbps(records)
        schemes = {}
        for record in records:
            schemes[record.scheme] = schemes.get(record.scheme, 0) + 1
        refreshes = sum(r.csi_refreshed for r in records)
        control_kib = sum(r.control_bytes for r in records) / 1024
        label = "COPA fair" if fair else "COPA     "
        print(f"\n{label}: household1 {t1:.1f} Mbps, household2 {t2:.1f} Mbps "
              f"(aggregate {t1 + t2:.1f})")
        print(f"  TXOPs: {len(records)}, strategies used: {schemes}")
        print(f"  CSI refreshes: {refreshes} (once per 30 ms coherence window)")
        print(f"  control-plane bytes on air: {control_kib:.1f} KiB")


if __name__ == "__main__":
    main(duration_s=float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
