"""The paper's testbed experiment, sample by sample.

Two 4-antenna APs transmit two spatial streams each, concurrently.  Client
C1 (2 antennas) receives the floating-point sum of both waveforms — the
paper's record-separately-revert-AGC-and-combine methodology — estimates
its channel from HT-LTF-style training, MMSE-filters, and soft-decodes.

With AP2 beamforming selfishly, C1's two antennas face four incoming
streams and reception collapses; with AP2 nulling toward C1 (computed
from noisy CSI, so the null is imperfect), C1 decodes cleanly.  This is
Figure 1's scenario executed at the waveform level.

Run:  python examples/concurrent_waveforms.py
"""

import numpy as np

from repro.phy.constants import MCS_TABLE, N_FFT
from repro.phy.fading import TappedDelayLine, exponential_pdp
from repro.phy.mimo import nulling_precoder, svd_beamformer
from repro.phy.mimo_transceiver import MimoTransceiver
from repro.phy.noise import ImperfectionModel
from repro.phy.ofdm import data_subcarrier_bins
from repro.util import linear_to_db

SNR_DB = 28.0


def mimo_taps(rng):
    pdp = exponential_pdp(60e-9, n_taps=10, tap_spacing_s=50e-9)
    return TappedDelayLine.sample(2, 4, pdp, rng).taps


def freq(taps):
    return np.fft.fft(taps, N_FFT, axis=0)[data_subcarrier_bins(52)]


def main() -> None:
    rng = np.random.default_rng(42)
    ap1_to_c1 = mimo_taps(rng)
    ap2_to_c1 = mimo_taps(rng)
    ap2_to_c2 = mimo_taps(rng)
    h11, h21, h22 = freq(ap1_to_c1), freq(ap2_to_c1), freq(ap2_to_c2)

    imperfections = ImperfectionModel()  # −26 dB CSI error, as calibrated
    noisy_h21 = imperfections.measure_csi(h21, rng)

    trx = MimoTransceiver(mcs=MCS_TABLE[3], n_ofdm_symbols=10)  # 16-QAM 1/2
    powers = np.ones((52, 2))
    precoder1 = svd_beamformer(h11, 2)

    print(f"Concurrent 4x2 transmission at {SNR_DB:.0f} dB SNR, 16-QAM 1/2, "
          "2 streams per AP\n")
    for label, null in (("AP2 beamforms (selfish)", False), ("AP2 nulls toward C1", True)):
        if null:
            precoder2 = nulling_precoder(h22, noisy_h21, 2)
        else:
            precoder2 = svd_beamformer(h22, 2)

        frame1 = trx.transmit(precoder1, powers, rng)
        frame2 = trx.transmit(precoder2, powers, rng)
        intended = trx.propagate(frame1, ap1_to_c1)
        interference = trx.propagate(frame2, ap2_to_c1)
        interference[:, : frame2.preamble_samples] = 0.0  # staggered preambles

        combined = intended + interference
        signal_power = float(np.mean(np.abs(intended) ** 2))
        noise_var = signal_power / 10 ** (SNR_DB / 10)
        combined += np.sqrt(noise_var / 2) * (
            rng.standard_normal(combined.shape) + 1j * rng.standard_normal(combined.shape)
        )

        out = trx.receive(combined, frame1, powers, noise_var)
        inr = np.mean(np.abs(interference[:, frame2.preamble_samples:]) ** 2) / noise_var
        total_bits = sum(b.size for b in frame1.stream_bits)
        print(f"{label}:")
        print(f"  interference-to-noise at C1: {linear_to_db(inr):.1f} dB")
        print(
            f"  post-MMSE SINR (median over subcarriers/streams): "
            f"{linear_to_db(np.median(out.post_mmse_sinr)):.1f} dB"
        )
        print(
            f"  bit errors: {sum(out.bit_errors)} / {total_bits} "
            f"-> frame {'OK' if out.frame_ok else 'LOST'}\n"
        )

    print("An imperfect (CSI-error-limited) null is the difference between a"
          "\nlost frame and a clean one — the paper's premise, at sample level.")


if __name__ == "__main__":
    main()
