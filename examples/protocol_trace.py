"""A readable trace of COPA's over-the-air coordination (Fig. 5).

Prints the frame-by-frame timeline of several ITS exchanges — INIT, REQ
(with real compressed-CSI payload sizes), ACK, data — plus the airtime
ledger and how the measured MAC overhead compares with the paper's
Table 1.

Run:  python examples/protocol_trace.py
"""

import numpy as np

from repro import ChannelModel, TopologyGenerator
from repro.mac.compression import compression_ratio
from repro.mac.its import ItsSimulator
from repro.mac.timing import MacOverheadModel, table1_rows


def main() -> None:
    rng = np.random.default_rng(4)
    topology = TopologyGenerator().sample(rng, ap_antennas=4, client_antennas=2)
    channels = ChannelModel().realize(topology, rng)

    ratio = np.mean(
        [compression_ratio(channels.channel("AP2", c)) for c in ("C1", "C2")]
    )
    print(f"CSI compression ratio for the follower's links: {ratio:.2f}x (paper: ~2x)\n")

    sim = ItsSimulator(
        "AP1",
        "AP2",
        {"AP1": "C1", "AP2": "C2"},
        coherence_s=0.030,
        channel_provider=channels.channel,
    )
    sim.run(3)

    print("Timeline of the first 3 coordinated TXOPs:")
    print(f"{'t (ms)':>8}  {'dur (µs)':>9}  {'kind':<5} event")
    for event in sim.events:
        print(
            f"{event.start_s * 1e3:>8.3f}  {event.duration_s * 1e6:>9.1f}  "
            f"{event.kind:<5} {event.description}"
        )

    stats = sim.run(60)  # extend the run for stable statistics
    print("\nAirtime by kind over the whole run:")
    for kind, seconds in sorted(stats.airtime_by_kind().items()):
        print(f"  {kind:<6} {seconds * 1e3:8.2f} ms")
    print(f"measured MAC overhead: {stats.overhead_fraction:.1%}")

    model = MacOverheadModel()
    print(
        f"analytic (Table 1) at 30 ms coherence: "
        f"{model.copa_overhead(0.030, concurrent=True):.1%}"
    )

    print("\nTable 1 (reproduced):")
    print(f"{'coherence':>10} {'COPA conc':>10} {'COPA seq':>10} {'CSMA CTS':>10} {'RTS/CTS':>10}")
    for tc, row in table1_rows().items():
        print(
            f"{tc:>9g}ms {row.copa_concurrent:>10.1%} {row.copa_sequential:>10.1%}"
            f" {row.csma:>10.1%} {row.rts_cts:>10.1%}"
        )


if __name__ == "__main__":
    main()
