"""Perf acceptance for the batched multi-topology engine.

The batched engine (:mod:`repro.core.batch`) evaluates a whole stack of
topologies as ``(n_topologies, n_sc, n_rx, n_tx)`` arrays in single
NumPy calls instead of re-entering the serial strategy engine once per
topology.  This harness measures the end-to-end sweep speedup of
``run_experiment`` with the default batched dispatch
(``batch_size=None``) over the legacy per-topology path
(``batch_size=1``) — same tasks, same seeds, same bits.

Before timing anything the harness asserts that the batched and legacy
runs produce **bit-identical** per-series arrays — a batched engine that
is fast but wrong must never post a number.

Run it as a script (CI uses ``--quick --check``)::

    PYTHONPATH=src python benchmarks/bench_batch.py [--quick]
        [--output BENCH_batch.json] [--check] [--validate PATH]

``--check`` exits non-zero if the speedup drops below the floor: 5x for
the full workload, 1x for ``--quick`` (CI machines are noisy and the
quick workload is small; the committed full payload carries the real
acceptance number).  ``--validate PATH`` only validates an existing
payload.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import Dict, List

if __package__ in (None, ""):  # script mode: make src/ importable
    sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

SCHEMA_ID = "repro.bench/batch-v1"
DEFAULT_OUTPUT = "BENCH_batch.json"
SEED = 2015

#: End-to-end batched speedup floor for the full workload (--check).
SPEEDUP_FLOOR = 5.0
#: Relaxed floor for --quick: batching must at least never be a loss.
QUICK_SPEEDUP_FLOOR = 1.0


def _workload(quick: bool):
    from repro.sim.config import SimConfig
    from repro.sim.experiment import ScenarioSpec

    # The 3x2 overconstrained scenario with COPA+ is the most expensive
    # per-topology menu (SDA + mercury), i.e. the sweep the batching
    # exists to accelerate.
    spec = ScenarioSpec("3x2", 3, 2, include_copa_plus=True)
    config = SimConfig(n_topologies=4 if quick else 32, seed=SEED)
    return spec, config


def _series_of(result) -> Dict[str, np.ndarray]:
    return {key: result.series_mbps(key) for key in result.available_series()}


def _assert_identical(reference: Dict[str, np.ndarray], candidate, label: str) -> None:
    series = _series_of(candidate)
    assert series.keys() == reference.keys(), f"{label}: series set drifted"
    for key, values in reference.items():
        np.testing.assert_array_equal(
            series[key], values, err_msg=f"{label}: series {key!r} not bit-identical"
        )


def run_benchmark(quick: bool = False) -> Dict[str, object]:
    """Time batched vs per-topology dispatch and build the batch-v1 payload."""
    from repro.sim.experiment import run_experiment

    spec, config = _workload(quick)
    repeats = 1 if quick else 2

    # --- correctness gate: batched vs legacy, bit-identical ---
    legacy_result = run_experiment(spec, config, workers=1, batch_size=1)
    reference = _series_of(legacy_result)
    batched_result = run_experiment(spec, config, workers=1)
    _assert_identical(reference, batched_result, "batched")
    batch_size = batched_result.stats.batch_size
    assert batch_size > 1, "batched dispatch did not engage"

    # --- legacy vs batched timing ---
    legacy_samples, batched_samples = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        run_experiment(spec, config, workers=1, batch_size=1)
        legacy_samples.append(time.perf_counter() - start)
        start = time.perf_counter()
        run_experiment(spec, config, workers=1)
        batched_samples.append(time.perf_counter() - start)
    legacy_s = float(statistics.median(legacy_samples))
    batched_s = float(statistics.median(batched_samples))

    return {
        "schema": SCHEMA_ID,
        "quick": quick,
        "workload": {
            "scenario": spec.name,
            "include_copa_plus": spec.include_copa_plus,
            "n_topologies": config.n_topologies,
            "seed": SEED,
            "series": sorted(reference),
        },
        "batch": {
            "legacy_s": round(legacy_s, 4),
            "batched_s": round(batched_s, 4),
            "speedup": round(legacy_s / batched_s, 2),
            "speedup_floor": QUICK_SPEEDUP_FLOOR if quick else SPEEDUP_FLOOR,
            "batch_size": int(batch_size),
            "repeats": repeats,
            "backend": "numpy",
        },
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


def validate_bench_payload(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid batch-v1 document."""

    def fail(message: str):
        raise ValueError(f"BENCH_batch payload invalid: {message}")

    if not isinstance(payload, dict):
        fail("payload must be an object")
    if payload.get("schema") != SCHEMA_ID:
        fail(f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("quick"), bool):
        fail("quick must be a boolean")
    workload = payload.get("workload")
    if not isinstance(workload, dict):
        fail("workload must be an object")
    for key in ("n_topologies", "seed"):
        if not isinstance(workload.get(key), int):
            fail(f"workload.{key} must be an integer")
    if not isinstance(workload.get("include_copa_plus"), bool):
        fail("workload.include_copa_plus must be a boolean")
    if not isinstance(workload.get("series"), list) or not workload["series"]:
        fail("workload.series must be a non-empty list")
    batch = payload.get("batch")
    if not isinstance(batch, dict):
        fail("batch must be an object")
    for key in ("legacy_s", "batched_s", "speedup", "speedup_floor"):
        value = batch.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(f"batch.{key} must be a positive number")
    for key in ("batch_size", "repeats"):
        if not isinstance(batch.get(key), int) or batch[key] < 1:
            fail(f"batch.{key} must be a positive integer")
    if batch["batch_size"] < 2:
        fail("batch.batch_size must be >= 2 (otherwise nothing was batched)")
    if not isinstance(batch.get("backend"), str) or not batch["backend"]:
        fail("batch.backend must be a non-empty string")


def format_report(payload: Dict[str, object]) -> str:
    batch = payload["batch"]
    workload = payload["workload"]
    return "\n".join(
        [
            f"{'workload':<28}{workload['scenario']:>6}  "
            f"({workload['n_topologies']} topologies, copa_plus={workload['include_copa_plus']})",
            f"{'legacy per-topology (median)':<28}{batch['legacy_s']:>9.2f} s",
            f"{'batched engine (median)':<28}{batch['batched_s']:>9.2f} s",
            f"{'end-to-end speedup':<28}{batch['speedup']:>8.1f}x  "
            f"(floor {batch['speedup_floor']:.0f}x, batch size {batch['batch_size']})",
        ]
    )


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI profile: 4 topologies, 1 repeat")
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="payload path (default BENCH_batch.json)")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero unless the speedup meets the floor "
        f"({SPEEDUP_FLOOR:.0f}x full, {QUICK_SPEEDUP_FLOOR:.0f}x quick)",
    )
    parser.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing payload file and exit (no benchmarking)",
    )
    args = parser.parse_args(argv)

    if args.validate:
        with open(args.validate) as handle:
            payload = json.load(handle)
        validate_bench_payload(payload)
        print(f"{args.validate}: valid {SCHEMA_ID} payload")
        return 0

    payload = run_benchmark(quick=args.quick)
    validate_bench_payload(payload)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(format_report(payload))
    print(f"wrote {args.output}")

    if args.check:
        floor = payload["batch"]["speedup_floor"]
        if payload["batch"]["speedup"] < floor:
            print(
                f"FAIL: batched speedup {payload['batch']['speedup']}x below the "
                f"{floor:.0f}x floor",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
