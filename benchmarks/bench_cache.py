"""Perf acceptance for the result cache: warm reruns and the no-cache path.

Two budgets guard the ``repro.cache`` subsystem:

* a **warm** rerun of an experiment (every artifact already on disk) must
  be at least ``SPEEDUP_FLOOR``x faster than the **cold** run that
  populated the cache — otherwise the cache is not pulling its weight;
* with ``cache=None`` the experiment entry points must cost (almost)
  nothing extra: like the observability fast path, the cache code is
  gated behind ``cache is not None`` guards that each execute O(1) times
  per run, so the overhead bound is (guards per run) x (cost of one
  ``None`` check), and it must stay under ``NO_CACHE_BUDGET``.

Before timing anything the harness asserts that baseline (cache-free),
cold and warm runs produce bit-identical per-series arrays — a cache
that is fast but wrong must never post a number.

Run it as a script (CI can use ``--quick --check``)::

    PYTHONPATH=src python benchmarks/bench_cache.py [--quick]
        [--output BENCH_cache.json] [--check] [--validate PATH]

``--check`` exits non-zero if the warm speedup drops below 5x or the
no-cache overhead bound exceeds 1%; ``--validate PATH`` only validates
an existing payload.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import platform
import shutil
import statistics
import sys
import tempfile
import time
from typing import Dict, List

if __package__ in (None, ""):  # script mode: make src/ importable
    sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

SCHEMA_ID = "repro.bench/cache-v1"
DEFAULT_OUTPUT = "BENCH_cache.json"
SEED = 2015

#: Warm rerun must beat the cold run by at least this factor (--check).
SPEEDUP_FLOOR = 5.0
#: The cache=None path may slow an experiment by at most this fraction.
NO_CACHE_BUDGET = 0.01


def _workload(quick: bool):
    from repro.sim.config import SimConfig
    from repro.sim.experiment import ScenarioSpec

    spec = ScenarioSpec("4x2", 4, 2, include_copa_plus=False)
    config = SimConfig(n_topologies=3 if quick else 10, seed=SEED)
    return spec, config


def _series_of(result) -> Dict[str, np.ndarray]:
    return {key: result.series_mbps(key) for key in result.available_series()}


def _assert_identical(reference: Dict[str, np.ndarray], candidate, label: str) -> None:
    series = _series_of(candidate)
    assert series.keys() == reference.keys(), f"{label}: series set drifted"
    for key, values in reference.items():
        np.testing.assert_array_equal(
            series[key], values, err_msg=f"{label}: series {key!r} not bit-identical"
        )


def _guards_per_run() -> int:
    """Static count of ``cache``-``None`` guards on the experiment path.

    Every guard in these modules executes at most once per experiment on
    the ``cache=None`` path (none sit inside per-task loops), so the
    source occurrence count is a per-run upper bound that tracks the code
    automatically instead of hard-coding today's call sites.
    """
    from repro.sim import emulation, experiment, runner, sweep

    count = 0
    for module in (runner, experiment, emulation, sweep):
        source = inspect.getsource(module)
        count += source.count("cache is not None") + source.count("cache is None")
    return count


def _none_check_cost_s(n: int = 1_000_000) -> float:
    """Seconds per ``x is not None`` check on this host."""
    cache = None
    sink = 0
    start = time.perf_counter()
    for _ in range(n):
        if cache is not None:
            sink += 1
    elapsed = time.perf_counter() - start
    assert sink == 0
    return elapsed / n


def run_benchmark(quick: bool = False) -> Dict[str, object]:
    """Time cold/warm/no-cache runs and build the cache-v1 payload."""
    from repro.cache import ResultCache
    from repro.sim.experiment import run_experiment

    spec, config = _workload(quick)
    repeats = 3 if quick else 5
    workdir = tempfile.mkdtemp(prefix="bench_cache_")
    try:
        # --- correctness gate: baseline vs cold vs warm, bit-identical ---
        baseline = _series_of(run_experiment(spec, config, workers=1))
        gate_cache = ResultCache(os.path.join(workdir, "gate"))
        _assert_identical(
            baseline, run_experiment(spec, config, workers=1, cache=gate_cache), "cold"
        )
        warm_result = run_experiment(spec, config, workers=1, cache=gate_cache)
        assert warm_result.stats.cache_hits == config.n_topologies
        _assert_identical(baseline, warm_result, "warm")

        # --- cold vs warm timing (fresh cache dir per cold sample) ---
        cold_samples, warm_samples = [], []
        bytes_written = artifacts = 0
        for index in range(repeats):
            root = os.path.join(workdir, f"timed_{index}")
            cache = ResultCache(root)
            start = time.perf_counter()
            run_experiment(spec, config, workers=1, cache=cache)
            cold_samples.append(time.perf_counter() - start)
            bytes_written = cache.stats.bytes_written
            artifacts = cache.stats.stores
            start = time.perf_counter()
            run_experiment(spec, config, workers=1, cache=cache)
            warm_samples.append(time.perf_counter() - start)
        cold_s = float(statistics.median(cold_samples))
        warm_s = float(statistics.median(warm_samples))

        # --- no-cache overhead bound (analytic, obs-bench style) ---
        guards = _guards_per_run()
        guard_cost_s = _none_check_cost_s()
        start = time.perf_counter()
        run_experiment(spec, config, workers=1)
        no_cache_run_s = time.perf_counter() - start
        # Generous 10x pad for argument plumbing around the guards.
        overhead_bound = 10 * guards * guard_cost_s / no_cache_run_s
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "schema": SCHEMA_ID,
        "quick": quick,
        "workload": {
            "scenario": spec.name,
            "n_topologies": config.n_topologies,
            "seed": SEED,
            "series": sorted(baseline),
        },
        "cache": {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": round(cold_s / warm_s, 2),
            "speedup_floor": SPEEDUP_FLOOR,
            "repeats": repeats,
            "artifacts": artifacts,
            "bytes_written": bytes_written,
        },
        "no_cache": {
            "guards_per_run": guards,
            "none_check_ns": round(guard_cost_s * 1e9, 2),
            "run_s": round(no_cache_run_s, 4),
            "overhead_bound": round(overhead_bound, 8),
            "budget": NO_CACHE_BUDGET,
        },
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


def validate_bench_payload(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid cache-v1 document."""

    def fail(message: str):
        raise ValueError(f"BENCH_cache payload invalid: {message}")

    if not isinstance(payload, dict):
        fail("payload must be an object")
    if payload.get("schema") != SCHEMA_ID:
        fail(f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("quick"), bool):
        fail("quick must be a boolean")
    workload = payload.get("workload")
    if not isinstance(workload, dict):
        fail("workload must be an object")
    for key in ("n_topologies", "seed"):
        if not isinstance(workload.get(key), int):
            fail(f"workload.{key} must be an integer")
    if not isinstance(workload.get("series"), list) or not workload["series"]:
        fail("workload.series must be a non-empty list")
    cache = payload.get("cache")
    if not isinstance(cache, dict):
        fail("cache must be an object")
    for key in ("cold_s", "warm_s", "speedup"):
        value = cache.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(f"cache.{key} must be a positive number")
    for key in ("repeats", "artifacts", "bytes_written"):
        if not isinstance(cache.get(key), int) or cache[key] < 1:
            fail(f"cache.{key} must be a positive integer")
    no_cache = payload.get("no_cache")
    if not isinstance(no_cache, dict):
        fail("no_cache must be an object")
    if not isinstance(no_cache.get("guards_per_run"), int) or no_cache["guards_per_run"] < 1:
        fail("no_cache.guards_per_run must be a positive integer")
    value = no_cache.get("overhead_bound")
    if not isinstance(value, (int, float)) or value < 0:
        fail("no_cache.overhead_bound must be a non-negative number")


def format_report(payload: Dict[str, object]) -> str:
    cache = payload["cache"]
    no_cache = payload["no_cache"]
    return "\n".join(
        [
            f"{'cold run (median)':<28}{cache['cold_s'] * 1e3:>10.1f} ms",
            f"{'warm run (median)':<28}{cache['warm_s'] * 1e3:>10.1f} ms",
            f"{'warm speedup':<28}{cache['speedup']:>9.1f}x  (floor {cache['speedup_floor']:.0f}x)",
            f"{'artifacts written':<28}{cache['artifacts']:>10}  ({cache['bytes_written']} B)",
            f"{'no-cache guards / run':<28}{no_cache['guards_per_run']:>10}",
            f"{'no-cache overhead bound':<28}{no_cache['overhead_bound']:>10.6%}"
            f"  (budget {no_cache['budget']:.0%})",
        ]
    )


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI profile: 3 topologies, 3 repeats")
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="payload path (default BENCH_cache.json)")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero unless warm speedup >= {SPEEDUP_FLOOR:.0f}x and "
        f"no-cache overhead bound <= {NO_CACHE_BUDGET:.0%}",
    )
    parser.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing payload file and exit (no benchmarking)",
    )
    args = parser.parse_args(argv)

    if args.validate:
        with open(args.validate) as handle:
            payload = json.load(handle)
        validate_bench_payload(payload)
        print(f"{args.validate}: valid {SCHEMA_ID} payload")
        return 0

    payload = run_benchmark(quick=args.quick)
    validate_bench_payload(payload)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(format_report(payload))
    print(f"wrote {args.output}")

    if args.check:
        failures = []
        if payload["cache"]["speedup"] < SPEEDUP_FLOOR:
            failures.append(
                f"warm speedup {payload['cache']['speedup']}x below the "
                f"{SPEEDUP_FLOOR:.0f}x floor"
            )
        if payload["no_cache"]["overhead_bound"] > NO_CACHE_BUDGET:
            failures.append(
                f"no-cache overhead bound {payload['no_cache']['overhead_bound']:.4%} "
                f"exceeds the {NO_CACHE_BUDGET:.0%} budget"
            )
        if failures:
            print("FAIL: " + "; ".join(failures), file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
