"""Perf + tolerance acceptance for the pluggable array backends.

The batched engine (:mod:`repro.core.batch`) dispatches its strategy
menu through an :class:`~repro.core.backend.ArrayBackend`.  This harness
compares the three registered backends on the same workload:

* ``numpy`` — the bit-identical reference path (baseline timing);
* ``numpy-fused`` — the fused menu kernel evaluated eagerly on host
  numpy (isolates the *kernel rewrite* cost/benefit from jit);
* ``jax`` — the jit/vmap-compiled fused kernel, reported as **cold**
  (first call, includes XLA compilation) and **warm** (steady state)
  separately.  Recorded honestly as unavailable when jax is not
  installed — the committed payload must never invent numbers.

Before timing anything the harness asserts every available non-reference
backend matches the reference series within the documented 1e-6 relative
tolerance (EXPERIMENTS.md tolerance policy) — a backend that is fast but
wrong must never post a number.

Run it as a script (CI uses ``--quick --check``)::

    PYTHONPATH=src python benchmarks/bench_backend.py [--quick]
        [--output BENCH_backend.json] [--check] [--validate PATH]

``--check`` exits non-zero if any available backend's measured error
exceeds the tolerance policy.  There is deliberately no speedup floor:
on CPU-only hosts a jit-compiled jax kernel may not beat tuned numpy —
the payload records both numbers and lets the reader judge.
``--validate PATH`` only validates an existing payload.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import Dict, List, Optional

if __package__ in (None, ""):  # script mode: make src/ importable
    sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

SCHEMA_ID = "repro.bench/backend-v1"
DEFAULT_OUTPUT = "BENCH_backend.json"
SEED = 2015

#: Documented equivalence budget for non-reference backends.
POLICY_RTOL = 1e-6


def _workload(quick: bool):
    from repro.sim.config import SimConfig
    from repro.sim.experiment import ScenarioSpec

    # The 3x2 overconstrained scenario exercises the full fused menu
    # (SDA roles, nulling, concurrent iteration); COPA+ is excluded
    # because the mercury allocator is deliberately outside fusion
    # coverage and would dilute the measurement with reference-path time.
    spec = ScenarioSpec("3x2", 3, 2, include_copa_plus=False)
    config = SimConfig(n_topologies=4 if quick else 32, seed=SEED)
    return spec, config


def _series_of(result) -> Dict[str, np.ndarray]:
    return {key: result.series_mbps(key) for key in result.available_series()}


def _max_rel_err(reference: Dict[str, np.ndarray], candidate) -> float:
    series = _series_of(candidate)
    assert series.keys() == reference.keys(), "series set drifted across backends"
    worst = 0.0
    for key, ref in reference.items():
        scale = np.maximum(np.abs(ref), 1e-300)
        worst = max(worst, float(np.max(np.abs(series[key] - ref) / scale)))
    return worst


def _timed_run(spec, config, options=None) -> float:
    from repro.sim.experiment import run_experiment

    start = time.perf_counter()
    run_experiment(spec, config, workers=1, options=options)
    return time.perf_counter() - start


def run_benchmark(quick: bool = False) -> Dict[str, object]:
    """Measure every available backend and build the backend-v1 payload."""
    from repro.core import fused
    from repro.core.backend import get_backend
    from repro.core.options import EngineOptions
    from repro.sim.experiment import run_experiment

    spec, config = _workload(quick)
    repeats = 1 if quick else 3

    # --- reference series + baseline timing ---
    reference = _series_of(run_experiment(spec, config, workers=1))
    numpy_s = float(
        statistics.median(_timed_run(spec, config) for _ in range(repeats))
    )

    backends: Dict[str, Dict[str, object]] = {
        "numpy": {"reference": True, "time_s": round(numpy_s, 4)}
    }

    # --- numpy-fused: correctness gate, then timing ---
    fused_options = EngineOptions(backend="numpy-fused")
    fused_err = _max_rel_err(
        reference, run_experiment(spec, config, workers=1, options=fused_options)
    )
    assert fused_err <= POLICY_RTOL, (
        f"numpy-fused error {fused_err:.3e} exceeds the {POLICY_RTOL:.0e} policy"
    )
    fused_s = float(
        statistics.median(
            _timed_run(spec, config, fused_options) for _ in range(repeats)
        )
    )
    backends["numpy-fused"] = {
        "available": True,
        "max_rel_err": fused_err,
        "time_s": round(fused_s, 4),
    }

    # --- jax: cold (includes XLA compile) vs warm, or honest absence ---
    jax_version: Optional[str] = None
    try:
        jax_backend = get_backend("jax")
    except ImportError as exc:
        backends["jax"] = {"available": False, "reason": str(exc)}
    else:
        import jax  # the factory imported it successfully

        from repro.core import backend_jax

        jax_version = jax.__version__
        jax_options = EngineOptions(backend="jax")
        jax_err = _max_rel_err(
            reference, run_experiment(spec, config, workers=1, options=jax_options)
        )
        assert jax_err <= POLICY_RTOL, (
            f"jax error {jax_err:.3e} exceeds the {POLICY_RTOL:.0e} policy"
        )
        # Cold: drop every staged kernel and XLA executable first.
        fused.kernel_cache_clear()
        backend_jax.clear_compile_cache()
        jax.clear_caches()
        cold_s = _timed_run(spec, config, jax_options)
        warm_s = float(
            statistics.median(
                _timed_run(spec, config, jax_options) for _ in range(repeats)
            )
        )
        backends["jax"] = {
            "available": True,
            "max_rel_err": jax_err,
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "devices": [str(d) for d in jax.devices()],
            "x64": bool(jax_backend.asarray(np.float64(0.5)).dtype == np.float64),
        }

    return {
        "schema": SCHEMA_ID,
        "quick": quick,
        "workload": {
            "scenario": spec.name,
            "include_copa_plus": spec.include_copa_plus,
            "n_topologies": config.n_topologies,
            "seed": SEED,
            "series": sorted(reference),
            "repeats": repeats,
        },
        "tolerance": {"policy_rtol": POLICY_RTOL},
        "backends": backends,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "jax": jax_version,
        },
    }


def validate_bench_payload(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid backend-v1 document."""

    def fail(message: str):
        raise ValueError(f"BENCH_backend payload invalid: {message}")

    if not isinstance(payload, dict):
        fail("payload must be an object")
    if payload.get("schema") != SCHEMA_ID:
        fail(f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("quick"), bool):
        fail("quick must be a boolean")
    workload = payload.get("workload")
    if not isinstance(workload, dict):
        fail("workload must be an object")
    for key in ("n_topologies", "seed", "repeats"):
        if not isinstance(workload.get(key), int) or workload[key] < 1:
            fail(f"workload.{key} must be a positive integer")
    if not isinstance(workload.get("series"), list) or not workload["series"]:
        fail("workload.series must be a non-empty list")
    tolerance = payload.get("tolerance")
    if not isinstance(tolerance, dict) or tolerance.get("policy_rtol") != POLICY_RTOL:
        fail(f"tolerance.policy_rtol must be {POLICY_RTOL}")
    backends = payload.get("backends")
    if not isinstance(backends, dict):
        fail("backends must be an object")
    for name in ("numpy", "numpy-fused", "jax"):
        if name not in backends:
            fail(f"backends.{name} entry is required (record absence honestly)")
    numpy_entry = backends["numpy"]
    if numpy_entry.get("reference") is not True:
        fail("backends.numpy.reference must be true")
    if not isinstance(numpy_entry.get("time_s"), (int, float)) or numpy_entry["time_s"] <= 0:
        fail("backends.numpy.time_s must be a positive number")
    for name in ("numpy-fused", "jax"):
        entry = backends[name]
        if not isinstance(entry.get("available"), bool):
            fail(f"backends.{name}.available must be a boolean")
        if not entry["available"]:
            if not isinstance(entry.get("reason"), str) or not entry["reason"]:
                fail(f"backends.{name}.reason must explain the absence")
            continue
        err = entry.get("max_rel_err")
        if not isinstance(err, (int, float)) or err < 0:
            fail(f"backends.{name}.max_rel_err must be a non-negative number")
        if err > POLICY_RTOL:
            fail(
                f"backends.{name}.max_rel_err {err:.3e} exceeds the "
                f"{POLICY_RTOL:.0e} tolerance policy"
            )
        time_keys = ("cold_s", "warm_s") if name == "jax" else ("time_s",)
        for key in time_keys:
            if not isinstance(entry.get(key), (int, float)) or entry[key] <= 0:
                fail(f"backends.{name}.{key} must be a positive number")


def format_report(payload: Dict[str, object]) -> str:
    workload = payload["workload"]
    backends = payload["backends"]
    lines = [
        f"{'workload':<28}{workload['scenario']:>6}  "
        f"({workload['n_topologies']} topologies, seed {workload['seed']})",
        f"{'numpy (reference, median)':<28}{backends['numpy']['time_s']:>9.2f} s",
    ]
    fused_entry = backends["numpy-fused"]
    lines.append(
        f"{'numpy-fused (median)':<28}{fused_entry['time_s']:>9.2f} s  "
        f"(max rel err {fused_entry['max_rel_err']:.2e})"
    )
    jax_entry = backends["jax"]
    if jax_entry["available"]:
        lines.append(
            f"{'jax cold (incl. compile)':<28}{jax_entry['cold_s']:>9.2f} s"
        )
        lines.append(
            f"{'jax warm (median)':<28}{jax_entry['warm_s']:>9.2f} s  "
            f"(max rel err {jax_entry['max_rel_err']:.2e})"
        )
    else:
        lines.append(f"{'jax':<28}  unavailable: {jax_entry['reason']}")
    return "\n".join(lines)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI profile: 4 topologies, 1 repeat")
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="payload path (default BENCH_backend.json)")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every available backend is within the "
        f"{POLICY_RTOL:.0e} tolerance policy",
    )
    parser.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing payload file and exit (no benchmarking)",
    )
    args = parser.parse_args(argv)

    if args.validate:
        with open(args.validate) as handle:
            payload = json.load(handle)
        validate_bench_payload(payload)
        print(f"{args.validate}: valid {SCHEMA_ID} payload")
        return 0

    payload = run_benchmark(quick=args.quick)
    validate_bench_payload(payload)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(format_report(payload))
    print(f"wrote {args.output}")

    if args.check:
        # run_benchmark already asserted tolerance before timing; validate
        # re-checked the recorded numbers.  Nothing further to enforce —
        # there is no speedup floor by design (see module docstring).
        for name in ("numpy-fused", "jax"):
            entry = payload["backends"][name]
            if entry.get("available") and entry["max_rel_err"] > POLICY_RTOL:
                print(f"FAIL: {name} outside tolerance", file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
