"""Future-work evaluation (§3.1): the fairness-deference contention window.

The paper proposes (but does not evaluate) that after two COPA senders win
two consecutive TXOPs by transmitting sequentially, they should defer in
the next contention round using the window [aCWmin+1, 2·aCWmin+1].  We
evaluate it: deference hands the third-party sender its fair TXOP share
back (and in our model somewhat over-corrects — the deferring pair almost
always loses the following round).
"""

import numpy as np

from repro.mac.csma import DcfSimulator, Station

from conftest import write_result

ROUNDS = 6000


def _stations():
    return [
        Station("AP1", copa_partner="AP2"),
        Station("AP2", copa_partner="AP1"),
        Station("X"),
    ]


def test_fairness_deference(benchmark):
    def run(deference: bool):
        sim = DcfSimulator(
            _stations(),
            np.random.default_rng(42),
            copa_mode="sequential",
            fairness_deference=deference,
        )
        return sim.run(ROUNDS)

    baseline = run(False)
    deferred = benchmark(run, True)

    def txop_share(stats, name):
        return stats.txops_won[name] / sum(stats.txops_won.values())

    lines = [
        f"{'variant':<14}{'AP1':>8}{'AP2':>8}{'X':>8}{'Jain':>8}{'collisions':>12}",
        f"{'no deference':<14}{txop_share(baseline, 'AP1'):>8.2f}"
        f"{txop_share(baseline, 'AP2'):>8.2f}{txop_share(baseline, 'X'):>8.2f}"
        f"{baseline.fairness:>8.3f}{baseline.collision_rate:>12.3f}",
        f"{'deference':<14}{txop_share(deferred, 'AP1'):>8.2f}"
        f"{txop_share(deferred, 'AP2'):>8.2f}{txop_share(deferred, 'X'):>8.2f}"
        f"{deferred.fairness:>8.3f}{deferred.collision_rate:>12.3f}",
        "",
        "fair TXOP share per station: 0.33",
        "finding: deference restores X's share to >= fair; in this model it",
        "over-corrects (the deferring pair nearly always loses the next round),",
        "confirming the paper's intuition directionally but suggesting a",
        "gentler window would balance exactly.",
    ]
    write_result("fairness_deference.txt", "\n".join(lines) + "\n")

    # Without deference the pair crowds X out; with it X gets >= fair share.
    assert txop_share(baseline, "X") < 1 / 3
    assert txop_share(deferred, "X") >= 0.30
    assert txop_share(deferred, "X") > txop_share(baseline, "X")
    # The paper hypothesizes no collision increase; confirm no blow-up.
    assert deferred.collision_rate <= baseline.collision_rate + 0.05
