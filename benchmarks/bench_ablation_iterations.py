"""Ablation: the Equi-SINR iteration count (Fig. 6's loop).

The paper iterates the per-stream allocation against recomputed
inter-stream interference "until it converges or an iteration limit is
reached", keeping the best solution found.  This bench sweeps the
iteration cap and shows (a) the first iteration already captures most of
the value (it starts from the equal-power interference assumption) and
(b) extra iterations never hurt, because COPA keeps the best-so-far.
"""

import numpy as np

from repro.core.options import EngineOptions
from repro.sim.config import SimConfig
from repro.sim.experiment import ScenarioSpec, run_experiment

from conftest import write_result

N_TOPOLOGIES = 10
ITERATION_CAPS = (1, 2, 4, 8)


def test_ablation_equi_sinr_iterations(benchmark, config):
    small = config.with_(n_topologies=N_TOPOLOGIES)
    spec = ScenarioSpec("4x2", 4, 2, include_copa_plus=False)

    means = {}
    for cap in ITERATION_CAPS:
        result = run_experiment(spec, small, options=EngineOptions(max_iterations=cap))
        means[cap] = result.series_mbps("copa").mean()

    benchmark(
        lambda: run_experiment(
            spec, small.with_(n_topologies=1), options=EngineOptions(max_iterations=4)
        )
    )

    lines = [f"{'max_iterations':<16}{'COPA Mbps':>10}"]
    for cap, mean in means.items():
        lines.append(f"{cap:<16}{mean:>10.1f}")
    write_result("ablation_iterations.txt", "\n".join(lines) + "\n")

    # Keeping the best-found solution: more iterations never materially hurt.
    assert means[8] >= means[1] * 0.97
    # One iteration is already functional (paper's initialization is sane).
    assert means[1] > 0.6 * means[8]
