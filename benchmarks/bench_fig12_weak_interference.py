"""Figure 12: the 4×2 scenario replayed with interference −10 dB (§4.4).

Paper legend means (Mbit/s): CSMA 110.1, COPA-SEQ 110.4, Null 131.7,
COPA fair 175.8, COPA 178.8, COPA+ fair 184.4, COPA+ 185.9.  Shape: with
weaker interference vanilla nulling now *beats* CSMA (65% of topologies in
the paper); COPA almost never falls back to sequential; fair ≈ greedy.
"""

import numpy as np

from repro.sim.metrics import cdf, compare

from conftest import cdf_table, write_result

PAPER = {
    "csma": 110.1,
    "copa_seq": 110.4,
    "null": 131.7,
    "copa_fair": 175.8,
    "copa": 178.8,
    "copa_plus_fair": 184.4,
    "copa_plus": 185.9,
}
KEYS = ("csma", "copa_seq", "null", "copa_fair", "copa", "copa_plus_fair", "copa_plus")


def test_fig12_weak_interference_cdfs(benchmark, result_4x2, result_4x2_weak):
    table = cdf_table(result_4x2_weak, KEYS, PAPER)
    lines = [table, "CDF series (Mbps @ cumulative probability):"]
    for key in KEYS:
        values, probs = cdf(result_4x2_weak.series_mbps(key))
        points = "  ".join(f"{v:.1f}@{p:.2f}" for v, p in zip(values, probs))
        lines.append(f"{key}: {points}")

    null_vs_csma = compare(
        result_4x2_weak.series_mbps("null"), result_4x2_weak.series_mbps("csma")
    )
    copa_vs_null = compare(
        result_4x2_weak.series_mbps("copa"), result_4x2_weak.series_mbps("null")
    )
    lines.append("")
    lines.append(
        f"null beats csma in {null_vs_csma.win_fraction:.0%} of topologies (paper: 65%)"
    )
    lines.append(
        f"copa beats null by {copa_vs_null.mean_improvement:.0%} mean (paper: 36%)"
    )
    write_result("fig12_weak_interference.txt", "\n".join(lines) + "\n")

    benchmark(lambda: result_4x2_weak.mean_table_mbps())

    null_weak = result_4x2_weak.series_mbps("null")
    null_strong = result_4x2.series_mbps("null")
    copa = result_4x2_weak.series_mbps("copa")
    fair = result_4x2_weak.series_mbps("copa_fair")
    csma = result_4x2_weak.series_mbps("csma")

    # §4.4 shapes.
    assert null_weak.mean() > null_strong.mean(), "weaker interference helps nulling"
    assert null_vs_csma.win_fraction >= 0.4, "nulling now wins a large share"
    assert copa.mean() > csma.mean() * 1.2, "COPA gains grow substantially"
    assert copa_vs_null.mean_improvement > 0.1, "COPA still beats vanilla nulling"
    # "There is little difference between COPA and COPA Fair" (§4.4).
    assert fair.mean() > copa.mean() * 0.92
    # Magnitude: COPA within ~25% of the paper's 178.8.
    assert abs(copa.mean() - PAPER["copa"]) / PAPER["copa"] < 0.25
