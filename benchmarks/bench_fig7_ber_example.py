"""Figure 7: per-subcarrier uncoded BER, COPA vs NoPA, same nulling precoder.

Paper shape: with the same nulling precoding matrix, the no-power-
allocation transmission shows wildly varying per-subcarrier BER and is
stuck at a low bitrate; COPA drops the worst subcarriers, has much lower
BER variation on the rest, and sustains a higher bitrate (the paper's
instance: 39 vs 13.5 Mbit/s with 8 subcarriers dropped).
"""

import numpy as np

from repro.sim.experiment import ScenarioSpec, generate_channel_sets
from repro.sim.network import copa_vs_nopa_example

from conftest import write_result


def test_fig7_copa_vs_nopa(benchmark, config):
    sets = generate_channel_sets(ScenarioSpec("4x2", 4, 2), config)

    def compare_one(index):
        return copa_vs_nopa_example(
            sets[index], config.imperfections(), np.random.default_rng(index)
        )

    benchmark(compare_one, 1)

    # Aggregate the comparison across all topologies for the shape claims.
    results = [compare_one(i) for i in range(len(sets))]

    lines = [f"{'topology':<10}{'NoPA Mbps':>10}{'COPA Mbps':>10}{'dropped':>9}{'COPA MCS':>9}{'NoPA MCS':>9}"]
    for i, r in enumerate(results):
        lines.append(
            f"{i:<10}{r.nopa_rate_bps / 1e6:>10.1f}{r.copa_rate_bps / 1e6:>10.1f}"
            f"{int(r.copa_dropped.sum()):>9}{r.copa_mcs_index:>9}{r.nopa_mcs_index:>9}"
        )
    example = results[1]
    lines.append("")
    lines.append("per-subcarrier uncoded BER for topology 1 (NaN = dropped):")
    lines.append("subcarrier  NoPA_BER     COPA_BER")
    for k in range(52):
        copa = "dropped " if example.copa_dropped[k] else f"{example.copa_ber[k]:.2e}"
        lines.append(f"{k:>10}  {example.nopa_ber[k]:.2e}  {copa:>9}")
    write_result("fig7_ber_example.txt", "\n".join(lines) + "\n")

    copa_rates = np.array([r.copa_rate_bps for r in results])
    nopa_rates = np.array([r.nopa_rate_bps for r in results])
    # COPA must win on average and never lose badly.
    assert copa_rates.mean() > nopa_rates.mean()
    assert np.mean(copa_rates >= nopa_rates * 0.99) > 0.8
    # At least some topologies show the paper's drop-and-upgrade pattern.
    upgraded = [
        r for r in results if r.copa_mcs_index > r.nopa_mcs_index and r.nopa_rate_bps > 0
    ]
    assert len(upgraded) >= len(results) // 4
    # COPA's BER spread across used subcarriers is tighter than NoPA's.
    spread = lambda ber: np.nanstd(np.log10(np.clip(ber, 1e-12, 1)))
    tighter = [
        r for r in results if spread(r.copa_ber) <= spread(r.nopa_ber) + 0.1
    ]
    assert len(tighter) > len(results) / 2
