"""§4.2's observation quantified: COPA's implicit OFDMA.

"Here COPA has selected a form of OFDMA, with some subcarriers being used
by only one AP at a time ... each subcarrier is used by the AP that can
best make use of it."  We measure, for every topology where COPA chooses
a concurrent strategy, how the band splits into shared / exclusive /
unused subcarriers, and how unevenly each AP concentrates its power.
"""

import numpy as np

from repro.sim.analysis import power_concentration, sharing_across_topologies, sharing_of
from repro.sim.metrics import summarize

from conftest import write_result


def test_ofdma_sharing(benchmark, result_4x2, result_1x1):
    outcomes_4x2 = [record.outcome for record in result_4x2.records]
    outcomes_1x1 = [record.outcome for record in result_1x1.records]

    benchmark(lambda: sharing_across_topologies(outcomes_4x2))

    rows = {}
    for label, outcomes in (("4x2", outcomes_4x2), ("1x1", outcomes_1x1)):
        sharings = sharing_across_topologies(outcomes)
        if not sharings:
            rows[label] = None
            continue
        rows[label] = {
            "n_concurrent": len(sharings),
            "shared": float(np.mean([s.shared_fraction for s in sharings])),
            "exclusive": float(np.mean([s.exclusive_fraction for s in sharings])),
            "unused": float(np.mean([s.unused_fraction for s in sharings])),
        }

    concentrations = []
    for outcome in outcomes_4x2:
        chosen = outcome.copa
        if chosen.concurrent and chosen.allocations is not None:
            concentrations.extend(power_concentration(chosen).values())

    lines = [f"{'scenario':<10}{'conc topos':>11}{'shared':>9}{'exclusive':>10}{'unused':>8}"]
    for label, row in rows.items():
        if row is None:
            lines.append(f"{label:<10}{'0':>11}{'-':>9}{'-':>10}{'-':>8}")
            continue
        lines.append(
            f"{label:<10}{row['n_concurrent']:>11}{row['shared']:>9.0%}"
            f"{row['exclusive']:>10.0%}{row['unused']:>8.0%}"
        )
    if concentrations:
        summary = summarize(concentrations)
        lines.append("")
        lines.append(
            f"power concentration (Jain over used subcarriers), 4x2 concurrent: "
            f"mean {summary.mean:.2f} (1.0 = equal power)"
        )
    write_result("ofdma_sharing.txt", "\n".join(lines) + "\n")

    # Shape: in 4x2 most topologies run concurrently; the band is mostly
    # shared but a nonzero exclusive/unused fraction appears (subcarrier
    # selection at work), and allocated power is measurably non-uniform.
    assert rows["4x2"] is not None and rows["4x2"]["n_concurrent"] >= 10
    assert rows["4x2"]["shared"] > 0.5
    assert rows["4x2"]["exclusive"] + rows["4x2"]["unused"] > 0.0
    assert np.mean(concentrations) < 0.999
