"""Perf acceptance for the sharded experiment / allocation service.

Two budgets guard ``repro.sim.service``:

* the **allocation service** must actually serve repeat traffic from the
  warm cache: on a repeat-query mix (every distinct channel set queried
  ``REPEATS`` times) the hit rate must reach ``HIT_RATE_FLOOR`` and a
  warm (cache-hit) query must be at least ``WARM_SPEEDUP_FLOOR``x faster
  than the cold (engine-computing) query that populated its cell;
* the **shard runner** is measured for N-worker scaling (1/2/4 worker
  processes draining one shard directory) — recorded for trend tracking,
  not gated, because CI wall-clock for subprocess fleets is too noisy to
  fail a PR on.

Before timing anything the harness asserts correctness: every warm
answer is bit-identical to the cold answer that filled its cell, and
every N-worker harvest is bit-identical to the serial baseline — a
service that is fast but wrong must never post a number.

Run it as a script (CI can use ``--quick --check``)::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]
        [--output BENCH_service.json] [--check] [--validate PATH]

``--check`` exits non-zero if the warm hit rate drops below 95% or the
warm query speedup below 3x; ``--validate PATH`` only validates an
existing payload.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import statistics
import sys
import tempfile
import time
from typing import Dict, List

if __package__ in (None, ""):  # script mode: make src/ importable
    sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

SCHEMA_ID = "repro.bench/service-v1"
DEFAULT_OUTPUT = "BENCH_service.json"
SEED = 2015

#: The repeat-query mix must be served warm at least this often (--check).
HIT_RATE_FLOOR = 0.95
#: A warm (cache-hit) query must beat a cold (computed) one by this factor.
WARM_SPEEDUP_FLOOR = 3.0
#: Worker-process counts measured for shard-runner scaling.
WORKER_COUNTS = (1, 2, 4)


def _query_workload(quick: bool):
    from repro.sim.config import SimConfig
    from repro.sim.experiment import ScenarioSpec

    spec = ScenarioSpec("1x1", 1, 1, include_copa_plus=False)
    config = SimConfig(n_topologies=4 if quick else 10, seed=SEED)
    repeats = 20  # (repeats-1)/repeats = 95% best-case hit rate
    return spec, config, repeats


def _scaling_workload(quick: bool):
    from repro.sim.config import SimConfig
    from repro.sim.experiment import ScenarioSpec

    # Full mode needs enough per-shard compute for parallelism to beat
    # the per-process interpreter/import cost; quick mode only proves the
    # path end to end (its scaling numbers are startup-dominated noise).
    if quick:
        return (
            ScenarioSpec("1x1", 1, 1, include_copa_plus=False),
            SimConfig(n_topologies=8, seed=SEED),
            4,  # n_shards
        )
    return (
        ScenarioSpec("4x2", 4, 2, include_copa_plus=False),
        SimConfig(n_topologies=24, seed=SEED),
        8,  # n_shards
    )


def _bench_queries(quick: bool, workdir: str) -> Dict[str, object]:
    """Cold vs warm allocation-service queries on a repeat mix."""
    from repro.cache import ResultCache
    from repro.sim.experiment import generate_channel_sets
    from repro.sim.service import DEFAULT_GRID_DB, AllocationService

    spec, config, repeats = _query_workload(quick)
    channel_sets = generate_channel_sets(spec, config)
    cache = ResultCache(os.path.join(workdir, "service_cache"))
    service = AllocationService(cache, config=config)

    # --- correctness gate: warm answers are bit-identical to cold ones,
    # including through a second service handle on the same cache ---
    cold_answers = [service.query(channels) for channels in channel_sets]
    assert all(not answer.hit for answer in cold_answers)
    other_handle = AllocationService(cache, config=config)
    for channels, cold in zip(channel_sets, cold_answers):
        warm = other_handle.query(channels)
        assert warm.hit, "repeat query missed the warm cache"
        assert warm.key == cold.key
        assert (
            warm.record.outcome.copa.aggregate_bps
            == cold.record.outcome.copa.aggregate_bps
        ), "warm answer drifted from the cold answer that filled its cell"

    # --- timed repeat mix: every channel set queried `repeats` times ---
    timed = AllocationService(
        ResultCache(os.path.join(workdir, "timed_cache")), config=config
    )
    cold_samples, warm_samples = [], []
    for _ in range(repeats):
        for channels in channel_sets:
            answer = timed.query(channels)
            (warm_samples if answer.hit else cold_samples).append(answer.elapsed_s)
    stats = timed.stats
    assert stats.queries == repeats * len(channel_sets)
    cold_ms = float(statistics.median(cold_samples)) * 1e3
    warm_ms = float(statistics.median(warm_samples)) * 1e3
    return {
        "scenario": spec.name,
        "n_channels": len(channel_sets),
        "repeats": repeats,
        "grid_db": DEFAULT_GRID_DB,
        "queries": stats.queries,
        "hits": stats.hits,
        "misses": stats.misses,
        "hit_rate": round(stats.hit_rate, 4),
        "hit_rate_floor": HIT_RATE_FLOOR,
        "cold_ms": round(cold_ms, 3),
        "warm_ms": round(warm_ms, 3),
        "speedup": round(cold_ms / warm_ms, 2),
        "speedup_floor": WARM_SPEEDUP_FLOOR,
    }


def _bench_scaling(quick: bool, workdir: str) -> Dict[str, object]:
    """Wall-clock for 1/2/4 worker processes draining one shard dir."""
    from concurrent.futures import ProcessPoolExecutor

    from repro.sim.experiment import run_experiment
    from repro.sim.service import harvest, publish_shards, worker_entry

    spec, config, n_shards = _scaling_workload(quick)
    baseline = run_experiment(spec, config, workers=1)
    reference = {key: baseline.series_mbps(key) for key in baseline.available_series()}

    points = []
    for n_workers in WORKER_COUNTS:
        shard_dir = os.path.join(workdir, f"shards_{n_workers}")
        cache_root = os.path.join(workdir, f"cache_{n_workers}")  # cold per count
        publish_shards(shard_dir, spec, config, n_shards=n_shards)
        start = time.perf_counter()
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [
                pool.submit(
                    worker_entry,
                    shard_dir,
                    cache_root=cache_root,
                    worker_id=f"bench_{n_workers}_{rank}",
                    timeout_s=600.0,
                    observe=False,
                )
                for rank in range(n_workers)
            ]
            for future in futures:
                future.result(timeout=600.0)
        wall_s = time.perf_counter() - start
        # --- correctness gate: the harvest is bit-identical to serial ---
        result = harvest(shard_dir)
        for key, values in reference.items():
            np.testing.assert_array_equal(
                result.series_mbps(key),
                values,
                err_msg=f"{n_workers}-worker harvest drifted on series {key!r}",
            )
        points.append({"workers": n_workers, "wall_s": round(wall_s, 4)})
    serial_wall = points[0]["wall_s"]
    for point in points:
        point["speedup_vs_serial"] = round(serial_wall / point["wall_s"], 2)
    return {
        "scenario": spec.name,
        "n_topologies": config.n_topologies,
        "n_shards": n_shards,
        "points": points,
    }


def run_benchmark(quick: bool = False) -> Dict[str, object]:
    """Time the query and scaling workloads and build the service-v1 payload."""
    workdir = tempfile.mkdtemp(prefix="bench_service_")
    try:
        query = _bench_queries(quick, workdir)
        scaling = _bench_scaling(quick, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "schema": SCHEMA_ID,
        "quick": quick,
        "seed": SEED,
        "query": query,
        "scaling": scaling,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            # Interprets the scaling points: on a 1-CPU host N worker
            # processes time-slice one core and speedup_vs_serial ~ 1.0
            # is the expected (correct) outcome.
            "cpus": os.cpu_count() or 1,
        },
    }


def validate_bench_payload(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid service-v1 document."""

    def fail(message: str):
        raise ValueError(f"BENCH_service payload invalid: {message}")

    if not isinstance(payload, dict):
        fail("payload must be an object")
    if payload.get("schema") != SCHEMA_ID:
        fail(f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("quick"), bool):
        fail("quick must be a boolean")
    query = payload.get("query")
    if not isinstance(query, dict):
        fail("query must be an object")
    for key in ("n_channels", "repeats", "queries", "hits", "misses"):
        if not isinstance(query.get(key), int) or query[key] < 0:
            fail(f"query.{key} must be a non-negative integer")
    if query["queries"] != query["hits"] + query["misses"]:
        fail("query.queries must equal hits + misses")
    value = query.get("hit_rate")
    if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
        fail("query.hit_rate must be a number in [0, 1]")
    for key in ("cold_ms", "warm_ms", "speedup", "grid_db"):
        value = query.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(f"query.{key} must be a positive number")
    scaling = payload.get("scaling")
    if not isinstance(scaling, dict):
        fail("scaling must be an object")
    for key in ("n_topologies", "n_shards"):
        if not isinstance(scaling.get(key), int) or scaling[key] < 1:
            fail(f"scaling.{key} must be a positive integer")
    points = scaling.get("points")
    if not isinstance(points, list) or not points:
        fail("scaling.points must be a non-empty list")
    for point in points:
        if not isinstance(point, dict) or not isinstance(point.get("workers"), int):
            fail("scaling point must carry an integer worker count")
        for key in ("wall_s", "speedup_vs_serial"):
            value = point.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"scaling point {key} must be a positive number")
    if [point["workers"] for point in points] != sorted(
        {point["workers"] for point in points}
    ):
        fail("scaling points must be sorted by distinct worker count")


def format_report(payload: Dict[str, object]) -> str:
    query = payload["query"]
    lines = [
        f"{'cold query (median)':<28}{query['cold_ms']:>10.2f} ms",
        f"{'warm query (median)':<28}{query['warm_ms']:>10.2f} ms",
        f"{'warm speedup':<28}{query['speedup']:>9.1f}x  (floor {query['speedup_floor']:.0f}x)",
        f"{'warm hit rate':<28}{query['hit_rate']:>10.1%}"
        f"  (floor {query['hit_rate_floor']:.0%}, {query['hits']}/{query['queries']})",
    ]
    for point in payload["scaling"]["points"]:
        lines.append(
            f"{'shard drain, %d worker(s)' % point['workers']:<28}"
            f"{point['wall_s']:>10.2f} s  ({point['speedup_vs_serial']:.2f}x vs serial)"
        )
    return "\n".join(lines)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI profile: fewer channels/topologies")
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="payload path (default BENCH_service.json)")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero unless warm hit rate >= {HIT_RATE_FLOOR:.0%} and "
        f"warm query speedup >= {WARM_SPEEDUP_FLOOR:.0f}x",
    )
    parser.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing payload file and exit (no benchmarking)",
    )
    args = parser.parse_args(argv)

    if args.validate:
        with open(args.validate) as handle:
            payload = json.load(handle)
        validate_bench_payload(payload)
        print(f"{args.validate}: valid {SCHEMA_ID} payload")
        return 0

    payload = run_benchmark(quick=args.quick)
    validate_bench_payload(payload)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(format_report(payload))
    print(f"wrote {args.output}")

    if args.check:
        failures = []
        if payload["query"]["hit_rate"] < HIT_RATE_FLOOR:
            failures.append(
                f"warm hit rate {payload['query']['hit_rate']:.1%} below the "
                f"{HIT_RATE_FLOOR:.0%} floor"
            )
        if payload["query"]["speedup"] < WARM_SPEEDUP_FLOOR:
            failures.append(
                f"warm query speedup {payload['query']['speedup']}x below the "
                f"{WARM_SPEEDUP_FLOOR:.0f}x floor"
            )
        if failures:
            print("FAIL: " + "; ".join(failures), file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
