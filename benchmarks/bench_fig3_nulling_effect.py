"""Figure 3: end-to-end effect of nulling on SINR, SNR and INR.

Paper numbers (30 indoor 4×2 topologies): INR reduction ≈ 27 dB mean,
SNR ("collateral damage") reduction ≈ 8 dB, net SINR increase ≈ 18 dB.
Shape requirement: large positive INR reduction, a clearly positive but
much smaller SNR reduction, positive net SINR gain.
"""

import numpy as np

from repro.sim.experiment import ScenarioSpec, generate_channel_sets
from repro.sim.network import measure_nulling_effect

from conftest import write_result

PAPER = {"inr_reduction": 27.0, "snr_reduction": 8.0, "sinr_increase": 18.0}


def _measure_all(config):
    sets = generate_channel_sets(ScenarioSpec("4x2", 4, 2), config)
    imperfections = config.imperfections()
    effects = []
    for index, channels in enumerate(sets):
        for client_index in (0, 1):
            effects.append(
                measure_nulling_effect(
                    channels,
                    imperfections,
                    np.random.default_rng(7000 + index),
                    client_index=client_index,
                )
            )
    return effects


def test_fig3_nulling_statistics(benchmark, config):
    effects = _measure_all(config)

    def kernel():
        # The timed unit: one topology's full nulling measurement.
        sets = generate_channel_sets(ScenarioSpec("4x2", 4, 2), config.with_(n_topologies=1))
        return measure_nulling_effect(sets[0], config.imperfections(), np.random.default_rng(0))

    benchmark(kernel)

    inr = np.array([e.inr_reduction_db for e in effects])
    snr = np.array([e.snr_reduction_db for e in effects])
    sinr = np.array([e.sinr_increase_db for e in effects])

    rows = [
        f"{'quantity':<16}{'paper dB':>10}{'measured dB':>14}{'std':>8}",
        f"{'INR reduction':<16}{PAPER['inr_reduction']:>10.1f}{inr.mean():>14.1f}{inr.std():>8.1f}",
        f"{'SNR reduction':<16}{PAPER['snr_reduction']:>10.1f}{snr.mean():>14.1f}{snr.std():>8.1f}",
        f"{'SINR increase':<16}{PAPER['sinr_increase']:>10.1f}{sinr.mean():>14.1f}{sinr.std():>8.1f}",
    ]
    write_result("fig3_nulling_effect.txt", "\n".join(rows) + "\n")

    # Shape assertions.
    assert 18.0 < inr.mean() < 36.0, "INR reduction should be near the paper's 27 dB"
    assert 0.0 < snr.mean() < inr.mean(), "collateral damage positive but smaller"
    assert sinr.mean() > 0.0, "nulling must improve SINR on average"
    # The paper notes reductions 'generally do not exceed 30 dB'.
    assert np.median(inr) < 35.0
