"""Generalizing the paper's operating points: environment sweeps.

* Coherence time (Table 1's axis, carried to end-to-end throughput):
  COPA's net win over CSMA grows as the channel gets more static.
* Interference strength (§4.4's single −10 dB point, as a curve).
* Antenna configuration (the §4 progression 1×1 → 2×2 → 3×2 → 4×2).
"""

import numpy as np

from repro.sim.experiment import ScenarioSpec
from repro.sim.sweep import (
    sweep_antenna_configurations,
    sweep_coherence_time,
    sweep_interference,
)

from conftest import write_result

N_TOPOLOGIES = 10


def test_sweep_coherence(benchmark, config):
    small = config.with_(n_topologies=N_TOPOLOGIES)
    spec = ScenarioSpec("4x2", 4, 2, include_copa_plus=False)
    sweep = sweep_coherence_time((0.004, 0.030, 0.120, 1.0), spec=spec, config=small)
    benchmark(lambda: sweep.gains("copa"))

    lines = [f"{'coherence s':<12}{'csma':>8}{'copa':>8}{'copa gain':>11}"]
    for point in sweep.points:
        lines.append(
            f"{point.parameter:<12g}{point.means_mbps['csma']:>8.1f}"
            f"{point.means_mbps['copa']:>8.1f}{point.gain_over_csma():>10.0%}"
        )
    write_result("sweep_coherence.txt", "\n".join(lines) + "\n")

    gains = sweep.gains("copa")
    assert gains[-1] >= gains[0]  # overhead amortizes away
    _, csma = sweep.series("csma")
    assert np.ptp(csma) / csma.mean() < 0.01  # CSMA does not care


def test_sweep_interference(benchmark, config):
    small = config.with_(n_topologies=N_TOPOLOGIES)
    spec = ScenarioSpec("4x2", 4, 2, include_copa_plus=False)
    sweep = sweep_interference((0.0, -5.0, -10.0, -20.0), spec=spec, config=small)
    benchmark(lambda: sweep.gains("copa"))

    lines = [f"{'offset dB':<10}{'csma':>8}{'null':>8}{'copa':>8}{'copa gain':>11}"]
    for point in sweep.points:
        lines.append(
            f"{point.parameter:<10g}{point.means_mbps['csma']:>8.1f}"
            f"{point.means_mbps['null']:>8.1f}{point.means_mbps['copa']:>8.1f}"
            f"{point.gain_over_csma():>10.0%}"
        )
    write_result("sweep_interference.txt", "\n".join(lines) + "\n")

    _, null = sweep.series("null")
    assert null[-1] > null[0], "weaker interference rescues vanilla nulling"
    gains = sweep.gains("copa")
    assert gains[-1] > gains[0], "COPA's concurrency gain grows"


def test_sweep_antennas(benchmark, config):
    small = config.with_(n_topologies=N_TOPOLOGIES)
    sweep = sweep_antenna_configurations(((1, 1), (2, 2), (3, 2), (4, 2)), config=small)
    benchmark(lambda: sweep.gains("copa"))

    lines = [f"{'config':<8}{'csma':>8}{'copa':>8}{'copa gain':>11}"]
    labels = ("1x1", "2x2", "3x2", "4x2")
    for label, point in zip(labels, sweep.points):
        lines.append(
            f"{label:<8}{point.means_mbps['csma']:>8.1f}"
            f"{point.means_mbps['copa']:>8.1f}{point.gain_over_csma():>10.0%}"
        )
    write_result("sweep_antennas.txt", "\n".join(lines) + "\n")

    _, copa = sweep.series("copa")
    assert np.all(np.diff(copa) > -5.0)  # throughput grows with antennas
    assert copa[-1] > copa[0] * 1.5
