"""Figure 14: potential gains of per-subcarrier bitrates (multiple decoders).

Paper shape (improvement over 1-decoder CSMA, per scenario):
* 1×1 — multiple decoders help CSMA substantially (it cannot drop
  subcarriers), but barely help COPA (no nulling possible);
* 4×2 / 3×2 — CSMA "doesn't greatly benefit as it is already running at
  full speed", while COPA gains a further ~10% (4×2) / ~5% (3×2);
* overall: "even with a single decoder COPA has already realized most of
  the potential gains".
"""

import numpy as np

from repro.core.multi_decoder import per_subcarrier_rates
from repro.core.options import EngineOptions
from repro.sim.config import SimConfig
from repro.sim.experiment import ScenarioSpec, run_experiment

from conftest import write_result

#: Fewer topologies than the CDF figures: Fig. 14 is a bar chart of means
#: and each scenario must be run twice (1 decoder and N decoders).
N_TOPOLOGIES = 12


def _improvements(scenario: ScenarioSpec, config) -> dict:
    single = run_experiment(scenario, config)
    multi = run_experiment(
        scenario, config, options=EngineOptions(rate_selector=per_subcarrier_rates)
    )
    csma_1 = single.series_mbps("csma").mean()
    return {
        "csma_n": multi.series_mbps("csma").mean() / csma_1 - 1,
        "copa_fair_1": single.series_mbps("copa_fair").mean() / csma_1 - 1,
        "copa_1": single.series_mbps("copa").mean() / csma_1 - 1,
        "copa_fair_n": multi.series_mbps("copa_fair").mean() / csma_1 - 1,
        "copa_n": multi.series_mbps("copa").mean() / csma_1 - 1,
    }


def test_fig14_multi_decoder_bars(benchmark, config):
    small = config.with_(n_topologies=N_TOPOLOGIES)
    scenarios = {
        "1x1": ScenarioSpec("1x1", 1, 1, include_copa_plus=False),
        "4x2": ScenarioSpec("4x2", 4, 2, include_copa_plus=False),
        "3x2": ScenarioSpec("3x2", 3, 2, include_copa_plus=False),
    }
    bars = {name: _improvements(spec, small) for name, spec in scenarios.items()}

    # The timed unit: one multi-decoder rate selection.
    rng = np.random.default_rng(0)
    sinr = 10 ** (rng.uniform(0, 4, (52, 2)))
    benchmark(per_subcarrier_rates, sinr)

    header = f"{'scenario':<10}" + "".join(
        f"{k:>14}" for k in ("csma_n", "copa_fair_1", "copa_1", "copa_fair_n", "copa_n")
    )
    lines = [
        "improvement over 1-decoder CSMA (%):",
        header,
    ]
    for name, row in bars.items():
        lines.append(
            f"{name:<10}" + "".join(f"{100 * row[k]:>14.1f}" for k in row)
        )
    write_result("fig14_multi_decoder.txt", "\n".join(lines) + "\n")

    # Shape assertions.
    for name, row in bars.items():
        # Multiple decoders can only help (same menu, finer rate control).
        assert row["copa_n"] >= row["copa_1"] - 0.03
        assert row["csma_n"] >= -0.03
    # MIMO scenarios: N decoders add a bounded increment on top of COPA.
    # (The paper reports ~5-10%; our substrate leaves a wider post-nulling
    # SINR spread, so the per-subcarrier-rate headroom is larger — the
    # direction and ordering of every bar still match.)
    for name in ("4x2", "3x2"):
        extra = bars[name]["copa_n"] - bars[name]["copa_1"]
        assert -0.02 <= extra <= 0.45
    # COPA (1 decoder) beats N-decoder CSMA in the MIMO scenarios.
    assert bars["4x2"]["copa_1"] > bars["4x2"]["csma_n"]
