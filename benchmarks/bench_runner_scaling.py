"""Parallel-runner scaling: wall-clock speedup of the topology fan-out.

Runs the 4×2 scenario (30 topologies, no COPA+, the ISSUE's reference
workload) serially and with 4 workers, verifies the results are
bit-identical, and records the measured speedup.  The ≥2× assertion only
applies where it can physically hold — a machine with ≥4 cores; on
smaller boxes the benchmark still verifies equivalence and records the
numbers.
"""

import os

import numpy as np

from repro.sim.config import DEFAULT_CONFIG
from repro.sim.experiment import ScenarioSpec, run_experiment

from conftest import write_result

N_TOPOLOGIES = 30
WORKERS = 4


def test_runner_scaling(config):
    spec = ScenarioSpec("4x2", 4, 2, include_copa_plus=False)
    cfg = config.with_(n_topologies=N_TOPOLOGIES)

    serial = run_experiment(spec, cfg, workers=1)
    parallel = run_experiment(spec, cfg, workers=WORKERS)

    for key in serial.available_series():
        np.testing.assert_array_equal(
            serial.series_mbps(key), parallel.series_mbps(key)
        )

    speedup = serial.stats.total_wall_s / parallel.stats.total_wall_s
    cores = os.cpu_count() or 1
    lines = [
        f"4x2 scenario, {N_TOPOLOGIES} topologies, {cores} cores",
        f"{'mode':<14}{'wall s':>9}{'topo/s':>9}{'util':>7}",
        f"{'serial':<14}{serial.stats.total_wall_s:>9.2f}"
        f"{serial.stats.topologies_per_s:>9.2f}"
        f"{serial.stats.worker_utilization:>7.0%}",
        f"{f'{WORKERS} workers':<14}{parallel.stats.total_wall_s:>9.2f}"
        f"{parallel.stats.topologies_per_s:>9.2f}"
        f"{parallel.stats.worker_utilization:>7.0%}",
        f"speedup: {speedup:.2f}x (results bit-identical)",
    ]
    write_result("runner_scaling.txt", "\n".join(lines) + "\n")

    assert parallel.stats.parallel, "the pool path must actually run"
    if cores >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {WORKERS} workers on {cores} cores, "
            f"measured {speedup:.2f}x"
        )
