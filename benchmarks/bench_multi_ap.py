"""Extension: COPA pairing in neighbourhoods of 3-5 networks (§3.1).

The paper evaluates two APs and sketches the >2 case.  We run the
round-based pairing scheduler: each contention winner coordinates with
its best responder while the rest defer, versus plain CSMA (winner alone).
Expected shape: COPA's aggregate advantage persists with more networks
(two transmissions per round instead of one) while Jain fairness across
clients stays comparable to CSMA's.
"""

import numpy as np

from repro.core.scheduler import MultiApScheduler, Neighbourhood

from conftest import write_result

N_ROUNDS = 80


def test_multi_ap_pairing(benchmark, config):
    rows = {}
    for n_pairs in (2, 3, 4, 5):
        neighbourhood = Neighbourhood.sample(
            n_pairs,
            np.random.default_rng(1000 + n_pairs),
            generator=config.topology_generator(),
            model=config.channel_model(),
        )
        scheduler = MultiApScheduler(
            neighbourhood,
            imperfections=config.imperfections(),
            rng=np.random.default_rng(n_pairs),
        )
        copa = scheduler.run(N_ROUNDS, mode="copa")
        csma = scheduler.run(N_ROUNDS, mode="csma")
        rows[n_pairs] = {
            "copa": copa.aggregate_bps / 1e6,
            "csma": csma.aggregate_bps / 1e6,
            "copa_fair": copa.fairness,
            "csma_fair": csma.fairness,
        }

    benchmark(
        lambda: MultiApScheduler(
            Neighbourhood.sample(3, np.random.default_rng(0)),
            rng=np.random.default_rng(0),
        ).run(5, mode="copa")
    )

    lines = [
        f"{'networks':<10}{'csma Mbps':>10}{'copa Mbps':>10}{'gain':>7}"
        f"{'csma Jain':>11}{'copa Jain':>11}"
    ]
    for n_pairs, row in rows.items():
        gain = row["copa"] / row["csma"] - 1
        lines.append(
            f"{n_pairs:<10}{row['csma']:>10.1f}{row['copa']:>10.1f}{gain:>6.0%}"
            f"{row['csma_fair']:>11.2f}{row['copa_fair']:>11.2f}"
        )
    write_result("multi_ap.txt", "\n".join(lines) + "\n")

    for n_pairs, row in rows.items():
        assert row["copa"] > row["csma"], f"{n_pairs} networks: COPA must win"
    # Fairness stays in a sane band (pairing favours good pairings, but the
    # uniform leader draw keeps every client in the rotation).
    assert all(row["copa_fair"] > 0.4 for row in rows.values())
