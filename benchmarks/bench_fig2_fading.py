"""Figure 2: per-subcarrier received power at two antennas.

Paper shape: with equal power per subcarrier, the received power from one
send antenna varies by tens of dB across the band, and the two receive
antennas (half a wavelength apart) fade independently.
"""

import numpy as np

from repro.phy.channel import ChannelModel
from repro.phy.topology import TopologyGenerator
from repro.sim.network import per_subcarrier_rx_power_dbm

from conftest import write_result


def _one_realization(seed=2):
    rng = np.random.default_rng(seed)
    topology = TopologyGenerator().sample(rng, ap_antennas=1, client_antennas=2)
    return ChannelModel().realize(topology, rng)


def test_fig2_per_subcarrier_power(benchmark):
    channels = _one_realization()
    powers = benchmark(per_subcarrier_rx_power_dbm, channels, "AP1", "C1")

    spread_ant1 = float(np.ptp(powers[0]))
    spread_ant2 = float(np.ptp(powers[1]))
    correlation = float(np.corrcoef(powers[0], powers[1])[0, 1])

    lines = ["subcarrier  ant1_dBm  ant2_dBm"]
    for k in range(powers.shape[1]):
        lines.append(f"{k:>10}  {powers[0, k]:>8.1f}  {powers[1, k]:>8.1f}")
    lines.append("")
    lines.append(f"spread ant1: {spread_ant1:.1f} dB   spread ant2: {spread_ant2:.1f} dB")
    lines.append(f"antenna correlation: {correlation:.2f}")
    lines.append("paper shape: 20-30 dB swings, antennas fade differently")
    write_result("fig2_fading.txt", "\n".join(lines) + "\n")

    # Paper shape: deep narrow-band fades, antennas decorrelated.
    assert spread_ant1 > 8.0 or spread_ant2 > 8.0
    assert correlation < 0.98


def test_fig2_statistics_across_realizations(benchmark):
    def spreads():
        out = []
        for seed in range(12):
            powers = per_subcarrier_rx_power_dbm(_one_realization(seed), "AP1", "C1")
            out.append(np.ptp(powers[0]))
        return np.asarray(out)

    values = benchmark(spreads)
    assert values.mean() > 10.0
