"""Perf baseline for the PHY hot paths: batched MMSE and table-driven Viterbi.

Every scheme prediction and waveform-level measurement funnels through two
kernels — the per-subcarrier MMSE receiver and the Viterbi decoder — so
this harness pins the repo's performance trajectory on exactly those: it
times the vectorized kernels against the retained ``_reference_*`` loop
implementations on a seeded 52-subcarrier / 2-stream / MCS-sweep workload,
times an end-to-end ``StrategyEngine.run()`` under ``repro.obs`` spans,
and writes a schema-stable ``BENCH_phy.json`` (``repro.bench/phy-v1``).

Run it as a script (CI's perf-smoke job uses ``--quick --check``)::

    PYTHONPATH=src python benchmarks/bench_phy_hotpaths.py [--quick]
        [--output BENCH_phy.json] [--check] [--validate PATH]

``--check`` exits non-zero if any vectorized/reference speedup drops
below 1.0x; ``--validate PATH`` only validates an existing payload.
Before timing anything the harness asserts the vectorized kernels still
match the references (decoded bits exactly, SINRs to 1e-10), so a
divergent kernel can never post a baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import Callable, Dict, List

if __package__ in (None, ""):  # script mode: make src/ importable
    sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

SCHEMA_ID = "repro.bench/phy-v1"
DEFAULT_OUTPUT = "BENCH_phy.json"
SEED = 2015

#: Acceptance targets for the default (non-quick) workload; reported in
#: the payload, enforced only as >= 1.0x by ``--check`` (the CI floor).
TARGETS = {"mmse": 3.0, "viterbi_soft": 5.0}

_KERNEL_KEYS = ("mmse", "viterbi_soft", "viterbi_hard")


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------


def _mmse_workload(seed: int, n_sc: int = 52, n_rx: int = 2, n_streams: int = 2, n_symbols: int = 12, snr_db: float = 22.0):
    """A seeded equalizer problem shaped like one received MIMO frame."""
    rng = np.random.default_rng(seed)
    shape = (n_sc, n_rx, n_streams)
    scaled = (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)) / np.sqrt(2)
    sym = (n_streams, n_symbols, n_sc)
    x = ((rng.integers(0, 2, sym) * 2 - 1) + 1j * (rng.integers(0, 2, sym) * 2 - 1)) / np.sqrt(2)
    y = np.einsum("krs,stk->rtk", scaled, x)
    noise_variance = float(np.mean(np.abs(y) ** 2) / 10 ** (snr_db / 10))
    y = y + np.sqrt(noise_variance / 2) * (
        rng.standard_normal(y.shape) + 1j * rng.standard_normal(y.shape)
    )
    sample_cov = np.einsum("rtk,stk->krs", y, np.conj(y)) / n_symbols
    return scaled, y, sample_cov, noise_variance


def _viterbi_workloads(seed: int, n_sc: int = 52, n_symbols: int = 12, snr_db: float = 5.0):
    """One coded frame per MCS: (llrs, hard_bits, code_rate, n_info)."""
    from repro.phy.constants import MCS_TABLE
    from repro.phy.llr import llr_demodulate
    from repro.phy.qam import awgn, demodulate_hard, modulate
    from repro.phy.viterbi import encode, puncture
    from repro.util import db_to_linear

    rng = np.random.default_rng(seed)
    frames = []
    for mcs in MCS_TABLE:
        num, den = mcs.code_rate
        coded_bits = n_sc * mcs.modulation.bits_per_symbol * n_symbols
        n_info = coded_bits * num // den
        info = rng.integers(0, 2, n_info).astype(np.int8)
        coded = puncture(encode(info), mcs.code_rate)[:coded_bits]
        symbols = modulate(coded, mcs.modulation)
        snr = float(db_to_linear(snr_db))
        received = awgn(symbols, snr, rng)
        llrs = llr_demodulate(received, mcs.modulation, 1.0 / snr)
        hard = demodulate_hard(received, mcs.modulation)
        frames.append((llrs, hard, mcs.code_rate, n_info, mcs.index))
    return frames


# ----------------------------------------------------------------------
# timing
# ----------------------------------------------------------------------


def _median_us(fn: Callable[[], object], repeats: int, warmup: int = 1) -> float:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e6)
    return float(statistics.median(samples))


def _kernel_entry(reference_us: float, vectorized_us: float, repeats: int) -> Dict[str, float]:
    return {
        "reference_us": round(reference_us, 3),
        "vectorized_us": round(vectorized_us, 3),
        "speedup": round(reference_us / vectorized_us, 3),
        "repeats": repeats,
    }


def run_benchmark(quick: bool = False) -> Dict[str, object]:
    """Time every kernel and build the ``repro.bench/phy-v1`` payload."""
    from repro.obs import Collector
    from repro.phy import mimo_transceiver as mt
    from repro.phy import viterbi as vit

    repeats = 5 if quick else 25

    # --- MMSE kernel ---
    scaled, rx_grids, sample_cov, noise_variance = _mmse_workload(SEED)
    est_vec, sinr_vec = mt._mmse_equalize(scaled, rx_grids, sample_cov, noise_variance)
    est_ref, sinr_ref = mt._reference_mmse_equalize(scaled, rx_grids, sample_cov, noise_variance)
    np.testing.assert_allclose(sinr_vec, sinr_ref, rtol=1e-10, atol=1e-12)
    np.testing.assert_allclose(est_vec, est_ref, rtol=1e-8, atol=1e-10)
    mmse = _kernel_entry(
        _median_us(lambda: mt._reference_mmse_equalize(scaled, rx_grids, sample_cov, noise_variance), repeats),
        _median_us(lambda: mt._mmse_equalize(scaled, rx_grids, sample_cov, noise_variance), repeats),
        repeats,
    )

    # --- Viterbi kernels over the MCS sweep ---
    frames = _viterbi_workloads(SEED)
    if quick:
        frames = frames[:: len(frames) // 3]
    for llrs, hard, rate, n_info, _ in frames:
        assert np.array_equal(
            vit.viterbi_decode_soft(llrs, rate, n_info_bits=n_info),
            vit._reference_viterbi_decode_soft(llrs, rate, n_info_bits=n_info),
        ), f"soft decoder diverged from reference at rate {rate}"
        assert np.array_equal(
            vit.viterbi_decode(hard, rate, n_info_bits=n_info),
            vit._reference_viterbi_decode(hard, rate, n_info_bits=n_info),
        ), f"hard decoder diverged from reference at rate {rate}"

    def _sweep(decoder, column):
        def run():
            for frame in frames:
                decoder(frame[column], frame[2], n_info_bits=frame[3])

        return run

    vit_repeats = max(3, repeats // 5)
    viterbi_soft = _kernel_entry(
        _median_us(_sweep(vit._reference_viterbi_decode_soft, 0), vit_repeats),
        _median_us(_sweep(vit.viterbi_decode_soft, 0), vit_repeats),
        vit_repeats,
    )
    viterbi_hard = _kernel_entry(
        _median_us(_sweep(vit._reference_viterbi_decode, 1), vit_repeats),
        _median_us(_sweep(vit.viterbi_decode, 1), vit_repeats),
        vit_repeats,
    )

    # --- end-to-end StrategyEngine.run() under obs spans ---
    from repro.core.strategy import StrategyEngine
    from repro.sim.config import SimConfig
    from repro.sim.experiment import ScenarioSpec, generate_channel_sets

    spec = ScenarioSpec("4x2", 4, 2, include_copa_plus=False)
    config = SimConfig(n_topologies=1)
    channels = generate_channel_sets(spec, config)[0]

    def engine_run(collector=None):
        engine = StrategyEngine(
            channels,
            imperfections=config.imperfections(),
            rng=np.random.default_rng(SEED),
            coherence_s=config.coherence_s,
            collector=collector,
        )
        return engine.run()

    collector = Collector()
    engine_run(collector)
    engine_repeats = max(3, repeats // 5)
    end_to_end = {
        "scenario": spec.name,
        "engine_run_us": round(_median_us(engine_run, engine_repeats), 3),
        "repeats": engine_repeats,
        "observed_spans": len(collector.spans),
    }

    return {
        "schema": SCHEMA_ID,
        "quick": quick,
        "workload": {
            "seed": SEED,
            "n_subcarriers": 52,
            "n_streams": 2,
            "n_rx": 2,
            "n_ofdm_symbols": 12,
            "mcs_indices": [frame[4] for frame in frames],
        },
        "targets": dict(TARGETS),
        "kernels": {
            "mmse": mmse,
            "viterbi_soft": viterbi_soft,
            "viterbi_hard": viterbi_hard,
        },
        "end_to_end": end_to_end,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------


def validate_bench_payload(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid phy-v1 document."""

    def fail(message: str):
        raise ValueError(f"BENCH_phy payload invalid: {message}")

    if not isinstance(payload, dict):
        fail("payload must be an object")
    if payload.get("schema") != SCHEMA_ID:
        fail(f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("quick"), bool):
        fail("quick must be a boolean")
    workload = payload.get("workload")
    if not isinstance(workload, dict):
        fail("workload must be an object")
    for key in ("seed", "n_subcarriers", "n_streams", "n_rx", "n_ofdm_symbols"):
        if not isinstance(workload.get(key), int):
            fail(f"workload.{key} must be an integer")
    if not isinstance(workload.get("mcs_indices"), list) or not workload["mcs_indices"]:
        fail("workload.mcs_indices must be a non-empty list")
    kernels = payload.get("kernels")
    if not isinstance(kernels, dict) or set(kernels) != set(_KERNEL_KEYS):
        fail(f"kernels must contain exactly {sorted(_KERNEL_KEYS)}")
    for name, entry in kernels.items():
        if not isinstance(entry, dict):
            fail(f"kernels.{name} must be an object")
        for key in ("reference_us", "vectorized_us", "speedup"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"kernels.{name}.{key} must be a positive number")
        if not isinstance(entry.get("repeats"), int) or entry["repeats"] < 1:
            fail(f"kernels.{name}.repeats must be a positive integer")
    end_to_end = payload.get("end_to_end")
    if not isinstance(end_to_end, dict):
        fail("end_to_end must be an object")
    value = end_to_end.get("engine_run_us")
    if not isinstance(value, (int, float)) or value <= 0:
        fail("end_to_end.engine_run_us must be a positive number")


def format_report(payload: Dict[str, object]) -> str:
    lines = [f"{'kernel':<14}{'reference us':>14}{'vectorized us':>15}{'speedup':>10}{'target':>9}"]
    for name in _KERNEL_KEYS:
        entry = payload["kernels"][name]
        target = payload["targets"].get(name)
        lines.append(
            f"{name:<14}{entry['reference_us']:>14.1f}{entry['vectorized_us']:>15.1f}"
            f"{entry['speedup']:>9.2f}x{(f'{target:.0f}x' if target else '-'):>9}"
        )
    e2e = payload["end_to_end"]
    lines.append(
        f"end-to-end StrategyEngine.run() [{e2e['scenario']}]: "
        f"{e2e['engine_run_us'] / 1e3:.1f} ms ({e2e['observed_spans']} obs spans)"
    )
    return "\n".join(lines)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI profile: fewer repeats, 3 MCS points")
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="payload path (default BENCH_phy.json)")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if any vectorized/reference speedup is below 1.0x",
    )
    parser.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing payload file and exit (no benchmarking)",
    )
    args = parser.parse_args(argv)

    if args.validate:
        with open(args.validate) as handle:
            payload = json.load(handle)
        validate_bench_payload(payload)
        print(f"{args.validate}: valid {SCHEMA_ID} payload")
        return 0

    payload = run_benchmark(quick=args.quick)
    validate_bench_payload(payload)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(format_report(payload))
    print(f"wrote {args.output}")

    if args.check:
        slow = {
            name: entry["speedup"]
            for name, entry in payload["kernels"].items()
            if entry["speedup"] < 1.0
        }
        if slow:
            print(f"FAIL: vectorized kernels slower than reference: {slow}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
