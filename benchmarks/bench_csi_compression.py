"""§3.1: CSI compression ratio (paper: "a compression ratio of two on
average for the channels in our testbed") and codec fidelity/cost.
"""

import numpy as np

from repro.mac.compression import compress_csi, compression_ratio, decompress_csi
from repro.sim.experiment import ScenarioSpec, generate_channel_sets

from conftest import write_result


def test_csi_compression_ratio(benchmark, config):
    sets = generate_channel_sets(ScenarioSpec("4x2", 4, 2), config)
    links = [cs.channel("AP1", "C1") for cs in sets] + [
        cs.channel("AP2", "C2") for cs in sets
    ]

    benchmark(compress_csi, links[0])

    ratios = np.array([compression_ratio(h) for h in links])
    errors = []
    for h in links[:10]:
        reconstructed = decompress_csi(compress_csi(h))
        errors.append(float(np.mean(np.abs(reconstructed - h)) / np.mean(np.abs(h))))

    lines = [
        f"links measured: {len(links)}",
        f"compression ratio: mean {ratios.mean():.2f}  min {ratios.min():.2f}"
        f"  max {ratios.max():.2f}  (paper: ~2 on average)",
        f"reconstruction error (mean relative amplitude): {np.mean(errors):.3f}",
    ]
    write_result("csi_compression.txt", "\n".join(lines) + "\n")

    # Shape: a substantial, consistently-above-1 ratio near the paper's 2×.
    assert ratios.mean() > 1.5
    assert ratios.min() > 1.2
    # Lossy only in quantization: reconstruction stays tight.
    assert np.mean(errors) < 0.08
