"""Figure 13: the overconstrained 3×2 scenario with shut-down-antenna.

Paper legend means (Mbit/s): CSMA 104.1, COPA-SEQ 108.9, Null+SDA 87.4,
COPA fair 117.8, COPA 121.6, COPA+ fair 122.9, COPA+ 126.4.  Shape:
Null+SDA alone loses to CSMA; COPA (with SDA among its strategies) beats
CSMA by ~13-17%; a sizable minority of topologies pick concurrency.
"""

import numpy as np

from repro.core.strategy import SCHEME_CONC_NULL, SCHEME_CONC_SDA
from repro.sim.metrics import cdf, compare

from conftest import cdf_table, write_result

PAPER = {
    "csma": 104.1,
    "copa_seq": 108.9,
    "null": 87.4,
    "copa_fair": 117.8,
    "copa": 121.6,
    "copa_plus_fair": 122.9,
    "copa_plus": 126.4,
}
KEYS = ("csma", "copa_seq", "null", "copa_fair", "copa", "copa_plus_fair", "copa_plus")


def test_fig13_overconstrained_cdfs(benchmark, result_3x2):
    table = cdf_table(result_3x2, KEYS, PAPER)
    lines = [table, "CDF series (Mbps @ cumulative probability):"]
    for key in KEYS:
        values, probs = cdf(result_3x2.series_mbps(key))
        points = "  ".join(f"{v:.1f}@{p:.2f}" for v, p in zip(values, probs))
        lines.append(f"{key}: {points}")

    concurrent_choices = sum(
        1
        for record in result_3x2.records
        if record.outcome.copa_choice in (SCHEME_CONC_SDA, SCHEME_CONC_NULL)
    )
    fraction = concurrent_choices / len(result_3x2.records)
    lines.append("")
    lines.append(
        f"concurrent strategies chosen in {fraction:.0%} of topologies (paper: ~40%)"
    )
    write_result("fig13_overconstrained.txt", "\n".join(lines) + "\n")

    benchmark(lambda: result_3x2.mean_table_mbps())

    csma = result_3x2.series_mbps("csma")
    null_sda = result_3x2.series_mbps("null")
    copa = result_3x2.series_mbps("copa")
    fair = result_3x2.series_mbps("copa_fair")

    # §4.5 shapes.
    assert null_sda.mean() < csma.mean(), "Null+SDA alone doesn't reach CSMA"
    assert copa.mean() > csma.mean(), "COPA beats CSMA (paper: +17%)"
    assert fair.mean() > csma.mean(), "COPA fair beats CSMA (paper: +13%)"
    assert fair.mean() <= copa.mean() + 1e-9
    assert fraction > 0.15, "a meaningful share of topologies go concurrent"
    # Magnitudes within ~25%.
    assert abs(csma.mean() - PAPER["csma"]) / PAPER["csma"] < 0.25
    assert abs(copa.mean() - PAPER["copa"]) / PAPER["copa"] < 0.25
