"""Figure 9: signal power vs interference power across the testbed.

Paper shape: each receiver is one point; signal spans roughly −70 to
−30 dBm; most (but not all) points lie below the x = y line — the signal
of interest is usually stronger than the interference — with a wide mix
of interference strengths and a few obstructed outliers.
"""

import numpy as np

from repro.sim.experiment import ScenarioSpec, generate_channel_sets

from conftest import write_result


def test_fig9_scatter(benchmark, config):
    def collect():
        sets = generate_channel_sets(ScenarioSpec("4x2", 4, 2), config)
        points = []
        for channels in sets:
            points.extend(channels.topology.signal_and_interference_dbm())
        return np.asarray(points)

    points = benchmark(collect)
    signal, interference = points[:, 0], points[:, 1]

    lines = ["signal_dBm  interference_dBm"]
    for s, i in points:
        lines.append(f"{s:>10.1f}  {i:>16.1f}")
    below = float(np.mean(signal > interference))
    lines.append("")
    lines.append(f"points: {len(points)} (2 per topology)")
    lines.append(f"signal range: {signal.min():.1f} .. {signal.max():.1f} dBm")
    lines.append(f"interference range: {interference.min():.1f} .. {interference.max():.1f} dBm")
    lines.append(f"signal > interference in {below:.0%} of points (paper: most, not all)")
    write_result("fig9_topologies.txt", "\n".join(lines) + "\n")

    assert len(points) == 2 * config.n_topologies
    # Paper shape: wide dynamic range, mostly below the x = y line.
    assert signal.min() < -40 and signal.max() > -50
    assert np.ptp(signal) > 15
    assert 0.55 < below <= 1.0
    # Interference is real: within ~35 dB of the signal for most points.
    assert np.median(signal - interference) < 35
