"""Substrate ablation: hard vs soft Viterbi decoding at the waveform level.

802.11 receivers use soft bit metrics, classically worth ~2 dB on AWGN.
This bench sweeps SNR through the rate-1/2 QPSK waterfall and measures
both decoders' BER with the real encoder/mapper/channel chain — one of
the validation legs behind the analytic link model.
"""

import numpy as np

from repro.phy.constants import QPSK
from repro.phy.llr import llr_demodulate
from repro.phy.qam import awgn, demodulate_hard, modulate
from repro.phy.viterbi import encode, viterbi_decode, viterbi_decode_soft
from repro.util import db_to_linear

from conftest import write_result

SNRS_DB = (1.0, 2.0, 3.0, 4.0, 5.0)
N_BITS = 30_000


def _ber_pair(snr_db, rng):
    bits = rng.integers(0, 2, N_BITS).astype(np.int8)
    coded = encode(bits)
    symbols = modulate(coded, QPSK)
    snr = float(db_to_linear(snr_db))
    received = awgn(symbols, snr, rng)

    hard_out = viterbi_decode(demodulate_hard(received, QPSK))
    soft_out = viterbi_decode_soft(llr_demodulate(received, QPSK, 1.0 / snr))
    return float(np.mean(bits != hard_out)), float(np.mean(bits != soft_out))


def test_soft_vs_hard_decoding(benchmark):
    rng = np.random.default_rng(2015)
    results = {snr: _ber_pair(snr, rng) for snr in SNRS_DB}

    benchmark(_ber_pair, 3.0, np.random.default_rng(0))

    lines = [f"{'SNR dB':<8}{'hard BER':>12}{'soft BER':>12}"]
    for snr, (hard, soft) in results.items():
        lines.append(f"{snr:<8}{hard:>12.2e}{soft:>12.2e}")
    lines.append("")
    lines.append("expected: soft decoding worth ~2 dB through the waterfall")
    write_result("soft_decoding.txt", "\n".join(lines) + "\n")

    # In the waterfall, soft must be at least an order of magnitude cleaner.
    hard_3, soft_3 = results[3.0]
    assert soft_3 < hard_3 / 5.0
    # The ~2 dB rule: soft at X dB roughly matches hard at X + 2 dB.
    hard_5, _ = results[5.0]
    assert soft_3 <= hard_5 * 10.0
    # Both converge to clean at high SNR.
    assert results[5.0][1] < 1e-3
