"""Ablation: CSI-error magnitude vs nulling quality and COPA's advantage.

§2.2 blames imperfect nulling on CSI measurement noise (plus TX noise).
Sweeping the CSI error shows the causal chain our reproduction is built
on: better CSI → deeper nulls (larger INR reduction) → vanilla nulling
recovers; worse CSI → nulling collapses → COPA's subcarrier dropping
matters even more.
"""

import numpy as np

from repro.sim.config import SimConfig
from repro.sim.experiment import ScenarioSpec, generate_channel_sets, run_experiment
from repro.sim.network import measure_nulling_effect

from conftest import write_result

N_TOPOLOGIES = 10
CSI_ERRORS_DB = (-40.0, -26.0, -18.0)


def test_ablation_csi_error(benchmark, config):
    spec = ScenarioSpec("4x2", 4, 2, include_copa_plus=False)

    rows = {}
    for error_db in CSI_ERRORS_DB:
        cfg = config.with_(n_topologies=N_TOPOLOGIES, csi_error_db=error_db)
        sets = generate_channel_sets(spec, cfg)
        imperfections = cfg.imperfections()
        inr = np.mean(
            [
                measure_nulling_effect(
                    channels, imperfections, np.random.default_rng(900 + i)
                ).inr_reduction_db
                for i, channels in enumerate(sets)
            ]
        )
        result = run_experiment(spec, cfg, channel_sets=sets)
        rows[error_db] = {
            "inr_reduction": float(inr),
            "null": result.series_mbps("null").mean(),
            "copa": result.series_mbps("copa").mean(),
            "csma": result.series_mbps("csma").mean(),
        }

    benchmark(
        lambda: measure_nulling_effect(
            generate_channel_sets(spec, config.with_(n_topologies=1))[0],
            config.imperfections(),
            np.random.default_rng(0),
        )
    )

    lines = [
        f"{'csi_error_dB':<14}{'INR_red_dB':>11}{'null Mbps':>11}{'copa Mbps':>11}{'csma Mbps':>11}"
    ]
    for error_db, row in rows.items():
        lines.append(
            f"{error_db:<14}{row['inr_reduction']:>11.1f}{row['null']:>11.1f}"
            f"{row['copa']:>11.1f}{row['csma']:>11.1f}"
        )
    write_result("ablation_csi_error.txt", "\n".join(lines) + "\n")

    # Better CSI → deeper nulls.
    assert rows[-40.0]["inr_reduction"] > rows[-26.0]["inr_reduction"] > rows[-18.0]["inr_reduction"]
    # Better CSI → vanilla nulling gains throughput.
    assert rows[-40.0]["null"] > rows[-18.0]["null"]
    # CSMA doesn't depend on CSI error (no nulling, equal power).
    assert abs(rows[-40.0]["csma"] - rows[-18.0]["csma"]) / rows[-26.0]["csma"] < 0.05
    # COPA stays ahead of vanilla nulling everywhere.
    for row in rows.values():
        assert row["copa"] > row["null"]
