"""Acceptance benchmark for the allocator oracle and differential harness.

Two guarantees guard the ``repro.core.oracle`` subsystem:

* **agreement** — on a seeded sweep of random office topologies the
  iterative allocators must match the optimization oracle within the
  documented per-scheme tolerance (:data:`repro.core.oracle.ORACLE_RTOL`)
  with **zero** mismatches;
* **equilibrium sanity** — best-response regrets on random N-player
  interference graphs must stay in ``[0, 1]`` (a regret outside that
  range means the checker itself is broken, not the heuristic).

The payload also records the measured worst relative gap per scheme and
the per-case solve cost, so tolerance or performance drift shows up as a
diff against the committed ``BENCH_oracle.json``.

Run it as a script (CI uses ``--quick --check``)::

    PYTHONPATH=src python benchmarks/bench_oracle.py [--quick]
        [--output BENCH_oracle.json] [--check] [--validate PATH]

``--check`` exits non-zero on any oracle-vs-implementation mismatch or
out-of-range regret; ``--validate PATH`` only validates an existing
payload.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List

if __package__ in (None, ""):  # script mode: make src/ importable
    sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

SCHEMA_ID = "repro.bench/oracle-v1"
DEFAULT_OUTPUT = "BENCH_oracle.json"

#: Seeds per scheme for the differential sweep (full / --quick profile).
N_SEEDS, N_SEEDS_QUICK = 30, 8
#: Seeds and players for the N-player equilibrium sweep.
EQ_SEEDS, EQ_SEEDS_QUICK, EQ_PLAYERS = 5, 2, 3


def run_benchmark(quick: bool = False) -> Dict[str, object]:
    """Run the differential + equilibrium sweeps, build the oracle-v1 payload."""
    from repro.core import differential
    from repro.core.oracle import ORACLE_RTOL, solver_available

    n_seeds = N_SEEDS_QUICK if quick else N_SEEDS
    schemes: Dict[str, Dict[str, object]] = {}
    for scheme in sorted(differential.SCHEMES):
        start = time.perf_counter()
        report = differential.differential_sweep(scheme, range(n_seeds))
        sweep_s = time.perf_counter() - start
        schemes[scheme] = {
            "n_seeds": n_seeds,
            "n_cases": report.n_total,
            "mismatches": len(report.mismatches),
            "worst_gap": float(report.worst_gap),
            "tolerance": ORACLE_RTOL[scheme],
            "sweep_s": round(sweep_s, 3),
            "per_case_ms": round(sweep_s / report.n_total * 1e3, 3),
        }

    eq_seeds = EQ_SEEDS_QUICK if quick else EQ_SEEDS
    start = time.perf_counter()
    eq_report = differential.equilibrium_sweep(range(eq_seeds), n_players=EQ_PLAYERS)
    eq_s = time.perf_counter() - start

    return {
        "schema": SCHEMA_ID,
        "quick": quick,
        "schemes": schemes,
        "equilibrium": {
            "n_seeds": eq_seeds,
            "n_players": EQ_PLAYERS,
            "worst_regret": round(float(eq_report.worst_regret), 6),
            "mean_regret": round(float(eq_report.mean_regret), 6),
            "sweep_s": round(eq_s, 3),
        },
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy_solver": solver_available(),
        },
    }


def validate_bench_payload(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid oracle-v1 document."""

    def fail(message: str):
        raise ValueError(f"BENCH_oracle payload invalid: {message}")

    if not isinstance(payload, dict):
        fail("payload must be an object")
    if payload.get("schema") != SCHEMA_ID:
        fail(f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("quick"), bool):
        fail("quick must be a boolean")
    schemes = payload.get("schemes")
    if not isinstance(schemes, dict) or not schemes:
        fail("schemes must be a non-empty object")
    for name, entry in schemes.items():
        if not isinstance(entry, dict):
            fail(f"schemes.{name} must be an object")
        for key in ("n_seeds", "n_cases", "mismatches"):
            if not isinstance(entry.get(key), int) or entry[key] < 0:
                fail(f"schemes.{name}.{key} must be a non-negative integer")
        if entry["n_cases"] < entry["n_seeds"]:
            fail(f"schemes.{name}: fewer cases than seeds")
        for key in ("worst_gap", "tolerance", "sweep_s", "per_case_ms"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                fail(f"schemes.{name}.{key} must be a non-negative number")
    equilibrium = payload.get("equilibrium")
    if not isinstance(equilibrium, dict):
        fail("equilibrium must be an object")
    for key in ("n_seeds", "n_players"):
        if not isinstance(equilibrium.get(key), int) or equilibrium[key] < 1:
            fail(f"equilibrium.{key} must be a positive integer")
    for key in ("worst_regret", "mean_regret"):
        value = equilibrium.get(key)
        if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
            fail(f"equilibrium.{key} must be a number in [0, 1]")


def format_report(payload: Dict[str, object]) -> str:
    lines = []
    for name, entry in sorted(payload["schemes"].items()):
        lines.append(
            f"{name:<12} {entry['n_cases']:>4} cases  "
            f"worst gap {entry['worst_gap']:>9.2e}  "
            f"(tol {entry['tolerance']:.0e})  "
            f"{entry['per_case_ms']:>7.1f} ms/case  "
            f"mismatches {entry['mismatches']}"
        )
    eq = payload["equilibrium"]
    lines.append(
        f"{'equilibrium':<12} {eq['n_seeds']} graphs x {eq['n_players']} players  "
        f"worst regret {eq['worst_regret']:.3f}  mean {eq['mean_regret']:.3f}"
    )
    return "\n".join(lines)


def check_payload(payload: Dict[str, object]) -> List[str]:
    """Return the list of acceptance failures (empty = pass)."""
    failures = []
    for name, entry in payload["schemes"].items():
        if entry["mismatches"]:
            failures.append(f"{name}: {entry['mismatches']} oracle mismatches")
        if entry["worst_gap"] > entry["tolerance"]:
            failures.append(
                f"{name}: worst gap {entry['worst_gap']:.3g} exceeds "
                f"tolerance {entry['tolerance']:g}"
            )
    eq = payload["equilibrium"]
    if not 0.0 <= eq["worst_regret"] <= 1.0:
        failures.append(f"equilibrium: worst regret {eq['worst_regret']} outside [0, 1]")
    return failures


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI profile: {N_SEEDS_QUICK} seeds/scheme, {EQ_SEEDS_QUICK} graphs",
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="payload path (default BENCH_oracle.json)")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any oracle mismatch or out-of-range regret",
    )
    parser.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing payload file and exit (no benchmarking)",
    )
    args = parser.parse_args(argv)

    if args.validate:
        with open(args.validate) as handle:
            payload = json.load(handle)
        validate_bench_payload(payload)
        print(f"{args.validate}: valid {SCHEMA_ID} payload")
        return 0

    payload = run_benchmark(quick=args.quick)
    validate_bench_payload(payload)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(format_report(payload))
    print(f"wrote {args.output}")

    if args.check:
        failures = check_payload(payload)
        if failures:
            print("FAIL: " + "; ".join(failures), file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
