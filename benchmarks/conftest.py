"""Shared experiment fixtures for the figure/table benchmarks.

Each of the paper's evaluation scenarios is run once per pytest session
(30 topologies, COPA+ included where the paper shows it) and shared by the
benchmark files.  Every benchmark writes its reproduced rows/series to
``benchmarks/results/`` so the numbers are inspectable after a run, and
also prints them to the terminal report.

Scenario fixtures fan their topologies out through the parallel runner
(``repro.sim.runner``); the per-topology seeding makes the results
bit-identical to a serial run, so benchmark numbers do not depend on the
worker count.  Set ``REPRO_WORKERS=1`` to force the serial path.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.sim.config import DEFAULT_CONFIG
from repro.sim.emulation import run_emulated_experiment
from repro.sim.experiment import ScenarioSpec, run_experiment

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def bench_workers() -> int:
    """Worker count for the benchmark fixtures (``$REPRO_WORKERS`` wins)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def write_result(name: str, text: str) -> None:
    """Persist one benchmark's reproduced table and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text)
    print(f"\n[{name}]\n{text}")


@pytest.fixture(scope="session")
def config():
    return DEFAULT_CONFIG


@pytest.fixture(scope="session")
def result_1x1(config):
    """§4.2: two single-antenna AP/client pairs (Figure 10)."""
    return run_experiment(ScenarioSpec("1x1", 1, 1), config, workers=bench_workers())


@pytest.fixture(scope="session")
def result_4x2(config):
    """§4.3: the constrained nulling scenario (Figure 11)."""
    return run_experiment(ScenarioSpec("4x2", 4, 2), config, workers=bench_workers())


@pytest.fixture(scope="session")
def result_4x2_weak(config):
    """§4.4: trace-driven emulation with interference −10 dB (Figure 12)."""
    return run_emulated_experiment(
        ScenarioSpec("4x2", 4, 2), -10.0, config, workers=bench_workers()
    )


@pytest.fixture(scope="session")
def result_3x2(config):
    """§4.5: the overconstrained scenario with SDA (Figure 13)."""
    return run_experiment(ScenarioSpec("3x2", 3, 2), config, workers=bench_workers())


def cdf_table(result, keys, paper_means):
    """Format a figure's mean-throughput legend: paper vs measured."""
    lines = [f"{'scheme':<16}{'paper Mbps':>12}{'measured Mbps':>15}"]
    for key in keys:
        measured = result.series_mbps(key).mean()
        paper = paper_means.get(key)
        paper_text = f"{paper:.1f}" if paper is not None else "-"
        lines.append(f"{key:<16}{paper_text:>12}{measured:>15.1f}")
    return "\n".join(lines) + "\n"
