"""Figure 4: per-subcarrier effects of nulling in one 4×2 topology.

Paper shape: "SNR BF" (free beamforming) is the highest and smoothest
curve; "SNR Null" sits lower with visibly more variance; "SINR Null"
(concurrent, both APs nulling) is lower still with further variance.
"""

import numpy as np

from repro.sim.experiment import ScenarioSpec, generate_channel_sets
from repro.sim.network import measure_nulling_effect

from conftest import write_result


def test_fig4_per_subcarrier_curves(benchmark, config):
    channels = generate_channel_sets(ScenarioSpec("4x2", 4, 2), config.with_(n_topologies=1))[0]
    effect = benchmark(
        measure_nulling_effect, channels, config.imperfections(), np.random.default_rng(0)
    )

    lines = ["subcarrier  SNR_BF_dB  SNR_Null_dB  SINR_Null_dB"]
    for k in range(52):
        lines.append(
            f"{k:>10}  {effect.snr_bf_db[k]:>9.1f}  {effect.snr_null_db[k]:>11.1f}"
            f"  {effect.sinr_null_db[k]:>12.1f}"
        )
    lines.append("")
    lines.append(
        f"means: BF {effect.snr_bf_db.mean():.1f}  Null {effect.snr_null_db.mean():.1f}"
        f"  SINR-Null {effect.sinr_null_db.mean():.1f} dB"
    )
    lines.append(
        f"std across subcarriers: BF {effect.snr_bf_std_db:.2f}"
        f"  Null {effect.snr_null_std_db:.2f} dB"
    )
    write_result("fig4_per_subcarrier.txt", "\n".join(lines) + "\n")

    # Ordering of the three curves' means (paper's Fig. 4).
    assert effect.snr_bf_db.mean() > effect.snr_null_db.mean()
    assert effect.snr_null_db.mean() >= effect.sinr_null_db.mean() - 0.5
    # Nulling increases across-subcarrier variability.
    assert effect.snr_null_std_db > effect.snr_bf_std_db
