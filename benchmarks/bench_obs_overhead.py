"""Observability overhead: the disabled path must cost (almost) nothing.

The budget: with no collector passed, the instrumentation threaded through
the engine, allocators and runner may slow an experiment by at most 5%.
The instrumentation call sites are identical whether observability is on
or off — ``collector=None`` just resolves every call to the shared no-op
singletons — so the disabled-path cost is exactly

    (number of instrumentation calls per run) x (cost of one no-op call).

This bench measures both factors, asserts their product stays far inside
the 5% budget, and reports the *enabled* path's cost alongside for
context (enabled observability is allowed to cost real time; it records
real data).
"""

import time

import numpy as np

from repro.obs import NULL_COLLECTOR, Collector
from repro.sim.experiment import ScenarioSpec, run_experiment

from conftest import write_result

OVERHEAD_BUDGET = 0.05


def _per_op_null_costs(n: int = 100_000):
    """Seconds per no-op span and per no-op metric call."""
    collector = NULL_COLLECTOR  # what collector=None resolves to
    start = time.perf_counter()
    for _ in range(n):
        with collector.span("bench", index=1):
            pass
    span_s = (time.perf_counter() - start) / n
    start = time.perf_counter()
    for _ in range(n):
        collector.inc("bench")
        collector.observe("bench", 1.0)
    metric_s = (time.perf_counter() - start) / n
    return span_s, metric_s


def _timed_run(spec, config, collector=None, repeats: int = 3) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        run_experiment(spec, config, collector=collector)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def test_obs_disabled_overhead_within_budget(benchmark, config):
    spec = ScenarioSpec("1x1", 1, 1, include_copa_plus=False)
    small = config.with_(n_topologies=2)

    # How many no-op calls does a disabled run make?  The call sites are
    # shared, so an enabled probe run counts them exactly: one span is two
    # calls (enter/exit); metric ops are bounded by the recorded totals.
    probe = Collector()
    run_experiment(spec, small, collector=probe)
    n_spans = len(probe.spans)
    n_metric_ops = len(probe.metrics.counters) * int(
        max(probe.metrics.counters.values())
    ) + sum(h.count for h in probe.metrics.histograms.values())

    span_s, metric_s = _per_op_null_costs()
    disabled_s = _timed_run(spec, small)
    enabled_s = _timed_run(spec, small, collector=Collector())
    benchmark(lambda: run_experiment(spec, small))

    # Generous upper bound: every span costs a full no-op enter/exit pair,
    # every metric op a no-op call, padded 10x for dispatch overhead.
    overhead_s = 10 * (n_spans * span_s + n_metric_ops * metric_s)
    overhead_fraction = overhead_s / disabled_s

    lines = [
        f"{'instrumented spans / run':<32}{n_spans:>10}",
        f"{'metric ops / run (bound)':<32}{n_metric_ops:>10}",
        f"{'no-op span cost':<32}{span_s * 1e9:>8.0f} ns",
        f"{'no-op metric cost':<32}{metric_s * 1e9:>8.0f} ns",
        f"{'disabled run (median)':<32}{disabled_s * 1e3:>8.1f} ms",
        f"{'enabled run (median)':<32}{enabled_s * 1e3:>8.1f} ms",
        f"{'disabled overhead bound':<32}{overhead_fraction:>9.4%}",
        f"{'budget':<32}{OVERHEAD_BUDGET:>9.2%}",
    ]
    write_result("obs_overhead.txt", "\n".join(lines) + "\n")

    assert overhead_fraction <= OVERHEAD_BUDGET, (
        f"disabled observability overhead bound {overhead_fraction:.2%} exceeds"
        f" the {OVERHEAD_BUDGET:.0%} budget"
    )
    # The no-op fast path really is the shared singleton machinery.
    assert NULL_COLLECTOR.spans == ()
