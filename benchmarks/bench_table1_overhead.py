"""Table 1: throughput costs of MAC overhead vs coherence time.

Paper rows (%, coherence 4 / 30 / 1000 ms):
    COPA Conc   9.3 / 5.1 / 4.5
    COPA Seq    7.7 / 3.5 / 2.8
    CSMA CTS    2.7 (constant)
    RTS/CTS     3.7 (constant)
Shape: COPA overheads fall with coherence time; concurrent ≥ sequential;
CSMA variants constant; ordering at every row preserved.
"""

import numpy as np
import pytest

from repro.mac.its import ItsSimulator
from repro.mac.timing import MacOverheadModel, table1_rows

from conftest import write_result

PAPER = {
    4.0: (9.3, 7.7, 2.7, 3.7),
    30.0: (5.1, 3.5, 2.7, 3.7),
    1000.0: (4.5, 2.8, 2.7, 3.7),
}


def test_table1_analytic(benchmark):
    rows = benchmark(table1_rows)

    lines = [
        f"{'coherence ms':<14}{'conc %':>16}{'seq %':>16}{'cts %':>16}{'rts/cts %':>16}",
        f"{'':<14}{'paper/meas':>16}{'paper/meas':>16}{'paper/meas':>16}{'paper/meas':>16}",
    ]
    for tc, row in rows.items():
        p = PAPER[tc]
        lines.append(
            f"{tc:<14g}"
            f"{f'{p[0]:.1f}/{row.copa_concurrent * 100:.1f}':>16}"
            f"{f'{p[1]:.1f}/{row.copa_sequential * 100:.1f}':>16}"
            f"{f'{p[2]:.1f}/{row.csma * 100:.1f}':>16}"
            f"{f'{p[3]:.1f}/{row.rts_cts * 100:.1f}':>16}"
        )
    write_result("table1_overhead.txt", "\n".join(lines) + "\n")

    for tc, row in rows.items():
        conc, seq, cts, rts = PAPER[tc]
        assert row.copa_concurrent * 100 == pytest.approx(conc, abs=1.5)
        assert row.copa_sequential * 100 == pytest.approx(seq, abs=1.5)
        assert row.csma * 100 == pytest.approx(cts, abs=0.5)
        assert row.rts_cts * 100 == pytest.approx(rts, abs=0.5)
    # Trend assertions.
    overheads = [rows[tc].copa_concurrent for tc in (4.0, 30.0, 1000.0)]
    assert overheads[0] > overheads[1] > overheads[2]


def test_table1_simulated_exchange_agrees(benchmark):
    """The frame-by-frame ITS simulator must land on the analytic numbers."""
    model = MacOverheadModel()

    def simulate():
        sim = ItsSimulator(
            "AP1", "AP2", {"AP1": "C1", "AP2": "C2"}, timing=model, coherence_s=0.030
        )
        return sim.run(80)

    stats = benchmark(simulate)
    analytic = model.copa_overhead(0.030, concurrent=True)
    assert stats.overhead_fraction == pytest.approx(analytic, abs=0.005)
