"""Figure 10: throughput CDFs, two single-antenna AP/client pairs.

Paper legend means (Mbit/s): CSMA 47.7, COPA-SEQ 51.6, COPA fair 53.3,
COPA 54.7, COPA+ fair 53.7, COPA+ 55.0.  Shape: COPA-SEQ's power
allocation and subcarrier selection beat CSMA; concurrency adds only a
little without nulling; the fair and greedy variants are close; COPA+ is
a small further step.
"""

import numpy as np

from repro.sim.metrics import cdf

from conftest import cdf_table, write_result

PAPER = {
    "csma": 47.7,
    "copa_seq": 51.6,
    "copa_fair": 53.3,
    "copa": 54.7,
    "copa_plus_fair": 53.7,
    "copa_plus": 55.0,
}
KEYS = ("csma", "copa_seq", "copa_fair", "copa", "copa_plus_fair", "copa_plus")


def test_fig10_single_antenna_cdfs(benchmark, result_1x1):
    table = cdf_table(result_1x1, KEYS, PAPER)

    lines = [table, "CDF series (Mbps @ cumulative probability):"]
    for key in KEYS:
        values, probs = cdf(result_1x1.series_mbps(key))
        points = "  ".join(f"{v:.1f}@{p:.2f}" for v, p in zip(values, probs))
        lines.append(f"{key}: {points}")
    write_result("fig10_single_antenna.txt", "\n".join(lines) + "\n")

    benchmark(lambda: result_1x1.mean_table_mbps())

    csma = result_1x1.series_mbps("csma").mean()
    seq = result_1x1.series_mbps("copa_seq").mean()
    fair = result_1x1.series_mbps("copa_fair").mean()
    copa = result_1x1.series_mbps("copa").mean()
    plus = result_1x1.series_mbps("copa_plus").mean()

    # Paper ordering: CSMA < COPA-SEQ <= COPA fair <= COPA, COPA+ >= COPA-ish.
    assert csma < seq
    assert seq <= fair * 1.02
    assert fair <= copa + 1e-9
    assert plus >= copa * 0.97
    # Magnitudes within ~25% of the paper's testbed.
    assert abs(csma - PAPER["csma"]) / PAPER["csma"] < 0.25
    assert abs(copa - PAPER["copa"]) / PAPER["copa"] < 0.3
