"""§1's headline claims, computed from the 4×2 experiment.

* "In 83% of topologies ... nulling underperforms CSMA."
* "On these topologies ... COPA improves nulling's throughput by a mean
  of 64%, such that ... COPA's approach to nulling exceeds CSMA's in 76%
  of the same topologies."
* "In the remaining 17% ... naive nulling outperforms CSMA ... by a
  median of 12%.  On these topologies ... COPA improves nulling's
  throughput improvement over CSMA to a median of 45%."
"""

import numpy as np

from conftest import write_result


def test_headline_claims(benchmark, result_4x2):
    csma = result_4x2.series_mbps("csma")
    null = result_4x2.series_mbps("null")
    # COPA restricted to its nulling strategy ("COPA's approach to nulling"):
    # use the conc_null scheme directly where available.
    from repro.core.strategy import SCHEME_CONC_NULL

    conc_null = np.array(
        [
            record.outcome.schemes[SCHEME_CONC_NULL].aggregate_bps / 1e6
            for record in result_4x2.records
        ]
    )

    benchmark(lambda: (null < csma).mean())

    nulling_loses = null < csma
    lose_fraction = float(nulling_loses.mean())
    improvement_on_losers = (
        (conc_null[nulling_loses] - null[nulling_loses]) / null[nulling_loses]
    )
    copa_null_beats_csma_on_losers = float(
        (conc_null[nulling_loses] > csma[nulling_loses]).mean()
    )

    lines = [
        f"{'claim':<46}{'paper':>8}{'measured':>10}",
        f"{'nulling underperforms CSMA (fraction)':<46}{'83%':>8}"
        f"{lose_fraction:>9.0%}",
        f"{'COPA-null mean gain over nulling (losers)':<46}{'64%':>8}"
        f"{float(improvement_on_losers.mean()):>9.0%}",
        f"{'COPA-null beats CSMA on those (fraction)':<46}{'76%':>8}"
        f"{copa_null_beats_csma_on_losers:>9.0%}",
    ]
    if (~nulling_loses).any():
        winners = ~nulling_loses
        median_win = float(np.median((null[winners] - csma[winners]) / csma[winners]))
        copa_gain = float(
            np.median((conc_null[winners] - csma[winners]) / csma[winners])
        )
        lines.append(
            f"{'naive nulling win margin (median, winners)':<46}{'12%':>8}{median_win:>9.0%}"
        )
        lines.append(
            f"{'COPA-null margin over CSMA (median, winners)':<46}{'45%':>8}{copa_gain:>9.0%}"
        )
    write_result("headline_claims.txt", "\n".join(lines) + "\n")

    # Shape: nulling loses in a clear majority; COPA rescues a majority of
    # those topologies past CSMA with a large mean improvement.
    assert lose_fraction > 0.5
    assert improvement_on_losers.mean() > 0.25
    assert copa_null_beats_csma_on_losers > 0.4
