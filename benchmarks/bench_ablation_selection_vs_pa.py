"""Ablation (§4.2): subcarrier selection vs power allocation alone.

The paper: "We have investigated whether this improvement comes from
subcarrier selection or from power allocation: either one, by itself gives
about 60-70% of the improvement, but both are needed together for the full
benefits to be seen."

We run COPA-SEQ in the 1×1 scenario with three allocators — full
Algorithm 1, power-allocation-only, selection-only — and compare each
variant's improvement over CSMA.
"""

import numpy as np

from repro.core.equi_snr import allocate, allocate_power_only, allocate_selection_only
from repro.core.options import EngineOptions
from repro.sim.config import SimConfig
from repro.sim.experiment import ScenarioSpec, run_experiment

from conftest import write_result

N_TOPOLOGIES = 15


def test_ablation_selection_vs_power_allocation(benchmark, config):
    small = config.with_(n_topologies=N_TOPOLOGIES)
    spec = ScenarioSpec("1x1", 1, 1, include_copa_plus=False)

    variants = {
        "full": allocate,
        "power_only": allocate_power_only,
        "selection_only": allocate_selection_only,
    }
    results = {
        name: run_experiment(spec, small, options=EngineOptions(allocator=allocator))
        for name, allocator in variants.items()
    }

    # Timed unit: one Algorithm 1 call of each flavour.
    rng = np.random.default_rng(0)
    gains = 10 ** (rng.uniform(-0.5, 3.5, 52)) * 52
    benchmark(lambda: [f(gains, 1.0) for f in variants.values()])

    csma = results["full"].series_mbps("csma").mean()
    improvements = {
        name: result.series_mbps("copa_seq").mean() - csma
        for name, result in results.items()
    }

    lines = [
        f"CSMA baseline: {csma:.1f} Mbps",
        f"{'variant':<16}{'COPA-SEQ Mbps':>15}{'gain Mbps':>11}{'share of full':>15}",
    ]
    for name, result in results.items():
        mean = result.series_mbps("copa_seq").mean()
        share = improvements[name] / improvements["full"] if improvements["full"] > 0 else 0
        lines.append(f"{name:<16}{mean:>15.1f}{improvements[name]:>11.1f}{share:>14.0%}")
    lines.append("paper: either half alone gives ~60-70% of the full gain")
    write_result("ablation_selection_vs_pa.txt", "\n".join(lines) + "\n")

    full = improvements["full"]
    assert full > 0, "full Algorithm 1 must improve on CSMA"
    for name in ("power_only", "selection_only"):
        share = improvements[name] / full
        # Shape: each half helps, neither matches the full algorithm alone.
        assert 0.2 <= share <= 1.01, f"{name} share {share:.0%} out of expected band"
    assert improvements["full"] >= max(
        improvements["power_only"], improvements["selection_only"]
    ) - 1e-9
