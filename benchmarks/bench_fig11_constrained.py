"""Figure 11: throughput CDFs, two 4-antenna APs → two 2-antenna clients.

Paper legend means (Mbit/s): CSMA 110.1, COPA-SEQ 110.4, Null 83.1,
COPA fair 123.9, COPA 128.1, COPA+ fair 132.0, COPA+ 136.2.  Shape:
vanilla nulling *loses* to CSMA on average; COPA's power allocation and
subcarrier selection rescue nulling decisively; fairness costs a few
percent; COPA+ adds ~5-10% more.
"""

import numpy as np

from repro.sim.metrics import cdf, compare

from conftest import cdf_table, write_result

PAPER = {
    "csma": 110.1,
    "copa_seq": 110.4,
    "null": 83.1,
    "copa_fair": 123.9,
    "copa": 128.1,
    "copa_plus_fair": 132.0,
    "copa_plus": 136.2,
}
KEYS = ("csma", "copa_seq", "null", "copa_fair", "copa", "copa_plus_fair", "copa_plus")


def test_fig11_constrained_cdfs(benchmark, result_4x2):
    table = cdf_table(result_4x2, KEYS, PAPER)
    lines = [table, "CDF series (Mbps @ cumulative probability):"]
    for key in KEYS:
        values, probs = cdf(result_4x2.series_mbps(key))
        points = "  ".join(f"{v:.1f}@{p:.2f}" for v, p in zip(values, probs))
        lines.append(f"{key}: {points}")
    write_result("fig11_constrained.txt", "\n".join(lines) + "\n")

    benchmark(lambda: result_4x2.mean_table_mbps())

    csma = result_4x2.series_mbps("csma")
    null = result_4x2.series_mbps("null")
    copa = result_4x2.series_mbps("copa")
    fair = result_4x2.series_mbps("copa_fair")
    plus = result_4x2.series_mbps("copa_plus")

    # Core orderings of Fig. 11.
    assert null.mean() < csma.mean(), "vanilla nulling must lose to CSMA"
    assert copa.mean() > csma.mean(), "COPA must beat CSMA"
    assert fair.mean() <= copa.mean() + 1e-9, "fairness cannot gain aggregate"
    assert fair.mean() > csma.mean(), "fair COPA still beats CSMA"
    assert plus.mean() >= copa.mean() * 0.95, "COPA+ is at worst comparable"

    # §4.3: mean improvement of COPA over vanilla nulling ('54%' in paper).
    rescue = compare(copa, null)
    assert rescue.mean_improvement > 0.25

    # Magnitudes within ~25% of the paper.
    assert abs(csma.mean() - PAPER["csma"]) / PAPER["csma"] < 0.25
    assert abs(copa.mean() - PAPER["copa"]) / PAPER["copa"] < 0.25
