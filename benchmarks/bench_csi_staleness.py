"""Ablation: null depth vs CSI age — why COPA refreshes every t_c.

§3.1 claims CSI "does not need to be refreshed at the start of every 4 ms
transmit opportunity, but instead once every coherence time".  Using the
Doppler-evolved channel, we compute a nulling precoder from CSI of age Δ
and measure the residual interference on the *current* channel.  The
residual should be near the CSI-error floor for Δ « t_c and degrade
steeply past Δ ≈ t_c, validating the refresh rule quantitatively.
"""

import numpy as np

from repro.mac.timing import coherence_time_s
from repro.phy.constants import CARRIER_WAVELENGTH_M
from repro.phy.doppler import ChannelTrack, doppler_frequency_hz
from repro.phy.mimo import nulling_precoder, svd_beamformer
from repro.util import linear_to_db

from conftest import write_result

SPEED_M_S = 4 / 3.6  # walking
STEP_S = 0.004  # one TXOP
N_TRIALS = 12


def _residual_vs_age(max_steps: int, rng) -> np.ndarray:
    """Mean residual interference (dB rel. equal power) per CSI age."""
    residuals = np.zeros(max_steps + 1)
    for _ in range(N_TRIALS):
        own_track = ChannelTrack(2, 4, SPEED_M_S, STEP_S)
        victim_track = ChannelTrack(2, 4, SPEED_M_S, STEP_S)
        h_own = own_track.start(rng)
        h_victim = victim_track.start(rng)
        precoder = nulling_precoder(h_own, h_victim, 2)
        reference = np.mean(np.abs(h_victim) ** 2)

        current_victim = h_victim
        for age in range(max_steps + 1):
            leakage = np.mean(np.abs(current_victim @ precoder) ** 2)
            residuals[age] += leakage / reference / N_TRIALS
            current_victim = victim_track.step(rng)
    return residuals


def test_csi_staleness(benchmark):
    rng = np.random.default_rng(9)
    t_c = coherence_time_s(SPEED_M_S, CARRIER_WAVELENGTH_M)
    steps_per_tc = int(round(t_c / STEP_S))
    max_steps = steps_per_tc * 4
    residuals = _residual_vs_age(max_steps, rng)
    residuals_db = linear_to_db(residuals)

    benchmark(lambda: _residual_vs_age(2, np.random.default_rng(0)))

    lines = [
        f"walking speed {SPEED_M_S * 3.6:.0f} km/h, f_D = "
        f"{doppler_frequency_hz(SPEED_M_S):.1f} Hz, t_c = {t_c * 1e3:.0f} ms "
        f"({steps_per_tc} TXOPs)",
        "",
        f"{'CSI age (ms)':<14}{'age / t_c':>10}{'residual dB':>13}",
    ]
    for age in range(0, max_steps + 1, max(steps_per_tc // 3, 1)):
        lines.append(
            f"{age * STEP_S * 1e3:<14.0f}{age * STEP_S / t_c:>10.2f}"
            f"{residuals_db[age]:>13.1f}"
        )
    write_result("csi_staleness.txt", "\n".join(lines) + "\n")

    fresh = residuals_db[0]
    at_tc = residuals_db[steps_per_tc]
    far = residuals_db[-1]
    # Fresh CSI gives a deep null (perfect CSI here: numerically deep).
    assert fresh < -100
    # By one coherence time the null has eroded dramatically...
    assert at_tc > fresh + 40
    # ...and far past t_c the "null" is no null at all (within ~10 dB of
    # not precoding for the victim).
    assert far > -12.0
    # Degradation is monotone-ish in age.
    assert residuals_db[steps_per_tc] < residuals_db[-1] + 1e-9
