"""The cache perf harness: schema contract and committed baseline.

``benchmarks/bench_cache.py`` is a script, not a package module, so it
is loaded from its file path here.  The tests pin the
``repro.bench/cache-v1`` schema (the CI cache-smoke job uploads payloads
that must stay parseable across PRs) and keep the committed repo-root
``BENCH_cache.json`` valid.  The timing acceptance itself (warm >= 5x,
no-cache overhead <= 1%) runs in CI via ``--quick --check``; re-running
the full benchmark here would double the suite's wall-clock for numbers
the committed baseline already records.
"""

import copy
import importlib.util
import json
import os

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SCRIPT = os.path.join(_REPO_ROOT, "benchmarks", "bench_cache.py")


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_cache", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def baseline_payload():
    with open(os.path.join(_REPO_ROOT, "BENCH_cache.json")) as handle:
        return json.load(handle)


class TestCommittedBaseline:
    def test_is_schema_valid(self, bench, baseline_payload):
        bench.validate_bench_payload(baseline_payload)

    def test_meets_the_acceptance_budgets(self, bench, baseline_payload):
        assert baseline_payload["cache"]["speedup"] >= bench.SPEEDUP_FLOOR
        assert baseline_payload["no_cache"]["overhead_bound"] <= bench.NO_CACHE_BUDGET

    def test_report_formats(self, bench, baseline_payload):
        report = bench.format_report(baseline_payload)
        assert "warm speedup" in report
        assert "no-cache overhead bound" in report


class TestSchemaValidation:
    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("schema"),
            lambda p: p.__setitem__("schema", "repro.bench/phy-v1"),
            lambda p: p.pop("cache"),
            lambda p: p["cache"].__setitem__("speedup", -1),
            lambda p: p["cache"].__setitem__("artifacts", 0),
            lambda p: p.pop("no_cache"),
            lambda p: p["no_cache"].__setitem__("overhead_bound", "fast"),
            lambda p: p["workload"].__setitem__("series", []),
        ],
        ids=[
            "missing_schema",
            "wrong_schema",
            "missing_cache",
            "negative_speedup",
            "zero_artifacts",
            "missing_no_cache",
            "non_numeric_bound",
            "empty_series",
        ],
    )
    def test_damaged_payloads_are_rejected(self, bench, baseline_payload, mutate):
        payload = copy.deepcopy(baseline_payload)
        mutate(payload)
        with pytest.raises(ValueError):
            bench.validate_bench_payload(payload)

    def test_guard_count_matches_the_source(self, bench):
        """The analytic overhead bound counts real guards, not zero."""
        assert bench._guards_per_run() >= 4
