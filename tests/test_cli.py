"""The command-line front end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "4x2" in out and "3x2" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "COPA conc" in out
        assert "1000ms" in out

    def test_topology_command(self, capsys):
        assert main(["topology", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "AP1" in out and "C2" in out
        assert "signal" in out

    def test_run_small(self, capsys):
        assert main(["run", "1x1", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "csma" in out and "copa" in out

    def test_run_with_interference(self, capsys):
        assert main(["run", "4x2", "-n", "2", "--interference", "-10"]) == 0
        out = capsys.readouterr().out
        assert "nulling beats CSMA" in out

    def test_nulling_small(self, capsys):
        assert main(["nulling", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "INR reduction" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "9x9"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "1x1", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "| scheme |" in out
        assert "COPA beats CSMA" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = str(tmp_path / "report.md")
        assert main(["report", "1x1", "-n", "2", "-o", path]) == 0
        with open(path) as handle:
            content = handle.read()
        assert content.startswith("## Scenario 1x1")


class TestArgumentValidation:
    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_nonpositive_topology_count_rejected(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "4x2", "-n", bad])

    def test_positive_count_accepted(self):
        args = build_parser().parse_args(["run", "4x2", "-n", "7"])
        assert args.topologies == 7

    def test_negative_max_retries_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "1x1", "--max-retries", "-1"])

    def test_zero_max_retries_accepted(self):
        args = build_parser().parse_args(["run", "1x1", "--max-retries", "0"])
        assert args.max_retries == 0

    @pytest.mark.parametrize("bad", ["0", "-2.5"])
    def test_nonpositive_task_timeout_rejected(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "1x1", "--task-timeout", bad])

    def test_fault_tolerance_defaults(self):
        args = build_parser().parse_args(["run", "1x1"])
        assert args.max_retries == 2
        assert args.task_timeout is None
        assert args.checkpoint is None
        assert args.resume is False


class TestFaultTolerance:
    def test_run_accepts_retry_and_timeout_flags(self, capsys):
        assert (
            main(["run", "1x1", "-n", "2", "--max-retries", "1", "--task-timeout", "30"])
            == 0
        )
        out = capsys.readouterr().out
        assert "copa" in out
        # A clean run reports no fault-tolerance activity.
        assert "fault tolerance:" not in out

    def test_checkpoint_then_resume_roundtrip(self, tmp_path, capsys):
        from repro.sim.checkpoint import validate_journal

        path = str(tmp_path / "run.ckpt")
        assert main(["run", "1x1", "-n", "2", "--checkpoint", path]) == 0
        first = capsys.readouterr().out
        summary = validate_journal(path)
        assert summary["entries"] == 2 and summary["indices"] == [0, 1]

        assert main(["run", "1x1", "-n", "2", "--checkpoint", path, "--resume"]) == 0
        second = capsys.readouterr().out
        assert "2 resumed from checkpoint" in second
        # Bit-identical output, modulo the wall-clock and stats lines.
        def strip(text):
            return [
                line
                for line in text.splitlines()
                if "fault tolerance" not in line and "topologies in" not in line
            ]

        assert strip(second) == strip(first)

    def test_resume_without_checkpoint_rejected(self, capsys):
        assert main(["run", "1x1", "-n", "2", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_report_resume_without_checkpoint_rejected(self, capsys):
        assert main(["report", "1x1", "-n", "2", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_cache_flag_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        args = build_parser().parse_args(["run", "1x1"])
        assert args.cache_dir is None
        assert args.no_cache is False
        assert args.cache_stats is False

    def test_cache_dir_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/envcache")
        args = build_parser().parse_args(["run", "1x1"])
        assert args.cache_dir == "/tmp/envcache"

    def test_run_twice_hits_the_cache(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        flags = ["run", "1x1", "-n", "2", "-w", "1", "--cache-dir", root, "--cache-stats"]
        assert main(flags) == 0
        cold = capsys.readouterr().out
        assert "cache: 0 hits, 2 misses" in cold
        assert "stores" in cold

        assert main(flags) == 0
        warm = capsys.readouterr().out
        assert "cache: 2 hits, 0 misses" in warm
        assert "(100% hit rate)" in warm

        # Identical scheme tables, modulo the wall-clock and cache lines.
        def table(text):
            return [
                line
                for line in text.splitlines()
                if "topologies in" not in line and "cache" not in line
            ]

        assert table(warm) == table(cold)

    def test_no_cache_disables_lookup_and_store(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        assert main(["run", "1x1", "-n", "2", "-w", "1", "--cache-dir", root]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "run", "1x1", "-n", "2", "-w", "1",
                    "--cache-dir", root, "--no-cache", "--cache-stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cache: disabled" in out
        assert "hits" not in out

    def test_report_shares_the_run_cache(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        assert main(["run", "1x1", "-n", "2", "-w", "1", "--cache-dir", root]) == 0
        capsys.readouterr()
        assert (
            main(["report", "1x1", "-n", "2", "-w", "1", "--cache-dir", root, "--cache-stats"])
            == 0
        )
        out = capsys.readouterr().out
        assert "(100% hit rate)" in out

    def test_permanent_failure_reports_per_topology(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.sim.runner import RunnerError

        def explode(*args, **kwargs):
            raise RunnerError(
                failures={1: "InjectedCrash: injected CRASH (attempt 3)"},
                records=[object()] * 2,
                total=3,
            )

        monkeypatch.setattr(cli, "run_experiment", explode)
        assert main(["run", "1x1", "-n", "3"]) == 1
        err = capsys.readouterr().err
        assert "error: 1 of 3 topologies failed permanently" in err
        assert "topology[1]: InjectedCrash" in err
        assert "2 of 3 topologies completed" in err
        assert "--checkpoint/--resume" in err
