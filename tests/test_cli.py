"""The command-line front end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "4x2" in out and "3x2" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "COPA conc" in out
        assert "1000ms" in out

    def test_topology_command(self, capsys):
        assert main(["topology", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "AP1" in out and "C2" in out
        assert "signal" in out

    def test_run_small(self, capsys):
        assert main(["run", "1x1", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "csma" in out and "copa" in out

    def test_run_with_interference(self, capsys):
        assert main(["run", "4x2", "-n", "2", "--interference", "-10"]) == 0
        out = capsys.readouterr().out
        assert "nulling beats CSMA" in out

    def test_nulling_small(self, capsys):
        assert main(["nulling", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "INR reduction" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "9x9"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "1x1", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "| scheme |" in out
        assert "COPA beats CSMA" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = str(tmp_path / "report.md")
        assert main(["report", "1x1", "-n", "2", "-o", path]) == 0
        with open(path) as handle:
            content = handle.read()
        assert content.startswith("## Scenario 1x1")


class TestArgumentValidation:
    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_nonpositive_topology_count_rejected(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "4x2", "-n", bad])

    def test_positive_count_accepted(self):
        args = build_parser().parse_args(["run", "4x2", "-n", "7"])
        assert args.topologies == 7
