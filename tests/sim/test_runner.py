"""The parallel experiment runner: determinism, fallbacks, telemetry.

The headline contract is parallel-vs-serial *bit-identity*: fanning the
topologies of a scenario out to a process pool must produce exactly the
series a serial run produces, for every scenario shape and every series
key.  The engine seeds travel inside the task specs, so this holds by
construction — these tests pin it.
"""

import dataclasses
import os
import pickle

import numpy as np
import pytest

from repro.core.options import EngineOptions
from repro.obs import Collector
from repro.phy.rates import best_rate
from repro.sim.config import SimConfig
from repro.sim.experiment import SERIES_KEYS, ScenarioSpec, run_experiment
from repro.sim.runner import (
    SEED_OFFSET,
    RunnerStats,
    build_tasks,
    auto_chunk_size,
    evaluate_topology,
    resolve_workers,
    run_tasks,
)

# Reduced-size variants of the paper's three scenario shapes.  COPA+ is
# enabled only on the cheap single-antenna scenario; together the three
# cover every key in SERIES_KEYS (1x1 has no nulling scheme, 4x2/3x2 do).
EQUIVALENCE_CASES = [
    (ScenarioSpec("1x1", 1, 1, include_copa_plus=True), 2),
    (ScenarioSpec("4x2", 4, 2, include_copa_plus=False), 3),
    (ScenarioSpec("3x2", 3, 2, include_copa_plus=False), 2),
]


@pytest.fixture(scope="module", params=range(len(EQUIVALENCE_CASES)), ids=["1x1", "4x2", "3x2"])
def serial_and_parallel(request):
    spec, n_topologies = EQUIVALENCE_CASES[request.param]
    config = SimConfig(n_topologies=n_topologies)
    serial = run_experiment(spec, config, workers=1)
    parallel = run_experiment(spec, config, workers=4)
    return serial, parallel


class TestParallelSerialEquivalence:
    def test_pool_actually_ran(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert serial.stats is not None and not serial.stats.parallel
        assert parallel.stats is not None and parallel.stats.parallel
        assert parallel.stats.workers == 4

    def test_every_series_bit_identical(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert serial.available_series() == parallel.available_series()
        for key in SERIES_KEYS:
            if key not in serial.available_series():
                continue
            np.testing.assert_array_equal(
                serial.series_mbps(key),
                parallel.series_mbps(key),
                err_msg=f"series {key!r} differs between serial and parallel runs",
            )

    def test_choices_and_indices_identical(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        for a, b in zip(serial.records, parallel.records):
            assert a.index == b.index
            assert a.outcome.copa_choice == b.outcome.copa_choice
            assert a.outcome.copa_fair_choice == b.outcome.copa_fair_choice


def test_equivalence_cases_cover_all_series_keys():
    """The three scenarios above jointly exercise every SERIES_KEYS entry."""
    covered = set()
    for spec, n in EQUIVALENCE_CASES:
        result = run_experiment(spec, SimConfig(n_topologies=1))
        covered.update(result.available_series())
    assert covered == set(SERIES_KEYS)


class TestResolveWorkers:
    def test_none_is_serial(self):
        assert resolve_workers(None) == 1

    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3

    @pytest.mark.parametrize("all_cores", [0, -1])
    def test_nonpositive_means_all_cores(self, all_cores):
        assert resolve_workers(all_cores) == (os.cpu_count() or 1)


class TestAutoChunkSize:
    def test_serial_is_one(self):
        assert auto_chunk_size(30, 1) == 1

    def test_empty_is_one(self):
        assert auto_chunk_size(0, 4) == 1

    def test_four_rounds_per_worker(self):
        assert auto_chunk_size(30, 4) == 2
        assert auto_chunk_size(100, 8) == 4

    def test_never_zero(self):
        assert auto_chunk_size(3, 16) == 1


class TestBuildTasks:
    def test_seeds_match_serial_convention(self):
        spec = ScenarioSpec("4x2", 4, 2)
        config = SimConfig(n_topologies=3, seed=77)
        from repro.sim.experiment import generate_channel_sets

        sets = generate_channel_sets(spec, config)
        tasks = build_tasks(
            sets, base_seed=config.seed, coherence_s=config.coherence_s,
            imperfections=config.imperfections(),
        )
        assert [t.seed for t in tasks] == [77 + SEED_OFFSET + i for i in range(3)]
        assert [t.index for t in tasks] == [0, 1, 2]

    def test_tasks_are_picklable(self):
        spec = ScenarioSpec("1x1", 1, 1)
        config = SimConfig(n_topologies=1)
        from repro.sim.experiment import generate_channel_sets

        tasks = build_tasks(
            generate_channel_sets(spec, config),
            base_seed=config.seed,
            coherence_s=config.coherence_s,
            imperfections=config.imperfections(),
            options=EngineOptions(rate_selector=best_rate),
        )
        restored = pickle.loads(pickle.dumps(tasks[0]))
        result = evaluate_topology(restored)
        assert result.record.index == 0
        assert result.elapsed_s > 0
        # Observability was not requested: no spans, no metrics.
        assert result.spans is None and result.metrics is None

    def test_legacy_options_dict_is_rejected(self):
        """The retired ``engine_kwargs`` dict, passed via ``options``, now
        raises a crisp TypeError with the migration hint (removal complete
        after the one-release deprecation window)."""
        spec = ScenarioSpec("1x1", 1, 1)
        config = SimConfig(n_topologies=1)
        from repro.sim.experiment import generate_channel_sets

        sets = generate_channel_sets(spec, config)
        with pytest.raises(TypeError, match="engine_kwargs dict form was removed"):
            build_tasks(
                sets,
                base_seed=config.seed,
                coherence_s=config.coherence_s,
                imperfections=config.imperfections(),
                options={"rate_selector": best_rate},
            )

    def test_engine_kwargs_keyword_is_gone(self):
        """The ``engine_kwargs`` keyword is retired from the public surface."""
        spec = ScenarioSpec("1x1", 1, 1)
        config = SimConfig(n_topologies=1)
        from repro.sim.experiment import generate_channel_sets

        sets = generate_channel_sets(spec, config)
        with pytest.raises(TypeError):
            build_tasks(
                sets,
                base_seed=config.seed,
                coherence_s=config.coherence_s,
                imperfections=config.imperfections(),
                engine_kwargs={"rate_selector": best_rate},
            )
        with pytest.raises(TypeError):
            run_experiment(spec, config, engine_kwargs={"rate_selector": best_rate})


class TestGracefulDegradation:
    def test_unpicklable_options_fall_back_to_serial(self):
        """A lambda rate selector can't cross a process boundary; the runner
        must degrade to the serial path instead of crashing."""
        spec = ScenarioSpec("1x1", 1, 1, include_copa_plus=False)
        config = SimConfig(n_topologies=2)
        selector = lambda sinr, used: best_rate(sinr, used=used)  # noqa: E731
        result = run_experiment(
            spec, config, options=EngineOptions(rate_selector=selector), workers=4
        )
        assert result.stats is not None
        assert not result.stats.parallel
        assert "picklable" in result.stats.fallback_reason
        reference = run_experiment(spec, config, workers=1)
        np.testing.assert_array_equal(
            result.series_mbps("copa"), reference.series_mbps("copa")
        )

    def test_single_task_skips_the_pool(self):
        spec = ScenarioSpec("1x1", 1, 1, include_copa_plus=False)
        result = run_experiment(spec, SimConfig(n_topologies=1), workers=4)
        assert not result.stats.parallel
        assert "one task" in result.stats.fallback_reason

    def test_workers_one_has_no_fallback_reason(self):
        spec = ScenarioSpec("1x1", 1, 1, include_copa_plus=False)
        result = run_experiment(spec, SimConfig(n_topologies=2), workers=1)
        assert not result.stats.parallel
        assert result.stats.fallback_reason is None


class TestRunnerObservability:
    """Cross-process span grafting and metrics merge (see repro.obs)."""

    def _tasks(self, n=3):
        spec = ScenarioSpec("1x1", 1, 1, include_copa_plus=False)
        config = SimConfig(n_topologies=n)
        from repro.sim.experiment import generate_channel_sets

        return build_tasks(
            generate_channel_sets(spec, config),
            base_seed=config.seed,
            coherence_s=config.coherence_s,
            imperfections=config.imperfections(),
        )

    def test_collector_records_dispatch_and_per_task_spans(self):
        tasks = self._tasks(3)
        collector = Collector()
        records, stats = run_tasks(tasks, workers=1, collector=collector)
        assert len(records) == 3
        names = [span.name for span in collector.spans]
        assert names.count("runner.run_tasks") == 1
        for index in range(3):
            assert f"topology[{index}]" in names
        # Worker-side engine spans were grafted under each topology span.
        assert any(name == "engine.run" for name in names)
        assert stats.observed and stats.spans_merged == len(collector.spans)

    def test_parallel_merge_matches_serial(self):
        tasks = self._tasks(3)
        serial, parallel = Collector(), Collector()
        run_tasks(tasks, workers=1, collector=serial)
        run_tasks(tasks, workers=3, collector=parallel)
        assert serial.metrics.as_payload() == parallel.metrics.as_payload()
        assert [s.name for s in serial.spans] == [s.name for s in parallel.spans]

    def test_grafted_spans_nest_inside_their_topology(self):
        tasks = self._tasks(2)
        collector = Collector()
        run_tasks(tasks, workers=2, collector=collector)
        by_id = {span.span_id: span for span in collector.spans}
        topo_ids = {s.span_id for s in collector.spans if s.name.startswith("topology[")}
        for span in collector.spans:
            if span.name == "engine.run":
                assert span.parent_id in topo_ids
                parent = by_id[span.parent_id]
                assert parent.start_s <= span.start_s
                assert span.end_s <= parent.end_s + 1e-9

    def test_no_collector_keeps_tasks_unobserved(self):
        tasks = self._tasks(2)
        records, stats = run_tasks(tasks, workers=1)
        assert len(records) == 2
        assert not stats.observed and stats.spans_merged == 0

    def test_tasks_not_mutated_by_observation(self):
        tasks = self._tasks(2)
        assert all(not task.observe for task in tasks)
        run_tasks(tasks, workers=1, collector=Collector())
        # run_tasks flips observe on copies, never on the caller's tasks.
        assert all(not task.observe for task in tasks)

    def test_observed_task_roundtrips_through_pickle(self):
        task = dataclasses.replace(self._tasks(1)[0], observe=True)
        result = evaluate_topology(pickle.loads(pickle.dumps(task)))
        assert result.spans and result.metrics is not None
        assert pickle.loads(pickle.dumps(result)).record.index == 0


class TestRunnerStats:
    def test_timing_fields(self):
        spec = ScenarioSpec("1x1", 1, 1, include_copa_plus=False)
        result = run_experiment(spec, SimConfig(n_topologies=2), workers=1)
        stats = result.stats
        assert stats.n_topologies == 2
        assert len(stats.topology_wall_s) == 2
        assert all(t > 0 for t in stats.topology_wall_s)
        assert stats.total_wall_s >= max(stats.topology_wall_s)
        assert stats.topologies_per_s > 0
        assert 0.0 < stats.worker_utilization <= 1.0

    def test_explicit_chunk_size_respected(self):
        spec = ScenarioSpec("1x1", 1, 1, include_copa_plus=False)
        result = run_experiment(
            spec, SimConfig(n_topologies=2), workers=2, chunk_size=2
        )
        # chunk_size is recorded whenever the pool ran; with one chunk of 2
        # the pool still runs (2 tasks > 1).
        assert result.stats.parallel
        assert result.stats.chunk_size == 2

    def test_degenerate_stats_are_safe(self):
        stats = RunnerStats(
            workers=0, chunk_size=1, parallel=False, total_wall_s=0.0,
            topology_wall_s=(),
        )
        assert stats.topologies_per_s == 0.0
        assert stats.worker_utilization == 0.0
        assert stats.busy_s == 0.0
