"""ASCII plotting utilities."""

import numpy as np
import pytest

from repro.sim.plots import ascii_bars, ascii_cdf, ascii_series


class TestAsciiCdf:
    def test_contains_legend_and_axes(self):
        out = ascii_cdf({"csma": [1, 2, 3], "copa": [2, 3, 4]}, x_label="Mbps")
        assert "*=csma" in out
        assert "o=copa" in out
        assert "Mbps" in out
        assert "1.00 |" in out

    def test_monotone_staircase(self):
        """Higher-throughput series' glyphs appear further right on average."""
        out = ascii_cdf({"low": [10, 11, 12], "high": [100, 110, 120]}, width=40)
        rows = [line for line in out.splitlines() if "|" in line and "+" not in line]
        low_cols = [line.index("*") for line in rows if "*" in line]
        high_cols = [line.index("o") for line in rows if "o" in line]
        assert np.mean(high_cols) > np.mean(low_cols)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf({})

    def test_single_value_series(self):
        out = ascii_cdf({"x": [5.0, 5.0]})
        assert "*" in out


class TestAsciiSeries:
    def test_basic_render(self):
        out = ascii_series({"snr": np.linspace(0, 30, 52)}, y_label="dB")
        assert "*=snr" in out
        assert "30.0" in out and "0.0" in out

    def test_nan_values_skipped(self):
        values = np.linspace(0, 10, 20)
        values[5:8] = np.nan
        out = ascii_series({"ber": values})
        assert "*" in out  # finite points still plotted

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            ascii_series({"x": [np.nan, np.nan]})

    def test_two_series_distinct_glyphs(self):
        out = ascii_series({"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "*" in out and "o" in out


class TestAsciiBars:
    def test_lengths_proportional(self):
        out = ascii_bars({"small": 1.0, "big": 2.0}, width=20)
        lines = out.splitlines()
        small = lines[0].count("#")
        big = lines[1].count("#")
        assert big == pytest.approx(2 * small, abs=1)

    def test_baseline_marker(self):
        out = ascii_bars({"a": 10.0}, baseline=5.0, unit=" dB")
        assert "|" in out
        assert "5.0 dB" in out

    def test_negative_values_signed(self):
        out = ascii_bars({"loss": -3.0, "gain": 3.0})
        assert "-###" in out or "- " in out or "-" in out.splitlines()[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars({})

    def test_all_zero_does_not_crash(self):
        out = ascii_bars({"a": 0.0, "b": 0.0})
        assert "a" in out and "b" in out
