"""Markdown report generation."""

import pytest

from repro.sim.config import SimConfig
from repro.sim.experiment import ScenarioSpec, run_experiment
from repro.sim.reporting import (
    PAPER_MEANS,
    experiment_report,
    headline_section,
    scheme_table,
)


@pytest.fixture(scope="module")
def small_result():
    spec = ScenarioSpec("4x2", 4, 2, include_copa_plus=False)
    return run_experiment(spec, SimConfig(n_topologies=3))


class TestSchemeTable:
    def test_contains_all_schemes(self, small_result):
        table = scheme_table(small_result)
        for key in small_result.available_series():
            assert f"| {key} |" in table

    def test_paper_reference_included(self, small_result):
        table = scheme_table(small_result)
        assert "110.1" in table  # 4x2 CSMA paper mean

    def test_unknown_scenario_dashes(self, small_result):
        table = scheme_table(small_result, paper={})
        assert "—" in table

    def test_markdown_structure(self, small_result):
        lines = scheme_table(small_result).splitlines()
        assert lines[0].startswith("| scheme |")
        assert set(lines[1].replace("|", "").strip()) <= {"-", " "}


class TestHeadlineSection:
    def test_nulling_lines_present(self, small_result):
        text = headline_section(small_result)
        assert "vanilla nulling" in text
        assert "price of fairness" in text

    def test_without_nulling(self):
        spec = ScenarioSpec("1x1", 1, 1, include_copa_plus=False)
        result = run_experiment(spec, SimConfig(n_topologies=2))
        text = headline_section(result)
        assert "vanilla nulling" not in text
        assert "COPA beats CSMA" in text


class TestExperimentReport:
    def test_complete_report(self, small_result):
        report = experiment_report(small_result, title="Test run")
        assert report.startswith("## Test run")
        assert "topologies" in report
        assert "```" in report  # the CDF block

    def test_cdf_can_be_disabled(self, small_result):
        report = experiment_report(small_result, include_cdf=False)
        assert "```" not in report

    def test_paper_means_cover_all_scenarios(self):
        assert set(PAPER_MEANS) == {"1x1", "4x2", "4x2-10dB", "3x2"}
        for means in PAPER_MEANS.values():
            assert "csma" in means and "copa" in means
