"""CDFs, summaries, and paired comparisons."""

import numpy as np
import pytest

from repro.sim.metrics import cdf, compare, summarize


class TestSummarize:
    def test_basic_statistics(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.n == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestCdf:
    def test_sorted_and_complete(self):
        values, probs = cdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(probs, [1 / 3, 2 / 3, 1.0])

    def test_last_probability_is_one(self, rng):
        _, probs = cdf(rng.uniform(size=50))
        assert probs[-1] == pytest.approx(1.0)

    def test_monotone(self, rng):
        values, probs = cdf(rng.normal(size=100))
        assert np.all(np.diff(values) >= 0)
        assert np.all(np.diff(probs) > 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf([])


class TestCompare:
    def test_clear_winner(self):
        stats = compare([2.0, 2.0, 2.0], [1.0, 1.0, 1.0])
        assert stats.win_fraction == 1.0
        assert stats.mean_improvement == pytest.approx(1.0)
        assert stats.median_improvement == pytest.approx(1.0)

    def test_paper_style_win_fraction(self):
        """'Nulling underperforms CSMA in 83% of topologies' style."""
        null = np.array([80, 90, 100, 120, 70, 60])
        csma = np.array([110, 110, 110, 110, 110, 110])
        stats = compare(null, csma)
        assert stats.win_fraction == pytest.approx(1 / 6)

    def test_improvement_when_winning(self):
        stats = compare([2.0, 0.5], [1.0, 1.0])
        assert stats.mean_improvement_when_winning == pytest.approx(1.0)

    def test_no_wins(self):
        stats = compare([0.5, 0.5], [1.0, 1.0])
        assert stats.win_fraction == 0.0
        assert stats.mean_improvement_when_winning == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compare([1.0], [1.0, 2.0])

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            compare([1.0], [0.0])
