"""Differential cache harness: cached runs are bit-identical to cold ones.

The property pinned here, per scenario and per worker count: run an
experiment cold (empty cache), warm (fully populated cache), and from a
cache populated by *another process*, and every per-series array is
bit-identical to a cache-free baseline.  Around that sit compositions
with the rest of the fault-tolerance machinery — retries under chaos
injection, checkpoint-resume, on-disk corruption — and the
cross-topology-count property of content addressing.
"""

import glob
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.cache import ResultCache
from repro.obs import Collector
from repro.sim.config import SimConfig
from repro.sim.experiment import ScenarioSpec, run_experiment
from repro.sim.faults import FaultKind, FaultPlan
from repro.sim.runner import RetryPolicy, RunnerError

CONFIG = SimConfig(n_topologies=3)
SCENARIOS = [
    ScenarioSpec("1x1", 1, 1, include_copa_plus=False),
    ScenarioSpec("3x2", 3, 2, include_copa_plus=False),
    ScenarioSpec("4x2", 4, 2, include_copa_plus=False),
]
RETRYING = RetryPolicy(max_retries=2, sleep=lambda s: None)
FAIL_FAST = RetryPolicy(max_retries=0, sleep=lambda s: None)

_baselines = {}


def baseline_for(spec):
    """Cache-free reference run (memoized across this module's tests)."""
    if spec.name not in _baselines:
        _baselines[spec.name] = run_experiment(spec, CONFIG, workers=1)
    return _baselines[spec.name]


def series_of(result):
    return {key: result.series_mbps(key) for key in result.available_series()}


def assert_matches_baseline(result, spec, context):
    reference = baseline_for(spec)
    assert result.available_series() == reference.available_series()
    for key in reference.available_series():
        np.testing.assert_array_equal(
            result.series_mbps(key),
            reference.series_mbps(key),
            err_msg=f"{spec.name} {context}: series {key!r} drifted",
        )


def _run_in_subprocess(spec_name, cache_root, workers):
    """Module-level so ProcessPoolExecutor can pickle it by reference."""
    spec = next(s for s in SCENARIOS if s.name == spec_name)
    result = run_experiment(spec, CONFIG, workers=workers, cache=ResultCache(cache_root))
    return (
        {key: result.series_mbps(key) for key in result.available_series()},
        result.stats.cache_hits,
        result.stats.cache_misses,
    )


class TestColdVersusWarm:
    """The headline property, serial and parallel, every scenario."""

    @pytest.mark.parametrize("spec", SCENARIOS, ids=[s.name for s in SCENARIOS])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_cold_and_warm_runs_are_bit_identical(self, spec, workers, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))

        cold = run_experiment(spec, CONFIG, workers=workers, cache=cache)
        assert cold.stats.cache_hits == 0
        assert cold.stats.cache_misses == CONFIG.n_topologies
        assert_matches_baseline(cold, spec, f"cold workers={workers}")

        warm = run_experiment(spec, CONFIG, workers=workers, cache=cache)
        assert warm.stats.cache_hits == CONFIG.n_topologies
        assert warm.stats.cache_misses == 0
        assert_matches_baseline(warm, spec, f"warm workers={workers}")

    def test_serial_cold_parallel_warm_and_vice_versa(self, tmp_path):
        """The cache must not care which execution mode filled it."""
        spec = SCENARIOS[2]
        cache = ResultCache(str(tmp_path / "cache"))
        run_experiment(spec, CONFIG, workers=1, cache=cache)
        warm_parallel = run_experiment(spec, CONFIG, workers=2, cache=cache)
        assert warm_parallel.stats.cache_hits == CONFIG.n_topologies
        assert_matches_baseline(warm_parallel, spec, "serial-cold/parallel-warm")


class TestTwoProcessSharedCache:
    """A cache populated by one process serves another bit-identically."""

    @pytest.mark.parametrize("spec", SCENARIOS, ids=[s.name for s in SCENARIOS])
    def test_shared_cache_across_processes(self, spec, tmp_path):
        root = str(tmp_path / "shared")
        with ProcessPoolExecutor(max_workers=1) as pool:
            cold_series, cold_hits, cold_misses = pool.submit(
                _run_in_subprocess, spec.name, root, 1
            ).result()
        assert cold_hits == 0 and cold_misses == CONFIG.n_topologies

        warm = run_experiment(spec, CONFIG, workers=1, cache=ResultCache(root))
        assert warm.stats.cache_hits == CONFIG.n_topologies
        assert_matches_baseline(warm, spec, "two-process warm")
        for key, values in cold_series.items():
            np.testing.assert_array_equal(values, warm.series_mbps(key))


class TestChaosComposition:
    """Caching composes with fault injection and retries."""

    def test_crash_retry_with_cache_is_bit_identical(self, tmp_path):
        spec = SCENARIOS[0]
        cache = ResultCache(str(tmp_path / "cache"))
        plan = FaultPlan.at([1], FaultKind.CRASH)  # first attempt crashes
        chaotic = run_experiment(
            spec, CONFIG, workers=1, policy=RETRYING, fault_plan=plan, cache=cache
        )
        assert chaotic.stats.retries >= 1
        assert_matches_baseline(chaotic, spec, "chaos cold")

        warm = run_experiment(spec, CONFIG, workers=1, cache=cache)
        assert warm.stats.cache_hits == CONFIG.n_topologies
        assert_matches_baseline(warm, spec, "chaos warm")

    def test_cached_results_survive_a_poisoned_rerun(self, tmp_path):
        """Warm hits skip evaluation entirely: a fault plan that would
        crash every topology forever is never consulted on a full hit."""
        spec = SCENARIOS[0]
        cache = ResultCache(str(tmp_path / "cache"))
        run_experiment(spec, CONFIG, workers=1, cache=cache)
        poison = FaultPlan.at(range(CONFIG.n_topologies), FaultKind.CRASH, trips=100)
        warm = run_experiment(
            spec, CONFIG, workers=1, policy=FAIL_FAST, fault_plan=poison, cache=cache
        )
        assert warm.stats.cache_hits == CONFIG.n_topologies
        assert_matches_baseline(warm, spec, "poisoned warm")


class TestCheckpointComposition:
    """Cache and journal cover different failure axes; they must stack."""

    def test_crash_then_resume_with_cache(self, tmp_path):
        spec = SCENARIOS[0]
        cache = ResultCache(str(tmp_path / "cache"))
        ckpt = str(tmp_path / "run.ckpt")
        plan = FaultPlan.at([2], FaultKind.CRASH, trips=100)
        with pytest.raises(RunnerError) as excinfo:
            run_experiment(
                spec,
                CONFIG,
                workers=1,
                policy=FAIL_FAST,
                fault_plan=plan,
                checkpoint=ckpt,
                cache=cache,
            )
        assert set(excinfo.value.failures) == {2}

        resumed = run_experiment(
            spec, CONFIG, workers=1, checkpoint=ckpt, resume=True, cache=cache
        )
        assert_matches_baseline(resumed, spec, "checkpoint+cache resume")

        warm = run_experiment(spec, CONFIG, workers=1, cache=cache)
        assert warm.stats.cache_hits == CONFIG.n_topologies
        assert_matches_baseline(warm, spec, "post-resume warm")

    def test_journal_fingerprint_is_identical_with_and_without_cache(self, tmp_path):
        """Cached and uncached runs of one experiment share journals: the
        fingerprint covers the full task list even when hits shrink the
        dispatched set, so a warm rerun can resume a cold run's journal."""
        spec = SCENARIOS[0]
        cache = ResultCache(str(tmp_path / "cache"))
        run_experiment(spec, CONFIG, workers=1, cache=cache)

        cold_ckpt = str(tmp_path / "cold.ckpt")
        run_experiment(spec, CONFIG, workers=1, checkpoint=cold_ckpt)
        resumed = run_experiment(
            spec, CONFIG, workers=1, checkpoint=cold_ckpt, resume=True, cache=cache
        )
        assert resumed.stats.resumed == CONFIG.n_topologies
        assert_matches_baseline(resumed, spec, "cache resuming uncached journal")


class TestContentAddressing:
    """Keys depend on content, not on the run that produced them."""

    def test_prefix_reuse_across_topology_counts(self, tmp_path):
        """Topology i's key is independent of n_topologies, so growing an
        experiment reuses every already-computed prefix topology."""
        spec = SCENARIOS[0]
        cache = ResultCache(str(tmp_path / "cache"))
        run_experiment(spec, CONFIG.with_(n_topologies=2), workers=1, cache=cache)

        grown = run_experiment(spec, CONFIG.with_(n_topologies=3), workers=1, cache=cache)
        assert grown.stats.cache_hits == 2
        assert grown.stats.cache_misses == 1
        reference = run_experiment(spec, CONFIG.with_(n_topologies=3), workers=1)
        for key in reference.available_series():
            np.testing.assert_array_equal(grown.series_mbps(key), reference.series_mbps(key))

    def test_different_seeds_do_not_share_artifacts(self, tmp_path):
        spec = SCENARIOS[0]
        cache = ResultCache(str(tmp_path / "cache"))
        run_experiment(spec, CONFIG, workers=1, cache=cache)
        other = run_experiment(spec, CONFIG.with_(seed=7), workers=1, cache=cache)
        assert other.stats.cache_hits == 0
        assert other.stats.cache_misses == CONFIG.n_topologies


class TestCorruptionRecovery:
    """Damage any artifact on disk; the experiment recomputes and matches."""

    def test_corrupt_result_artifact_is_recomputed(self, tmp_path):
        spec = SCENARIOS[0]
        root = str(tmp_path / "cache")
        run_experiment(spec, CONFIG, workers=1, cache=ResultCache(root))
        artifacts = sorted(glob.glob(os.path.join(root, "v1", "results", "*", "*.art")))
        assert len(artifacts) == CONFIG.n_topologies
        with open(artifacts[0], "r+b") as handle:
            handle.seek(-20, os.SEEK_END)
            handle.write(b"\x00" * 20)

        cache = ResultCache(root)
        collector = Collector()
        warm = run_experiment(spec, CONFIG, workers=1, cache=cache, collector=collector)
        assert cache.stats.corrupt == 1
        assert warm.stats.cache_hits == CONFIG.n_topologies - 1
        assert warm.stats.cache_misses == 1
        assert collector.metrics.counters["cache.corrupt"] == 1
        assert_matches_baseline(warm, spec, "corruption recovery")

        healed = run_experiment(spec, CONFIG, workers=1, cache=ResultCache(root))
        assert healed.stats.cache_hits == CONFIG.n_topologies

    def test_corrupt_channel_artifact_is_recomputed(self, tmp_path):
        spec = SCENARIOS[0]
        root = str(tmp_path / "cache")
        run_experiment(spec, CONFIG, workers=1, cache=ResultCache(root))
        (artifact,) = glob.glob(os.path.join(root, "v1", "channels", "*", "*.art"))
        with open(artifact, "wb") as handle:
            handle.write(b"garbage")

        cache = ResultCache(root)
        warm = run_experiment(spec, CONFIG, workers=1, cache=cache)
        assert cache.stats.corrupt == 1
        assert_matches_baseline(warm, spec, "channel corruption recovery")


class TestObservabilityFlow:
    def test_cache_counters_reach_the_collector(self, tmp_path):
        spec = SCENARIOS[0]
        cache = ResultCache(str(tmp_path / "cache"))
        cold_collector = Collector()
        run_experiment(spec, CONFIG, workers=1, cache=cache, collector=cold_collector)
        assert cold_collector.metrics.counters["cache.miss"] == CONFIG.n_topologies + 1
        assert cold_collector.metrics.counters["cache.store"] == CONFIG.n_topologies + 1

        warm_collector = Collector()
        run_experiment(spec, CONFIG, workers=1, cache=cache, collector=warm_collector)
        counters = warm_collector.metrics.counters
        assert counters["cache.hit"] == CONFIG.n_topologies + 1
        assert counters["cache.bytes_read"] > 0
        assert "cache.miss" not in counters
        names = [span.name for span in warm_collector.spans]
        assert "cache.lookup" in names
