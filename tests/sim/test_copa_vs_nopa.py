"""The §3.2.2 / Figure 7 comparison helper."""

import numpy as np
import pytest

from repro.sim.network import copa_vs_nopa_example


@pytest.fixture(scope="module")
def comparison(channels_4x2, imperfections):
    return copa_vs_nopa_example(channels_4x2, imperfections, np.random.default_rng(1))


class TestCopaVsNopa:
    def test_array_shapes(self, comparison):
        assert comparison.nopa_ber.shape == (52,)
        assert comparison.copa_ber.shape == (52,)
        assert comparison.copa_dropped.shape == (52,)

    def test_dropped_subcarriers_have_nan_ber(self, comparison):
        dropped = comparison.copa_dropped
        if dropped.any():
            assert np.all(np.isnan(comparison.copa_ber[dropped]))
        kept = ~dropped
        assert np.all(np.isfinite(comparison.copa_ber[kept]))

    def test_bers_in_range(self, comparison):
        assert np.all((comparison.nopa_ber >= 0) & (comparison.nopa_ber <= 0.5))
        kept = ~comparison.copa_dropped
        assert np.all(comparison.copa_ber[kept] <= 0.5)

    def test_copa_rate_at_least_nopa(self, comparison):
        """Same precoder, better allocation: COPA cannot do worse."""
        assert comparison.copa_rate_bps >= comparison.nopa_rate_bps * 0.98

    def test_mcs_indices_valid(self, comparison):
        assert 0 <= comparison.copa_mcs_index <= 7
        assert -1 <= comparison.nopa_mcs_index <= 7

    def test_second_client_measurable(self, channels_4x2, imperfections):
        other = copa_vs_nopa_example(
            channels_4x2, imperfections, np.random.default_rng(1), client_index=1
        )
        assert other.copa_rate_bps >= 0
