"""Checkpoint journal: round-trip fidelity, schema validation, resume safety.

The property pinned here (per scenario, per seed): crash an experiment at
an *arbitrary* topology index, resume from the journal, and every
per-series array is bit-identical to an uninterrupted run.  Around that
sit unit tests for the ``repro.ckpt/v1`` plumbing — fingerprint
stability, digest checking, partial-tail tolerance, the standalone
validator and its CLI.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.sim.checkpoint import (
    SCHEMA_ID,
    CheckpointError,
    Journal,
    _main,
    fingerprint_tasks,
    validate_journal,
)
from repro.sim.config import SimConfig
from repro.sim.experiment import ScenarioSpec, generate_channel_sets, run_experiment
from repro.sim.faults import FaultKind, FaultPlan
from repro.sim.runner import (
    RetryPolicy,
    RunnerError,
    build_tasks,
    evaluate_topology,
)

CONFIG = SimConfig(n_topologies=3)
SCENARIOS = [
    ScenarioSpec("1x1", 1, 1, include_copa_plus=False),
    ScenarioSpec("3x2", 3, 2, include_copa_plus=False),
    ScenarioSpec("4x2", 4, 2, include_copa_plus=False),
]
FAIL_FAST = RetryPolicy(max_retries=0, sleep=lambda s: None)

_baselines = {}


def baseline_for(spec):
    if spec.name not in _baselines:
        _baselines[spec.name] = run_experiment(spec, CONFIG, workers=1)
    return _baselines[spec.name]


def tasks_for(spec, **kwargs):
    return build_tasks(
        generate_channel_sets(spec, CONFIG),
        base_seed=CONFIG.seed,
        coherence_s=CONFIG.coherence_s,
        imperfections=CONFIG.imperfections(),
        **kwargs,
    )


class TestCrashResumeProperty:
    """Crash anywhere, resume, get bit-identical series — every scenario."""

    @pytest.mark.parametrize("spec", SCENARIOS, ids=[s.name for s in SCENARIOS])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_resume_is_bit_identical(self, spec, seed, tmp_path):
        rng = np.random.default_rng(seed)
        crash_index = int(rng.integers(CONFIG.n_topologies))
        path = str(tmp_path / f"{spec.name}_{seed}.ckpt")

        plan = FaultPlan.at([crash_index], FaultKind.CRASH, trips=100)
        with pytest.raises(RunnerError) as excinfo:
            run_experiment(
                spec, CONFIG, workers=1, policy=FAIL_FAST, fault_plan=plan, checkpoint=path
            )
        assert set(excinfo.value.failures) == {crash_index}

        resumed = run_experiment(spec, CONFIG, workers=1, checkpoint=path, resume=True)
        reference = baseline_for(spec)
        assert resumed.stats.resumed == CONFIG.n_topologies - 1
        assert resumed.available_series() == reference.available_series()
        for key in reference.available_series():
            np.testing.assert_array_equal(
                resumed.series_mbps(key),
                reference.series_mbps(key),
                err_msg=f"{spec.name} seed {seed} crash@{crash_index}: series {key!r} drifted",
            )

    def test_fully_checkpointed_run_recomputes_nothing(self, tmp_path):
        """Resuming a complete journal must not re-evaluate any topology:
        a poison fault on every index would fail instantly if it did."""
        spec = SCENARIOS[0]
        path = str(tmp_path / "full.ckpt")
        run_experiment(spec, CONFIG, workers=1, checkpoint=path)
        poison = FaultPlan.at(range(CONFIG.n_topologies), FaultKind.CRASH, trips=100)
        resumed = run_experiment(
            spec,
            CONFIG,
            workers=1,
            policy=FAIL_FAST,
            fault_plan=poison,
            checkpoint=path,
            resume=True,
        )
        assert resumed.stats.resumed == CONFIG.n_topologies
        reference = baseline_for(spec)
        for key in reference.available_series():
            np.testing.assert_array_equal(resumed.series_mbps(key), reference.series_mbps(key))


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        spec = SCENARIOS[0]
        assert fingerprint_tasks(tasks_for(spec)) == fingerprint_tasks(tasks_for(spec))

    def test_excludes_execution_only_fields(self):
        """attempt / observe / fault_plan must not change the hash — a
        chaos-interrupted run and its fault-free resume share a journal."""
        tasks = tasks_for(SCENARIOS[0])
        reference = fingerprint_tasks(tasks)
        plan = FaultPlan.at([0], FaultKind.CRASH)
        mutated = [
            dataclasses.replace(task, attempt=3, observe=True, fault_plan=plan)
            for task in tasks
        ]
        assert fingerprint_tasks(mutated) == reference

    def test_sensitive_to_result_determining_fields(self):
        tasks = tasks_for(SCENARIOS[0])
        reference = fingerprint_tasks(tasks)
        reseeded = [dataclasses.replace(task, seed=task.seed + 1) for task in tasks]
        assert fingerprint_tasks(reseeded) != reference
        recohered = [dataclasses.replace(task, coherence_s=0.999) for task in tasks]
        assert fingerprint_tasks(recohered) != reference
        assert fingerprint_tasks(tasks[:-1]) != reference


class TestJournal:
    @pytest.fixture()
    def tasks(self):
        return tasks_for(SCENARIOS[0])

    @pytest.fixture()
    def written(self, tasks, tmp_path):
        """A journal holding the first two completed results."""
        path = str(tmp_path / "journal.ckpt")
        results = [evaluate_topology(task) for task in tasks[:2]]
        with Journal.open(path, tasks) as journal:
            for result in results:
                journal.record(result)
        return path, results

    def test_round_trip(self, tasks, written):
        path, results = written
        with Journal.open(path, tasks, resume=True) as journal:
            assert sorted(journal.completed) == [0, 1]
            for original in results:
                loaded = journal.completed[original.record.index]
                assert loaded.record.index == original.record.index
                assert (
                    loaded.record.outcome.copa_choice == original.record.outcome.copa_choice
                )
                np.testing.assert_array_equal(
                    np.array(loaded.record.outcome.copa.client_throughput_bps),
                    np.array(original.record.outcome.copa.client_throughput_bps),
                )

    def test_resume_missing_file_starts_fresh(self, tasks, tmp_path):
        path = str(tmp_path / "absent.ckpt")
        with Journal.open(path, tasks, resume=True) as journal:
            assert journal.completed == {}
        assert validate_journal(path)["entries"] == 0

    def test_config_mismatch_refuses_to_resume(self, tasks, written, tmp_path):
        path, _ = written
        other = [dataclasses.replace(task, seed=task.seed + 7) for task in tasks]
        with pytest.raises(CheckpointError, match="different experiment"):
            Journal.open(path, other, resume=True)

    def test_wrong_schema_refuses_to_resume(self, tasks, written):
        path, _ = written
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        header["schema"] = "repro.ckpt/v999"
        lines[0] = json.dumps(header, sort_keys=True)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="schema"):
            Journal.open(path, tasks, resume=True)

    def test_tampered_blob_is_rejected(self, tasks, written):
        path, _ = written
        lines = open(path).read().splitlines()
        entry = json.loads(lines[1])
        blob = entry["blob"]
        entry["blob"] = blob[:-4] + ("AAAA" if blob[-4:] != "AAAA" else "BBBB")
        lines[1] = json.dumps(entry, sort_keys=True)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="sha256 mismatch"):
            Journal.open(path, tasks, resume=True)
        with pytest.raises(CheckpointError, match="sha256 mismatch"):
            validate_journal(path)

    def test_partial_tail_tolerated_on_resume_not_validation(self, tasks, written):
        """A crash mid-write leaves one partial final line: resume skips
        it (that task is recomputed), the validator rejects the file."""
        path, _ = written
        with open(path, "a") as handle:
            handle.write('{"kind": "result", "index": 2, "trunc')
        with Journal.open(path, tasks, resume=True) as journal:
            assert sorted(journal.completed) == [0, 1]
        with pytest.raises(CheckpointError, match="unreadable entry"):
            validate_journal(path)

    def test_out_of_range_index_is_rejected(self, tasks, written):
        path, _ = written
        with Journal.open(path, tasks, resume=True) as journal:
            result = journal.completed[0]
        bad = dataclasses.replace(
            result, record=dataclasses.replace(result.record, index=99)
        )
        with Journal.open(path, tasks, resume=True) as journal:
            journal.record(bad)
        with pytest.raises(CheckpointError, match="out of range"):
            Journal.open(path, tasks, resume=True)
        with pytest.raises(CheckpointError, match="index must be in"):
            validate_journal(path)


class TestValidator:
    def test_summary_of_valid_journal(self, tmp_path):
        tasks = tasks_for(SCENARIOS[0])
        path = str(tmp_path / "valid.ckpt")
        with Journal.open(path, tasks) as journal:
            journal.record(evaluate_topology(tasks[1]))
        summary = validate_journal(path)
        assert summary["schema"] == SCHEMA_ID
        assert summary["n_tasks"] == len(tasks)
        assert summary["entries"] == 1
        assert summary["indices"] == [1]
        assert len(summary["config_hash"]) == 64

    def test_empty_and_headerless_files(self, tmp_path):
        empty = tmp_path / "empty.ckpt"
        empty.write_text("")
        with pytest.raises(CheckpointError, match="empty journal"):
            validate_journal(str(empty))
        garbage = tmp_path / "garbage.ckpt"
        garbage.write_text("not json\n")
        with pytest.raises(CheckpointError, match="unreadable header"):
            validate_journal(str(garbage))

    def test_cli_exit_codes(self, tmp_path, capsys):
        tasks = tasks_for(SCENARIOS[0])
        path = str(tmp_path / "cli.ckpt")
        with Journal.open(path, tasks) as journal:
            journal.record(evaluate_topology(tasks[0]))
        assert _main([path]) == 0
        assert "journal OK" in capsys.readouterr().out

        broken = tmp_path / "broken.ckpt"
        broken.write_text("nope\n")
        assert _main([str(broken)]) == 1
        assert "invalid journal" in capsys.readouterr().err

        assert _main([]) == 2
        assert "usage:" in capsys.readouterr().err
