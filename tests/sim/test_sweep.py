"""Parameter sweeps."""

import numpy as np
import pytest

from repro.sim.config import SimConfig
from repro.sim.experiment import ScenarioSpec
from repro.sim.sweep import (
    sweep_antenna_configurations,
    sweep_coherence_time,
    sweep_interference,
)


@pytest.fixture(scope="module")
def small_config():
    return SimConfig(n_topologies=4)


@pytest.fixture(scope="module")
def small_spec():
    return ScenarioSpec("4x2", 4, 2, include_copa_plus=False)


class TestCoherenceSweep:
    @pytest.fixture(scope="class")
    def sweep(self, small_config, small_spec):
        return sweep_coherence_time(
            (0.004, 0.030, 1.0), spec=small_spec, config=small_config
        )

    def test_point_count_and_order(self, sweep):
        xs, _ = sweep.series("copa")
        np.testing.assert_array_equal(xs, [0.004, 0.030, 1.0])

    def test_copa_improves_with_coherence(self, sweep):
        """Longer coherence → less ITS/CSI overhead → more COPA throughput."""
        _, copa = sweep.series("copa")
        assert copa[-1] > copa[0]

    def test_csma_unaffected(self, sweep):
        """CSMA's CTS-to-self cost is coherence-independent (Table 1)."""
        _, csma = sweep.series("csma")
        assert np.ptp(csma) / csma.mean() < 0.01

    def test_gains_computed(self, sweep):
        gains = sweep.gains("copa")
        assert gains.shape == (3,)


class TestInterferenceSweep:
    @pytest.fixture(scope="class")
    def sweep(self, small_config, small_spec):
        return sweep_interference((0.0, -10.0, -25.0), spec=small_spec, config=small_config)

    def test_nulling_improves_as_interference_weakens(self, sweep):
        _, null = sweep.series("null")
        assert null[-1] > null[0]

    def test_copa_gain_grows(self, sweep):
        gains = sweep.gains("copa")
        assert gains[-1] > gains[0]

    def test_zero_offset_matches_baseline(self, sweep, small_config, small_spec):
        from repro.sim.experiment import run_experiment

        baseline = run_experiment(small_spec, small_config)
        assert sweep.points[0].means_mbps["copa"] == pytest.approx(
            baseline.mean_table_mbps()["copa"], rel=1e-6
        )


class TestAntennaSweep:
    def test_throughput_grows_with_antennas(self, small_config):
        sweep = sweep_antenna_configurations(((1, 1), (4, 2)), config=small_config)
        _, copa = sweep.series("copa")
        assert copa[1] > copa[0] * 1.3

    def test_parameter_encoding(self, small_config):
        sweep = sweep_antenna_configurations(((3, 2),), config=small_config)
        assert sweep.points[0].parameter == pytest.approx(3.2)
