"""The multi-topology experiment runner."""

import numpy as np
import pytest

from repro.sim.config import SimConfig
from repro.sim.experiment import (
    CONSTRAINED_4X2,
    ScenarioSpec,
    generate_channel_sets,
    run_experiment,
)


@pytest.fixture(scope="module")
def small_result():
    spec = ScenarioSpec("4x2", 4, 2, include_copa_plus=False)
    return run_experiment(spec, SimConfig(n_topologies=4))


class TestGenerateChannelSets:
    def test_count_and_antennas(self):
        cfg = SimConfig(n_topologies=3)
        sets = generate_channel_sets(CONSTRAINED_4X2, cfg)
        assert len(sets) == 3
        for cs in sets:
            assert cs.channel("AP1", "C1").shape == (52, 2, 4)

    def test_reproducible(self):
        cfg = SimConfig(n_topologies=2)
        a = generate_channel_sets(CONSTRAINED_4X2, cfg)
        b = generate_channel_sets(CONSTRAINED_4X2, cfg)
        np.testing.assert_array_equal(
            a[0].channel("AP1", "C1"), b[0].channel("AP1", "C1")
        )

    def test_different_seeds_differ(self):
        a = generate_channel_sets(CONSTRAINED_4X2, SimConfig(n_topologies=1, seed=1))
        b = generate_channel_sets(CONSTRAINED_4X2, SimConfig(n_topologies=1, seed=2))
        assert not np.allclose(a[0].channel("AP1", "C1"), b[0].channel("AP1", "C1"))

    def test_interference_offset_applied(self):
        cfg = SimConfig(n_topologies=1)
        base = generate_channel_sets(ScenarioSpec("x", 4, 2), cfg)[0]
        weak = generate_channel_sets(
            ScenarioSpec("x", 4, 2, interference_offset_db=-10.0), cfg
        )[0]
        ratio = np.mean(np.abs(weak.channel("AP1", "C2")) ** 2) / np.mean(
            np.abs(base.channel("AP1", "C2")) ** 2
        )
        assert 10 * np.log10(ratio) == pytest.approx(-10.0, abs=0.1)


class TestExperimentResult:
    def test_series_lengths(self, small_result):
        for key in ("csma", "copa_seq", "null", "copa", "copa_fair"):
            assert small_result.series_mbps(key).shape == (4,)

    def test_copa_plus_absent_when_disabled(self, small_result):
        with pytest.raises(KeyError):
            small_result.series_mbps("copa_plus")

    def test_unknown_series_rejected(self, small_result):
        with pytest.raises(KeyError):
            small_result.series_mbps("quantum")

    def test_available_series(self, small_result):
        available = small_result.available_series()
        assert "csma" in available and "copa" in available
        assert "copa_plus" not in available

    def test_mean_table(self, small_result):
        table = small_result.mean_table_mbps()
        assert table["csma"] == pytest.approx(
            small_result.series_mbps("csma").mean()
        )

    def test_summary(self, small_result):
        s = small_result.summary("copa")
        assert s.n == 4
        assert s.minimum <= s.median <= s.maximum

    def test_throughputs_in_sane_range(self, small_result):
        for key in small_result.available_series():
            series = small_result.series_mbps(key)
            assert np.all(series >= 0)
            assert np.all(series <= 270)  # two 2-stream links at 65 Mbit/s

    def test_copa_at_least_copa_seq_predictions_hold_mostly(self, small_result):
        """COPA picks by prediction, so the measured result can occasionally
        fall below COPA-SEQ, but on average it must not."""
        copa = small_result.series_mbps("copa")
        seq = small_result.series_mbps("copa_seq")
        assert copa.mean() >= seq.mean() * 0.95


class TestAvailableSeriesProbe:
    """available_series() probes the first record's aggregates — it must not
    recompute (or even touch) the full series arrays."""

    def test_copa_plus_excluded_when_disabled(self, small_result):
        """include_copa_plus=False: the plus series are absent, the rest
        present, and the probe agrees with what series_mbps() can deliver."""
        available = small_result.available_series()
        assert available == ["csma", "copa_seq", "null", "copa", "copa_fair"]
        for key in available:
            assert small_result.series_mbps(key).shape == (4,)

    def test_probe_does_not_build_series(self, small_result, monkeypatch):
        def boom(key):
            raise AssertionError("available_series must not compute full series")

        monkeypatch.setattr(small_result, "series_mbps", boom)
        assert "csma" in small_result.available_series()

    def test_empty_result_has_no_series(self, small_result):
        from repro.sim.experiment import ExperimentResult

        empty = ExperimentResult(spec=small_result.spec, records=[])
        assert empty.available_series() == []

    def test_runner_stats_attached(self, small_result):
        assert small_result.stats is not None
        assert small_result.stats.n_topologies == 4


class TestCopaPlus:
    def test_plus_outcomes_recorded(self):
        spec = ScenarioSpec("4x2", 4, 2, include_copa_plus=True)
        result = run_experiment(spec, SimConfig(n_topologies=1))
        assert result.records[0].plus_outcome is not None
        assert result.series_mbps("copa_plus").shape == (1,)
