"""The service's headline guarantee, proven across OS processes.

N concurrent worker *processes* draining one shard directory over one
shared cache produce results **bit-identical** to a single serial
in-process run — for every evaluation scenario, for every worker count.
This is the concurrency half of the differential suite; the chaos half
(workers killed mid-shard) lives in ``tests/sim/test_chaos.py``.

Workers are real subprocesses (``ProcessPoolExecutor`` dispatching
:func:`repro.sim.service.worker_entry`), not threads: the lease protocol's
flock/atomic-rename guarantees are only meaningful across process
boundaries.
"""

import json
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.sim.checkpoint import fingerprint_tasks
from repro.sim.config import SimConfig
from repro.sim.experiment import ScenarioSpec, run_experiment
from repro.sim.service import harvest, publish_shards, read_manifest, worker_entry

N_TOPOLOGIES = 6
CONFIG = SimConfig(n_topologies=N_TOPOLOGIES)

SCENARIOS = [
    ScenarioSpec("1x1", 1, 1, include_copa_plus=False),
    ScenarioSpec("4x2", 4, 2, include_copa_plus=False),
    ScenarioSpec("3x2", 3, 2, include_copa_plus=False),
]
WORKER_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module", params=[spec.name for spec in SCENARIOS])
def scenario(request):
    return next(spec for spec in SCENARIOS if spec.name == request.param)


@pytest.fixture(scope="module")
def baseline(scenario):
    """The single-process serial reference for one scenario."""
    return run_experiment(scenario, CONFIG, workers=1)


@pytest.fixture(scope="module")
def shared_cache_root(scenario, tmp_path_factory):
    """One cache shared by every worker count of one scenario.

    Sharing it across worker counts additionally exercises the
    cache-prefill path: the 2- and 4-worker runs find the 1-worker run's
    artifacts and must *still* be bit-identical.
    """
    return str(tmp_path_factory.mktemp(f"cache_{scenario.name}"))


def _run_sharded(scenario, shard_dir, cache_root, n_workers):
    """Publish, drain with N worker processes, and return (stats, result)."""
    publish_shards(shard_dir, scenario, CONFIG, n_shards=N_TOPOLOGIES // 2)
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        futures = [
            pool.submit(
                worker_entry,
                shard_dir,
                cache_root=cache_root,
                worker_id=f"worker_{rank}",
                timeout_s=300.0,
                observe=False,
            )
            for rank in range(n_workers)
        ]
        stats = [future.result(timeout=300.0) for future in futures]
    return stats, harvest(shard_dir)


@pytest.mark.parametrize("n_workers", WORKER_COUNTS)
def test_sharded_run_is_bit_identical_to_serial(
    scenario, baseline, shared_cache_root, tmp_path, n_workers
):
    shard_dir = str(tmp_path / "shards")
    stats, result = _run_sharded(scenario, shard_dir, shared_cache_root, n_workers)

    # Results: every measured series, bit for bit.
    assert result.available_series() == baseline.available_series()
    for key in baseline.available_series():
        np.testing.assert_array_equal(result.series_mbps(key), baseline.series_mbps(key))
    for ours, theirs in zip(result.records, baseline.records):
        assert ours.index == theirs.index
        assert ours.outcome.copa_choice == theirs.outcome.copa_choice
        assert ours.outcome.copa_fair_choice == theirs.outcome.copa_fair_choice

    # Headline means: the numbers a report would print.
    assert result.mean_table_mbps() == baseline.mean_table_mbps()

    # The workers collectively completed every task exactly once per claim,
    # and every shard was claimed by somebody.
    assert sum(s["shards_completed"] for s in stats) == N_TOPOLOGIES // 2
    assert sum(s["tasks_completed"] for s in stats) == N_TOPOLOGIES


@pytest.mark.parametrize("n_workers", [4])
def test_journal_fingerprints_match_serial_checkpoint(
    scenario, shared_cache_root, tmp_path, n_workers
):
    """Shard journals carry the *same* config-hash a serial checkpoint does.

    The journals are therefore interchangeable evidence: any shard journal
    can be validated against — or resumed into — the full experiment.
    """
    shard_dir = str(tmp_path / "shards")
    _run_sharded(scenario, shard_dir, shared_cache_root, n_workers)

    serial_journal = str(tmp_path / "serial.ckpt")
    run_experiment(scenario, CONFIG, workers=1, checkpoint=serial_journal)
    with open(serial_journal) as handle:
        serial_hash = json.loads(handle.readline())["config_hash"]

    manifest = read_manifest(shard_dir)
    assert manifest.config_hash == serial_hash
    assert serial_hash == fingerprint_tasks(manifest.build_tasks())

    journal_dir = os.path.join(shard_dir, "journals")
    journals = sorted(os.listdir(journal_dir))
    assert len(journals) == len(manifest.shards)
    for name in journals:
        with open(os.path.join(journal_dir, name)) as handle:
            header = json.loads(handle.readline())
        assert header["config_hash"] == serial_hash
        assert header["n_tasks"] == N_TOPOLOGIES


def test_worker_counts_agree_with_each_other(scenario, shared_cache_root, tmp_path):
    """1-, 2- and 4-worker drains of fresh shard dirs agree bit for bit."""
    results = []
    for n_workers in WORKER_COUNTS:
        shard_dir = str(tmp_path / f"shards_{n_workers}")
        _, result = _run_sharded(scenario, shard_dir, shared_cache_root, n_workers)
        results.append(result)
    reference = results[0]
    for result in results[1:]:
        for key in reference.available_series():
            np.testing.assert_array_equal(
                result.series_mbps(key), reference.series_mbps(key)
            )
